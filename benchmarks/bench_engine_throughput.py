"""Engine-throughput regression bench (events/sec + wall-clock).

Not a paper figure: this tracks the *simulator's* own speed on the
profiled workload from the fast-path PR -- ``udp_stream`` over the
``xenloop`` scenario, 4 KB messages, 0.5 s simulated -- so the perf
trajectory is visible from PR to PR.  Results append to
``BENCH_engine.json`` at the repo root: one history entry per run,
keyed by git SHA (events processed, wall-clock, events/sec,
serialization-cache counters, plus the simulated result so determinism
drift is also visible).

The timed run is preceded by an untimed warmup pass so one-time costs
(module bytecode, the lazy ``numpy.random`` import on the virq-jitter
path) don't land inside the measured window -- the figure tracks the
steady-state engine, not interpreter start-up.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

or as part of the bench suite (``make bench-smoke`` / ``pytest
benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import time

from repro import report, scenarios, trace
from repro.net.packet import WIRE_STATS
from repro.workloads import netperf
from repro.xen.event_channel import NOTIFY_STATS

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"

#: fields copied from a legacy (single-payload) BENCH_engine.json when
#: converting it into the first history entry.
_LEGACY_FIELDS = ("events", "sim_time", "wall_s", "events_per_sec", "result")


def _git_sha() -> str:
    """Short SHA of HEAD, or 'unknown' outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def _load_history(output: pathlib.Path) -> list[dict]:
    """Existing history entries (converting the pre-history format)."""
    if not output.exists():
        return []
    try:
        data = json.loads(output.read_text())
    except (ValueError, OSError):
        return []
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return data["history"]
    if isinstance(data, dict) and "events" in data:
        # Legacy format: the whole file was one run's payload.
        entry = {k: data[k] for k in _LEGACY_FIELDS if k in data}
        entry["sha"] = data.get("sha", "pre-history")
        return [entry]
    return []


def _detect_data_path(serialization: dict) -> str:
    """Which data path the measured workload actually exercised.

    The history had a silent gap: ``fifo_bytes_*``/``pool_*``/
    ``drain_batches`` recorded 0 because the default bench never warms
    XenLoop channels up (0.5 s simulated < the 5 s discovery period), so
    every message rode the xennet ring.  Annotating the entry makes
    the active path explicit instead of looking like broken counters.
    """
    return "fifo" if serialization.get("fifo_bytes_in", 0) > 0 else "xennet-ring"


def _append_entry(
    entry: dict, workload: dict, output: pathlib.Path, stats: dict
) -> list[dict]:
    history = _load_history(output)
    history.append(entry)
    output.write_text(
        json.dumps({"workload": workload, "history": history}, indent=2) + "\n"
    )
    print(report.format_engine_stats(stats))
    return history


def _result_fields(result) -> dict:
    return {
        "bytes_received": result.bytes_received,
        "mbps": result.mbps,
        "messages_sent": result.messages_sent,
        "drops": result.drops,
    }


def _measure_warm_start(
    scenario: str,
    msg_size: int,
    duration: float,
    data_path: str,
    *,
    reps: int,
    cold_wall: float,
    cold_result,
) -> dict:
    """The checkpoint/fork figure: build (+warmup) once, fork per rep.

    Each rep's wall is measured in the parent around the whole fork
    (fork + stream + result pickling included), so the speedup vs the
    cold wall (build + warmup + stream per rep) is honest.  The forked
    simulated result must be bit-identical to the cold one.
    """
    from repro.sim.snapshot import HAS_FORK, SimSnapshot

    if not HAS_FORK:
        return {"supported": False, "reason": "os.fork unavailable"}

    t0 = time.perf_counter()
    scn = scenarios.build(scenario)
    if data_path == "fifo":
        scn.warmup()
    snap = SimSnapshot.capture(scn, label=f"bench {scenario} warm-start")
    capture_wall = time.perf_counter() - t0

    def rep(cluster):
        WIRE_STATS.reset()  # child-process copies; the parent's are untouched
        NOTIFY_STATS.reset()
        return _result_fields(
            netperf.udp_stream(cluster, msg_size=msg_size, duration=duration)
        )

    warm_wall = None
    warm_result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = snap.fork(rep)
        wall = time.perf_counter() - t0
        if warm_wall is None or wall < warm_wall:
            warm_wall, warm_result = wall, res

    cold = _result_fields(cold_result)
    if warm_result != cold:
        raise RuntimeError(
            f"warm-start fork diverged from cold run: {warm_result} != {cold}"
        )
    speedup = round(cold_wall / warm_wall, 2) if warm_wall > 0 else None
    print(
        f"warm-start: cold {cold_wall * 1e3:.1f} ms -> fork "
        f"{warm_wall * 1e3:.1f} ms per rep ({speedup}x), results identical"
    )
    return {
        "supported": True,
        "cold_wall_s": round(cold_wall, 4),
        "capture_wall_s": round(capture_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "speedup": speedup,
        "identical": True,
    }


def run(
    scenario: str = "xenloop",
    msg_size: int = 4096,
    duration: float = 0.5,
    output: pathlib.Path = DEFAULT_OUTPUT,
    reps: int = 3,
    data_path: str = "auto",
    warm_start: bool = False,
) -> dict:
    """Run the fixed workload, print and append the engine stats.

    The workload is deterministic, so every rep simulates the identical
    event stream; the recorded wall-clock is the best of ``reps`` runs
    (min-of-N, the standard way to strip scheduler noise from a
    throughput figure on a shared machine).  Returns the history entry
    recorded for this run.

    ``data_path="fifo"`` warms the XenLoop channels up inside the timed
    region (build + warmup + stream) so the measured traffic rides the
    shared-FIFO path; serialization/notify counters are reset after the
    warmup, so they describe the stream only.  The default leaves the
    workload on the xennet ring and annotates the entry accordingly.

    ``warm_start=True`` additionally measures the checkpoint/fork mode:
    the scenario is built (and, on the fifo path, warmed) ONCE, captured
    as a :class:`~repro.sim.snapshot.SimSnapshot`, and each rep forks
    the snapshot and runs only the stream.  The forked result is checked
    bit-identical to the cold result, and the entry gains a
    ``warm_start`` block with both walls and the measured speedup; the
    primary ``wall_s`` stays the cold figure so the history (and the
    regression gate) keeps one consistent meaning.
    """
    # Untimed warmup pass: a short run of the same workload on a throwaway
    # scenario triggers every lazy import and warms the interpreter.  The
    # timed runs below build a FRESH scenario with the same seed, so the
    # simulated results are unaffected.
    warm = scenarios.build(scenario)
    if data_path == "fifo":
        warm.warmup()
    netperf.udp_stream(warm, msg_size=msg_size, duration=0.01)

    best = None
    for _ in range(max(1, reps)):
        WIRE_STATS.reset()  # count serialization work for this rep only
        NOTIFY_STATS.reset()  # and notify/suppression work likewise
        t0 = time.perf_counter()
        scn = scenarios.build(scenario)
        if data_path == "fifo":
            scn.warmup()
            WIRE_STATS.reset()
            NOTIFY_STATS.reset()
        result = netperf.udp_stream(scn, msg_size=msg_size, duration=duration)
        wall = time.perf_counter() - t0
        rep_stats = trace.engine_stats(scn.sim, wall_s=wall)
        if best is None or wall < best[0]:
            best = (wall, rep_stats, result)
    _wall, stats, result = best
    entry = {
        "sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "reps": max(1, reps),
        "data_path": _detect_data_path(stats["serialization"]),
        "events": stats["events"],
        "sim_time": stats["sim_time"],
        "wall_s": round(stats["wall_s"], 4),
        "events_per_sec": round(stats["events_per_sec"], 1),
        "result": {
            "bytes_received": result.bytes_received,
            "mbps": result.mbps,
            "messages_sent": result.messages_sent,
            "drops": result.drops,
        },
        "serialization": stats["serialization"],
        "notify": stats["notify"],
    }
    if data_path == "fifo" and entry["data_path"] != "fifo":
        raise RuntimeError("fifo bench variant did not exercise the FIFO path")

    if warm_start:
        entry["warm_start"] = _measure_warm_start(
            scenario, msg_size, duration, data_path,
            reps=max(1, reps), cold_wall=_wall, cold_result=result,
        )
        stats["warm_start"] = entry["warm_start"]
    workload = {"scenario": scenario, "msg_size": msg_size, "duration": duration}
    history = _append_entry(entry, workload, output, stats)
    print(f"simulated: {result.mbps:,.1f} Mbit/s, {result.drops} drops")
    print(f"wrote {output} ({len(history)} history entries)")
    return entry


def run_sharded_bench(
    shards: int = 2,
    machines: int = 2,
    msg_size: int = 4096,
    duration: float = 0.5,
    output: pathlib.Path = DEFAULT_OUTPUT,
    reps: int = 3,
) -> dict:
    """Sharded scaling bench: the per-machine PDES mode of
    :mod:`repro.sim.pdes` on a grid of ``machines`` Xen machines, each
    running its own co-resident ``udp_stream`` pair.

    ``shards`` is 1 (single worker, plain build -- the scaling baseline)
    or ``machines``.  Wall-clock is measured in the parent around the
    whole :func:`~repro.sim.pdes.run_sharded` call, fork+build included,
    so the 1-shard and N-shard figures pay the same fixed costs and
    their ratio is an honest speedup.  The entry records the shard
    count, machine count, and null-message counters next to the merged
    engine stats.
    """
    from repro.sim import pdes

    spec = pdes.bench_grid_spec(machines, 2, msg_size, duration)
    # Untimed warmup: fork/import/build once on a short variant.
    pdes.run_sharded(pdes.bench_grid_spec(machines, 2, msg_size, 0.01), shards=shards)

    best = None
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        sharded = pdes.run_sharded(spec, shards=shards)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, sharded)
    wall, sharded = best
    stats = dict(sharded.stats)
    stats["wall_s"] = wall
    stats["events_per_sec"] = stats["events"] / wall if wall > 0 else 0.0
    agg = {"bytes_received": 0, "mbps": 0.0, "messages_sent": 0, "drops": 0}
    for res in sharded.results:
        for key in agg:
            agg[key] += res["result"][key]
    entry = {
        "sha": _git_sha(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "reps": max(1, reps),
        "shards": shards,
        "machines": machines,
        "data_path": _detect_data_path(stats["serialization"]),
        "events": stats["events"],
        "sim_time": stats["sim_time"],
        "wall_s": round(wall, 4),
        "events_per_sec": round(stats["events_per_sec"], 1),
        "result": agg,
        "pdes": stats["pdes"],
        "serialization": stats["serialization"],
        "notify": stats["notify"],
    }
    workload = {
        "scenario": spec.name,
        "msg_size": msg_size,
        "duration": duration,
        "shards": shards,
    }
    history = _append_entry(entry, workload, output, stats)
    print(f"simulated: {agg['mbps']:,.1f} Mbit/s total, {agg['drops']} drops")
    baseline = next(
        (
            e
            for e in reversed(history[:-1])
            if e.get("shards") == 1
            and e.get("machines") == machines
            and e.get("data_path") == entry["data_path"]
        ),
        None,
    )
    if shards > 1 and baseline is not None:
        speedup = entry["events_per_sec"] / baseline["events_per_sec"]
        print(
            f"speedup vs 1-shard baseline ({baseline['sha']}): {speedup:.2f}x "
            f"at {shards} shards"
        )
    print(f"wrote {output} ({len(history)} history entries)")
    return entry


def test_engine_throughput(run_once, benchmark):
    entry = run_once(run)
    benchmark.extra_info["events"] = entry["events"]
    benchmark.extra_info["events_per_sec"] = entry["events_per_sec"]
    benchmark.extra_info["wall_s"] = entry["wall_s"]
    assert entry["events"] > 0
    assert entry["result"]["bytes_received"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="xenloop")
    parser.add_argument("--msg-size", type=int, default=4096)
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--reps", type=int, default=3, help="timed reps; best wall-clock is recorded")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="0 (default): the classic single-simulator bench; N>=1: the "
        "sharded multi-machine scaling bench with N workers (1 or --machines)",
    )
    parser.add_argument(
        "--machines", type=int, default=2,
        help="machine count for the sharded bench grid (default: 2)",
    )
    parser.add_argument(
        "--data-path", choices=("auto", "fifo"), default="auto",
        help="'fifo' warms XenLoop channels up so the measured stream rides "
        "the shared-FIFO path (classic bench only)",
    )
    parser.add_argument(
        "--warm-start", action="store_true",
        help="also measure the checkpoint/fork mode (build once, fork per "
        "rep) and record the speedup in the entry (classic bench only)",
    )
    args = parser.parse_args()
    if args.shards > 0:
        if args.data_path != "auto":
            parser.error("--data-path is only supported on the classic bench (--shards 0)")
        if args.warm_start:
            parser.error("--warm-start is only supported on the classic bench (--shards 0)")
        run_sharded_bench(
            args.shards, args.machines, args.msg_size, args.duration,
            args.output, reps=args.reps,
        )
    else:
        run(
            args.scenario, args.msg_size, args.duration, args.output,
            reps=args.reps, data_path=args.data_path, warm_start=args.warm_start,
        )


if __name__ == "__main__":
    main()
