# Developer conveniences.  `make install` prefers a real editable install
# and falls back to a .pth path link when the environment lacks `wheel`
# (e.g. offline images).

PYTHON ?= python

.PHONY: install test bench bench-all bench-smoke fault-matrix examples clean

install:
	@$(PYTHON) -m pip install -e . 2>/dev/null || ( \
		echo "pip editable install unavailable; linking via .pth"; \
		echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro-dev.pth" )
	@$(PYTHON) -c "import repro; print('repro', repro.__version__, 'ready')"

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Full suite, fanned out over a process pool (one worker per bench
# file); merged summary lands in benchmarks/results/run_benches.json.
bench-all:
	PYTHONPATH=src $(PYTHON) tools/run_benches.py

# Quick perf pulse: engine events/sec (writes BENCH_engine.json at the
# repo root) plus one short table bench, so the perf trajectory is
# tracked without running the full bench suite.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_throughput.py
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_table3_latency.py --benchmark-only -s

# Fault-injection matrix: every {frame type x handshake phase x fault
# kind} cell must converge (exit nonzero when any cell leaks or hangs).
fault-matrix:
	PYTHONPATH=src $(PYTHON) -m repro faults

examples:
	@for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
