"""Regression tests for the soft-state leak fixes.

Two leaks fixed alongside the fault injector live at the net layer:

* the IPv4 reassembler used to age out stale fragment buffers only when
  a later datagram *completed*, so a host receiving nothing but
  incomplete flows accumulated buffers forever -- the purge now runs on
  EVERY fragment arrival;
* a timed-out ARP resolve used to leave its waiter event registered in
  ``NeighborCache._waiters``, growing the list without bound for
  never-resolving addresses -- each failed attempt now retracts it.
"""

from repro.net.addr import IPv4Addr
from repro.net.arp import ARP_RETRIES, ARP_TIMEOUT
from repro.net.ipv4 import FRAG_TIMEOUT, Reassembler

from tests.conftest import run_gen

from .test_ipv4_edges import make_fragment


class TestReassemblerPurgeOnAdd:
    def test_stale_buffer_purged_by_incomplete_fragment(self, sim):
        r = Reassembler(sim)
        assert r.add(make_fragment(sim, 21, 0, bytes(16), True)) is None
        assert r.pending == 1
        sim.run(until=sim.now + FRAG_TIMEOUT + 1)
        # A later fragment that does NOT complete a datagram must still
        # age the stale buffer out.  (The old lazy purge ran only on a
        # completed reassembly, so incomplete-only traffic leaked.)
        assert r.add(make_fragment(sim, 22, 0, bytes(16), True)) is None
        assert r.timed_out == 1
        assert r.pending == 1  # only the fresh buffer survives

    def test_fresh_buffers_survive_the_purge(self, sim):
        r = Reassembler(sim)
        assert r.add(make_fragment(sim, 23, 0, bytes(16), True)) is None
        sim.run(until=sim.now + FRAG_TIMEOUT / 2)
        assert r.add(make_fragment(sim, 24, 0, bytes(16), True)) is None
        assert r.timed_out == 0
        assert r.pending == 2


class TestArpWaiterRetraction:
    def test_failed_resolve_leaves_no_waiters(self, sim, lan):
        a, _b, _switch = lan
        mac = run_gen(sim, a.stack.arp.resolve(IPv4Addr("10.0.0.99")))
        assert mac is None
        assert a.stack.arp.failures == 1
        assert a.stack.arp.requests_sent == ARP_RETRIES
        assert a.stack.arp._waiters == {}
        # Total wall time matches the kernel-ish probe schedule.
        assert sim.now >= ARP_RETRIES * ARP_TIMEOUT

    def test_concurrent_failed_resolvers_all_retract(self, sim, lan):
        a, _b, _switch = lan
        results = []

        def resolve():
            mac = yield from a.stack.arp.resolve(IPv4Addr("10.0.0.88"))
            results.append(mac)

        sim.process(resolve(), name="resolver-1")
        sim.process(resolve(), name="resolver-2")
        sim.run(until=sim.now + ARP_RETRIES * ARP_TIMEOUT + 1.0)
        assert results == [None, None]
        assert a.stack.arp._waiters == {}

    def test_successful_resolve_leaves_no_waiters(self, sim, lan):
        a, b, _switch = lan
        mac = run_gen(sim, a.stack.arp.resolve(b.stack.ip))
        assert mac == b.stack.primary_device().mac
        assert a.stack.arp._waiters == {}
