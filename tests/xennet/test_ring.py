"""SlottedRing slot accounting and backpressure."""

import pytest

from repro.xennet.ring import RingFullError, SlottedRing


class TestSlots:
    def test_capacity_enforced(self, sim):
        ring = SlottedRing(sim, 2)
        ring.push_request("a")
        ring.push_request("b")
        with pytest.raises(RingFullError):
            ring.push_request("c")

    def test_slot_held_until_response_consumed(self, sim):
        ring = SlottedRing(sim, 1)
        ring.push_request("a")
        assert ring.pop_request() == "a"
        assert ring.free_slots == 0  # still in service
        ring.push_response("done")
        assert ring.free_slots == 0  # response not yet consumed
        assert ring.pop_response() == "done"
        assert ring.free_slots == 1

    def test_fifo_order(self, sim):
        ring = SlottedRing(sim, 8)
        for i in range(5):
            ring.push_request(i)
        assert [ring.pop_request() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_pops_return_none(self, sim):
        ring = SlottedRing(sim, 4)
        assert ring.pop_request() is None
        assert ring.pop_response() is None

    def test_size_validation(self, sim):
        with pytest.raises(ValueError):
            SlottedRing(sim, 0)


class TestWaitSpace:
    def test_immediate_when_free(self, sim):
        ring = SlottedRing(sim, 2)
        ev = ring.wait_space()
        assert ev.triggered

    def test_fires_on_response_consumption(self, sim):
        ring = SlottedRing(sim, 1)
        ring.push_request("a")
        ev = ring.wait_space()
        assert not ev.triggered
        ring.pop_request()
        ring.push_response("r")
        ring.pop_response()
        sim.run()
        assert ev.processed

    def test_one_waiter_per_freed_slot(self, sim):
        ring = SlottedRing(sim, 1)
        ring.push_request("a")
        ev1 = ring.wait_space()
        ev2 = ring.wait_space()
        ring.pop_request()
        ring.push_response("r")
        ring.pop_response()
        sim.run()
        assert ev1.processed and not ev2.triggered
