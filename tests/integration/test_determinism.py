"""Reproducibility: same seed => identical results, bit for bit."""

import pytest

from repro import scenarios
from repro.workloads import netperf, pingpong

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


def measure(seed):
    scn = scenarios.xenloop(FAST, seed=seed)
    scn.warmup(max_wait=10.0)
    ping = pingpong.flood_ping(scn, count=50)
    rr = netperf.tcp_rr(scn, duration=0.02)
    return ping.rtt_us, ping.min_us, ping.max_us, rr.trans_per_sec, rr.p99_us


class TestDeterminism:
    def test_same_seed_identical_results(self):
        assert measure(seed=3) == measure(seed=3)

    def test_different_seed_different_jitter(self):
        a = measure(seed=1)
        b = measure(seed=2)
        # means are close (same model) but the jittered extremes differ
        assert a != b
        assert a[0] == pytest.approx(b[0], rel=0.2)

    def test_default_seed_stable(self):
        assert measure(seed=0) == measure(seed=0)

    def test_zero_jitter_removes_all_randomness(self):
        costs = FAST.replace(virq_jitter=0.0)

        def run(seed):
            scn = scenarios.xenloop(costs, seed=seed)
            scn.warmup(max_wait=10.0)
            return pingpong.flood_ping(scn, count=30).rtt_us

        # with jitter off, even DIFFERENT seeds give identical timings
        assert run(seed=1) == run(seed=99)
