"""Packets and protocol headers -- the simulation's ``struct sk_buff``.

Headers are small dataclasses with real binary serialization
(``to_bytes`` / ``from_bytes``); the XenLoop FIFO carries genuine
serialized layer-3 packets, so anything that goes through the channel
is round-tripped through its wire format.  This is what lets the test
suite assert byte-exact delivery through the shared-memory path.

Conventions:

* A packet with ``ip.frag_offset > 0`` or ``ip.more_frags`` is an IP
  fragment: ``l4 is None`` and ``payload`` is the raw slice of the
  original layer-3 payload (the first fragment's slice starts with the
  serialized L4 header, as on a real wire).
* ``meta`` is simulation-side bookkeeping (timestamps, path taken) and
  is never serialized.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Union

from repro.net.addr import IPv4Addr, MacAddr
from repro.net.ethernet import (
    ETH_HEADER_LEN,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
)

__all__ = [
    "ArpHeader",
    "EthHeader",
    "IPv4Header",
    "IcmpHeader",
    "Packet",
    "TcpHeader",
    "UdpHeader",
    "TCP_SYN",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
]

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_PSH = 0x08
TCP_ACK = 0x10


@dataclass
class EthHeader:
    """Ethernet II header (14 bytes on the wire)."""
    dst: MacAddr
    src: MacAddr
    ethertype: int

    HEADER_LEN = ETH_HEADER_LEN
    _FMT = "!6s6sH"

    def to_bytes(self) -> bytes:
        """Serialize to the 14-byte wire format."""
        return struct.pack(self._FMT, self.dst.to_bytes(), self.src.to_bytes(), self.ethertype)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthHeader":
        """Parse the 14-byte wire format."""
        dst, src, ethertype = struct.unpack_from(cls._FMT, data)
        return cls(MacAddr.from_bytes(dst), MacAddr.from_bytes(src), ethertype)


@dataclass
class ArpHeader:
    """Just enough of ARP for IPv4-over-Ethernet resolution."""

    op: int  # 1 = request, 2 = reply
    sender_mac: MacAddr
    sender_ip: IPv4Addr
    target_mac: MacAddr
    target_ip: IPv4Addr

    HEADER_LEN = 28
    _FMT = "!H6s4s6s4s"

    OP_REQUEST = 1
    OP_REPLY = 2

    def to_bytes(self) -> bytes:
        """Serialize to the 28-byte wire format."""
        return struct.pack(
            self._FMT,
            self.op,
            self.sender_mac.to_bytes(),
            self.sender_ip.to_bytes(),
            self.target_mac.to_bytes(),
            self.target_ip.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArpHeader":
        """Parse the 28-byte wire format."""
        op, smac, sip, tmac, tip = struct.unpack_from(cls._FMT, data)
        return cls(
            op,
            MacAddr.from_bytes(smac),
            IPv4Addr.from_bytes(sip),
            MacAddr.from_bytes(tmac),
            IPv4Addr.from_bytes(tip),
        )


@dataclass
class IPv4Header:
    """IPv4 header (20 bytes; version/TOS/checksum carried as padding)."""
    src: IPv4Addr
    dst: IPv4Addr
    proto: int
    ident: int = 0
    #: fragment offset in BYTES (the real header stores 8-byte units;
    #: serialization converts, and offsets must be 8-byte aligned).
    frag_offset: int = 0
    more_frags: bool = False
    ttl: int = 64
    #: total length of the L3 packet (header + payload); filled by the
    #: IP layer on transmit.
    total_length: int = 0

    HEADER_LEN = 20
    # version/IHL/TOS and checksum are carried as padding (4x total with
    # the two trailing bytes): 2+2+2+1+1+4+4+4 = 20 bytes.
    _FMT = "!HHHBB4s4s4x"

    def to_bytes(self) -> bytes:
        """Serialize to the 20-byte wire format (offset in 8-byte units)."""
        if self.frag_offset % 8:
            raise ValueError(f"fragment offset {self.frag_offset} not 8-byte aligned")
        frag_word = (self.frag_offset // 8) | (0x2000 if self.more_frags else 0)
        return struct.pack(
            self._FMT,
            self.total_length,
            self.ident,
            frag_word,
            self.ttl,
            self.proto,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Header":
        """Parse the 20-byte wire format."""
        total_length, ident, frag_word, ttl, proto, src, dst = struct.unpack_from(cls._FMT, data)
        return cls(
            src=IPv4Addr.from_bytes(src),
            dst=IPv4Addr.from_bytes(dst),
            proto=proto,
            ident=ident,
            frag_offset=(frag_word & 0x1FFF) * 8,
            more_frags=bool(frag_word & 0x2000),
            ttl=ttl,
            total_length=total_length,
        )


@dataclass
class UdpHeader:
    """UDP header (8 bytes; checksum carried as padding)."""
    sport: int
    dport: int
    length: int = 0  # UDP header + payload

    HEADER_LEN = 8
    _FMT = "!HHH2x"

    def to_bytes(self) -> bytes:
        """Serialize to the 8-byte wire format."""
        return struct.pack(self._FMT, self.sport, self.dport, self.length)

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpHeader":
        """Parse the 8-byte wire format."""
        sport, dport, length = struct.unpack_from(cls._FMT, data)
        return cls(sport, dport, length)


@dataclass
class TcpHeader:
    """TCP header (20 bytes, no options; window is scaled, see tcp.py)."""
    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    HEADER_LEN = 20
    _FMT = "!HHIIBBH4x"

    def to_bytes(self) -> bytes:
        """Serialize to the 20-byte wire format (seq/ack mod 2^32)."""
        return struct.pack(
            self._FMT,
            self.sport,
            self.dport,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            0x50,  # data offset
            self.flags,
            min(self.window, 0xFFFF),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpHeader":
        """Parse the 20-byte wire format."""
        sport, dport, seq, ack, _off, flags, window = struct.unpack_from(cls._FMT, data)
        return cls(sport, dport, seq, ack, flags, window)


@dataclass
class IcmpHeader:
    """ICMP echo header (8 bytes)."""
    icmp_type: int  # 8 = echo request, 0 = echo reply
    code: int = 0
    ident: int = 0
    seq: int = 0

    HEADER_LEN = 8
    _FMT = "!BBxxHH"

    ECHO_REQUEST = 8
    ECHO_REPLY = 0

    def to_bytes(self) -> bytes:
        """Serialize to the 8-byte wire format."""
        return struct.pack(self._FMT, self.icmp_type, self.code, self.ident, self.seq)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IcmpHeader":
        """Parse the 8-byte wire format."""
        icmp_type, code, ident, seq = struct.unpack_from(cls._FMT, data)
        return cls(icmp_type, code, ident, seq)


L4Header = Union[UdpHeader, TcpHeader, IcmpHeader]

_L4_BY_PROTO = {
    IPPROTO_UDP: UdpHeader,
    IPPROTO_TCP: TcpHeader,
    IPPROTO_ICMP: IcmpHeader,
}


class Packet:
    """An in-flight network packet (sk_buff analogue)."""

    __slots__ = ("eth", "ip", "l4", "payload", "meta")

    def __init__(
        self,
        payload: bytes = b"",
        l4: Optional[L4Header] = None,
        ip: Optional[IPv4Header] = None,
        eth: Optional[EthHeader] = None,
        meta: Optional[dict[str, Any]] = None,
    ):
        self.payload = payload
        self.l4 = l4
        self.ip = ip
        self.eth = eth
        self.meta: dict[str, Any] = meta if meta is not None else {}

    # -- sizes ----------------------------------------------------------
    @property
    def l4_len(self) -> int:
        """L4 header + application payload."""
        hdr = self.l4.HEADER_LEN if self.l4 is not None else 0
        return hdr + len(self.payload)

    @property
    def l3_len(self) -> int:
        """Full layer-3 packet length (IP header included when present)."""
        hdr = IPv4Header.HEADER_LEN if self.ip is not None else 0
        return hdr + self.l4_len

    @property
    def wire_len(self) -> int:
        """Frame length on an Ethernet wire."""
        return ETH_HEADER_LEN + self.l3_len

    @property
    def is_fragment(self) -> bool:
        """True for IP fragments (offset > 0 or more-fragments set)."""
        return self.ip is not None and (self.ip.frag_offset > 0 or self.ip.more_frags)

    # -- serialization ----------------------------------------------------
    def l3_payload_bytes(self) -> bytes:
        """The bytes that follow the IP header on the wire."""
        if self.l4 is not None:
            return self.l4.to_bytes() + self.payload
        return self.payload

    def to_l3_bytes(self) -> bytes:
        """Serialize from the IP header down (what the XenLoop FIFO carries)."""
        if self.ip is None:
            raise ValueError("packet has no IP header")
        body = self.l3_payload_bytes()
        hdr = replace(self.ip, total_length=IPv4Header.HEADER_LEN + len(body))
        return hdr.to_bytes() + body

    @classmethod
    def from_l3_bytes(cls, data: bytes) -> "Packet":
        """Parse a layer-3 packet serialized by :meth:`to_l3_bytes`."""
        if len(data) < IPv4Header.HEADER_LEN:
            raise ValueError(f"short IP packet: {len(data)} bytes")
        ip = IPv4Header.from_bytes(data)
        if ip.total_length != len(data):
            raise ValueError(f"IP length field {ip.total_length} != actual {len(data)}")
        body = data[IPv4Header.HEADER_LEN :]
        if ip.frag_offset > 0 or ip.more_frags:
            return cls(payload=body, ip=ip)
        l4_cls = _L4_BY_PROTO.get(ip.proto)
        if l4_cls is None:
            return cls(payload=body, ip=ip)
        l4 = l4_cls.from_bytes(body)
        return cls(payload=body[l4_cls.HEADER_LEN :], l4=l4, ip=ip)

    def clone(self) -> "Packet":
        """Shallow-ish copy: headers copied, payload shared (immutable)."""
        return Packet(
            payload=self.payload,
            l4=replace(self.l4) if self.l4 is not None else None,
            ip=replace(self.ip) if self.ip is not None else None,
            eth=replace(self.eth) if self.eth is not None else None,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.eth:
            parts.append(f"eth {self.eth.src}->{self.eth.dst} t={self.eth.ethertype:#06x}")
        if self.ip:
            parts.append(f"ip {self.ip.src}->{self.ip.dst} p={self.ip.proto}")
        if self.l4:
            parts.append(type(self.l4).__name__)
        parts.append(f"{len(self.payload)}B")
        return f"<Packet {' | '.join(parts)}>"
