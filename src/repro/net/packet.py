"""Packets and protocol headers -- the simulation's ``struct sk_buff``.

Headers are small dataclasses with real binary serialization
(``to_bytes`` / ``from_bytes``); the XenLoop FIFO carries genuine
serialized layer-3 packets, so anything that goes through the channel
is round-tripped through its wire format.  This is what lets the test
suite assert byte-exact delivery through the shared-memory path.

Wire-format caching (see docs/architecture.md, "Packet data path"):

* every header keeps its packed bytes alongside a version counter that
  a custom ``__setattr__`` bumps on field mutation, so ``to_bytes`` is
  a struct.pack at most once per header *state*;
* a :class:`Packet` caches its full ``to_l3_bytes`` output, keyed on
  the header version counters, so a packet forwarded unchanged through
  channel -> FIFO -> receive serializes at most once;
* ``from_l3_bytes`` parses only the IP header eagerly and keeps the
  raw L3 bytes; the L4 header and payload materialize on first
  attribute access.  Pure-forwarding hops that only look at addresses
  and lengths never parse (or re-pack) anything above L3.

The caches assume ``payload`` is immutable ``bytes``: replacing any of
``ip``/``l4``/``payload`` goes through a property setter that
invalidates the cache, and header field assignment bumps the header's
version counter, but in-place mutation of a ``bytearray`` payload would
be invisible.  All producers in this codebase use ``bytes``.

Conventions:

* A packet with ``ip.frag_offset > 0`` or ``ip.more_frags`` is an IP
  fragment: ``l4 is None`` and ``payload`` is the raw slice of the
  original layer-3 payload (the first fragment's slice starts with the
  serialized L4 header, as on a real wire).
* ``meta`` is simulation-side bookkeeping (timestamps, path taken) and
  is never serialized.
"""

from __future__ import annotations

import dataclasses
import struct
from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.net.addr import IPv4Addr, MacAddr
from repro.net.ethernet import (
    ETH_HEADER_LEN,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
)

__all__ = [
    "ArpHeader",
    "EthHeader",
    "IPv4Header",
    "IcmpHeader",
    "Packet",
    "TcpHeader",
    "UdpHeader",
    "WIRE_STATS",
    "WireStats",
    "TCP_SYN",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_PSH",
    "TCP_RST",
]

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


class WireStats:
    """Process-global serialization and copy counters.

    Exposed through :func:`repro.trace.engine_stats` /
    :func:`repro.report.format_engine_stats` so the zero-copy data path
    is observable.  ``reset()`` before a measured run.
    """

    __slots__ = (
        "l3_cache_hits",
        "l3_cache_misses",
        "header_cache_hits",
        "header_cache_misses",
        "lazy_l4_parses",
        "bytes_packed",
        "bytes_parsed",
        "fifo_bytes_in",
        "fifo_bytes_out",
        "pool_hits",
        "pool_misses",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (call before a measured run)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict:
        """Counters as a plain dict (what engine_stats embeds)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def l3_hit_rate(self) -> float:
        """Fraction of to_l3_bytes/to_l3_parts calls served from cache."""
        total = self.l3_cache_hits + self.l3_cache_misses
        return self.l3_cache_hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WireStats {self.snapshot()}>"


#: The singleton every header/packet/FIFO instance counts into.
WIRE_STATS = WireStats()


#: per-class default field values for :meth:`_CachedHeader.fresh`,
#: materialized lazily on first use.
_HEADER_DEFAULTS: dict[type, dict] = {}


class _CachedHeader:
    """Mixin for wire headers: version-counted fields + packed cache.

    Field assignment (including the dataclass ``__init__``) goes through
    ``__setattr__``, which bumps ``_v`` and drops ``_packed``; subclasses'
    ``to_bytes`` store the packed bytes back via ``__dict__`` so the
    cache fill itself does not count as a mutation.  ``_v``/``_packed``
    live only in the instance dict -- they are not dataclass fields, so
    ``repr``/``eq``/``replace`` are unaffected.
    """

    def __setattr__(self, name: str, value: Any) -> None:
        d = self.__dict__
        d[name] = value
        d["_packed"] = None
        d["_v"] = d.get("_v", 0) + 1

    def _cached(self) -> Optional[bytes]:
        packed = self.__dict__.get("_packed")
        if packed is not None:
            WIRE_STATS.header_cache_hits += 1
        return packed

    def _fill(self, packed: bytes) -> bytes:
        self.__dict__["_packed"] = packed
        WIRE_STATS.header_cache_misses += 1
        WIRE_STATS.bytes_packed += len(packed)
        return packed

    @property
    def wire_version(self) -> int:
        """Monotonic counter bumped on every field assignment."""
        return self.__dict__.get("_v", 0)

    @classmethod
    def fresh(cls, **fields):
        """Construct a header bypassing the per-field ``__setattr__``.

        Hot-path allocator: equivalent to calling the dataclass
        ``__init__`` (same defaults, no ``__post_init__`` on any of
        these classes) but fills the instance dict with two bulk
        updates instead of one version-bumping ``__setattr__`` per
        field.  Required fields missing from ``fields`` surface as
        ``AttributeError`` on first access rather than ``TypeError``
        here, so this is for internal call sites only.
        """
        base = _HEADER_DEFAULTS.get(cls)
        if base is None:
            base = _HEADER_DEFAULTS[cls] = {
                f.name: f.default
                for f in dataclasses.fields(cls)
                if f.default is not dataclasses.MISSING
            }
        hdr = cls.__new__(cls)
        d = hdr.__dict__
        d.update(base)
        d.update(fields)
        d["_packed"] = None
        d["_v"] = 1
        return hdr

    def replaced(self, **changes):
        """Copy with fields changed -- a fast ``dataclasses.replace``.

        Equivalent for these headers (plain field dataclasses, no
        ``__post_init__``) but copies the instance dict wholesale instead
        of re-running ``__init__`` through ``__setattr__`` field by
        field.  Sits on the fragmentation/reassembly path.  The copy
        starts with a fresh version counter and no packed cache.
        """
        clone = self.__class__.__new__(self.__class__)
        d = clone.__dict__
        d.update(self.__dict__)
        if changes:
            d.update(changes)
            d["_packed"] = None
            d["_v"] = 1
        # else: identical fields -- the inherited packed cache stays valid.
        return clone


@dataclass
class EthHeader(_CachedHeader):
    """Ethernet II header (14 bytes on the wire)."""
    dst: MacAddr
    src: MacAddr
    ethertype: int

    HEADER_LEN = ETH_HEADER_LEN
    _FMT = "!6s6sH"

    def to_bytes(self) -> bytes:
        """Serialize to the 14-byte wire format."""
        packed = self._cached()
        if packed is not None:
            return packed
        return self._fill(
            struct.pack(self._FMT, self.dst.to_bytes(), self.src.to_bytes(), self.ethertype)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthHeader":
        """Parse the 14-byte wire format."""
        dst, src, ethertype = struct.unpack_from(cls._FMT, data)
        return cls.fresh(
            dst=MacAddr.from_bytes(dst), src=MacAddr.from_bytes(src), ethertype=ethertype
        )


@dataclass
class ArpHeader(_CachedHeader):
    """Just enough of ARP for IPv4-over-Ethernet resolution."""

    op: int  # 1 = request, 2 = reply
    sender_mac: MacAddr
    sender_ip: IPv4Addr
    target_mac: MacAddr
    target_ip: IPv4Addr

    HEADER_LEN = 28
    _FMT = "!H6s4s6s4s"

    OP_REQUEST = 1
    OP_REPLY = 2

    def to_bytes(self) -> bytes:
        """Serialize to the 28-byte wire format."""
        packed = self._cached()
        if packed is not None:
            return packed
        return self._fill(
            struct.pack(
                self._FMT,
                self.op,
                self.sender_mac.to_bytes(),
                self.sender_ip.to_bytes(),
                self.target_mac.to_bytes(),
                self.target_ip.to_bytes(),
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArpHeader":
        """Parse the 28-byte wire format."""
        op, smac, sip, tmac, tip = struct.unpack_from(cls._FMT, data)
        return cls(
            op,
            MacAddr.from_bytes(smac),
            IPv4Addr.from_bytes(sip),
            MacAddr.from_bytes(tmac),
            IPv4Addr.from_bytes(tip),
        )


@dataclass
class IPv4Header(_CachedHeader):
    """IPv4 header (20 bytes; version/TOS/checksum carried as padding)."""
    src: IPv4Addr
    dst: IPv4Addr
    proto: int
    ident: int = 0
    #: fragment offset in BYTES (the real header stores 8-byte units;
    #: serialization converts, and offsets must be 8-byte aligned).
    frag_offset: int = 0
    more_frags: bool = False
    ttl: int = 64
    #: total length of the L3 packet (header + payload); filled by the
    #: IP layer on transmit.
    total_length: int = 0

    HEADER_LEN = 20
    # version/IHL/TOS and checksum are carried as padding (4x total with
    # the two trailing bytes): 2+2+2+1+1+4+4+4 = 20 bytes.
    _FMT = "!HHHBB4s4s4x"

    def to_bytes(self) -> bytes:
        """Serialize to the 20-byte wire format (offset in 8-byte units)."""
        packed = self._cached()
        if packed is not None:
            return packed
        if self.frag_offset % 8:
            raise ValueError(f"fragment offset {self.frag_offset} not 8-byte aligned")
        frag_word = (self.frag_offset // 8) | (0x2000 if self.more_frags else 0)
        return self._fill(
            struct.pack(
                self._FMT,
                self.total_length,
                self.ident,
                frag_word,
                self.ttl,
                self.proto,
                self.src.to_bytes(),
                self.dst.to_bytes(),
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Header":
        """Parse the 20-byte wire format."""
        total_length, ident, frag_word, ttl, proto, src, dst = struct.unpack_from(cls._FMT, data)
        return cls.fresh(
            src=IPv4Addr.from_bytes(src),
            dst=IPv4Addr.from_bytes(dst),
            proto=proto,
            ident=ident,
            frag_offset=(frag_word & 0x1FFF) * 8,
            more_frags=bool(frag_word & 0x2000),
            ttl=ttl,
            total_length=total_length,
        )


@dataclass
class UdpHeader(_CachedHeader):
    """UDP header (8 bytes; checksum carried as padding)."""
    sport: int
    dport: int
    length: int = 0  # UDP header + payload

    HEADER_LEN = 8
    _FMT = "!HHH2x"

    def to_bytes(self) -> bytes:
        """Serialize to the 8-byte wire format."""
        packed = self._cached()
        if packed is not None:
            return packed
        return self._fill(struct.pack(self._FMT, self.sport, self.dport, self.length))

    @classmethod
    def from_bytes(cls, data: bytes) -> "UdpHeader":
        """Parse the 8-byte wire format."""
        sport, dport, length = struct.unpack_from(cls._FMT, data)
        return cls.fresh(sport=sport, dport=dport, length=length)


@dataclass
class TcpHeader(_CachedHeader):
    """TCP header (20 bytes, no options; window is scaled, see tcp.py)."""
    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535

    HEADER_LEN = 20
    _FMT = "!HHIIBBH4x"

    def to_bytes(self) -> bytes:
        """Serialize to the 20-byte wire format (seq/ack mod 2^32)."""
        packed = self._cached()
        if packed is not None:
            return packed
        return self._fill(
            struct.pack(
                self._FMT,
                self.sport,
                self.dport,
                self.seq & 0xFFFFFFFF,
                self.ack & 0xFFFFFFFF,
                0x50,  # data offset
                self.flags,
                min(self.window, 0xFFFF),
            )
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpHeader":
        """Parse the 20-byte wire format."""
        sport, dport, seq, ack, _off, flags, window = struct.unpack_from(cls._FMT, data)
        return cls.fresh(sport=sport, dport=dport, seq=seq, ack=ack, flags=flags, window=window)


@dataclass
class IcmpHeader(_CachedHeader):
    """ICMP echo header (8 bytes)."""
    icmp_type: int  # 8 = echo request, 0 = echo reply
    code: int = 0
    ident: int = 0
    seq: int = 0

    HEADER_LEN = 8
    _FMT = "!BBxxHH"

    ECHO_REQUEST = 8
    ECHO_REPLY = 0

    def to_bytes(self) -> bytes:
        """Serialize to the 8-byte wire format."""
        packed = self._cached()
        if packed is not None:
            return packed
        return self._fill(struct.pack(self._FMT, self.icmp_type, self.code, self.ident, self.seq))

    @classmethod
    def from_bytes(cls, data: bytes) -> "IcmpHeader":
        """Parse the 8-byte wire format."""
        icmp_type, code, ident, seq = struct.unpack_from(cls._FMT, data)
        return cls(icmp_type, code, ident, seq)


L4Header = Union[UdpHeader, TcpHeader, IcmpHeader]

_L4_BY_PROTO = {
    IPPROTO_UDP: UdpHeader,
    IPPROTO_TCP: TcpHeader,
    IPPROTO_ICMP: IcmpHeader,
}

_IP_HLEN = IPv4Header.HEADER_LEN

#: sentinels for the l4 slot of the serialization-cache key.
_NO_L4 = -1  # cached with l4 is None (fragment / unknown proto)
_LAZY_BODY = -2  # cached with the body still unparsed (raw view held)


class Packet:
    """An in-flight network packet (sk_buff analogue).

    ``ip``/``l4``/``payload`` are properties: the setters invalidate the
    cached wire format, and the ``l4``/``payload`` getters materialize a
    lazily-parsed body (see :meth:`from_l3_bytes`) on first access.
    """

    __slots__ = ("eth", "meta", "_ip", "_l4", "_payload", "_raw", "_l3c", "_l3ip_v", "_l3l4_v")

    def __init__(
        self,
        payload: bytes = b"",
        l4: Optional[L4Header] = None,
        ip: Optional[IPv4Header] = None,
        eth: Optional[EthHeader] = None,
        meta: Optional[dict[str, Any]] = None,
    ):
        self._payload = payload
        self._l4 = l4
        self._ip = ip
        self.eth = eth
        self.meta: dict[str, Any] = meta if meta is not None else {}
        self._raw = None
        self._l3c = None
        self._l3ip_v = _NO_L4
        self._l3l4_v = _NO_L4

    # -- cached/lazy field access --------------------------------------
    @property
    def ip(self) -> Optional[IPv4Header]:
        """The IPv4 header (never lazy; parsed eagerly on receive)."""
        return self._ip

    @ip.setter
    def ip(self, value: Optional[IPv4Header]) -> None:
        self._ip = value
        self._l3c = None

    @property
    def l4(self) -> Optional[L4Header]:
        """The transport header; triggers the lazy body parse."""
        if self._raw is not None:
            self._parse_body()
        return self._l4

    @l4.setter
    def l4(self, value: Optional[L4Header]) -> None:
        if self._raw is not None:
            self._parse_body()
        self._l4 = value
        self._l3c = None

    @property
    def payload(self) -> bytes:
        """The application payload; triggers the lazy body parse."""
        if self._raw is not None:
            self._parse_body()
        return self._payload

    @payload.setter
    def payload(self, value: bytes) -> None:
        if self._raw is not None:
            self._parse_body()
        self._payload = value
        self._l3c = None

    def _parse_body(self) -> None:
        """Materialize l4/payload from the raw L3 bytes (once)."""
        raw = self._raw
        self._raw = None
        ip = self._ip
        WIRE_STATS.lazy_l4_parses += 1
        WIRE_STATS.bytes_parsed += len(raw) - _IP_HLEN
        if ip.frag_offset > 0 or ip.more_frags:
            self._payload = raw[_IP_HLEN:]
            l4_v = _NO_L4
        else:
            l4_cls = _L4_BY_PROTO.get(ip.proto)
            if l4_cls is None:
                self._payload = raw[_IP_HLEN:]
                l4_v = _NO_L4
            else:
                l4 = l4_cls.from_bytes(memoryview(raw)[_IP_HLEN:])
                self._l4 = l4
                self._payload = raw[_IP_HLEN + l4_cls.HEADER_LEN :]
                l4_v = l4.__dict__["_v"]
        # A read-only parse leaves the cached wire format valid: re-key
        # it from the lazy sentinel to the freshly parsed header state.
        if self._l3l4_v == _LAZY_BODY:
            self._l3l4_v = l4_v

    def _l3_cache_ok(self) -> bool:
        if self._l3c is None:
            return False
        ip = self._ip
        if ip is None or ip.__dict__["_v"] != self._l3ip_v:
            return False
        l4_v = self._l3l4_v
        if l4_v >= 0:
            # Replacing l4 clears the cache, so only in-place header
            # mutation can invalidate here -- caught by the version.
            return self._l4.__dict__["_v"] == l4_v
        return True  # _LAZY_BODY (unparsed) or _NO_L4 (l4 is None)

    # -- sizes ----------------------------------------------------------
    @property
    def l4_len(self) -> int:
        """L4 header + application payload (no body parse needed)."""
        raw = self._raw
        if raw is not None:
            return len(raw) - _IP_HLEN
        l4 = self._l4
        hdr = l4.HEADER_LEN if l4 is not None else 0
        return hdr + len(self._payload)

    @property
    def l3_len(self) -> int:
        """Full layer-3 packet length (IP header included when present)."""
        hdr = _IP_HLEN if self._ip is not None else 0
        return hdr + self.l4_len

    @property
    def wire_len(self) -> int:
        """Frame length on an Ethernet wire."""
        return ETH_HEADER_LEN + self.l3_len

    @property
    def is_fragment(self) -> bool:
        """True for IP fragments (offset > 0 or more-fragments set)."""
        ip = self._ip
        return ip is not None and (ip.frag_offset > 0 or ip.more_frags)

    # -- serialization ----------------------------------------------------
    def l3_payload_bytes(self) -> bytes:
        """The bytes that follow the IP header on the wire."""
        raw = self._raw
        if raw is not None:
            return raw[_IP_HLEN:]
        if self._l4 is not None:
            return self._l4.to_bytes() + self._payload
        return self._payload

    def _ip_header_bytes(self) -> tuple[bytes, int]:
        """(packed IP header with corrected total_length, body length)."""
        ip = self._ip
        raw = self._raw
        if raw is not None:
            body_len = len(raw) - _IP_HLEN
        else:
            l4 = self._l4
            body_len = (l4.HEADER_LEN if l4 is not None else 0) + len(self._payload)
        total = _IP_HLEN + body_len
        if ip.total_length == total:
            return ip.to_bytes(), body_len
        # Stale in-memory length: serialize a corrected copy, leaving
        # the live header untouched (matches the historical behaviour).
        return ip.replaced(total_length=total).to_bytes(), body_len

    def to_l3_bytes(self) -> bytes:
        """Serialize from the IP header down (what the XenLoop FIFO carries).

        The result is cached on the packet, keyed on the header version
        counters: an unchanged packet serializes at most once.
        """
        if self._l3_cache_ok():
            WIRE_STATS.l3_cache_hits += 1
            return self._l3c
        ip = self._ip
        if ip is None:
            raise ValueError("packet has no IP header")
        WIRE_STATS.l3_cache_misses += 1
        hdr_bytes, _body_len = self._ip_header_bytes()
        raw = self._raw
        if raw is not None:
            data = hdr_bytes + raw[_IP_HLEN:]
            l4_v = _LAZY_BODY
        else:
            l4 = self._l4
            if l4 is not None:
                data = hdr_bytes + l4.to_bytes() + self._payload
                l4_v = l4.__dict__["_v"]
            else:
                data = hdr_bytes + self._payload
                l4_v = _NO_L4
        self._l3c = data
        self._l3ip_v = ip.__dict__["_v"]
        self._l3l4_v = l4_v
        return data

    def to_l3_parts(self) -> tuple:
        """Wire format as a tuple of buffers (header(s), payload views).

        The scatter-gather send path: parts go straight into the FIFO
        ring via :meth:`repro.core.fifo.Fifo.push_vec` without ever being
        joined into one bytes object.  Returns the cached joined bytes as
        a single part when the cache is valid; the miss path packs only
        the headers (payload is passed through by reference) and does
        NOT build the joined form.
        """
        if self._l3_cache_ok():
            WIRE_STATS.l3_cache_hits += 1
            return (self._l3c,)
        if self._ip is None:
            raise ValueError("packet has no IP header")
        WIRE_STATS.l3_cache_misses += 1
        hdr_bytes, _body_len = self._ip_header_bytes()
        raw = self._raw
        if raw is not None:
            return (hdr_bytes, memoryview(raw)[_IP_HLEN:])
        l4 = self._l4
        if l4 is not None:
            return (hdr_bytes, l4.to_bytes(), self._payload)
        return (hdr_bytes, self._payload)

    @classmethod
    def from_l3_bytes(cls, data: bytes) -> "Packet":
        """Parse a layer-3 packet serialized by :meth:`to_l3_bytes`.

        Only the IP header is parsed here (length validation included);
        the L4 header and payload materialize on first access.  The
        input bytes seed the serialization cache, so receive-and-forward
        never re-packs.  This is the receive path's single
        materialization point: a memoryview (e.g. straight out of the
        FIFO ring) is converted to bytes exactly once, here.
        """
        if type(data) is not bytes:
            data = bytes(data)
        if len(data) < _IP_HLEN:
            raise ValueError(f"short IP packet: {len(data)} bytes")
        ip = IPv4Header.from_bytes(data)
        if ip.total_length != len(data):
            raise ValueError(f"IP length field {ip.total_length} != actual {len(data)}")
        packet = cls.__new__(cls)
        packet._payload = b""
        packet._l4 = None
        packet._ip = ip
        packet.eth = None
        packet.meta = {}
        packet._raw = data
        packet._l3c = data
        packet._l3ip_v = ip.__dict__["_v"]
        packet._l3l4_v = _LAZY_BODY
        return packet

    def clone(self) -> "Packet":
        """Shallow-ish copy: headers copied, payload shared (immutable).

        A lazily-parsed body stays lazy in the clone (the raw bytes are
        shared), and a still-valid serialization cache carries over,
        re-keyed to the fresh header copies' version counters.
        """
        cache_ok = self._l3_cache_ok()
        packet = Packet.__new__(Packet)
        packet._ip = self._ip.replaced() if self._ip is not None else None
        packet.eth = self.eth.replaced() if self.eth is not None else None
        packet.meta = dict(self.meta)
        raw = self._raw
        packet._raw = raw
        if raw is not None:
            packet._l4 = None
            packet._payload = b""
        else:
            packet._l4 = self._l4.replaced() if self._l4 is not None else None
            packet._payload = self._payload
        if cache_ok:
            packet._l3c = self._l3c
            packet._l3ip_v = packet._ip.__dict__["_v"]
            if raw is not None:
                packet._l3l4_v = _LAZY_BODY
            elif packet._l4 is not None:
                packet._l3l4_v = packet._l4.__dict__["_v"]
            else:
                packet._l3l4_v = _NO_L4
        else:
            packet._l3c = None
            packet._l3ip_v = _NO_L4
            packet._l3l4_v = _NO_L4
        return packet

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.eth:
            parts.append(f"eth {self.eth.src}->{self.eth.dst} t={self.eth.ethertype:#06x}")
        if self._ip:
            parts.append(f"ip {self._ip.src}->{self._ip.dst} p={self._ip.proto}")
        if self._raw is not None:
            parts.append(f"lazy {len(self._raw) - _IP_HLEN}B")
        else:
            if self._l4:
                parts.append(type(self._l4).__name__)
            parts.append(f"{len(self._payload)}B")
        return f"<Packet {' | '.join(parts)}>"
