"""Xen split network driver: netfront (guest) + netback (Dom0) + rings.

This is the *baseline* data path the paper measures XenLoop against
(the "Netfront/Netback" column of Tables 1-3): every packet between
co-resident guests crosses a grant-table ring into Dom0, traverses the
software bridge, and crosses a second ring into the peer guest, paying
domain switches, hypercalls, and per-page grant operations on the way.
"""

from repro.xennet.netback import Netback
from repro.xennet.netfront import Netfront, VifDevice
from repro.xennet.ring import SlottedRing
from repro.xennet.setup import connect_vif

__all__ = ["Netback", "Netfront", "SlottedRing", "VifDevice", "connect_vif"]
