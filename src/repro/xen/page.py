"""Machine pages and shared regions.

A :class:`Page` wraps a 4 KiB numpy byte buffer.  A
:class:`SharedRegion` is a physically contiguous run of pages exposing
one flat array -- the XenLoop FIFOs are laid out over such a region,
and when a peer domain *maps* the region's pages through the grant
table it sees the very same buffers, so reads and writes genuinely
share memory exactly as mapped grant pages do on real Xen.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["PAGE_SIZE", "Page", "SharedRegion"]

PAGE_SIZE = 4096

_frame_counter = itertools.count(1)


class Page:
    """One 4 KiB machine page."""

    __slots__ = ("frame", "buf", "owner", "region")

    def __init__(self, owner: int, buf: np.ndarray | None = None, region: "SharedRegion | None" = None):
        self.frame = next(_frame_counter)
        if buf is None:
            buf = np.zeros(PAGE_SIZE, dtype=np.uint8)
        if buf.dtype != np.uint8 or buf.shape != (PAGE_SIZE,):
            raise ValueError("page buffer must be a 4096-byte uint8 array")
        self.buf = buf
        #: domid of the owning domain (transfers change this).
        self.owner = owner
        #: back-reference when the page is part of a SharedRegion.
        self.region = region

    def zero(self) -> None:
        """Scrub the page (the security step the transfer path pays for)."""
        self.buf[:] = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Page frame={self.frame} owner=dom{self.owner}>"


class SharedRegion:
    """A contiguous run of pages with a single flat backing array."""

    def __init__(self, owner: int, n_pages: int):
        if n_pages < 1:
            raise ValueError("region needs at least one page")
        self.array = np.zeros(n_pages * PAGE_SIZE, dtype=np.uint8)
        self.pages = [
            Page(owner, self.array[i * PAGE_SIZE : (i + 1) * PAGE_SIZE], region=self)
            for i in range(n_pages)
        ]

    @property
    def n_pages(self) -> int:
        """Number of pages in the region."""
        return len(self.pages)

    @property
    def size(self) -> int:
        """Region size in bytes."""
        return len(self.array)

    def zero(self) -> None:
        """Scrub the whole region."""
        self.array[:] = 0
