"""Congestion cells end to end: pinned goldens, same-seed bit-identity,
the ACK-drop livelock regression, and RTO recovery under migration.

Every value pinned here was produced by a deterministic run; a diff is
a real behaviour change (intentional changes re-pin with a comment in
the commit).  ``make congestion-smoke`` runs this file before the
bench cells.
"""

import pytest

from repro import scenarios
from repro.faults import PKT_LOSS, FaultPlan, FaultRule
from repro.workloads import congestion
from repro.xen.migration import live_migrate

# Small, CI-sized cells -- the bench uses bigger transfers.
INCAST_BYTES = 1 << 17
FAIRNESS_DURATION = 0.05


class TestDeterminism:
    """Same seed -> bit-identical summary dict, loss included (the
    fault plan's RNG is seeded per plan, not global)."""

    def test_incast_fifo(self):
        a = scenarios.run_incast_cell(data_path="fifo", bytes_per_flow=INCAST_BYTES)
        b = scenarios.run_incast_cell(data_path="fifo", bytes_per_flow=INCAST_BYTES)
        assert a == b

    def test_incast_netfront_with_loss(self):
        a = scenarios.run_incast_cell(
            data_path="netfront", loss=0.02, bytes_per_flow=INCAST_BYTES
        )
        b = scenarios.run_incast_cell(
            data_path="netfront", loss=0.02, bytes_per_flow=INCAST_BYTES
        )
        assert a == b

    def test_fairness_netfront_with_loss(self):
        a = scenarios.run_fairness_cell(
            data_path="netfront", loss=0.01, duration=FAIRNESS_DURATION
        )
        b = scenarios.run_fairness_cell(
            data_path="netfront", loss=0.01, duration=FAIRNESS_DURATION
        )
        assert a == b


class TestCellGoldens:
    def test_incast_fifo_golden(self):
        got = scenarios.run_incast_cell(
            data_path="fifo", bytes_per_flow=INCAST_BYTES
        )
        assert got == {
            "scenario": "incast",
            "data_path": "fifo",
            "loss": 0.0,
            "n_flows": 4,
            "duration": 0.002226619,
            "events": 3806,
            "aggregate_mbps": 1883.71,
            "fairness": 0.952657,
            "retransmissions": 0,
            "fast_retransmits": 0,
            "rto_retransmits": 0,
            "tcp": {
                "conns": 8,
                "backlog_drops": 0,
                "rsts_sent": 0,
                "retransmissions": 0,
                "fast_retransmits": 0,
                "rto_retransmits": 0,
                "dup_acks": 0,
                "dup_segments": 0,
            },
        }

    def test_incast_netfront_loss_golden(self):
        """2% bridge loss on the netfront path: the FIFO cell above is
        structurally exempt (XenLoop traffic never crosses the bridge);
        here the same transfer pays real retransmissions."""
        got = scenarios.run_incast_cell(
            data_path="netfront", loss=0.02, bytes_per_flow=INCAST_BYTES
        )
        assert got == {
            "scenario": "incast",
            "data_path": "netfront",
            "loss": 0.02,
            "n_flows": 4,
            "duration": 0.401048942,
            "events": 4279,
            "aggregate_mbps": 10.458,
            "fairness": 0.746875,
            "retransmissions": 2,
            "fast_retransmits": 0,
            "rto_retransmits": 2,
            "tcp": {
                "conns": 8,
                "backlog_drops": 0,
                "rsts_sent": 0,
                "retransmissions": 2,
                "fast_retransmits": 0,
                "rto_retransmits": 2,
                "dup_acks": 1,
                "dup_segments": 0,
            },
            "frames_dropped": 3,
        }

    def test_fairness_netfront_loss_golden(self):
        got = scenarios.run_fairness_cell(
            data_path="netfront", loss=0.01, duration=FAIRNESS_DURATION
        )
        assert got == {
            "scenario": "fairness",
            "data_path": "netfront",
            "loss": 0.01,
            "n_flows": 5,
            "duration": 0.253794937,
            "elephant_mbps": 261.839,
            "mice_mbps": 12.911,
            "fairness_elephants": 0.67905,
            "events": 67977,
            "aggregate_mbps": 0.0,
            "fairness": 0.315582,
            "retransmissions": 10,
            "fast_retransmits": 7,
            "rto_retransmits": 2,
            "tcp": {
                "conns": 10,
                "backlog_drops": 0,
                "rsts_sent": 0,
                "retransmissions": 11,
                "fast_retransmits": 7,
                "rto_retransmits": 3,
                "dup_acks": 137,
                "dup_segments": 0,
            },
            "frames_dropped": 23,
        }

    def test_fifo_path_nearly_loss_immune(self):
        """A loss plan scoped to the bridge cannot touch steady-state
        FIFO traffic -- only the bootstrap window is exposed, while TCP
        crosses the bridge before the XenLoop channels connect.  At 2%
        exactly one early frame dies (one RTO recovers it); the
        netfront cell pays 3 drops on the same transfer."""
        lossy = scenarios.run_incast_cell(
            data_path="fifo", loss=0.02, bytes_per_flow=INCAST_BYTES
        )
        assert lossy["frames_dropped"] == 1  # bootstrap-era frame only
        assert lossy["retransmissions"] == 1
        assert lossy["rto_retransmits"] == 1
        # Steady state rides the FIFO: still an order of magnitude
        # faster than the lossy netfront cell's 10.5 Mbit/s.
        assert lossy["aggregate_mbps"] > 20.0


class TestAckDropRegression:
    """The PR's headline bugfix, end to end on the bridge path: drop
    the close sequence's final pure ACK via the fault plan.  The sink
    is left in LAST_ACK; its FIN retransmission must draw a RST from
    the peer's demux miss and stop -- not go-back-N into the void once
    per RTO forever."""

    def _run(self, skip):
        scn = scenarios.xenloop_incast(n_senders=1, data_path="netfront")
        plan = FaultPlan(
            [
                FaultRule(
                    kind=PKT_LOSS,
                    message="tcp_ack",
                    guest="xenhost",
                    skip=skip,
                    times=1,
                )
            ],
            seed=0,
        ).bind(scn)
        scn.warmup()
        result = congestion.tcp_incast(
            scn, server="sink", senders=["src1"], bytes_per_flow=1 << 16
        )
        # The workload returns on the sender's close; keep the world
        # running so the abandoned sink side plays out its recovery.
        scn.sim.run(until=scn.sim.now + 1.0)  # 5 RTOs
        return scn, plan, result

    def test_final_ack_drop_converges_with_one_retransmission(self):
        # This 64 KiB transfer crosses the bridge with exactly 8 pure
        # ACKs; skip=7 kills the last one -- the sender's ACK of the
        # sink's FIN (re-pin the skip if the traffic pattern changes).
        scn, plan, result = self._run(skip=7)
        assert plan.injected[PKT_LOSS] == 1
        assert result.flows[0].bytes == 1 << 16  # payload unharmed
        sink = scn.guests["sink"].stack.tcp
        src = scn.guests["src1"].stack.tcp
        # Exactly one FIN retransmission at the RTO, answered by RST.
        assert sink.congestion_totals()["retransmissions"] == 1
        assert sink.congestion_totals()["rto_retransmits"] == 1
        assert src.congestion_totals()["rsts_sent"] == 1
        # No livelock leftovers: both demux tables fully drained.
        assert not sink.connections
        assert not src.connections

    def test_midstream_ack_drop_is_free(self):
        """A dropped ACK with traffic behind it costs nothing: the next
        cumulative ACK covers it."""
        scn, plan, result = self._run(skip=3)
        assert plan.injected[PKT_LOSS] == 1
        assert result.flows[0].bytes == 1 << 16
        sink = scn.guests["sink"].stack.tcp
        src = scn.guests["src1"].stack.tcp
        assert src.congestion_totals()["retransmissions"] == 0
        assert sink.congestion_totals()["retransmissions"] == 0
        assert not sink.connections and not src.connections


class TestRtoUnderMigration:
    FAST_MIG = scenarios.DEFAULT_COSTS.replace(
        discovery_period=0.2,
        bootstrap_timeout=0.01,
        migration_duration=0.3,
        migration_downtime=0.05,
    )

    def test_rr_over_migration_pays_exactly_one_rto(self):
        """TCP_RR across a live migration: frames in flight during the
        downtime window are the only organic loss in the simulator, and
        recovering them must cost exactly one RTO retransmission --
        pinned, so RTO regressions under migration can't slip by."""
        scn = scenarios.migration_pair(self.FAST_MIG)
        scn.warmup()
        sim = scn.sim
        machine_a, _ = scn.machines
        state = {"stop": False, "count": 0}
        conns = {}

        def server():
            listener = scn.node_b.stack.tcp_listen(5470)
            conn = yield from listener.accept()
            conns["server"] = conn
            while True:
                try:
                    yield from conn.recv_exactly(1)
                except OSError:
                    return
                yield from conn.send(b"y")

        def client():
            conn = yield from scn.node_a.stack.tcp_connect((scn.ip_b, 5470))
            conns["client"] = conn
            while not state["stop"]:
                yield from conn.send(b"x")
                yield from conn.recv_exactly(1)
                state["count"] += 1
            yield from conn.close()

        sim.process(server())
        client_proc = sim.process(client())

        def orchestrate():
            yield sim.timeout(0.05)  # RR running steadily first
            yield from live_migrate(scn.node_b, machine_a)
            state["stop"] = True

        proc = sim.process(orchestrate())
        sim.run_until_complete(proc, timeout=60)
        sim.run_until_complete(client_proc, timeout=60)

        client_conn = conns["client"]
        assert state["count"] == 1342  # golden transaction count
        assert client_conn.retransmissions == 1
        assert client_conn.rto_retransmits == 1
        assert client_conn.fast_retransmits == 0
        assert conns["server"].dup_segments == 0
