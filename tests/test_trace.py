"""Path tracing: the hop sequence proves which path a packet took."""

import pytest

from repro import scenarios, trace

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


def stages(records):
    return [s for s, _t in records]


class TestTracedPing:
    def test_xenloop_path_shape(self):
        """A XenLoop-channel packet crosses the FIFO and NEVER touches
        netfront, netback, or a NIC -- the transparency-with-bypass claim
        verified hop by hop."""
        scn = scenarios.xenloop(FAST)
        scn.warmup(max_wait=10.0)
        records = trace.traced_ping(scn)
        seq = stages(records)
        assert seq[0] == "ip-output"
        assert "xenloop-fifo-push" in seq
        assert "xenloop-fifo-pop" in seq
        assert seq.index("xenloop-fifo-push") < seq.index("xenloop-fifo-pop")
        assert "icmp-deliver" in seq
        assert not any("netback" in s or "netfront" in s or "nic" in s for s in seq)

    def test_netfront_path_shape(self):
        """The standard path crosses netfront, netback (twice: tx drain
        and rx to-guest), and two softirqs -- and never a FIFO."""
        scn = scenarios.netfront_netback(FAST)
        scn.warmup()
        records = trace.traced_ping(scn)
        seq = stages(records)
        assert "netfront-tx" in seq
        assert "netback-tx" in seq
        assert "netback-rx-to-guest" in seq
        assert "icmp-deliver" in seq
        assert not any("fifo" in s for s in seq)
        assert seq.index("netfront-tx") < seq.index("netback-tx") < seq.index(
            "netback-rx-to-guest"
        )

    def test_inter_machine_path_shape(self):
        scn = scenarios.inter_machine(FAST)
        scn.warmup()
        records = trace.traced_ping(scn)
        seq = stages(records)
        assert "nic-wire-tx" in seq
        assert "nic-rx" in seq
        assert seq.index("nic-wire-tx") < seq.index("nic-rx")

    def test_native_loopback_path_shape(self):
        scn = scenarios.native_loopback(FAST)
        scn.warmup()
        seq = stages(trace.traced_ping(scn))
        assert "icmp-deliver" in seq
        assert not any("nic" in s or "netfront" in s or "fifo" in s for s in seq)

    def test_timestamps_monotonic(self):
        scn = scenarios.xenloop(FAST)
        scn.warmup(max_wait=10.0)
        records = trace.traced_ping(scn)
        times = [t for _s, t in records]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_untraced_packets_carry_no_records(self):
        scn = scenarios.native_loopback(FAST)
        scn.warmup()
        from repro.net.packet import Packet

        pkt = Packet(payload=b"x")
        assert trace.hops(pkt) == []

    def test_trace_survives_fifo_serialization(self):
        """The registry re-attaches the reconstructed packet to the same
        record list (the FIFO carries bytes, not objects)."""
        scn = scenarios.xenloop(FAST)
        scn.warmup(max_wait=10.0)
        records = trace.traced_ping(scn)
        seq = stages(records)
        # receive-side stages exist on the SAME trace as the send side
        push = seq.index("xenloop-fifo-push")
        deliver = seq.index("icmp-deliver")
        assert push < deliver
