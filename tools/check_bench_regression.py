"""Gate CI on engine-throughput regressions.

Compares the newest entry in ``BENCH_engine.json`` (appended by the
bench-smoke step on this runner) against the previous history entry
(committed from the last recorded run) and fails when events/s dropped
by more than the allowed fraction.  CI runners are slower and noisier
than the recording machine, so the default threshold is deliberately
loose: it catches "someone made the hot path 20% slower", not 2% drift.

Usage::

    python tools/check_bench_regression.py [--history BENCH_engine.json] [--threshold 0.2]

Exits 0 when the history has fewer than two entries (nothing to compare)
or the newest entry is within threshold; exits 1 on a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(history_path: Path, threshold: float) -> int:
    data = json.loads(history_path.read_text())
    history = data.get("history", [])
    if len(history) < 2:
        print(f"{history_path}: {len(history)} history entries, nothing to compare")
        return 0
    prev, last = history[-2], history[-1]
    prev_eps = prev["events_per_sec"]
    last_eps = last["events_per_sec"]
    floor = prev_eps * (1.0 - threshold)
    verdict = "OK" if last_eps >= floor else "REGRESSION"
    print(
        f"{verdict}: {last.get('sha', '?')} {last_eps:,.0f} events/s vs "
        f"{prev.get('sha', '?')} {prev_eps:,.0f} events/s "
        f"(floor {floor:,.0f} = -{threshold:.0%})"
    )
    return 0 if last_eps >= floor else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", default="BENCH_engine.json", type=Path,
        help="bench history file (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold", default=0.2, type=float,
        help="max allowed fractional drop vs previous entry (default: 0.2)",
    )
    args = parser.parse_args()
    return check(args.history, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
