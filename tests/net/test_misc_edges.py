"""Assorted small edge cases across the net layer."""

import pytest

from repro.net.addr import IPv4Addr
from repro.net.node import Node
from repro.net.stack import NetworkStack
from repro.calibration import DEFAULT_COSTS
from repro.sim.resources import CPUCores
from tests.conftest import run_gen


class TestRxNetworkInjection:
    def test_layer3_injection_reaches_transport(self, sim, host):
        """stack.rx_network is the XenLoop receive entry: a packet with
        no ethernet header still demuxes to the right socket."""
        from repro.net.ethernet import IPPROTO_UDP
        from repro.net.packet import IPv4Header, Packet, UdpHeader

        sock = host.stack.udp_socket(9701)
        pkt = Packet(
            payload=b"injected",
            l4=UdpHeader(1234, 9701, 8 + 8),
            ip=IPv4Header(IPv4Addr("10.0.0.9"), host.stack.ip, IPPROTO_UDP),
        )
        pkt.ip.total_length = pkt.l3_len
        host.stack.rx_network(pkt)

        def srv():
            data, addr = yield from sock.recvfrom()
            return data, addr

        data, (src, sport) = run_gen(sim, srv())
        assert data == b"injected"
        assert src == IPv4Addr("10.0.0.9") and sport == 1234

    def test_injection_for_unknown_protocol_dropped(self, sim, host):
        from repro.net.packet import IPv4Header, Packet

        pkt = Packet(payload=b"?", ip=IPv4Header(IPv4Addr(9), host.stack.ip, 200))
        pkt.ip.total_length = pkt.l3_len
        dropped = host.stack.ipv4.dropped
        host.stack.rx_network(pkt)
        sim.run(until=sim.now + 0.01)
        assert host.stack.ipv4.dropped == dropped + 1


class TestNodeBasics:
    def test_spawn_names_processes(self, sim):
        node = Node(sim, CPUCores(sim, 1), DEFAULT_COSTS, "n1")

        def gen():
            yield sim.timeout(0)

        proc = node.spawn(gen(), name="worker")
        assert proc.name == "n1:worker"

    def test_exec_zero_cost_completes(self, sim):
        node = Node(sim, CPUCores(sim, 1), DEFAULT_COSTS, "n1")

        def gen():
            yield node.exec(0.0)
            return sim.now

        assert run_gen(sim, gen()) == 0.0

    def test_two_stacks_same_cores_contend(self, sim):
        cpus = CPUCores(sim, 1)
        done = []
        for name in ("a", "b"):
            node = Node(sim, cpus, DEFAULT_COSTS, name)
            ev = node.exec(1.0)
            ev.callbacks.append(lambda _e, n=name: done.append((n, sim.now)))
        sim.run()
        assert done[0][1] == 1.0 and done[1][1] > 1.0  # serialized on 1 core


class TestVifMtuAndGso:
    def test_vif_advertises_gso(self, sim):
        from repro.xen.machine import XenMachine

        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        guest = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        vif = guest.netfront.vif
        assert vif.gso
        assert vif.mtu == 1500

    def test_loopback_mtu_is_64k(self, host):
        assert host.stack.loopback.mtu == 65535
        assert host.stack.loopback.gso

    def test_vif_tx_cost_scales_with_pages(self, sim):
        from repro.net.packet import Packet
        from repro.xen.machine import XenMachine

        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        guest = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        vif = guest.netfront.vif
        small = vif.tx_cost(Packet(payload=bytes(100)))
        big = vif.tx_cost(Packet(payload=bytes(16000)))
        assert big > small  # more grant entries for more pages
