"""Declarative topology layer: spec validation, build semantics, and a
full cluster (8 guests, 2 machines) running warmup + workloads + churn."""

import pytest

from repro import scenarios, topology
from repro.calibration import DEFAULT_COSTS
from repro.core.channel import ChannelState

FAST = DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


def two_machine_spec(guests_per_machine=4, **kwargs):
    return topology.ClusterSpec(
        name="test_cluster",
        machines=tuple(
            topology.MachineSpec(
                name=f"xen{i}",
                guests=tuple(
                    topology.GuestSpec(f"m{i}g{j}") for j in range(guests_per_machine)
                ),
            )
            for i in range(2)
        ),
        **kwargs,
    )


class TestSpecValidation:
    def test_duplicate_guest_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate guest names"):
            topology.ClusterSpec(
                name="dup",
                machines=(
                    topology.MachineSpec(name="a", guests=(topology.GuestSpec("vm"),)),
                    topology.MachineSpec(name="b", guests=(topology.GuestSpec("vm"),)),
                ),
            )

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="no guests"):
            topology.ClusterSpec(name="empty", machines=())

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="not a declared guest"):
            two_machine_spec(endpoints=("m0g0", "nosuch"))

    def test_bad_machine_kind_rejected(self):
        with pytest.raises(ValueError, match="machine kind"):
            topology.MachineSpec(name="x", kind="vmware", guests=(topology.GuestSpec("g"),))

    def test_bad_churn_action_rejected(self):
        with pytest.raises(ValueError, match="unknown churn action"):
            topology.ChurnAction(at=1.0, action="explode", guest="g")

    def test_migrate_requires_destination(self):
        with pytest.raises(ValueError, match="to_machine"):
            topology.ChurnAction(at=1.0, action="migrate", guest="g")


class TestBuildSemantics:
    def test_single_machine_has_no_switch(self):
        spec = topology.ClusterSpec(
            name="solo",
            machines=(
                topology.MachineSpec(
                    name="xenhost",
                    guests=(topology.GuestSpec("vm1"), topology.GuestSpec("vm2")),
                ),
            ),
        )
        cluster = spec.build(FAST)
        assert cluster.switch is None
        assert cluster.node_a.name == "vm1" and cluster.node_b.name == "vm2"

    def test_multi_machine_gets_switch_and_auto_ips(self):
        cluster = two_machine_spec().build(FAST)
        assert cluster.switch is not None
        assert str(cluster.guests["m0g0"].stack.ip) == "10.0.0.1"
        assert str(cluster.guests["m1g3"].stack.ip) == "10.0.0.8"

    def test_expect_channels_auto(self):
        # moduleless endpoints: warmup should not wait on channels.
        plain = topology.ClusterSpec(
            name="plain",
            machines=(
                topology.MachineSpec(
                    name="xenhost",
                    guests=(
                        topology.GuestSpec("vm1", module=None),
                        topology.GuestSpec("vm2", module=None),
                    ),
                ),
            ),
        ).build(FAST)
        assert plain.expect_channels
        # co-resident module pair: wait (even with extra guests around,
        # since Cluster._channels_connected only watches the endpoints).
        assert scenarios.xenloop(FAST).expect_channels
        assert two_machine_spec().build(FAST).expect_channels
        # endpoints on different machines connect only after migration.
        cross = two_machine_spec(endpoints=("m0g0", "m1g0")).build(FAST)
        assert not cross.expect_channels

    def test_view_reaims_endpoints(self):
        cluster = two_machine_spec().build(FAST)
        v = cluster.view("m0g1", "m1g2")
        assert v.node_a.name == "m0g1" and v.node_b.name == "m1g2"
        assert v.sim is cluster.sim
        assert str(v.ip_b) == "10.0.0.7"

    def test_per_machine_discovery_modules(self):
        cluster = two_machine_spec().build(FAST)
        assert len(cluster.discoveries) == 2
        assert cluster.discovery is cluster.discoveries[0]


class TestClusterEndToEnd:
    def test_eight_guests_two_machines_warmup_and_udp(self):
        """The acceptance topology: 8 XenLoop guests on 2 machines run
        discovery, connect the co-resident endpoint pair, and carry a
        UDP workload declared in the spec."""
        spec = two_machine_spec(
            endpoints=("m0g0", "m0g1"),
            workloads=(
                topology.WorkloadSpec(
                    kind="udp_stream",
                    client="m0g0",
                    server="m0g1",
                    params={"duration": 0.02, "msg_size": 8192},
                ),
            ),
        )
        cluster = spec.build(FAST)
        assert len(cluster.guests) == 8
        cluster.warmup(max_wait=10.0)
        module = cluster.modules["m0g0"]
        assert any(
            ch.state is ChannelState.CONNECTED for ch in module.channels.values()
        )
        results = cluster.run_workloads()
        assert len(results) == 1
        wl, res = results[0]
        assert wl.kind == "udp_stream"
        assert res.mbps > 0

    @pytest.mark.slow
    def test_churn_schedule_migrates_and_unloads(self):
        spec = two_machine_spec(
            endpoints=("m0g0", "m0g1"),
            churn=(
                topology.ChurnAction(at=0.5, action="migrate", guest="m0g2", to_machine="xen1"),
                topology.ChurnAction(at=1.0, action="unload", guest="m0g3"),
            ),
        )
        cluster = spec.build(FAST)
        cluster.warmup(max_wait=10.0)
        # settle must cover the migrate action's full pre-copy + downtime
        cluster.run_churn(settle=FAST.migration_duration + 1.0)
        assert cluster.guests["m0g2"].machine is cluster.machines_by_name["xen1"]
        assert not cluster.modules["m0g3"].loaded


class TestRegistryCompleteness:
    def test_every_paper_builder_is_registered(self):
        """The pre-registry bug: builders existed that build() rejected.
        Every public builder in scenarios.paper must be registered."""
        import inspect

        from repro.scenarios import paper

        defined = {
            name
            for name, fn in inspect.getmembers(paper, inspect.isfunction)
            if fn.__module__ == paper.__name__ and not name.startswith("_")
        }
        assert defined <= set(scenarios.SCENARIO_BUILDERS)

    def test_mesh_and_migration_pair_buildable_by_name(self):
        for name in ("xenloop_mesh", "migration_pair"):
            assert name in scenarios.SCENARIO_BUILDERS
            scn = scenarios.build(name, FAST)
            assert scn.name == name

    def test_specs_mirror_builders(self):
        assert set(scenarios.SCENARIO_SPECS) == set(scenarios.SCENARIO_BUILDERS)
        for name, spec in scenarios.SCENARIO_SPECS.items():
            assert spec.builder is scenarios.SCENARIO_BUILDERS[name]
            assert spec.description

    def test_double_registration_rejected(self):
        from repro.scenarios.registry import scenario

        with pytest.raises(ValueError, match="registered twice"):
            @scenario(name="xenloop")
            def impostor():  # pragma: no cover
                pass
