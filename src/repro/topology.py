"""Declarative cluster topologies: specs in, running scenarios out.

The paper's evaluation uses a handful of hand-wired 2-3 VM setups; the
roadmap's churn-heavy many-VM experiments need topologies that compose.
This module is the declarative layer: you describe a cluster --
machines, guests, per-guest module configuration, workloads, churn
schedule -- as plain dataclasses, and :meth:`ClusterSpec.build` turns
the description into a live :class:`Cluster` (a
:class:`~repro.scenarios.Scenario` subclass, so every existing
workload, report, and trace helper works on it unchanged).

Determinism contract: ``build`` constructs the simulation in a fixed
phase order -- switch, machine shells, network attachment (per machine,
in listed order), guests (in listed order), XenLoop modules (in guest
order), discovery modules (in machine order) -- so a spec builds the
same event sequence every time, and the hand-written paper scenarios
re-expressed as specs (see :mod:`repro.scenarios.paper`) reproduce
their golden results bit-identically.

Example -- eight guests across two Xen machines with a workload::

    spec = ClusterSpec(
        name="two_racks",
        machines=[
            MachineSpec("xenA", guests=[GuestSpec(f"a{i}") for i in range(4)]),
            MachineSpec("xenB", guests=[GuestSpec(f"b{i}") for i in range(4)]),
        ],
        workloads=[WorkloadSpec("udp_stream", client="a0", server="a1")],
    )
    cluster = spec.build(costs, seed=7)
    cluster.warmup()
    results = cluster.run_workloads()
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.calibration import DEFAULT_COSTS, CostModel
from repro.core.channel import ChannelState
from repro.core.discovery import DiscoveryModule
from repro.core.module import XenLoopModule
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.nic import EthernetSwitch, PhysNIC
from repro.net.node import Node
from repro.net.stack import NetworkStack
from repro.sim.engine import Simulator
from repro.xen.machine import Machine, XenMachine, reset_guest_mac_counter

__all__ = [
    "ChurnAction",
    "Cluster",
    "ClusterSpec",
    "GuestSpec",
    "MachineSpec",
    "WorkloadSpec",
    "build_shard",
    "shard_guest_mac_offset",
]

#: OUI base for auto-assigned physical NIC MACs (matches the paper
#: scenarios' hand-picked addresses).
_PHYS_MAC_BASE = 0x0002B3000001


@dataclass(frozen=True)
class GuestSpec:
    """One guest (Xen machine) or one host node (native machine).

    ``ip=None`` auto-assigns ``10.0.<h>.<l>`` by global guest position
    (the historical ``10.0.0.<n>`` for the first 254 guests).
    ``mac=None`` auto-assigns from the Xen OUI counter; a pinned MAC is
    *reused* when the guest is restarted after a crash/shutdown --
    modelling a config with a fixed ``vif mac=`` line -- so peers see
    the same MAC re-advertise under a new guest-ID.
    ``module`` selects the guest-resident module: ``"xenloop"`` (the
    default for guests in an all-Xen cluster), ``"socket_bypass"`` for
    the experimental transport-layer variant, or ``None`` for a plain
    guest on the standard netfront/netback path.
    ``channel_budget`` caps concurrent channels per guest (LRU eviction
    above it); None = unbounded (the paper's behaviour).
    """

    name: str
    ip: Optional[str] = None
    module: Optional[str] = "xenloop"
    fifo_order: int = 13
    idle_timeout: Optional[float] = None
    zero_copy_rx: bool = False
    vcpus: int = 1
    mac: Optional[str] = None
    channel_budget: Optional[int] = None


@dataclass(frozen=True)
class MachineSpec:
    """One physical machine: ``kind="xen"`` (Dom0 + guests) or
    ``kind="native"`` (bare host nodes, one per GuestSpec).

    ``nic_mac`` overrides the auto-assigned physical MAC used when the
    cluster has a switch.  ``discovery=None`` auto-enables the Dom0
    discovery module whenever any guest on the machine loads XenLoop.
    """

    name: str
    guests: tuple[GuestSpec, ...] = ()
    kind: str = "xen"
    n_cores: int = 2
    nic_mac: Optional[str] = None
    discovery: Optional[bool] = None

    def __post_init__(self):
        if self.kind not in ("xen", "native"):
            raise ValueError(f"machine kind must be 'xen' or 'native', not {self.kind!r}")
        object.__setattr__(self, "guests", tuple(self.guests))


@dataclass(frozen=True)
class WorkloadSpec:
    """One measurement between two named guests.

    ``kind`` names a :mod:`repro.workloads.netperf` workload
    (``udp_stream``, ``tcp_stream``, ``tcp_rr``, ``udp_rr``,
    ``tcp_crr``); ``params`` are passed through (msg_size, duration,
    ...).  Workloads run sequentially in list order.
    """

    kind: str
    client: str
    server: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ChurnAction:
    """One scheduled lifecycle disruption.

    ``action``: ``"migrate"`` (live-migrate ``guest`` to
    ``to_machine``), ``"shutdown"`` (clean guest shutdown),
    ``"crash"`` (abrupt death: no callbacks run, peers recover via the
    announcement diff), ``"restart"`` (re-create a crashed/shut-down
    guest from its spec), or ``"unload"`` (remove the guest's XenLoop
    module).  ``at`` is simulated seconds after
    :meth:`Cluster.start_churn` is called.
    """

    at: float
    action: str
    guest: str
    to_machine: Optional[str] = None

    def __post_init__(self):
        if self.action not in ("migrate", "shutdown", "crash", "restart", "unload"):
            raise ValueError(f"unknown churn action {self.action!r}")
        if self.action == "migrate" and self.to_machine is None:
            raise ValueError("migrate needs to_machine")


# Import here to avoid a cycle at module-import time: scenarios.base
# imports nothing from topology, but scenarios/__init__ re-exports both.
from repro.scenarios.base import Scenario  # noqa: E402


@dataclass
class Cluster(Scenario):
    """A built cluster: a Scenario plus by-name access to everything.

    ``node_a``/``node_b`` (the Scenario endpoints) are the cluster's
    declared endpoints; :meth:`view` re-aims them at any guest pair so
    the per-pair netperf workloads run between arbitrary guests.
    """

    spec: Optional[ClusterSpec] = None
    #: guest/host nodes by spec name, in declaration order.
    guests: dict = field(default_factory=dict)
    #: machines by spec name.
    machines_by_name: dict = field(default_factory=dict)
    #: all Dom0 discovery modules (Scenario.discovery is the first).
    discoveries: list = field(default_factory=list)

    def _channels_connected(self) -> bool:
        # Unlike a two-guest Scenario, a cluster may carry many modules
        # whose channels form lazily on their own first traffic: warmup
        # only waits for the *measured endpoints* to connect.
        endpoint_modules = [
            m
            for m in (self.modules.get(self.node_a.name), self.modules.get(self.node_b.name))
            if m is not None
        ]
        if not endpoint_modules:
            return True
        return all(
            any(ch.state is ChannelState.CONNECTED for ch in m.channels.values())
            for m in endpoint_modules
        )

    # -- checkpoint / warm-start ---------------------------------------
    def snapshot(self, recipe: Optional[dict] = None, label: str = "") -> "object":
        """Capture this cluster as a :class:`~repro.sim.snapshot.SimSnapshot`.

        The returned snapshot can ``fork()`` live copies (same-seed runs
        are bit-identical to a cold build) and, when built from a
        ``recipe``, ``save()``/``restore()`` across processes.
        """
        from repro.sim.snapshot import SimSnapshot

        return SimSnapshot.capture(self, recipe=recipe, label=label)

    @classmethod
    def from_snapshot(cls, source) -> "Cluster":
        """Rebuild a cluster from a snapshot (a :class:`SimSnapshot` or a
        path to one saved with ``SimSnapshot.save``), digest-verified."""
        from repro.sim.snapshot import SimSnapshot

        snap = SimSnapshot.load(source) if isinstance(source, (str, bytes)) else source
        return snap.restore()

    def view(self, client: str, server: str) -> "Cluster":
        """A shallow endpoint view: same simulation, endpoints re-aimed
        at ``client``/``server`` (for running a workload between them)."""
        a, b = self.guests[client], self.guests[server]
        return dataclasses.replace(
            self, node_a=a, node_b=b, ip_a=a.stack.ip, ip_b=b.stack.ip
        )

    # -- workloads -----------------------------------------------------
    def run_workloads(self) -> list[tuple[WorkloadSpec, object]]:
        """Run the spec's workloads sequentially; returns (spec, result)
        pairs."""
        from repro.workloads import netperf

        results = []
        for wl in self.spec.workloads if self.spec else ():
            fn = getattr(netperf, wl.kind, None)
            if fn is None:
                raise ValueError(f"unknown workload kind {wl.kind!r}")
            results.append((wl, fn(self.view(wl.client, wl.server), **wl.params)))
        return results

    # -- churn ---------------------------------------------------------
    def start_churn(self) -> None:
        """Spawn the churn schedule (one process; actions run at their
        ``at`` offsets from now, in list order)."""
        if self.spec and self.spec.churn:
            self.sim.process(self._churn_runner(), name="cluster-churn")

    def _churn_runner(self):
        from repro.xen.migration import live_migrate

        start = self.sim.now
        for action in sorted(self.spec.churn, key=lambda a: a.at):
            delay = start + action.at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            if action.action == "restart":
                self.restart_guest(action.guest)
                continue
            guest = self.guests[action.guest]
            if action.action == "migrate":
                yield from live_migrate(guest, self.machines_by_name[action.to_machine])
            elif action.action == "shutdown":
                yield from guest.shutdown()
            elif action.action == "crash":
                guest.crash()
            elif action.action == "unload":
                module = self.modules.get(action.guest)
                if module is not None:
                    yield from module.unload()

    def restart_guest(self, name: str) -> Node:
        """Re-create a crashed or shut-down guest from its spec.

        The new incarnation keeps the spec's name and IP but gets a
        fresh domid -- and, by default, a fresh MAC (exactly what ``xl
        create`` after ``xl destroy`` does), so peers see a *new
        identity* appear in the next announcement and the old channel,
        if any survived, is pruned by the soft-state diff, never
        resurrected.  A spec-pinned ``mac`` is reused instead (a config
        with a fixed ``vif mac=`` line): peers then see the *same MAC*
        re-advertise under a changed guest-ID and must refresh their
        mapping in place.  A gratuitous ARP re-teaches bridges and
        neighbour caches the name->MAC binding either way.
        """
        if self.spec is None:
            raise ValueError("restart_guest needs a spec-built cluster")
        gspec = mspec = None
        for ms in self.spec.machines:
            for gs in ms.guests:
                if gs.name == name:
                    gspec, mspec = gs, ms
        if gspec is None or mspec.kind != "xen":
            raise ValueError(f"{name!r} is not a restartable Xen guest of this spec")
        old = self.guests.get(name)
        if old is not None and old.alive:
            raise ValueError(f"guest {name!r} is still alive")
        machine = self.machines_by_name[mspec.name]
        ips = {gs.name: ip for gs, ip in _ip_allocator(self.spec)}
        guest = machine.create_guest(
            name,
            ip=ips[name],
            mac=MacAddr(gspec.mac) if gspec.mac else None,
            prefix_len=self.spec.prefix_len,
            vcpus=gspec.vcpus,
        )
        self.guests[name] = guest
        if gspec.module is not None:
            module_cls = _module_class(gspec.module)
            self.modules[name] = module_cls(
                guest,
                fifo_order=gspec.fifo_order,
                idle_timeout=gspec.idle_timeout,
                zero_copy_rx=gspec.zero_copy_rx,
                channel_budget=gspec.channel_budget,
                delta_discovery=self.spec.discovery_mode == "delta",
            )
        guest.stack.arp.announce()
        # Re-aim the measurement endpoints at the new incarnation.
        if self.node_a is old:
            self.node_a, self.ip_a = guest, guest.stack.ip
        if self.node_b is old:
            self.node_b, self.ip_b = guest, guest.stack.ip
        return guest

    def run_churn(self, settle: float = 1.0) -> None:
        """Start the churn schedule and run the simulation through it
        (plus ``settle`` seconds for teardowns to complete)."""
        if not (self.spec and self.spec.churn):
            return
        self.start_churn()
        horizon = self.sim.now + max(a.at for a in self.spec.churn) + settle
        self.sim.run(until=horizon)


@dataclass(frozen=True)
class ClusterSpec:
    """The declarative description :meth:`build` turns into a Cluster."""

    name: str
    machines: tuple[MachineSpec, ...] = ()
    #: the two measurement endpoints, by guest name; defaults to the
    #: first two guests in declaration order (or the first guest twice
    #: for a single-node loopback cluster).
    endpoints: Optional[tuple[str, str]] = None
    #: whether warmup() waits for every module to have a CONNECTED
    #: channel; None = auto (True iff the endpoints are co-resident
    #: module-loaded guests and are the only module-loaded guests).
    expect_channels: Optional[bool] = None
    workloads: tuple[WorkloadSpec, ...] = ()
    churn: tuple[ChurnAction, ...] = ()
    #: discovery protocol: "announce" (the paper's full-roster unicast,
    #: default -- byte-identical to the historical build) or "delta"
    #: (the thousand-guest control plane: RosterDelta/FullSync
    #: multicasts, WhoIs lookups, sparse per-guest rosters).
    discovery_mode: str = "announce"
    #: delta mode: scans between FullSync heartbeats.
    full_sync_every: int = 8
    #: subnet prefix for auto-configured guest stacks.  The default /24
    #: caps auto-IP allocation at 254 guests; big clusters use 16.
    prefix_len: int = 24

    def __post_init__(self):
        object.__setattr__(self, "machines", tuple(self.machines))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "churn", tuple(self.churn))
        if self.discovery_mode not in ("announce", "delta"):
            raise ValueError(f"unknown discovery_mode {self.discovery_mode!r}")
        names = [g.name for m in self.machines for g in m.guests]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate guest names in cluster {self.name!r}")
        if not names:
            raise ValueError(f"cluster {self.name!r} has no guests")
        if self.endpoints is not None:
            for end in self.endpoints:
                if end not in names:
                    raise ValueError(f"endpoint {end!r} is not a declared guest")

    # -- derived properties -------------------------------------------
    def guest_names(self) -> list[str]:
        return [g.name for m in self.machines for g in m.guests]

    def needs_switch(self) -> bool:
        """A switch exists iff the cluster spans more than one machine."""
        return len(self.machines) > 1

    def resolved_endpoints(self) -> tuple[str, str]:
        if self.endpoints is not None:
            return self.endpoints
        names = self.guest_names()
        return (names[0], names[1]) if len(names) > 1 else (names[0], names[0])

    # -- construction --------------------------------------------------
    def build(
        self,
        costs: CostModel = DEFAULT_COSTS,
        seed: int = 0,
        *,
        _sim: Optional[Simulator] = None,
        _switch: Optional[EthernetSwitch] = None,
        _local: Optional[set] = None,
        _phys_mac_base: int = _PHYS_MAC_BASE,
        _guest_mac_base: int = 1,
    ) -> Cluster:
        """Materialise the cluster (fixed phase order; see module doc).

        The underscored keywords are the sharded-build hooks used by
        :func:`build_shard` (never by user code): ``_sim`` injects a
        pre-made simulator, ``_switch`` a pre-made uplink (the
        :class:`~repro.net.nic.ShardLink`), ``_local`` restricts
        construction to the named machines, and ``_phys_mac_base``
        offsets auto-assigned physical MACs so a shard allocates exactly
        the addresses its machines would have received in the unsharded
        build, and ``_guest_mac_base`` rebases the auto guest-MAC
        counter the same way.  All default to the historical behaviour,
        so the ordinary path is byte-for-byte unchanged.
        """
        # Rebase the process-global guest MAC counter so same-seed builds
        # are bit-identical no matter how many clusters this process has
        # already built (snapshot digests depend on this).
        reset_guest_mac_counter(_guest_mac_base)
        sim = Simulator(seed=seed) if _sim is None else _sim
        if _switch is not None:
            switch = _switch
        else:
            switch = EthernetSwitch(sim, costs) if self.needs_switch() else None

        # Phase 1: machine shells (constructors spawn no processes).
        machines: list[tuple[MachineSpec, object]] = []
        for mspec in self.machines:
            if _local is not None and mspec.name not in _local:
                continue
            cls = XenMachine if mspec.kind == "xen" else Machine
            machines.append((mspec, cls(sim, costs, mspec.name, n_cores=mspec.n_cores)))

        # Phase 2: network attachment, per machine in declaration order.
        # Xen machines join the switch through Dom0's bridge; native
        # machines get their host nodes, stacks and (switched) NICs here.
        # IPs are allocated from the FULL spec even under ``_local``:
        # a guest keeps its global 10.0.0.<n> address in every shard.
        ips = {gspec.name: ip for gspec, ip in _ip_allocator(self)}
        guests: dict[str, Node] = {}
        next_phys_mac = _phys_mac_base

        def _phys_mac(override: Optional[str]) -> MacAddr:
            nonlocal next_phys_mac
            if override is not None:
                return MacAddr(override)
            mac = MacAddr(next_phys_mac)
            next_phys_mac += 1
            return mac

        for mspec, machine in machines:
            if mspec.kind == "xen":
                if switch is not None:
                    machine.attach_network(switch, _phys_mac(mspec.nic_mac))
            else:
                for gspec in mspec.guests:
                    node = Node(sim, machine.cpus, costs, gspec.name)
                    NetworkStack(node, ips[gspec.name], prefix_len=self.prefix_len)
                    if switch is not None:
                        nic = PhysNIC(node, costs, f"{node.name}.eth0", _phys_mac(mspec.nic_mac))
                        nic.connect(switch)
                        node.stack.add_device(nic, primary=True)
                    guests[gspec.name] = node

        # Phase 3: Xen guests, in global declaration order (guest MACs
        # are allocated by creation order).
        for mspec, machine in machines:
            if mspec.kind != "xen":
                continue
            for gspec in mspec.guests:
                guests[gspec.name] = machine.create_guest(
                    gspec.name,
                    ip=ips[gspec.name],
                    mac=MacAddr(gspec.mac) if gspec.mac else None,
                    prefix_len=self.prefix_len,
                    vcpus=gspec.vcpus,
                )

        # Phase 4: guest modules, in global guest order.
        modules = {}
        for mspec, machine in machines:
            if mspec.kind != "xen":
                continue
            for gspec in mspec.guests:
                if gspec.module is None:
                    continue
                module_cls = _module_class(gspec.module)
                modules[gspec.name] = module_cls(
                    guests[gspec.name],
                    fifo_order=gspec.fifo_order,
                    idle_timeout=gspec.idle_timeout,
                    zero_copy_rx=gspec.zero_copy_rx,
                    channel_budget=gspec.channel_budget,
                    delta_discovery=self.discovery_mode == "delta",
                )

        # Phase 5: Dom0 discovery, in machine order.
        discoveries = []
        for mspec, machine in machines:
            if mspec.kind != "xen":
                continue
            wants = mspec.discovery
            if wants is None:
                wants = any(g.name in modules for g in mspec.guests)
            if wants:
                discoveries.append(
                    DiscoveryModule(
                        machine,
                        mode=self.discovery_mode,
                        full_sync_every=self.full_sync_every,
                    )
                )

        end_a, end_b = self.resolved_endpoints()
        if _local is not None and (end_a not in guests or end_b not in guests):
            # Shard build without the declared endpoints: aim both at
            # the first local guest (workload views re-aim per pair), or
            # at nothing for a guestless shard (discovery-only Dom0).
            local_names = list(guests)
            end_a = end_b = local_names[0] if local_names else None
        if end_a is None:
            node_a = node_b = ip_a = ip_b = None
            expect_channels = True
        else:
            node_a, node_b = guests[end_a], guests[end_b]
            ip_a, ip_b = ips[end_a], ips[end_b]
            expect_channels = self._resolve_expect_channels(modules, end_a, end_b)
        return Cluster(
            name=self.name,
            sim=sim,
            costs=costs,
            node_a=node_a,
            node_b=node_b,
            ip_a=ip_a,
            ip_b=ip_b,
            machines=[m for _, m in machines],
            switch=switch,
            modules=modules,
            discovery=discoveries[0] if discoveries else None,
            expect_channels=expect_channels,
            spec=self,
            guests=guests,
            machines_by_name={mspec.name: m for mspec, m in machines},
            discoveries=discoveries,
        )

    def _resolve_expect_channels(self, modules: dict, end_a: str, end_b: str) -> bool:
        # Cluster._channels_connected only watches the endpoint modules,
        # so warmup can wait whenever the measured pair are co-resident
        # module-loaded guests (other guests connect lazily on their
        # own first traffic); endpoints on different machines can only
        # connect after a migration, so warmup must not wait for them.
        if self.expect_channels is not None:
            return self.expect_channels
        if not modules:
            return True  # Scenario.warmup skips the wait when moduleless
        if end_a not in modules or end_b not in modules or end_a == end_b:
            return False
        home = {}
        for mspec in self.machines:
            for gspec in mspec.guests:
                home[gspec.name] = mspec.name
        return home[end_a] == home[end_b]


def _module_class(kind: str):
    if kind == "xenloop":
        return XenLoopModule
    if kind == "socket_bypass":
        from repro.core.socket_bypass import SocketBypassModule

        return SocketBypassModule
    raise ValueError(f"unknown guest module {kind!r}")


def shard_guest_mac_offset(spec: ClusterSpec, shard_index: int) -> int:
    """Auto guest MACs consumed before ``machines[shard_index]`` builds.

    The unsharded build creates Xen guests in global declaration order,
    consuming one auto-MAC each (spec-pinned MACs never touch the
    counter); a shard rebases the process-global counter by this offset
    so every guest gets the same MAC it would have had unsharded (see
    :func:`build_shard`)."""
    return sum(
        1
        for mspec in spec.machines[:shard_index]
        if mspec.kind == "xen"
        for gspec in mspec.guests
        if gspec.mac is None
    )


def _phys_mac_consumed(spec: ClusterSpec, shard_index: int) -> int:
    """Auto physical-NIC MACs consumed before ``machines[shard_index]``.

    Mirrors Phase 2 of :meth:`ClusterSpec.build`: one per Xen machine,
    one per guest of a native machine, skipping explicit ``nic_mac``
    overrides (which never touch the allocator)."""
    count = 0
    for mspec in spec.machines[:shard_index]:
        if mspec.nic_mac is not None:
            continue
        count += 1 if mspec.kind == "xen" else len(mspec.guests)
    return count


def build_shard(
    spec: ClusterSpec,
    shard_index: int,
    costs: CostModel,
    sim: Simulator,
    uplink: EthernetSwitch,
) -> Cluster:
    """Build the shard-local slice of ``spec``: machine
    ``machines[shard_index]`` only, wired to ``uplink`` (a
    :class:`~repro.net.nic.ShardLink`) in place of the cluster switch.

    Address identity is preserved against the unsharded build -- same
    IPs (global-position allocator), same guest MACs (counter rebased by
    global guest position), same physical MACs (base offset by the
    machines built on earlier shards) -- so traces and ARP/discovery
    behaviour are comparable across shard counts.
    """
    mspec = spec.machines[shard_index]
    return spec.build(
        costs,
        _sim=sim,
        _switch=uplink,
        _local={mspec.name},
        _phys_mac_base=_PHYS_MAC_BASE + _phys_mac_consumed(spec, shard_index),
        _guest_mac_base=shard_guest_mac_offset(spec, shard_index) + 1,
    )


def _ip_allocator(spec: ClusterSpec):
    """Yield (GuestSpec, IPv4Addr) in global declaration order, honouring
    explicit ``ip`` fields and auto-assigning ``10.0.<h>.<l>``.

    Positions 1-254 get the historical ``10.0.0.<position>`` addresses
    (so small-cluster goldens are untouched); the low octet then wraps
    within 1-254 and the third octet climbs -- a /16 pool good for
    64,516 guests.  Auto addresses beyond the spec's ``prefix_len``
    capacity are rejected: a thousand-guest cluster must say
    ``prefix_len=16`` or packets to high guests would be routed through
    the (nonexistent) gateway.
    """
    position = 0
    for mspec in spec.machines:
        for gspec in mspec.guests:
            position += 1
            if gspec.ip:
                ip = IPv4Addr(gspec.ip)
            else:
                high, low = divmod(position - 1, 254)
                if high > 255:
                    raise ValueError(
                        f"cluster {spec.name!r}: auto-IP pool exhausted at "
                        f"guest position {position} (max 64516)"
                    )
                ip = IPv4Addr(f"10.0.{high}.{low + 1}")
                if high > 0 and spec.prefix_len > 16:
                    raise ValueError(
                        f"cluster {spec.name!r}: guest position {position} "
                        f"needs auto-IP {ip}, outside the /{spec.prefix_len} "
                        f"subnet -- set ClusterSpec(prefix_len=16) for "
                        f"clusters beyond 254 auto-addressed guests"
                    )
            yield gspec, ip
