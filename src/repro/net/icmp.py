"""ICMP echo (ping).

Echo requests are answered in the "kernel" (softirq context), exactly
like Linux -- so flood-ping RTTs measure the full stack + channel path
with no application scheduling on the responder side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.ethernet import IPPROTO_ICMP
from repro.net.packet import IcmpHeader, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addr import IPv4Addr
    from repro.net.stack import NetworkStack

__all__ = ["IcmpLayer"]


class IcmpLayer:
    """ICMP echo handling: in-'kernel' responder plus waiter registry."""
    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        stack.ipv4.register_protocol(IPPROTO_ICMP, self.input)
        #: (ident, seq) -> Event fired with arrival time when a reply lands.
        self._echo_waiters: dict[tuple[int, int], object] = {}
        self._next_ident = 1
        self.echoes_answered = 0

    def alloc_ident(self) -> int:
        """Allocate the next echo identifier (16-bit, wraps, skips 0)."""
        ident = self._next_ident
        self._next_ident = (self._next_ident + 1) & 0xFFFF or 1
        return ident

    def input(self, packet: Packet):
        """Process one received ICMP message (generator, softirq context)."""
        node = self.stack.node
        yield node.exec(
            node.costs.icmp_layer + node.costs.checksum_cost(len(packet.payload))
        )
        hdr = packet.l4
        if not isinstance(hdr, IcmpHeader):
            return
        from repro import trace

        trace.mark(packet, "icmp-deliver", node.sim.now)
        if hdr.icmp_type == IcmpHeader.ECHO_REQUEST:
            # Reply in kernel context with the same payload.
            self.echoes_answered += 1
            reply = IcmpHeader(IcmpHeader.ECHO_REPLY, 0, hdr.ident, hdr.seq)
            # the reply reuses the request's payload: one copy + checksum
            yield node.exec(node.costs.copy_cost(len(packet.payload)))
            yield from self.stack.ipv4.output(
                packet.ip.src, IPPROTO_ICMP, reply, packet.payload
            )
        elif hdr.icmp_type == IcmpHeader.ECHO_REPLY:
            waiter = self._echo_waiters.pop((hdr.ident, hdr.seq), None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(node.sim.now)

    def send_echo(self, dst: "IPv4Addr", ident: int, seq: int, size: int = 56):
        """Send one echo request (generator); returns the waiter event.

        The caller yields the returned event to wait for the reply (or
        races it against a timeout).
        """
        node = self.stack.node
        waiter = node.sim.event(name=f"echo:{ident}:{seq}")
        self._echo_waiters[(ident, seq)] = waiter
        hdr = IcmpHeader(IcmpHeader.ECHO_REQUEST, 0, ident, seq)
        yield node.exec(
            node.costs.icmp_layer
            + node.costs.copy_cost(size)
            + node.costs.checksum_cost(size)
        )
        yield from self.stack.ipv4.output(dst, IPPROTO_ICMP, hdr, bytes(size))
        return waiter
