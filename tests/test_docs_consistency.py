"""Guard the documentation against rot: every artifact the docs promise
must exist, and every bench target in DESIGN.md must be a real file."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignIndex:
    def test_bench_targets_exist(self):
        design = read("DESIGN.md")
        targets = set(re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", design))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            assert (ROOT / target).is_file(), f"DESIGN.md references missing {target}"

    def test_every_bench_file_is_indexed(self):
        design = read("DESIGN.md")
        on_disk = {
            f"benchmarks/{p.name}" for p in (ROOT / "benchmarks").glob("bench_*.py")
        }
        indexed = set(re.findall(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", design))
        assert on_disk == indexed, (
            f"unindexed benches: {on_disk - indexed}; stale index: {indexed - on_disk}"
        )

    def test_inventory_modules_exist(self):
        design = read("DESIGN.md")
        # every "name.py" mentioned in the inventory block must exist
        block = design.split("```")[1]
        missing = []
        current_pkg = "src/repro"
        for line in block.splitlines():
            stripped = line.strip()
            if stripped.endswith("/") and not stripped.startswith("#"):
                continue
            match = re.match(r"(\w+)/\s", line.strip() + " ")
            m_file = re.match(r"\s*(\w+\.py)\s", line)
            if m_file:
                name = m_file.group(1)
                hits = list((ROOT / "src" / "repro").rglob(name))
                assert hits, f"DESIGN.md inventory lists missing module {name}"


class TestReadmePromises:
    def test_examples_exist(self):
        readme = read("README.md")
        for path in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / path).is_file(), f"README references missing {path}"

    def test_cli_commands_exist(self):
        readme = read("README.md")
        from repro import cli

        commands = set(re.findall(r"python -m repro (\w+)", readme))
        parser_src = (ROOT / "src/repro/cli.py").read_text()
        for command in commands:
            assert f'"{command}"' in parser_src, f"README promises unknown CLI {command}"

    def test_docs_files_exist(self):
        readme = read("README.md")
        for path in re.findall(r"`(docs/[\w-]+\.md)`", readme):
            assert (ROOT / path).is_file()


class TestExperimentsCoverage:
    def test_every_figure_and_table_mentioned(self):
        experiments = read("EXPERIMENTS.md")
        for artifact in ["Table", "Figure 4", "Figure 5", "Figures 6–7",
                         "Figures 8–10", "Figure 11", "Ablations"]:
            assert artifact in experiments, f"EXPERIMENTS.md lost section {artifact}"

    def test_bench_references_resolve(self):
        experiments = read("EXPERIMENTS.md")
        for target in re.findall(r"`(bench_[a-z0-9_*]+\.py)`", experiments):
            if "*" in target:
                assert list((ROOT / "benchmarks").glob(target)), target
            else:
                assert (ROOT / "benchmarks" / target).is_file(), target
