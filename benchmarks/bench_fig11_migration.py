"""Figure 11: TCP request-response transactions/sec during live migration.

Two guests on different machines run netperf TCP_RR; one migrates onto
the other's machine (rate jumps once discovery + channel bootstrap
complete) and later migrates away (rate returns to the inter-machine
level).  The paper measures roughly 5,500 trans/s apart and 21,000
trans/s together.
"""

from repro import report, scenarios
from repro.workloads import migration_rr

from _bench_utils import emit

COSTS = scenarios.DEFAULT_COSTS.replace(
    discovery_period=1.0,
    bootstrap_timeout=0.02,
    migration_duration=1.0,
    migration_downtime=0.1,
)


def _measure():
    scn = scenarios.migration_pair(COSTS)
    scn.warmup()
    return migration_rr.run(scn, co_resident_hold=8.0, bin_width=0.5, settle=4.0)


def test_fig11_migration_timeline(run_once, benchmark):
    res = run_once(_measure)
    rates = res.rates()
    times = [round(t, 2) for t, _ in rates]
    values = [v for _, v in rates]
    text = report.format_series(
        "Fig. 11: TCP_RR transactions/sec during migration "
        f"(migrate in at t={res.migrate_in_at:.1f}s, away at t={res.migrate_away_at:.1f}s)",
        "time_s",
        times,
        {"trans/sec": values},
        precision=0,
    )
    emit("fig11_migration", text)

    def mean_rate(t0, t1):
        vals = [v for t, v in rates if t0 <= t <= t1]
        return sum(vals) / len(vals)

    apart_before = mean_rate(1.0, res.migrate_in_at)
    together = mean_rate(res.migrate_in_at + 3.0, res.migrate_away_at)
    apart_after = mean_rate(res.migrate_away_at + 2.0, rates[-1][0])
    benchmark.extra_info["apart_before"] = round(apart_before)
    benchmark.extra_info["together"] = round(together)
    benchmark.extra_info["apart_after"] = round(apart_after)
    # Paper shape: ~4x jump when co-resident, reverse after leaving.
    assert together > 2.5 * apart_before
    assert apart_after < together / 2
