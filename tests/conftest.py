"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def fast_costs():
    """Cost model with short control-plane periods so XenLoop scenario
    tests don't have to simulate 5+ seconds of discovery idle time."""
    return DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


def run_gen(sim: Simulator, gen, timeout: float = 60.0):
    """Run a generator as a process to completion; return its value."""
    proc = sim.process(gen)
    return sim.run_until_complete(proc, timeout=timeout)
