"""The BSD-style socket facade."""

import pytest

from repro import scenarios
from repro.net.sockets import SOCK_DGRAM, SOCK_STREAM, Socket, SocketError
from tests.core.conftest import FAST


@pytest.fixture
def xl():
    scn = scenarios.xenloop(FAST)
    scn.warmup(max_wait=10.0)
    return scn


class TestStream:
    def test_client_server_roundtrip(self, xl):
        sim = xl.sim
        server = Socket(xl.node_b, SOCK_STREAM)
        server.bind(("0.0.0.0", 8901))
        server.listen()
        out = {}

        def srv():
            child, peer = yield from server.accept()
            out["peer"] = peer
            req = yield from child.recv_exactly(5)
            yield from child.sendall(req.upper())
            yield from child.close()

        def cli():
            sock = Socket(xl.node_a, SOCK_STREAM)
            yield from sock.connect((str(xl.ip_b), 8901))
            yield from sock.sendall(b"hello")
            out["reply"] = yield from sock.recv_exactly(5)
            yield from sock.close()

        sim.process(srv())
        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=10)
        assert out["reply"] == b"HELLO"
        assert out["peer"][0] == str(xl.ip_a)

    def test_accept_before_listen_raises(self, xl):
        sock = Socket(xl.node_b, SOCK_STREAM)
        sock.bind(("0.0.0.0", 8902))
        with pytest.raises(SocketError):
            next(sock.accept())

    def test_listen_before_bind_raises(self, xl):
        sock = Socket(xl.node_b, SOCK_STREAM)
        with pytest.raises(SocketError):
            sock.listen()

    def test_send_unconnected_raises(self, xl):
        sock = Socket(xl.node_a, SOCK_STREAM)
        with pytest.raises(SocketError):
            next(sock.sendall(b"x"))

    def test_datagram_op_on_stream_raises(self, xl):
        sock = Socket(xl.node_a, SOCK_STREAM)
        with pytest.raises(SocketError):
            next(sock.sendto(b"x", ("10.0.0.2", 1)))

    def test_bind_foreign_ip_rejected(self, xl):
        sock = Socket(xl.node_a, SOCK_STREAM)
        with pytest.raises(SocketError):
            sock.bind(("1.2.3.4", 80))


class TestDatagram:
    def test_sendto_recvfrom(self, xl):
        sim = xl.sim
        server = Socket(xl.node_b, SOCK_DGRAM)
        server.bind(("0.0.0.0", 8903))
        out = {}

        def srv():
            data, addr = yield from server.recvfrom()
            out["got"] = (data, addr)

        def cli():
            sock = Socket(xl.node_a, SOCK_DGRAM)
            yield from sock.sendto(b"dgram", (str(xl.ip_b), 8903))

        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=10)
        data, (ip, _port) = out["got"]
        assert data == b"dgram"
        assert ip == str(xl.ip_a)

    def test_implicit_bind_on_send(self, xl):
        sim = xl.sim
        sock = Socket(xl.node_a, SOCK_DGRAM)

        def cli():
            yield from sock.sendto(b"x", (str(xl.ip_b), 9))

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=10)
        assert sock.getsockname()[1] != 0

    def test_recvfrom_unbound_raises(self, xl):
        sock = Socket(xl.node_a, SOCK_DGRAM)
        with pytest.raises(SocketError):
            next(sock.recvfrom())

    def test_close_frees_port(self, xl):
        sim = xl.sim
        sock = Socket(xl.node_a, SOCK_DGRAM)
        sock.bind(("0.0.0.0", 8904))

        def closer():
            yield from sock.close()

        sim.run_until_complete(sim.process(closer()), timeout=5)
        rebind = Socket(xl.node_a, SOCK_DGRAM)
        rebind.bind(("0.0.0.0", 8904))

    def test_ops_after_close_raise(self, xl):
        sim = xl.sim
        sock = Socket(xl.node_a, SOCK_DGRAM)

        def closer():
            yield from sock.close()

        sim.run_until_complete(sim.process(closer()), timeout=5)
        with pytest.raises(SocketError):
            next(sock.sendto(b"x", (str(xl.ip_b), 1)))


class TestTransparencyOverBypass:
    def test_same_code_runs_over_socket_bypass_module(self):
        """The facade code is identical whether the transport underneath
        is TCP or the experimental bypass stream."""
        scn = scenarios.xenloop(FAST, socket_bypass=True)
        scn.warmup(max_wait=10.0)
        sim = scn.sim
        server = Socket(scn.node_b, SOCK_STREAM)
        server.bind(("0.0.0.0", 8905))
        server.listen()
        out = {}

        def srv():
            child, _peer = yield from server.accept()
            data = yield from child.recv_exactly(4)
            yield from child.sendall(data[::-1])

        def cli():
            sock = Socket(scn.node_a, SOCK_STREAM)
            yield from sock.connect((str(scn.ip_b), 8905))
            yield from sock.sendall(b"abcd")
            out["reply"] = yield from sock.recv_exactly(4)

        sim.process(srv())
        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=10)
        assert out["reply"] == b"dcba"
        from repro.core.socket_bypass import BypassConnection

        # it really did run over the bypass stream
        assert scn.xenloop_module(scn.node_a).bypass_connects >= 1
