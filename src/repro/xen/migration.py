"""Live migration orchestration (paper Sect. 3.4).

Stop-and-copy model with a pre-copy phase: the guest keeps running for
``migration_duration - migration_downtime``, then

1. pre-migrate callbacks run (XenLoop removes its advertisement, saves
   pending packets, and tears all channels down),
2. the vif suspends (senders block; nothing is lost) and the domain is
   detached from the source machine (XenStore subtree removed, netback
   destroyed, grant/event-channel state dropped),
3. after ``migration_downtime`` the destination adopts the domain: new
   domid, fresh XenStore entries, new netfront/netback wiring,
4. the vif resumes (saved ring packets are re-submitted), a gratuitous
   ARP re-teaches switches and bridges the MAC's new location, and
   post-migrate callbacks run (XenLoop re-advertises; the destination's
   discovery module will announce it within one period).

The guest's *computation* is not frozen during downtime (the simulated
workloads are network-bound and block on the suspended vif); this is
the one divergence from stop-and-copy, documented in DESIGN.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.xen.domain import RUNNING, SUSPENDED

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.domain import Domain
    from repro.xen.machine import XenMachine

__all__ = ["live_migrate", "save_restore"]


def save_restore(guest: "Domain", pause: float):
    """Save the guest to disk and restore it ``pause`` seconds later on
    the same machine (generator).

    The paper notes XenLoop "responds similarly to save-restore and
    shutdown operations on a guest" (Sect. 3.4): the same pre-migrate
    callbacks run (advert removed, channels torn down, pending packets
    saved), the vif suspends, and on restore the guest gets a fresh
    domid and re-advertises.  Returns the new domid.
    """
    machine = guest.machine
    sim = guest.sim

    for cb in list(guest.pre_migrate_callbacks):
        yield from cb()
    if guest.netfront is not None:
        guest.netfront.suspend()
    guest.state = SUSPENDED
    machine.remove_domain(guest)

    yield sim.timeout(pause)

    new_domid = machine.adopt_domain(guest)
    guest.state = RUNNING
    if guest.netfront is not None:
        guest.netfront.resume()
    if guest.stack is not None:
        guest.stack.arp.announce()
        machine.bridge.forget(guest.mac)
    for cb in list(guest.post_migrate_callbacks):
        yield from cb()
    return new_domid


def live_migrate(guest: "Domain", dst_machine: "XenMachine"):
    """Migrate ``guest`` to ``dst_machine`` (generator).

    Run it as a process: ``sim.process(live_migrate(vm, machine_b))``.
    Returns the new domid.
    """
    src_machine = guest.machine
    if src_machine is dst_machine:
        raise ValueError(f"{guest.name} is already on {dst_machine.name}")
    sim = guest.sim
    costs = guest.costs

    # Pre-copy phase: guest runs normally while memory is copied over.
    precopy = max(0.0, costs.migration_duration - costs.migration_downtime)
    yield sim.timeout(precopy)

    # The hypervisor's migration callback into the guest.
    for cb in list(guest.pre_migrate_callbacks):
        yield from cb()

    # Stop-and-copy: freeze the network, detach from the source.
    if guest.netfront is not None:
        guest.netfront.suspend()
    guest.state = SUSPENDED
    src_machine.remove_domain(guest)

    yield sim.timeout(costs.migration_downtime)

    # Resume on the destination.
    new_domid = dst_machine.adopt_domain(guest)
    guest.state = RUNNING
    if guest.netfront is not None:
        guest.netfront.resume()
    if guest.stack is not None:
        guest.stack.arp.announce()
        src_switch_nic = src_machine.nic
        if src_switch_nic is not None and src_switch_nic.switch is not None:
            # The gratuitous ARP also refreshes the physical switch, but
            # dropping the stale entry immediately avoids a blackhole
            # window for frames already in flight.
            src_switch_nic.switch.forget(guest.mac)
        src_machine.bridge.forget(guest.mac)

    for cb in list(guest.post_migrate_callbacks):
        yield from cb()
    return new_domid
