"""Table 3 (and Table 1's latency rows): average latency comparison.

Rows: flood-ping RTT (us), lmbench lat_tcp (us), netperf TCP_RR and
UDP_RR (transactions/s), netpipe-mpich one-way latency (us).
"""

from repro import report
from repro.workloads import lmbench, netperf, netpipe, pingpong

from _bench_utils import SCENARIO_ORDER, build_warm, emit

PAPER = {
    "flood ping RTT (us)": dict(zip(SCENARIO_ORDER, (101, 140, 28, 6))),
    "lmbench lat_tcp (us)": dict(zip(SCENARIO_ORDER, (107, 98, 33, 25))),
    "netperf TCP_RR (trans/s)": dict(zip(SCENARIO_ORDER, (9387, 10236, 28529, 31969))),
    "netperf UDP_RR (trans/s)": dict(zip(SCENARIO_ORDER, (9784, 12600, 32803, 39623))),
    "netpipe-mpich (us)": dict(zip(SCENARIO_ORDER, (77.25, 60.98, 24.89, 23.81))),
}


def _measure():
    rows = {label: {} for label in PAPER}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        rows["flood ping RTT (us)"][name] = pingpong.flood_ping(scn, count=200).rtt_us
        rows["lmbench lat_tcp (us)"][name] = lmbench.lat_tcp(scn, round_trips=400).latency_us
        rows["netperf TCP_RR (trans/s)"][name] = netperf.tcp_rr(scn, duration=0.1).trans_per_sec
        rows["netperf UDP_RR (trans/s)"][name] = netperf.udp_rr(scn, duration=0.1).trans_per_sec
        rows["netpipe-mpich (us)"][name] = netpipe.run(scn, sizes=[64]).points[0].latency_us
    return rows


def test_table3_latency(run_once, benchmark):
    rows = run_once(_measure)
    lines = [
        report.format_table(
            "Table 3: average latency, measured",
            SCENARIO_ORDER,
            list(rows.items()),
            precision=1,
        ),
        "",
        report.format_table(
            "Table 3: average latency, paper",
            SCENARIO_ORDER,
            list(PAPER.items()),
            precision=1,
        ),
    ]
    emit("table3_latency", "\n".join(lines))
    for label, values in rows.items():
        benchmark.extra_info[label] = {k: round(v, 1) for k, v in values.items()}
    # Shape assertions.
    ping = rows["flood ping RTT (us)"]
    assert ping["native_loopback"] < ping["xenloop"] < ping["inter_machine"]
    assert ping["xenloop"] * 2.5 < ping["netfront_netback"]
    rr = rows["netperf TCP_RR (trans/s)"]
    assert rr["xenloop"] > 1.8 * rr["netfront_netback"]
