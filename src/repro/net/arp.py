"""ARP neighbour cache.

The XenLoop software bridge resolves the next-hop MAC of every outgoing
packet "with the help of a system-maintained neighbor cache, which
happens to be the ARP-table cache in the case of IPv4" (paper
Sect. 3.1).  This module is that cache, plus the request/reply protocol
that populates it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addr import BROADCAST_MAC, IPv4Addr, MacAddr
from repro.net.ethernet import ETH_P_ARP
from repro.net.packet import ArpHeader, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack

__all__ = ["NeighborCache"]

ARP_RETRIES = 3
ARP_TIMEOUT = 0.1  # seconds per attempt


class NeighborCache:
    """IP -> MAC table with on-demand resolution."""

    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        self.table: dict[IPv4Addr, MacAddr] = {}
        self._waiters: dict[IPv4Addr, list] = {}
        self.requests_sent = 0
        self.failures = 0

    def lookup(self, ip: IPv4Addr) -> Optional[MacAddr]:
        """Cache-only lookup (the XenLoop hook uses this -- it never
        blocks waiting for resolution)."""
        return self.table.get(ip)

    def snapshot_state(self) -> dict:
        """The resolved table plus in-flight resolution bookkeeping."""
        return {
            "table": {str(ip): str(mac) for ip, mac in self.table.items()},
            "waiters": {str(ip): len(evs) for ip, evs in self._waiters.items()},
            "requests_sent": self.requests_sent,
            "failures": self.failures,
        }

    def insert(self, ip: IPv4Addr, mac: MacAddr) -> None:
        """Install a mapping and wake any resolvers blocked on it."""
        self.table[ip] = mac
        for ev in self._waiters.pop(ip, []):
            if not ev.triggered:
                ev.succeed(mac)

    def flush(self) -> None:
        """Drop every cached mapping."""
        self.table.clear()

    def resolve(self, ip: IPv4Addr):
        """Resolve ``ip`` (generator).  Returns the MAC or None on failure.

        Retries :data:`ARP_RETRIES` times with :data:`ARP_TIMEOUT` spacing,
        like the kernel's unicast ARP probe schedule (simplified).
        """
        node = self.stack.node
        yield node.exec(node.costs.arp_lookup)
        mac = self.table.get(ip)
        if mac is not None:
            return mac
        dev = self.stack.primary_device()
        if dev is None:
            self.failures += 1
            return None
        for _attempt in range(ARP_RETRIES):
            answer = node.sim.event(name=f"arp:{ip}")
            self._waiters.setdefault(ip, []).append(answer)
            yield from self._send(dev, ArpHeader.OP_REQUEST, BROADCAST_MAC, ip)
            self.requests_sent += 1
            result = yield node.sim.any_of([answer, node.sim.timeout(ARP_TIMEOUT)])
            mac = self.table.get(ip)
            if mac is not None:
                return mac
            # Timed out: retract our stale waiter.  insert() pops the
            # whole list on success, so anything still registered here is
            # ours from this attempt; leaving it would grow _waiters[ip]
            # forever for never-resolving addresses.
            waiters = self._waiters.get(ip)
            if waiters is not None:
                try:
                    waiters.remove(answer)
                except ValueError:
                    pass
                if not waiters:
                    del self._waiters[ip]
        self.failures += 1
        return None

    def handle_frame(self, packet: Packet, dev) -> None:
        """Process a received ARP frame (called from the softirq)."""
        arp = ArpHeader.from_bytes(packet.payload)
        # Learn the sender mapping opportunistically, as Linux does.
        self.insert(arp.sender_ip, arp.sender_mac)
        if arp.op == ArpHeader.OP_REQUEST and arp.target_ip == self.stack.ip:
            self.stack.node.spawn(
                self._send(dev, ArpHeader.OP_REPLY, arp.sender_mac, arp.sender_ip),
                name="arp-reply",
            )

    def announce(self) -> None:
        """Send a gratuitous ARP (used after VM migration so switches and
        bridges re-learn the path to this guest's MAC)."""
        dev = self.stack.primary_device()
        if dev is None:
            return
        self.stack.node.spawn(
            self._send(dev, ArpHeader.OP_REPLY, BROADCAST_MAC, self.stack.ip),
            name="arp-gratuitous",
        )

    def _send(self, dev, op: int, target_mac: MacAddr, target_ip: IPv4Addr):
        hdr = ArpHeader(
            op=op,
            sender_mac=dev.mac,
            sender_ip=self.stack.ip,
            target_mac=MacAddr(0) if target_mac.is_broadcast else target_mac,
            target_ip=target_ip,
        )
        yield from self.stack.link_output(dev, target_mac, ETH_P_ARP, hdr.to_bytes())
