"""Scaling past two guests: pairwise channels, all-to-all traffic,
and three-way lifecycle interactions."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState
from repro.core.module import XenLoopModule
from repro.net.addr import IPv4Addr

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


def build_n_guests(n=4):
    """One Xen machine with n guests, all running XenLoop."""
    scn = scenarios.xenloop_mesh(n, FAST)
    return scn, scn.machines[0].guests


def all_to_all_exchange(scn, guests, port, rounds=1):
    """Every guest sends one datagram to every other guest; returns the
    count of (receiver, payload) deliveries."""
    sim = scn.sim
    socks = {g.name: g.stack.udp_socket(port) for g in guests}
    received = []

    def sender(g):
        for _ in range(rounds):
            for peer in guests:
                if peer is g:
                    continue
                yield from socks[g.name].sendto(
                    f"{g.name}->{peer.name}".encode(), (peer.ip, port)
                )
            yield sim.timeout(0.001)

    def receiver(g):
        expect = rounds * (len(guests) - 1)
        for _ in range(expect):
            data, _ = yield from socks[g.name].recvfrom()
            received.append((g.name, data))

    recv_procs = [sim.process(receiver(g)) for g in guests]
    for g in guests:
        sim.process(sender(g))
    for proc in recv_procs:
        sim.run_until_complete(proc, timeout=60)
    for sock in socks.values():
        sock.close()
    return received


class TestFourGuests:
    def test_all_to_all_delivery(self):
        scn, guests = build_n_guests(4)
        scn.sim.run(until=2 * FAST.discovery_period)
        received = all_to_all_exchange(scn, guests, port=8601, rounds=2)
        assert len(received) == 2 * 4 * 3
        # every pair exchanged
        pairs = {tuple(d.decode().split("->")) for _r, d in received}
        assert len(pairs) == 12

    def test_pairwise_channels_form(self):
        scn, guests = build_n_guests(4)
        scn.sim.run(until=2 * FAST.discovery_period)
        for round_port in range(8610, 8618):
            all_to_all_exchange(scn, guests, port=round_port)
            scn.sim.run(until=scn.sim.now + FAST.discovery_period)
            counts = [len(scn.modules[g.name].channels) for g in guests]
            if all(c == 3 for c in counts):
                break
        counts = [len(scn.modules[g.name].channels) for g in guests]
        assert counts == [3, 3, 3, 3]  # full mesh: C(4,2)=6 channels
        # listener/connector roles are consistent per pair
        for g in guests:
            for ch in scn.modules[g.name].channels.values():
                assert ch.state is ChannelState.CONNECTED
                assert ch.is_listener == (g.domid < ch.peer_domid)

    def test_one_guest_shutdown_leaves_mesh_working(self):
        scn, guests = build_n_guests(3)
        scn.sim.run(until=2 * FAST.discovery_period)
        all_to_all_exchange(scn, guests, port=8620)
        scn.sim.run(until=scn.sim.now + FAST.discovery_period)
        victim = guests[-1]
        proc = scn.sim.process(victim.shutdown())
        scn.sim.run_until_complete(proc, timeout=10)
        scn.sim.run(until=scn.sim.now + 2 * FAST.discovery_period)
        survivors = guests[:-1]
        # survivors' modules dropped the dead peer
        for g in survivors:
            assert victim.mac not in scn.modules[g.name].channels
        received = all_to_all_exchange(scn, survivors, port=8621)
        assert len(received) == 2
