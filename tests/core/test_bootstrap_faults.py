"""Bootstrap retry-ladder and recovery tests, driven by the fault
injector: lost CREATE_CHANNEL (retry then abort), lost CHANNEL_ACK
(duplicate-create re-ack), lost CONNECT_REQUEST (announce-driven
connector retry), injected map failure, guest crash mid-handshake, and
lost event-channel notifies."""

import pytest

from repro import faults, scenarios
from repro.core.channel import Channel, ChannelState

from .conftest import FAST, first_channel, udp_once

PAYLOAD = b"fault-injected-datagram!"


def _plan(scn, *rules, seed=0):
    return faults.FaultPlan(rules, seed=seed).bind(scn)


def _drive_until_connected(scn, module, view=None, deadline=3.0):
    """Interleave datagrams with simulated time until the module holds a
    CONNECTED channel.  Bootstrap only initiates on traffic that arrives
    after a discovery announcement has populated the mapping table, so a
    single early datagram is not enough."""
    view = view if view is not None else scn
    sim = scn.sim
    end = sim.now + deadline
    while sim.now < end:
        assert udp_once(view, PAYLOAD) == PAYLOAD
        if any(ch.state is ChannelState.CONNECTED for ch in module.channels.values()):
            return True
        sim.run(until=sim.now + 0.1)
    return False


def _channel_ports(machine):
    """Event-channel ports whose handler is bound to a Channel."""
    return [
        p
        for p in machine.hypervisor.evtchn._ports.values()
        if isinstance(getattr(p.handler, "__self__", None), Channel)
    ]


def _guest_grants(machine):
    """Grant entries granted guest-to-guest (XenLoop's, not netfront's)."""
    dom0 = machine.dom0.domid
    return [
        (domid, gref)
        for domid, table in machine.hypervisor.grant_tables.items()
        for gref, entry in table._entries.items()
        if entry.granted_to != dom0
    ]


class TestRetryLadder:
    def test_dropped_create_channel_recovers_on_retry(self):
        scn = scenarios.xenloop(FAST)
        plan = _plan(
            scn, faults.FaultRule(faults.CONTROL_DROP, message="CreateChannel")
        )
        assert udp_once(scn, PAYLOAD) == PAYLOAD  # first packet: netfront path
        module = scn.xenloop_module(scn.node_a)
        assert _drive_until_connected(scn, module)
        listener = first_channel(scn, scn.node_a)
        assert listener.ctrl.attempts == 2  # one resend consumed
        assert plan.injected["control_drop"] == 1
        assert plan.recovered["bootstrap_retry"] == 1
        assert udp_once(scn, PAYLOAD * 2) == PAYLOAD * 2

    def test_all_creates_dropped_aborts_to_failed_and_falls_back(self):
        scn = scenarios.xenloop(FAST)
        plan = _plan(
            scn,
            faults.FaultRule(faults.CONTROL_DROP, message="CreateChannel", times=None),
        )
        # Traffic completes via the standard netfront path throughout
        # (spaced across announce periods so bootstrap attempts happen).
        for _ in range(4):
            assert udp_once(scn, PAYLOAD) == PAYLOAD
            scn.sim.run(until=scn.sim.now + 0.2)
        # The listener burned its ladder: bootstrap_retries sends, then
        # FAILED -- and the failed channel left the table.
        assert plan.injected["control_drop"] >= FAST.bootstrap_retries
        assert plan.degraded["bootstrap_abort"] >= 1
        module = scn.xenloop_module(scn.node_a)
        assert not any(
            ch.state is ChannelState.CONNECTED for ch in module.channels.values()
        )
        # A clean abort leaks nothing: grants revoked, ports closed.
        machine = scn.machines[0]
        assert _guest_grants(machine) == []
        assert _channel_ports(machine) == []
        assert module.staging_pool.outstanding == 0

    def test_dropped_ack_recovers_via_duplicate_create(self):
        scn = scenarios.xenloop(FAST)
        plan = _plan(
            scn, faults.FaultRule(faults.CONTROL_DROP, message="ChannelAck")
        )
        module = scn.xenloop_module(scn.node_a)
        assert _drive_until_connected(scn, module)
        # The connector was CONNECTED all along; the listener's retry hit
        # the duplicate-CREATE path and got a fresh ack.
        assert plan.injected["control_drop"] == 1
        assert plan.recovered["ack_resend"] == 1
        assert plan.recovered["bootstrap_retry"] == 1
        for node in (scn.node_a, scn.node_b):
            ch = first_channel(scn, node)
            assert ch.state is ChannelState.CONNECTED
        assert udp_once(scn, PAYLOAD) == PAYLOAD

    def test_dropped_connect_request_retried_from_announcement(self):
        scn = scenarios.xenloop(FAST)
        plan = _plan(
            scn, faults.FaultRule(faults.CONTROL_DROP, message="ConnectRequest")
        )
        # vm2 -> vm1: the larger-domid sender is the connector and must
        # open with CONNECT_REQUEST (which the plan eats).
        view = scn.view("vm2", "vm1")
        module = scn.xenloop_module(scn.guests["vm2"])
        assert _drive_until_connected(scn, module, view=view)
        assert plan.injected["control_drop"] == 1
        assert plan.recovered["connreq_resend"] == 1

    def test_map_failure_aborts_then_fresh_channel_connects(self):
        scn = scenarios.xenloop(FAST)
        plan = _plan(scn, faults.FaultRule(faults.MAP_FAIL, times=1))
        module = scn.xenloop_module(scn.node_a)
        assert _drive_until_connected(scn, module)
        assert plan.injected["map_fail"] == 1
        assert plan.degraded["map_failed"] == 1
        # The listener's retry ladder re-sent CREATE_CHANNEL to a fresh
        # connector-side channel, which mapped cleanly.
        assert plan.recovered["bootstrap_retry"] == 1
        machine = scn.machines[0]
        # Only the live channel's grants remain (no leftovers from the
        # aborted first mapping).
        connected = [
            ch
            for ch in module.channels.values()
            if ch.state is ChannelState.CONNECTED
        ]
        assert connected
        assert len(_channel_ports(machine)) == 2  # one bound pair


class TestCrashDuringBootstrap:
    def test_survivor_converges_without_leaks(self):
        scn = scenarios.xenloop(FAST)
        plan = _plan(
            scn,
            faults.FaultRule(faults.CRASH, guest="vm2", phase="bootstrapping"),
        )
        sim = scn.sim
        client = scn.node_a.stack.udp_socket()

        def drive():
            for _ in range(10):
                yield from client.sendto(PAYLOAD, (scn.ip_b, 7300))
                yield sim.timeout(0.05)

        proc = sim.process(drive(), name="crash-traffic")
        sim.run_until_complete(proc, timeout=30.0)
        sim.run(until=sim.now + 1.0)  # several announce periods to settle

        assert plan.injected["crash"] == 1
        assert not scn.guests["vm2"].alive
        # The survivor gave up cleanly (FAILED via the retry ladder
        # and/or the announce prune) and holds no channel state.
        module = scn.xenloop_module(scn.node_a)
        assert not any(
            ch.state is ChannelState.CONNECTED for ch in module.channels.values()
        )
        machine = scn.machines[0]
        assert _guest_grants(machine) == []
        assert _channel_ports(machine) == []
        assert module.staging_pool.outstanding == 0
        assert scn.node_a.stack.arp._waiters == {}


class TestNotifyLoss:
    def test_dropped_notifies_recovered_by_drain_recheck(self):
        scn = scenarios.xenloop(FAST)
        scn.warmup(max_wait=10.0)
        # Install the plan only now: every notify from here on is
        # channel traffic, not bootstrap-era netfront ring wakeups.
        plan = _plan(scn, faults.FaultRule(faults.NOTIFY_DROP, times=3))
        sim = scn.sim
        server = scn.node_b.stack.udp_socket(7301)
        received = []

        def srv():
            while True:
                data, _ = yield from server.recvfrom()
                received.append(data)

        sim.process(srv(), name="notify-server")
        client = scn.node_a.stack.udp_socket()

        def drive():
            for _ in range(10):
                yield from client.sendto(PAYLOAD, (scn.ip_b, 7301))
                yield sim.timeout(0.01)

        proc = sim.process(drive(), name="notify-traffic")
        sim.run_until_complete(proc, timeout=30.0)
        sim.run(until=sim.now + 0.5)
        assert plan.injected["notify_drop"] == 3
        assert len(received) == 10


class TestDeterminism:
    @pytest.mark.parametrize("cell_name", ["drop:ChannelAck", "crash:bootstrapping"])
    def test_same_seed_same_plan_is_bit_identical(self, cell_name):
        from repro.scenarios.fault_matrix import matrix_cells, run_cell

        cell = next(c for c in matrix_cells() if c.name == cell_name)
        first = run_cell(cell, seed=3)
        second = run_cell(cell, seed=3)
        assert first == second  # counters, delivery, AND event count
        assert first["ok"]
