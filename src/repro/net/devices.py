"""Network device model.

A :class:`NetDevice` is the boundary between a node's stack and some
transport medium.  Devices implement:

* ``tx_cost(packet)`` -- CPU charged to the *sender* per packet (driver
  transmit work); charged by the IP output path before ``queue_xmit``.
* ``queue_xmit(packet)`` -- hand the frame to the medium; returns an
  event that fires when the device *accepted* the frame (backpressure:
  a full transmit ring/queue delays this).
* ``rx_cost(packet)`` -- CPU charged to the *receiver's* softirq per
  packet before protocol processing.

Concrete devices: :class:`LoopbackDevice` here, the physical NIC in
``repro.net.nic``, and the paravirtual ``vif`` in ``repro.xennet``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addr import MacAddr
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.net.stack import NetworkStack

__all__ = ["LoopbackDevice", "NetDevice", "decode_frame", "encode_frame"]


def encode_frame(packet: "Packet") -> tuple:
    """Serialize an ethernet frame for transport to another shard.

    Cross-shard traffic is bridged ethernet frames only, so the wire
    image is all that has to survive the process boundary: the ethernet
    header plus either the L3 bytes (IP frames -- reusing the
    serialization cache, so a forwarded frame packs at most once) or the
    raw payload (ARP / XenLoop discovery frames, which carry their
    serialized body in ``payload``).  ``meta`` is diagnostic-only
    (trace timestamps, "via" tags) and is deliberately dropped.
    """
    eth = packet.eth
    eth_bytes = eth.to_bytes() if eth is not None else None
    if packet.ip is not None:
        return (eth_bytes, True, packet.to_l3_bytes())
    return (eth_bytes, False, packet.payload)


def decode_frame(blob: tuple) -> "Packet":
    """Rebuild a :func:`encode_frame` blob into a fresh Packet."""
    from repro.net.packet import EthHeader, Packet

    eth_bytes, is_ip, body = blob
    if is_ip:
        packet = Packet.from_l3_bytes(body)
    else:
        packet = Packet(payload=body)
    if eth_bytes is not None:
        packet.eth = EthHeader.from_bytes(eth_bytes)
    return packet


class NetDevice:
    """Base network device."""

    def __init__(
        self,
        name: str,
        mac: MacAddr,
        mtu: int = 1500,
        gso: bool = False,
    ):
        self.name = name
        self.mac = mac
        self.mtu = mtu
        #: whether TCP segments larger than the MTU may be handed to the
        #: device whole (TSO/GSO).  Virtual and loopback devices support
        #: this; the physical NIC model does not.
        self.gso = gso
        self.stack: "NetworkStack | None" = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped = 0

    # -- to be provided by subclasses ------------------------------------
    def tx_cost(self, packet: "Packet") -> float:  # pragma: no cover - abstract
        """CPU charged to the sender per transmitted packet."""
        raise NotImplementedError

    def rx_cost(self, packet: "Packet") -> float:  # pragma: no cover - abstract
        """CPU charged to the receiver's softirq per received packet."""
        raise NotImplementedError

    def queue_xmit(self, packet: "Packet") -> Event:  # pragma: no cover - abstract
        """Hand a frame to the medium; the event fires on acceptance."""
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------
    def attach(self, stack: "NetworkStack") -> None:
        """Bind the device to its owning stack."""
        self.stack = stack

    def count_tx(self, packet: "Packet") -> None:
        """Update transmit counters for one outgoing frame."""
        self.tx_packets += 1
        self.tx_bytes += packet.wire_len

    def deliver_up(self, packet: "Packet") -> None:
        """Hand a received frame to the owning stack's backlog."""
        if self.stack is None:
            raise RuntimeError(f"device {self.name} not attached to a stack")
        self.rx_packets += 1
        self.rx_bytes += packet.wire_len
        self.stack.deliver(packet, self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name} mac={self.mac}>"


class LoopbackDevice(NetDevice):
    """The local loopback interface (``lo``).

    Used by the paper's "native loopback" baseline: two processes on a
    non-virtualized host talking through the kernel's loopback path.
    Linux gives ``lo`` a 64 KB MTU and GSO, so large writes traverse
    the stack as single packets -- which is why native loopback
    bandwidth is the ceiling in Table 2.
    """

    def __init__(self, node, costs, name: str = "lo"):
        super().__init__(name, MacAddr(0), mtu=65535, gso=True)
        self.node = node
        self.costs = costs

    def tx_cost(self, packet: "Packet") -> float:
        """Loopback transmit cost (softirq reinjection)."""
        return self.costs.loopback_xmit

    def rx_cost(self, packet: "Packet") -> float:
        """Loopback receive cost (softirq reinjection)."""
        return self.costs.loopback_xmit

    def queue_xmit(self, packet: "Packet") -> Event:
        """Reinject the frame straight into the owning stack's backlog."""
        self.count_tx(packet)
        self.deliver_up(packet)
        done = self.node.sim.event(name="lo.xmit")
        done.succeed()
        return done
