"""Grant-table semantics: the invariants XenLoop's bootstrap relies on."""

import pytest

from repro.xen.grant_table import GrantError, GrantTable
from repro.xen.page import Page, SharedRegion


@pytest.fixture
def table():
    return GrantTable(domid=1)


@pytest.fixture
def page():
    return Page(owner=1)


class TestAccessGrants:
    def test_grant_and_map(self, table, page):
        gref = table.grant_foreign_access(2, page)
        mapped = table.map_grant(gref, 2)
        assert mapped is page

    def test_mapped_page_shares_memory(self, table):
        region = SharedRegion(1, 2)
        gref = table.grant_foreign_access(2, region.pages[0])
        mapped = table.map_grant(gref, 2)
        region.pages[0].buf[10] = 0xAB
        assert mapped.buf[10] == 0xAB

    def test_wrong_domain_cannot_map(self, table, page):
        gref = table.grant_foreign_access(2, page)
        with pytest.raises(GrantError):
            table.map_grant(gref, 3)

    def test_self_grant_rejected(self, table, page):
        with pytest.raises(GrantError):
            table.grant_foreign_access(1, page)

    def test_unknown_gref_rejected(self, table):
        with pytest.raises(GrantError):
            table.map_grant(999, 2)

    def test_revoke_unmapped(self, table, page):
        gref = table.grant_foreign_access(2, page)
        table.end_foreign_access(gref)
        with pytest.raises(GrantError):
            table.map_grant(gref, 2)

    def test_revoke_while_mapped_fails(self, table, page):
        gref = table.grant_foreign_access(2, page)
        table.map_grant(gref, 2)
        with pytest.raises(GrantError, match="still mapped"):
            table.end_foreign_access(gref)

    def test_unmap_then_revoke(self, table, page):
        gref = table.grant_foreign_access(2, page)
        table.map_grant(gref, 2)
        table.unmap_grant(gref, 2)
        table.end_foreign_access(gref)
        assert table.active_entries == 0

    def test_unmap_not_mapped_raises(self, table, page):
        gref = table.grant_foreign_access(2, page)
        with pytest.raises(GrantError):
            table.unmap_grant(gref, 2)

    def test_grefs_are_unique(self, table, page):
        grefs = {table.grant_foreign_access(2, Page(owner=1)) for _ in range(100)}
        assert len(grefs) == 100


class TestTransferGrants:
    def test_transfer_changes_ownership(self, table, page):
        gref = table.grant_foreign_transfer(2, page)
        got = table.transfer(gref, 2)
        assert got.owner == 2

    def test_transfer_grant_not_mappable(self, table, page):
        gref = table.grant_foreign_transfer(2, page)
        with pytest.raises(GrantError):
            table.map_grant(gref, 2)

    def test_access_grant_not_transferable(self, table, page):
        gref = table.grant_foreign_access(2, page)
        with pytest.raises(GrantError):
            table.transfer(gref, 2)

    def test_transfer_requires_ownership(self, table):
        foreign_page = Page(owner=9)
        with pytest.raises(GrantError):
            table.grant_foreign_transfer(2, foreign_page)

    def test_transfer_single_use(self, table, page):
        gref = table.grant_foreign_transfer(2, page)
        table.transfer(gref, 2)
        with pytest.raises(GrantError):
            table.transfer(gref, 2)

    def test_transfer_wrong_domain(self, table, page):
        gref = table.grant_foreign_transfer(2, page)
        with pytest.raises(GrantError):
            table.transfer(gref, 3)


class TestBulkRevoke:
    def test_revoke_all_for_peer(self, table):
        for _ in range(5):
            table.grant_foreign_access(2, Page(owner=1))
        table.grant_foreign_access(3, Page(owner=1))
        assert table.revoke_all_for(2) == 5
        assert table.active_entries == 1

    def test_revoke_all_mapped_needs_force(self, table, page):
        gref = table.grant_foreign_access(2, page)
        table.map_grant(gref, 2)
        with pytest.raises(GrantError):
            table.revoke_all_for(2)
        assert table.revoke_all_for(2, force=True) == 1

    def test_stats(self, table, page):
        gref = table.grant_foreign_access(2, page)
        table.map_grant(gref, 2)
        assert table.grants_issued == 1
        assert table.maps == 1
