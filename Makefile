# Developer conveniences.  `make install` prefers a real editable install
# and falls back to a .pth path link when the environment lacks `wheel`
# (e.g. offline images).

PYTHON ?= python

.PHONY: install test bench bench-all bench-smoke bench-shard-smoke bigcluster-smoke congestion-smoke serving-smoke fault-matrix fault-matrix-shard snapshot-smoke examples clean

install:
	@$(PYTHON) -m pip install -e . 2>/dev/null || ( \
		echo "pip editable install unavailable; linking via .pth"; \
		echo "$(CURDIR)/src" > "$$($(PYTHON) -c 'import site; print(site.getsitepackages()[0])')/repro-dev.pth" )
	@$(PYTHON) -c "import repro; print('repro', repro.__version__, 'ready')"

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Full suite, fanned out over a process pool (one worker per bench
# file); merged summary lands in benchmarks/results/run_benches.json.
bench-all:
	PYTHONPATH=src $(PYTHON) tools/run_benches.py

# Quick perf pulse: engine events/sec (writes BENCH_engine.json at the
# repo root) plus one short table bench, so the perf trajectory is
# tracked without running the full bench suite.
bench-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_throughput.py
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_table3_latency.py --benchmark-only -s

# Sharded-engine pulse: the multiprocess PDES scaling bench at 1 and 2
# workers on the 2-machine grid (short duration -- this is a CI smoke,
# not the recorded scaling figure), then the like-for-like regression
# gate over BENCH_engine.json.
bench-shard-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_throughput.py --shards 1 --machines 2 --duration 0.1 --reps 1
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine_throughput.py --shards 2 --machines 2 --duration 0.1 --reps 1
	$(PYTHON) tools/check_bench_regression.py

# Control-plane scale smoke: a ~100-guest delta-discovery cluster under
# churn; asserts O(changes) control messages per scan (announce mode
# would be O(n) frames / O(n^2) receptions), channel tables bounded by
# the per-guest budget, and sparse per-guest rosters.  Exits nonzero on
# any violation; records a cluster_scale entry in BENCH_engine.json.
bigcluster-smoke:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cluster_scale.py --smoke

# Congestion smoke: the incast + fairness golden tests, then the
# CI-sized congestion cells (FIFO vs netfront, lossless vs bridge
# loss), appended to BENCH_engine.json as kind="congestion" entries.
congestion-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_congestion.py -q
	PYTHONPATH=src $(PYTHON) benchmarks/bench_congestion.py --smoke

# Serving smoke: the open-loop tail-latency golden tests, then the
# CI-sized offered-load sweep (0.5x/0.8x/0.95x of each path's probed
# capacity), appended to BENCH_engine.json as kind="serving" entries.
serving-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/integration/test_serving.py -q
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serving.py --smoke

# Fault-injection matrix: every {frame type x handshake phase x fault
# kind} cell must converge (exit nonzero when any cell leaks or hangs).
fault-matrix:
	PYTHONPATH=src $(PYTHON) -m repro faults

# The same sweep with each cell split across two shard processes, so
# fault injection and recovery are exercised across the null-message
# protocol boundary.
fault-matrix-shard:
	PYTHONPATH=src $(PYTHON) -m repro faults --shards 2

# Checkpoint/warm-start smoke: snapshot mechanics + fork-equivalence
# goldens, then a save -> digest-verified fork round trip through the
# CLI (the time-travel path for replaying a failing fault cell).
snapshot-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/sim/test_snapshot.py tests/integration/test_snapshot_fork.py -q
	PYTHONPATH=src $(PYTHON) -m repro snapshot save --cell notify_drop --out /tmp/repro-snapshot-smoke.json
	PYTHONPATH=src $(PYTHON) -m repro snapshot fork /tmp/repro-snapshot-smoke.json --cell notify_drop --runs 2
	rm -f /tmp/repro-snapshot-smoke.json

examples:
	@for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
