"""Future-work evaluation: transport-layer XenLoop (Sect. 6).

The paper closes by proposing to move the interception "between the
socket and transport layers ... [to eliminate] network protocol
processing overhead from the inter-VM data path."  We implemented that
variant (repro.core.socket_bypass); this bench quantifies what it would
have bought, against the shipped below-network-layer design, for TCP
workloads between co-resident guests.
"""

from repro import report, scenarios
from repro.workloads import netperf

from _bench_utils import BENCH_COSTS, emit

VARIANTS = {
    "below network layer (paper)": False,
    "socket-layer bypass (future work)": True,
}


def _measure():
    rows = {}
    for label, bypass in VARIANTS.items():
        scn = scenarios.xenloop(BENCH_COSTS, socket_bypass=bypass)
        scn.warmup(max_wait=20.0)
        rows[label] = {
            "tcp_rr_per_s": netperf.tcp_rr(scn, duration=0.1).trans_per_sec,
            "tcp_stream_mbps": netperf.tcp_stream(scn, duration=0.03).mbps,
            "lat_us": 1e6 / netperf.tcp_rr(scn, duration=0.05, port=5211).trans_per_sec,
        }
    return rows


def test_future_work_socket_bypass(run_once, benchmark):
    rows = run_once(_measure)
    columns = ["tcp_rr_per_s", "tcp_stream_mbps", "lat_us"]
    emit(
        "future_socket_bypass",
        report.format_table(
            "Future work: below-network-layer XenLoop vs socket-layer bypass",
            columns,
            list(rows.items()),
            precision=1,
        ),
    )
    benchmark.extra_info.update(
        {k: {c: round(v, 1) for c, v in row.items()} for k, row in rows.items()}
    )
    base = rows["below network layer (paper)"]
    future = rows["socket-layer bypass (future work)"]
    # Eliminating TCP/IP processing pays on both latency and throughput.
    assert future["tcp_rr_per_s"] > 1.2 * base["tcp_rr_per_s"]
    assert future["tcp_stream_mbps"] > base["tcp_stream_mbps"]