"""Congestion scenarios: N-to-1 incast and elephant/mice fairness.

The paper's evaluation never stresses the path with competing flows or
loss -- XenLoop's FIFO never drops, and netperf runs one flow at a
time.  These scenarios open that space (ROADMAP's "TCP congestion
realism" item):

* :func:`xenloop_incast` -- ``n_senders`` guests blast into one sink
  guest concurrently on a single Xen machine.
* :func:`xenloop_fairness` -- long-lived elephant streams share the
  sink with short bursty mice.

Both take ``data_path="fifo"`` (XenLoop loaded everywhere; guest
traffic bypasses the bridge) or ``"netfront"`` (plain split-driver path
through the Dom0 bridge).  The builders arm a real slow start
(``tcp_initial_cwnd=10`` unless the caller already set one); bridge
loss is injected separately with :func:`loss_plan` so the lossless
cells stay bit-identical to a run without the faults module.

:func:`run_incast_cell` / :func:`run_fairness_cell` are the shared
drivers behind the golden tests, ``benchmarks/bench_congestion.py``
and ``make congestion-smoke``: build, optionally arm loss, warm up,
run, and return a flat deterministic summary dict.
"""

from __future__ import annotations

from repro import topology
from repro.calibration import DEFAULT_COSTS, CostModel
from repro.faults import PKT_LOSS, FaultPlan, FaultRule
from repro.scenarios.registry import scenario
from repro.topology import Cluster

__all__ = [
    "loss_plan",
    "run_fairness_cell",
    "run_incast_cell",
    "xenloop_fairness",
    "xenloop_incast",
]

#: initial congestion window (MSS units) armed by the builders.
_SCENARIO_IW = 10


def _cc_costs(costs: CostModel) -> CostModel:
    """Arm a real slow start unless the caller pinned an initial cwnd."""
    if costs.tcp_initial_cwnd > 0:
        return costs
    return costs.replace(tcp_initial_cwnd=_SCENARIO_IW)


def _module_for(data_path: str):
    if data_path == "fifo":
        return "xenloop"
    if data_path == "netfront":
        return None
    raise ValueError(f"data_path must be 'fifo' or 'netfront', not {data_path!r}")


@scenario()
def xenloop_incast(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    n_senders: int = 4,
    data_path: str = "fifo",
) -> Cluster:
    """N-to-1 incast: ``n_senders`` source guests and one sink guest,
    co-resident on one Xen machine."""
    module = _module_for(data_path)
    guests = [topology.GuestSpec("sink", module=module)]
    guests += [
        topology.GuestSpec(f"src{i + 1}", module=module) for i in range(n_senders)
    ]
    spec = topology.ClusterSpec(
        name="xenloop_incast",
        machines=(topology.MachineSpec(name="xenhost", guests=tuple(guests)),),
        endpoints=("src1", "sink"),
    )
    return spec.build(_cc_costs(costs), seed=seed)


@scenario()
def xenloop_fairness(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    n_elephants: int = 2,
    n_mice: int = 3,
    data_path: str = "fifo",
) -> Cluster:
    """Elephant/mice fairness: long streams and short bursts sharing
    one sink guest on one Xen machine."""
    module = _module_for(data_path)
    guests = [topology.GuestSpec("sink", module=module)]
    guests += [topology.GuestSpec(f"e{i + 1}", module=module) for i in range(n_elephants)]
    guests += [topology.GuestSpec(f"m{i + 1}", module=module) for i in range(n_mice)]
    spec = topology.ClusterSpec(
        name="xenloop_fairness",
        machines=(topology.MachineSpec(name="xenhost", guests=tuple(guests)),),
        endpoints=("e1", "sink"),
    )
    return spec.build(_cc_costs(costs), seed=seed)


def loss_plan(loss: float, seed: int = 0, machine: str = "xenhost") -> FaultPlan:
    """A fault plan dropping each TCP frame crossing ``machine``'s
    bridge with probability ``loss`` (the FIFO path never crosses the
    bridge, so XenLoop traffic is structurally exempt)."""
    rule = FaultRule(kind=PKT_LOSS, message="tcp", guest=machine, prob=loss, times=None)
    return FaultPlan([rule], seed=seed)


def _summarize(scn: Cluster, result, extra: dict) -> dict:
    from repro import trace

    stats = trace.engine_stats(scn.sim)
    out = {
        **extra,
        "events": stats["events"],
        "aggregate_mbps": round(getattr(result, "aggregate_mbps", 0.0), 3),
        "fairness": round(result.fairness, 6),
        "retransmissions": result.retransmissions,
        "fast_retransmits": result.fast_retransmits,
        "rto_retransmits": result.rto_retransmits,
        "tcp": stats.get("tcp"),
    }
    plan = getattr(scn.sim, "fault_plan", None)
    if plan is not None:
        out["frames_dropped"] = plan.injected.get(PKT_LOSS, 0)
    return out


def run_incast_cell(
    data_path: str = "fifo",
    loss: float = 0.0,
    n_senders: int = 4,
    bytes_per_flow: int = 1 << 20,
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Build + run one incast cell; returns a flat deterministic dict."""
    from repro.workloads import congestion

    scn = xenloop_incast(
        costs=costs, seed=seed, n_senders=n_senders, data_path=data_path
    )
    if loss > 0.0:
        loss_plan(loss, seed=seed).bind(scn)
    scn.warmup()
    senders = [f"src{i + 1}" for i in range(n_senders)]
    result = congestion.tcp_incast(
        scn, server="sink", senders=senders, bytes_per_flow=bytes_per_flow
    )
    cell = {
        "scenario": "incast",
        "data_path": data_path,
        "loss": loss,
        "n_flows": n_senders,
        "duration": round(result.duration, 9),
    }
    return _summarize(scn, result, cell)


def run_fairness_cell(
    data_path: str = "fifo",
    loss: float = 0.0,
    n_elephants: int = 2,
    n_mice: int = 3,
    duration: float = 0.2,
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Build + run one fairness cell; returns a flat deterministic dict."""
    from repro.workloads import congestion

    scn = xenloop_fairness(
        costs=costs,
        seed=seed,
        n_elephants=n_elephants,
        n_mice=n_mice,
        data_path=data_path,
    )
    if loss > 0.0:
        loss_plan(loss, seed=seed).bind(scn)
    scn.warmup()
    result = congestion.tcp_fairness(
        scn,
        server="sink",
        elephants=[f"e{i + 1}" for i in range(n_elephants)],
        mice=[f"m{i + 1}" for i in range(n_mice)],
        duration=duration,
    )
    cell = {
        "scenario": "fairness",
        "data_path": data_path,
        "loss": loss,
        "n_flows": n_elephants + n_mice,
        "duration": round(result.duration, 9),
        "elephant_mbps": round(result.elephant_mbps, 3),
        "mice_mbps": round(result.mice_mbps, 3),
        "fairness_elephants": round(result.fairness_elephants, 6),
    }
    return _summarize(scn, result, cell)
