"""The lockless FIFO: layout, wraparound, m>k index arithmetic, and
hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fifo import (
    FLAG_ACTIVE,
    Fifo,
    FifoLayoutError,
    INDEX_MASK,
    MAGIC,
    fifo_pages_for_order,
)
from repro.xen.page import PAGE_SIZE, SharedRegion


def make_fifo(k=9):
    region = SharedRegion(1, 1 + fifo_pages_for_order(k))
    return Fifo(region, k=k)


class TestLayout:
    def test_pages_for_order(self):
        assert fifo_pages_for_order(13) == 16  # 64 KB
        assert fifo_pages_for_order(9) == 1
        assert fifo_pages_for_order(8) == 1  # sub-page rounds up

    def test_descriptor_initialized(self):
        fifo = make_fifo(9)
        assert fifo.active
        assert fifo.size == 512
        assert fifo.is_empty

    def test_magic_written(self):
        fifo = make_fifo(9)
        assert int(fifo._desc[0]) == MAGIC

    def test_consumer_view_reads_layout(self):
        producer = make_fifo(10)
        consumer = Fifo(producer.region)  # k=None: read back
        assert consumer.k == 10
        assert consumer.size == producer.size

    def test_unformatted_region_rejected(self):
        region = SharedRegion(1, 2)
        with pytest.raises(FifoLayoutError):
            Fifo(region)

    def test_region_too_small_rejected(self):
        region = SharedRegion(1, 2)  # 1 data page = 4 KB
        with pytest.raises(FifoLayoutError):
            Fifo(region, k=13)  # needs 64 KB

    def test_k_bounds(self):
        region = SharedRegion(1, 2)
        with pytest.raises(FifoLayoutError):
            Fifo(region, k=0)
        with pytest.raises(FifoLayoutError):
            Fifo(region, k=32)  # m must exceed k

    def test_capacity_bytes(self):
        fifo = make_fifo(13)
        assert fifo.capacity_bytes == (8192 - 1) * 8
        assert fifo.fits(fifo.capacity_bytes)
        assert not fifo.fits(fifo.capacity_bytes + 1)


class TestPushPop:
    def test_roundtrip(self):
        fifo = make_fifo()
        assert fifo.push(b"hello", msg_type=3)
        assert fifo.pop() == (3, b"hello")
        assert fifo.is_empty

    def test_empty_pop_none(self):
        assert make_fifo().pop() is None

    def test_fifo_order(self):
        fifo = make_fifo()
        for i in range(10):
            fifo.push(bytes([i]) * (i + 1))
        for i in range(10):
            assert fifo.pop() == (1, bytes([i]) * (i + 1))

    def test_zero_length_payload(self):
        fifo = make_fifo()
        fifo.push(b"")
        assert fifo.pop() == (1, b"")

    def test_full_rejects_push(self):
        fifo = make_fifo(9)  # 512 slots = 4096 bytes of slots
        big = bytes(1000)  # 126 slots each
        pushed = 0
        while fifo.push(big):
            pushed += 1
        assert pushed == 4  # 4*126=504 slots; a 5th (126) cannot fit in 8
        assert fifo.push_failures == 1

    def test_exact_fill(self):
        fifo = make_fifo(4)  # 16 slots
        assert fifo.push(bytes(15 * 8))  # needs exactly 16 slots
        assert fifo.used_slots == fifo.size
        assert fifo.free_slots == 0
        assert not fifo.is_empty
        assert fifo.pop() == (1, bytes(15 * 8))

    def test_interleaved_producer_consumer_views(self):
        producer = make_fifo(9)
        consumer = Fifo(producer.region)
        producer.push(b"one")
        assert consumer.pop() == (1, b"one")
        producer.push(b"two")
        assert consumer.pop() == (1, b"two")
        assert consumer.pop() is None


class TestWraparound:
    def test_data_wraps_ring_boundary(self):
        fifo = make_fifo(6)  # 64 slots
        filler = bytes(8 * 50)
        fifo.push(filler)
        fifo.pop()
        # ring position is now near the end; this entry must wrap
        payload = bytes(range(100))
        assert fifo.push(payload)
        assert fifo.pop() == (1, payload)

    def test_index_wraps_mod_2_32(self):
        fifo = make_fifo(4)
        # Force indices close to the 32-bit boundary, as the free-running
        # m-bit counters eventually do.
        fifo._desc[2] = INDEX_MASK - 5  # front
        fifo._desc[3] = INDEX_MASK - 5  # back
        assert fifo.is_empty
        payload = bytes(40)
        assert fifo.push(payload)
        assert fifo.used_slots == 6
        assert fifo.pop() == (1, payload)
        assert fifo.front == (INDEX_MASK - 5 + 6) & INDEX_MASK

    def test_many_cycles(self):
        fifo = make_fifo(5)  # 32 slots
        for i in range(500):
            data = bytes([i % 256]) * (i % 64)
            assert fifo.push(data, msg_type=2)
            assert fifo.pop() == (2, data)


class TestFlags:
    def test_mark_inactive_visible_to_peer_view(self):
        producer = make_fifo()
        consumer = Fifo(producer.region)
        producer.mark_inactive()
        assert not consumer.active

    def test_producer_waiting_flag(self):
        fifo = make_fifo()
        assert not fifo.producer_waiting
        fifo.set_producer_waiting()
        assert fifo.producer_waiting
        fifo.clear_producer_waiting()
        assert not fifo.producer_waiting
        assert fifo.active  # flag ops don't clobber ACTIVE

    def test_gref_table_roundtrip(self):
        fifo = make_fifo()
        grefs = [5, 99, 1234, 7]
        fifo.store_grefs(grefs)
        assert fifo.load_grefs() == grefs
        consumer = Fifo(fifo.region)
        assert consumer.load_grefs() == grefs


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=300), max_size=50))
    def test_push_all_pop_all(self, payloads):
        fifo = make_fifo(12)
        accepted = [p for p in payloads if fifo.push(p)]
        popped = []
        while (entry := fifo.pop()) is not None:
            popped.append(entry[1])
        assert popped == accepted

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.binary(min_size=0, max_size=200)),
                st.tuples(st.just("pop"), st.none()),
            ),
            max_size=200,
        )
    )
    def test_interleaved_ops_preserve_order_and_capacity(self, ops):
        fifo = make_fifo(6)
        model = []
        for op, arg in ops:
            if op == "push":
                ok = fifo.push(arg)
                model_ok = fifo.slots_needed(len(arg)) <= 64 - sum(
                    fifo.slots_needed(len(m)) for m in model
                )
                assert ok == model_ok
                if ok:
                    model.append(arg)
            else:
                got = fifo.pop()
                if model:
                    assert got == (1, model.pop(0))
                else:
                    assert got is None
        # Drain and verify the remainder.
        for expected in model:
            assert fifo.pop() == (1, expected)
        assert fifo.pop() is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_any_index_origin_behaves(self, origin):
        """The m>k free-running index scheme works from any index origin."""
        fifo = make_fifo(5)
        fifo._desc[2] = origin
        fifo._desc[3] = origin
        data = bytes(77)
        assert fifo.push(data)
        assert fifo.pop() == (1, data)
        assert fifo.is_empty
