"""Header serialization and packet round-trips (what the FIFO carries)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import IPv4Addr, MacAddr
from repro.net.ethernet import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP
from repro.net.packet import (
    ArpHeader,
    EthHeader,
    IPv4Header,
    IcmpHeader,
    Packet,
    TcpHeader,
    UdpHeader,
    TCP_ACK,
    TCP_SYN,
)


class TestHeaderSerialization:
    def test_eth_roundtrip(self):
        hdr = EthHeader(MacAddr(1), MacAddr(2), 0x0800)
        back = EthHeader.from_bytes(hdr.to_bytes())
        assert back == hdr
        assert len(hdr.to_bytes()) == EthHeader.HEADER_LEN

    def test_arp_roundtrip(self):
        hdr = ArpHeader(1, MacAddr(3), IPv4Addr("10.0.0.1"), MacAddr(0), IPv4Addr("10.0.0.2"))
        assert ArpHeader.from_bytes(hdr.to_bytes()) == hdr

    def test_ipv4_roundtrip(self):
        hdr = IPv4Header(
            src=IPv4Addr("10.0.0.1"),
            dst=IPv4Addr("10.0.0.2"),
            proto=IPPROTO_UDP,
            ident=77,
            frag_offset=1480,
            more_frags=True,
            total_length=1500,
        )
        back = IPv4Header.from_bytes(hdr.to_bytes())
        assert back == hdr
        assert len(hdr.to_bytes()) == IPv4Header.HEADER_LEN == 20

    def test_ipv4_unaligned_fragment_rejected(self):
        hdr = IPv4Header(IPv4Addr(1), IPv4Addr(2), IPPROTO_UDP, frag_offset=5)
        with pytest.raises(ValueError):
            hdr.to_bytes()

    def test_udp_roundtrip(self):
        hdr = UdpHeader(1234, 80, 108)
        assert UdpHeader.from_bytes(hdr.to_bytes()) == hdr
        assert len(hdr.to_bytes()) == UdpHeader.HEADER_LEN

    def test_tcp_roundtrip(self):
        hdr = TcpHeader(40000, 80, seq=12345, ack=999, flags=TCP_SYN | TCP_ACK, window=5000)
        back = TcpHeader.from_bytes(hdr.to_bytes())
        assert back == hdr
        assert len(hdr.to_bytes()) == TcpHeader.HEADER_LEN == 20

    def test_icmp_roundtrip(self):
        hdr = IcmpHeader(IcmpHeader.ECHO_REQUEST, 0, 42, 7)
        assert IcmpHeader.from_bytes(hdr.to_bytes()) == hdr


class TestPacketSizes:
    def test_lengths_compose(self):
        pkt = Packet(
            payload=b"x" * 100,
            l4=UdpHeader(1, 2, 108),
            ip=IPv4Header(IPv4Addr(1), IPv4Addr(2), IPPROTO_UDP),
        )
        assert pkt.l4_len == 108
        assert pkt.l3_len == 128
        assert pkt.wire_len == 142

    def test_fragment_flag(self):
        ip = IPv4Header(IPv4Addr(1), IPv4Addr(2), IPPROTO_UDP, more_frags=True)
        assert Packet(ip=ip).is_fragment
        ip2 = IPv4Header(IPv4Addr(1), IPv4Addr(2), IPPROTO_UDP, frag_offset=8)
        assert Packet(ip=ip2).is_fragment
        ip3 = IPv4Header(IPv4Addr(1), IPv4Addr(2), IPPROTO_UDP)
        assert not Packet(ip=ip3).is_fragment


class TestL3Roundtrip:
    def _mk(self, l4, proto, payload):
        return Packet(
            payload=payload,
            l4=l4,
            ip=IPv4Header(IPv4Addr("10.0.0.1"), IPv4Addr("10.0.0.2"), proto, ident=5),
        )

    def test_udp_packet_roundtrip(self):
        pkt = self._mk(UdpHeader(1111, 2222, 8 + 33), IPPROTO_UDP, b"a" * 33)
        back = Packet.from_l3_bytes(pkt.to_l3_bytes())
        assert back.payload == pkt.payload
        assert back.l4 == pkt.l4
        assert back.ip.src == pkt.ip.src and back.ip.dst == pkt.ip.dst

    def test_tcp_packet_roundtrip(self):
        pkt = self._mk(TcpHeader(1, 2, seq=9, ack=8, flags=TCP_ACK), IPPROTO_TCP, b"payload")
        back = Packet.from_l3_bytes(pkt.to_l3_bytes())
        assert back.l4 == pkt.l4
        assert back.payload == b"payload"

    def test_icmp_packet_roundtrip(self):
        pkt = self._mk(IcmpHeader(8, 0, 1, 2), IPPROTO_ICMP, bytes(56))
        back = Packet.from_l3_bytes(pkt.to_l3_bytes())
        assert back.l4 == pkt.l4
        assert len(back.payload) == 56

    def test_fragment_not_parsed_as_l4(self):
        ip = IPv4Header(IPv4Addr(1), IPv4Addr(2), IPPROTO_UDP, frag_offset=8, ident=1)
        frag = Packet(payload=b"middle-of-datagram", ip=ip)
        frag.ip.total_length = frag.l3_len
        back = Packet.from_l3_bytes(frag.to_l3_bytes())
        assert back.l4 is None
        assert back.payload == b"middle-of-datagram"

    def test_length_mismatch_rejected(self):
        pkt = self._mk(UdpHeader(1, 2, 10), IPPROTO_UDP, b"xy")
        data = pkt.to_l3_bytes()
        with pytest.raises(ValueError):
            Packet.from_l3_bytes(data[:-1])

    def test_short_packet_rejected(self):
        with pytest.raises(ValueError):
            Packet.from_l3_bytes(b"short")

    def test_no_ip_header_rejected(self):
        with pytest.raises(ValueError):
            Packet(payload=b"x").to_l3_bytes()

    @given(st.binary(min_size=0, max_size=2000))
    def test_udp_payload_roundtrip_property(self, payload):
        pkt = self._mk(
            UdpHeader(1, 2, UdpHeader.HEADER_LEN + len(payload)), IPPROTO_UDP, payload
        )
        back = Packet.from_l3_bytes(pkt.to_l3_bytes())
        assert back.payload == payload

    def test_clone_is_independent(self):
        pkt = self._mk(UdpHeader(1, 2, 10), IPPROTO_UDP, b"zz")
        pkt.meta["via"] = "original"
        dup = pkt.clone()
        dup.ip.ident = 99
        dup.meta["via"] = "copy"
        assert pkt.ip.ident == 5
        assert pkt.meta["via"] == "original"
