"""XenStore permission model and watch semantics (discovery substrate)."""

import pytest

from repro.xen.xenstore import PermissionError_, XenStore, XenStoreError


@pytest.fixture
def store():
    return XenStore()


class TestBasicOps:
    def test_write_read(self, store):
        store.write(0, "/local/domain/1/name", "vm1")
        assert store.read(0, "/local/domain/1/name") == "vm1"

    def test_read_missing_raises(self, store):
        with pytest.raises(XenStoreError):
            store.read(0, "/nope")

    def test_exists(self, store):
        assert not store.exists(0, "/a")
        store.write(0, "/a/b", "v")
        assert store.exists(0, "/a/b")
        assert store.exists(0, "/a")  # intermediate node

    def test_ls(self, store):
        store.write(0, "/local/domain/1/name", "vm1")
        store.write(0, "/local/domain/2/name", "vm2")
        assert store.ls(0, "/local/domain") == ["1", "2"]

    def test_ls_missing_raises(self, store):
        with pytest.raises(XenStoreError):
            store.ls(0, "/missing")

    def test_rm_subtree(self, store):
        store.write(0, "/local/domain/1/xenloop", "mac")
        store.write(0, "/local/domain/1/name", "vm1")
        store.rm(0, "/local/domain/1")
        assert not store.exists(0, "/local/domain/1")
        assert store.exists(0, "/local/domain")

    def test_rm_missing_is_noop(self, store):
        store.rm(0, "/never/was")

    def test_relative_path_rejected(self, store):
        with pytest.raises(XenStoreError):
            store.write(0, "relative/path", "v")

    def test_overwrite(self, store):
        store.write(0, "/k", "1")
        store.write(0, "/k", "2")
        assert store.read(0, "/k") == "2"


class TestPermissions:
    def test_guest_writes_own_subtree(self, store):
        store.write(3, "/local/domain/3/xenloop", "00:16:3e:00:00:03")
        assert store.read(0, "/local/domain/3/xenloop") == "00:16:3e:00:00:03"

    def test_guest_cannot_write_elsewhere(self, store):
        with pytest.raises(PermissionError_):
            store.write(3, "/local/domain/4/xenloop", "spoof")

    def test_guest_cannot_read_other_guest(self, store):
        """This is WHY discovery must live in Dom0 (paper Sect. 3.2)."""
        store.write(4, "/local/domain/4/xenloop", "mac")
        with pytest.raises(PermissionError_):
            store.read(3, "/local/domain/4/xenloop")

    def test_guest_cannot_list_all_domains(self, store):
        with pytest.raises(PermissionError_):
            store.ls(3, "/local/domain")

    def test_guest_prefix_is_exact(self, store):
        # domid 3 must not be able to touch /local/domain/33
        with pytest.raises(PermissionError_):
            store.write(3, "/local/domain/33/x", "v")

    def test_dom0_reads_everything(self, store):
        store.write(5, "/local/domain/5/xenloop", "m")
        assert store.read(0, "/local/domain/5/xenloop") == "m"

    def test_guest_rm_own(self, store):
        store.write(3, "/local/domain/3/xenloop", "m")
        store.rm(3, "/local/domain/3/xenloop")
        assert not store.exists(0, "/local/domain/3/xenloop")


class TestWatches:
    def test_watch_fires_on_write(self, store):
        events = []
        store.watch("/local/domain", lambda p, a: events.append((p, a)))
        store.write(0, "/local/domain/1/xenloop", "m")
        assert events == [("/local/domain/1/xenloop", "write")]

    def test_watch_fires_on_rm(self, store):
        events = []
        store.write(0, "/local/domain/1/xenloop", "m")
        store.watch("/local/domain/1", lambda p, a: events.append(a))
        store.rm(0, "/local/domain/1")
        assert events == ["rm"]

    def test_watch_prefix_scoped(self, store):
        events = []
        store.watch("/local/domain/1", lambda p, a: events.append(p))
        store.write(0, "/local/domain/2/x", "v")
        assert events == []

    def test_unwatch(self, store):
        events = []
        cb = lambda p, a: events.append(p)  # noqa: E731
        store.watch("/", cb)
        store.unwatch(cb)
        store.write(0, "/x", "v")
        assert events == []

    def test_prefix_does_not_match_sibling_names(self, store):
        events = []
        store.watch("/local/domain/1", lambda p, a: events.append(p))
        store.write(0, "/local/domain/11/x", "v")
        assert events == []
