"""The design-alternative implementations used by the ablation benches."""

import pytest

from repro import scenarios
from repro.core.fifo import Fifo, fifo_pages_for_order
from repro.workloads import netperf
from repro.xen.page import SharedRegion
from tests.core.conftest import FAST, first_channel, udp_once


class TestFifoPeekAdvance:
    def _fifo(self, k=9):
        return Fifo(SharedRegion(1, 1 + fifo_pages_for_order(k)), k=k)

    def test_peek_does_not_consume(self):
        fifo = self._fifo()
        fifo.push(b"held", msg_type=2)
        assert fifo.peek() == (2, b"held", fifo.slots_needed(4))
        assert fifo.peek() == (2, b"held", fifo.slots_needed(4))
        assert fifo.used_slots > 0

    def test_advance_frees_slots(self):
        fifo = self._fifo()
        fifo.push(b"x" * 100)
        _t, _d, slots = fifo.peek()
        fifo.advance(slots)
        assert fifo.is_empty

    def test_space_held_during_peek_blocks_producer(self):
        fifo = self._fifo(4)  # 16 slots
        assert fifo.push(b"a" * 100)  # 14 slots
        _t, _d, slots = fifo.peek()
        assert not fifo.push(b"b" * 100)  # no room while held
        fifo.advance(slots)
        assert fifo.push(b"b" * 100)

    def test_pop_equals_peek_plus_advance(self):
        f1, f2 = self._fifo(), self._fifo()
        for f in (f1, f2):
            f.push(b"same")
        t, d, slots = f1.peek()
        f1.advance(slots)
        assert (t, d) == f2.pop()
        assert f1.front == f2.front


class TestZeroCopyVariant:
    def test_correctness_preserved(self):
        scn = scenarios.xenloop(FAST, zero_copy_rx=True)
        scn.warmup(max_wait=10.0)
        payload = bytes(range(256)) * 16
        assert udp_once(scn, payload, port=7701) == payload
        ch = first_channel(scn, scn.node_a)
        assert ch.zero_copy_rx

    def test_streams_slower_than_two_copy(self):
        """The paper's conclusion from Sect. 3.3: holding FIFO space
        during protocol processing costs more than the copy saves."""
        results = {}
        for zc in (False, True):
            scn = scenarios.xenloop(FAST, zero_copy_rx=zc)
            scn.warmup(max_wait=10.0)
            results[zc] = netperf.udp_stream(scn, duration=0.02, msg_size=8192).mbps
        assert results[False] > results[True]


class TestCoalescingToggle:
    def test_disabled_coalescing_multiplies_upcalls(self):
        upcalls = {}
        for coalesce in (True, False):
            scn = scenarios.xenloop(FAST)
            scn.machines[0].hypervisor.evtchn.coalescing = coalesce
            scn.warmup(max_wait=10.0)
            ch = first_channel(scn, scn.node_a)
            sim = scn.sim
            server = scn.node_b.stack.udp_socket(7702, rcvbuf=1 << 22)
            client = scn.node_a.stack.udp_socket()

            def blast():
                for _ in range(100):
                    yield from client.sendto(bytes(1000), (scn.ip_b, 7702))

            proc = sim.process(blast())
            sim.run_until_complete(proc, timeout=30)
            sim.run(until=sim.now + 0.05)
            assert server.rx_msgs == 100  # correctness unaffected
            upcalls[coalesce] = ch.port.peer.upcalls
        assert upcalls[False] > upcalls[True]
