"""NetPIPE-MPICH: request-response sweep over increasing message sizes
(paper Sect. 4.3, Figs. 6-7).

NetPIPE ping-pongs messages of size ``s`` between two ranks ``n(s)``
times and reports, per size, the one-way latency (half the round trip)
and the throughput ``s / latency``.  We run it over :mod:`repro.mpi`,
the MPICH-over-TCP stand-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.mpi import mpi_connect_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios import Scenario

__all__ = ["NetpipePoint", "NetpipeResult", "DEFAULT_SIZES", "run"]

DEFAULT_SIZES = [1, 16, 64, 256, 1024, 4096, 8192, 16384, 32768, 65536]


@dataclass
class NetpipePoint:
    """One sweep point: size, one-way latency, throughput."""
    size: int
    latency_us: float  # one-way
    mbps: float


@dataclass
class NetpipeResult:
    """Full NetPIPE sweep (points in size order)."""
    points: list[NetpipePoint] = field(default_factory=list)

    def series(self) -> tuple[list[int], list[float], list[float]]:
        """The sweep as (sizes, Mbit/s list, latency-us list)."""
        sizes = [p.size for p in self.points]
        return sizes, [p.mbps for p in self.points], [p.latency_us for p in self.points]


def _reps_for(size: int) -> int:
    """NetPIPE-style repetition count: more reps for small messages."""
    if size <= 256:
        return 100
    if size <= 8192:
        return 40
    return 15


def run(
    scenario: "Scenario",
    sizes: Optional[Iterable[int]] = None,
    port: int = 9100,
) -> NetpipeResult:
    """Run the NetPIPE ping-pong sweep over the mini-MPI library."""
    sim = scenario.sim
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    result = NetpipeResult()
    rank0_connect, rank1_accept = mpi_connect_pair(scenario, port=port)
    done = {}

    def rank1():
        comm = yield from rank1_accept()
        for size in sizes:
            reps = _reps_for(size)
            for _ in range(reps + 2):  # +2 warmup
                data = yield from comm.recv()
                yield from comm.send(data)
        yield from comm.close()

    def rank0():
        comm = yield from rank0_connect()
        for size in sizes:
            reps = _reps_for(size)
            msg = bytes(size)
            for _ in range(2):  # warmup
                yield from comm.send(msg)
                yield from comm.recv()
            t0 = sim.now
            for _ in range(reps):
                yield from comm.send(msg)
                yield from comm.recv()
            rtt = (sim.now - t0) / reps
            latency = rtt / 2
            result.points.append(
                NetpipePoint(size, latency * 1e6, size * 8 / latency / 1e6)
            )
        yield from comm.close()
        done["ok"] = True

    sim.process(rank1(), name="netpipe-rank1")
    proc = sim.process(rank0(), name="netpipe-rank0")
    sim.run_until_complete(proc, timeout=600)
    return result
