"""Simplified TCP: handshake, reliable byte stream, GSO-sized segments,
immediate ACKs, go-back-N retransmission, RFC-shaped congestion control.

Scope (documented in DESIGN.md): the FIFO falls back to netfront when
full and rings apply backpressure, but packets *can* be lost -- frames
in flight during a live migration's downtime window, and bridge-path
drops injected through the fault plan (:data:`repro.faults.PKT_LOSS`).
What is modelled, because the paper's numbers (and the loss-shaped
scenarios that extend them) depend on it:

* segment sizing from the route's device (GSO super-segments on
  virtual/loopback devices vs. MSS-sized segments on the physical NIC),
* flow control via the advertised receive window (this is what causes
  the large-message back-pressure effects in Figs. 8-9),
* a fixed-RTO retransmit timer: go-back-N in ``tcp_congestion="fixed"``
  mode; head-of-line resend plus ACK-clocked recovery in ``"rfc"`` mode,
* congestion control (``tcp_congestion="rfc"``): slow start, AIMD
  congestion avoidance, dup-ACK fast retransmit and NewReno-style fast
  recovery.  ``cwnd`` composes with the peer's advertised window in
  :meth:`TcpConnection._window_avail`; with the calibrated default
  ``tcp_initial_cwnd=0`` the window starts wide open at ``tcp_window``,
  so lossless paths never see cwnd bind and replay the pre-congestion
  goldens bit for bit,
* per-segment transport CPU plus checksum and copy costs,
* ACK traffic flowing back through the same channel as data,
* out-of-order segment buffering, needed when a connection's packets
  switch between the netfront path and the XenLoop channel in flight
  (channel bootstrap, teardown, migration) -- and every segment that
  carries payload or FIN is ACKed, *including duplicates*: a
  below-window segment means the peer missed our ACK, and staying
  silent would leave its retransmit loop live-locked,
* RST on demux miss (non-SYN segments with no matching connection), so
  a peer whose final ACK was lost is told to stop retransmitting
  instead of go-back-N-ing into the void forever.

Sequence numbers are carried modulo 2^32 on the wire (the FIFO
round-trips real bytes) but connections are assumed to transfer less
than 4 GB, which every benchmark in the paper satisfies per run.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.addr import IPv4Addr
from repro.net.ethernet import IPPROTO_TCP
from repro.net.packet import (
    Packet,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TcpHeader,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack

__all__ = ["CongestionStats", "TcpConnection", "TcpLayer", "TcpListener"]

#: implicit window-scale shift applied to the 16-bit wire window field.
WINDOW_SCALE = 3

EPHEMERAL_BASE = 32768

#: out-of-order-buffer sentinel marking a FIN (identity-compared, so it
#: can never collide with real payload bytes).
_FIN_SENTINEL = b"\x00FIN-SENTINEL"

# Connection states (subset of the RFC 793 machine).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"

#: congestion-control mode string enabling the RFC machinery.
CC_RFC = "rfc"

#: bound on the per-connection cwnd trace (oldest entries roll off).
_CWND_TRACE_MAX = 256

#: per-connection counters aggregated into the owning layer when the
#: connection is forgotten (key -> TcpConnection attribute).
_CC_ROLLUP = (
    ("retransmissions", "retransmissions"),
    ("fast_retransmits", "fast_retransmits"),
    ("rto_retransmits", "rto_retransmits"),
    ("dup_acks", "dup_acks_rcvd"),
    ("dup_segments", "dup_segments"),
)


@dataclass
class CongestionStats:
    """Point-in-time congestion state of one connection.

    ``cwnd_trace`` is the bounded ``(sim_time, cwnd)`` history of window
    changes (empty until cwnd first moves -- i.e. forever, on lossless
    paths with the wide-open default window)."""

    cwnd: int
    ssthresh: int
    in_fast_recovery: bool
    retransmissions: int
    fast_retransmits: int
    rto_retransmits: int
    dup_acks_rcvd: int
    dup_segments: int
    cwnd_trace: tuple


class TcpConnection:
    """One direction-symmetric TCP connection endpoint."""

    def __init__(
        self,
        layer: "TcpLayer",
        local: tuple[IPv4Addr, int],
        remote: tuple[IPv4Addr, int],
        sndbuf: int = 262144,
        rcvbuf: int = 262144,
    ):
        self.layer = layer
        self.local = local
        self.remote = remote
        self.state = CLOSED
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf

        sim = layer.stack.node.sim
        self.established = sim.event(name="tcp-established")
        self.closed_event = sim.event(name="tcp-closed")

        # Send side.
        self.snd_una = 0
        self.snd_nxt = 0
        self.peer_window = 65535 << WINDOW_SCALE
        self._send_buf: deque[bytes] = deque()
        self._send_buf_bytes = 0
        self._send_space_waiters: deque = deque()
        self._pump_running = False
        self._fin_queued = False
        self._fin_sent = False

        # Retransmission (fixed RTO; loss comes from migration downtime
        # and fault-plan bridge drops).
        self._retx_buf: deque[tuple[int, bytes, int]] = deque()
        self._retx_deadline: float = 0.0
        self._retx_running = False
        self.retransmissions = 0

        # Congestion control (tentpole: slow start / AIMD / fast
        # retransmit).  With tcp_initial_cwnd=0 the window starts wide
        # open at tcp_window, so cwnd never binds on a lossless path.
        costs = layer.stack.node.costs
        self._cc_enabled = costs.tcp_congestion == CC_RFC
        self._cwnd_cap = costs.tcp_window
        if costs.tcp_initial_cwnd > 0:
            self.cwnd = costs.tcp_initial_cwnd * costs.mss
        else:
            self.cwnd = costs.tcp_window
        self.ssthresh = costs.tcp_window
        self.dup_acks = 0  # consecutive, reset on ACK advance
        self.dup_acks_rcvd = 0
        self.dup_segments = 0
        self.fast_retransmits = 0
        self.rto_retransmits = 0
        self._in_fast_recovery = False
        self._recover_seq = 0
        self.cwnd_trace: deque[tuple[float, int]] = deque(maxlen=_CWND_TRACE_MAX)
        self.reset_by_peer = False

        # Receive side.
        self.rcv_nxt = 0
        self._recv_buf: deque[bytes] = deque()
        self._recv_buf_bytes = 0
        self._recv_waiters: deque = deque()
        self._ooo: dict[int, bytes] = {}
        self.eof = False

        # Stats.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        layer.conns_opened += 1

    # ------------------------------------------------------------------
    # Application interface (generators, app process context)
    # ------------------------------------------------------------------
    def send(self, data: bytes):
        """Blocking send: returns once all of ``data`` is buffered."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise OSError(f"send on {self.state} connection")
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall + node.costs.socket_layer)
        offset = 0
        while offset < len(data):
            while self._send_buf_bytes >= self.sndbuf:
                waiter = node.sim.event(name="tcp-sndbuf")
                self._send_space_waiters.append(waiter)
                yield waiter
                if self.state == CLOSED:
                    raise OSError("connection closed while sending")
            chunk = data[offset : offset + (self.sndbuf - self._send_buf_bytes)]
            yield node.exec(node.costs.copy_cost(len(chunk)))  # user->kernel
            self._send_buf.append(chunk)
            self._send_buf_bytes += len(chunk)
            offset += len(chunk)
            self._kick_pump()
        return len(data)

    def recv(self, max_bytes: int):
        """Blocking receive of up to ``max_bytes``; b"" signals EOF."""
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall + node.costs.socket_layer)
        while not self._recv_buf and not self.eof:
            waiter = node.sim.event(name="tcp-recv")
            self._recv_waiters.append(waiter)
            yield waiter
        if not self._recv_buf:
            return b""
        was_zero_window = (self._advertised_window() >> WINDOW_SCALE) == 0
        chunks: list[bytes] = []
        taken = 0
        while self._recv_buf and taken < max_bytes:
            head = self._recv_buf[0]
            want = max_bytes - taken
            if len(head) <= want:
                chunks.append(self._recv_buf.popleft())
                taken += len(head)
            else:
                chunks.append(head[:want])
                self._recv_buf[0] = head[want:]
                taken += want
        self._recv_buf_bytes -= taken
        yield node.exec(node.costs.copy_cost(taken))  # kernel->user
        if was_zero_window and (self._advertised_window() >> WINDOW_SCALE) > 0:
            # Window update: reopen a peer stalled on a zero window (real
            # TCP relies on persist-timer probes; lossless paths let the
            # receiver volunteer the update instead).
            yield from self._send_pure_ack()
        return b"".join(chunks)

    def recv_exactly(self, n: int):
        """Receive exactly ``n`` bytes (generator); raises on early EOF."""
        parts: list[bytes] = []
        got = 0
        while got < n:
            chunk = yield from self.recv(n - got)
            if not chunk:
                raise OSError(f"connection closed after {got}/{n} bytes")
            parts.append(chunk)
            got += len(chunk)
        return b"".join(parts)

    def close(self):
        """Close the send direction (generator); FIN goes out after the
        send buffer drains."""
        if self.state in (CLOSED, FIN_WAIT, LAST_ACK):
            return
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall)
        self._fin_queued = True
        self.state = FIN_WAIT if self.state == ESTABLISHED else LAST_ACK
        self._kick_pump()

    # ------------------------------------------------------------------
    # Transmit pump
    # ------------------------------------------------------------------
    def _kick_pump(self) -> None:
        if not self._pump_running and self._tx_work_possible():
            self._pump_running = True
            self.layer.stack.node.spawn(self._tx_pump(), name="tcp-pump")

    def _tx_work_possible(self) -> bool:
        if self._window_avail() <= 0:
            return False
        if self._send_buf:
            return True
        return self._fin_queued and not self._fin_sent

    def _window_avail(self) -> int:
        # cwnd composes with the peer's advertised window: the sender is
        # limited by whichever is tighter (RFC 5681 terms: min(cwnd,
        # rwnd) - flight size).
        inflight = self.snd_nxt - self.snd_una
        return max(0, min(self.peer_window, self.cwnd) - inflight)

    def _eff_mss(self) -> int:
        dev, _next_hop = self.layer.stack.ipv4.route(self.remote[0])
        costs = self.layer.stack.node.costs
        if dev.gso:
            return costs.gso_max
        return min(costs.mss, dev.mtu - 40)

    def _tx_pump(self):
        node = self.layer.stack.node
        costs = node.costs
        try:
            while True:
                if self._send_buf and self._window_avail() > 0:
                    size = min(self._eff_mss(), self._send_buf_bytes, self._window_avail())
                    data = self._take_from_send_buf(size)
                    hdr = self._make_header(TCP_ACK | TCP_PSH, seq=self.snd_nxt)
                    self._retx_buf.append((self.snd_nxt, data, TCP_ACK | TCP_PSH))
                    self.snd_nxt += len(data)
                    self.bytes_sent += len(data)
                    self.segments_sent += 1
                    self._arm_retx()
                    yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
                    yield from self.layer.stack.ipv4.output(
                        self.remote[0], IPPROTO_TCP, hdr, data
                    )
                    self._wake_send_space()
                elif (
                    self._fin_queued
                    and not self._fin_sent
                    and not self._send_buf
                    and self._window_avail() > 0
                ):
                    hdr = self._make_header(TCP_ACK | TCP_FIN, seq=self.snd_nxt)
                    self._retx_buf.append((self.snd_nxt, b"", TCP_ACK | TCP_FIN))
                    self.snd_nxt += 1  # FIN consumes a sequence number
                    self._fin_sent = True
                    self.segments_sent += 1
                    self._arm_retx()
                    yield node.exec(costs.tcp_layer)
                    yield from self.layer.stack.ipv4.output(
                        self.remote[0], IPPROTO_TCP, hdr, b""
                    )
                else:
                    break
        finally:
            self._pump_running = False
            # Data may have been queued while the last output blocked.
            self._kick_pump()

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _arm_retx(self) -> None:
        node = self.layer.stack.node
        self._retx_deadline = node.sim.now + node.costs.tcp_rto
        if not self._retx_running:
            self._retx_running = True
            node.spawn(self._retx_loop(), name="tcp-retx")

    def _retx_loop(self):
        node = self.layer.stack.node
        sim = node.sim
        costs = node.costs
        try:
            while self._retx_buf and self.state != CLOSED:
                wait = self._retx_deadline - sim.now
                if wait > 0:
                    # RTO sleeps live on the timer wheel: same (time, seq)
                    # an engine Timeout would get, so firing order is
                    # unchanged, but a serving-scale flood of short-lived
                    # RTO re-arms stays off the O(log n) heap.
                    yield sim.wheel.timeout(wait)
                    continue
                # RTO expired.  In "fixed" mode: classic go-back-N,
                # resend everything unacked with the original segment
                # boundaries (the receiver's out-of-order buffer absorbs
                # duplicates).  In "rfc" mode the timeout is a
                # congestion signal (RFC 5681 s3.1): collapse cwnd to
                # one segment, fall back to slow start, and resend only
                # what the collapsed window covers -- the cumulative ACK
                # it elicits usually jumps past everything the receiver
                # already buffered.
                self.rto_retransmits += 1
                if self._cc_enabled:
                    mss = self._eff_mss()
                    flight = self.snd_nxt - self.snd_una
                    self.ssthresh = max(flight // 2, 2 * mss)
                    self._in_fast_recovery = False
                    self.dup_acks = 0
                    self._recover_seq = self.snd_nxt
                    self._set_cwnd(mss)
                for seq, data, flags in list(self._retx_buf):
                    if self.state == CLOSED:
                        return
                    if self._cc_enabled and seq + len(data) > self.snd_una + self.cwnd:
                        break
                    hdr = self._make_header(flags, seq=seq)
                    self.retransmissions += 1
                    yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
                    yield from self.layer.stack.ipv4.output(
                        self.remote[0], IPPROTO_TCP, hdr, data
                    )
                self._retx_deadline = sim.now + costs.tcp_rto
        finally:
            self._retx_running = False
            if self._retx_buf and self.state != CLOSED:
                self._arm_retx()

    def _prune_retx(self) -> None:
        """Drop fully-acked segments from the retransmit buffer."""
        while self._retx_buf:
            seq, data, flags = self._retx_buf[0]
            consumed = len(data) + (1 if flags & (TCP_FIN | TCP_SYN) else 0)
            if seq + consumed <= self.snd_una:
                self._retx_buf.popleft()
            else:
                break
        if self._retx_buf:
            # Progress restarts the timer (RFC 6298 5.3).
            node = self.layer.stack.node
            self._retx_deadline = node.sim.now + node.costs.tcp_rto

    def _take_from_send_buf(self, size: int) -> bytes:
        chunks: list[bytes] = []
        taken = 0
        while taken < size:
            head = self._send_buf[0]
            want = size - taken
            if len(head) <= want:
                chunks.append(self._send_buf.popleft())
                taken += len(head)
            else:
                chunks.append(head[:want])
                self._send_buf[0] = head[want:]
                taken += want
        self._send_buf_bytes -= taken
        return b"".join(chunks)

    def _wake_send_space(self) -> None:
        while self._send_space_waiters and self._send_buf_bytes < self.sndbuf:
            waiter = self._send_space_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()

    def _advertised_window(self) -> int:
        return max(0, self.rcvbuf - self._recv_buf_bytes)

    def _make_header(self, flags: int, seq: int) -> TcpHeader:
        return TcpHeader(
            sport=self.local[1],
            dport=self.remote[1],
            seq=seq & 0xFFFFFFFF,
            ack=self.rcv_nxt & 0xFFFFFFFF,
            flags=flags,
            window=self._advertised_window() >> WINDOW_SCALE,
        )

    # ------------------------------------------------------------------
    # Segment arrival (generator, softirq context)
    # ------------------------------------------------------------------
    def on_segment(self, packet: Packet):
        """Process one arriving segment (generator, softirq context)."""
        node = self.layer.stack.node
        costs = node.costs
        hdr: TcpHeader = packet.l4
        data = packet.payload
        yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
        self.segments_received += 1

        if hdr.flags & TCP_RST:
            # Peer aborted, or answered a segment it has no state for
            # (our side outlived it).  Tear down immediately; blocked
            # senders/receivers wake with EOF/OSError.
            self.reset_by_peer = True
            self._become_closed()
            if not self.established.triggered:
                self.established.succeed()
            return

        # -- handshake transitions ------------------------------------
        if self.state == SYN_SENT:
            if hdr.flags & TCP_SYN and hdr.flags & TCP_ACK:
                self.rcv_nxt = hdr.seq + 1
                self.snd_una = hdr.ack
                self._prune_retx()  # drop the acked SYN from the retx buffer
                self.peer_window = hdr.window << WINDOW_SCALE
                self.state = ESTABLISHED
                yield from self._send_pure_ack()
                if not self.established.triggered:
                    self.established.succeed()
            return
        if self.state == SYN_RCVD:
            if hdr.flags & TCP_ACK and hdr.ack >= self.snd_nxt:
                self.snd_una = hdr.ack
                self._prune_retx()  # drop the acked SYN-ACK
                self.peer_window = hdr.window << WINDOW_SCALE
                self.state = ESTABLISHED
                if not self.established.triggered:
                    self.established.succeed()
                self.layer._deliver_to_accept_queue(self)
                # The final handshake ACK may carry data (or a FIN race);
                # fall through to normal processing.
            else:
                return

        if hdr.flags & TCP_SYN:
            # Duplicate SYN/SYN-ACK (our handshake ACK was lost): re-ack
            # so the peer can stop retransmitting.
            yield from self._send_pure_ack()
            return

        # -- ACK processing --------------------------------------------
        if hdr.flags & TCP_ACK:
            new_wnd = hdr.window << WINDOW_SCALE
            if hdr.ack > self.snd_una:
                acked = hdr.ack - self.snd_una
                self.snd_una = hdr.ack
                self._prune_retx()
                if self._on_ack_advance(acked) and self._retx_buf:
                    # NewReno partial ACK (RFC 6582): the peer is still
                    # missing the segment right after this ACK -- resend
                    # it now, one hole per RTT, instead of waiting a
                    # full RTO per hole.
                    yield from self._resend_head()
                    self._retx_deadline = node.sim.now + costs.tcp_rto
            elif (
                self._cc_enabled
                and hdr.ack == self.snd_una
                and self.snd_nxt > self.snd_una
                and not data
                and not hdr.flags & (TCP_SYN | TCP_FIN)
                and new_wnd == self.peer_window
            ):
                # RFC 5681 duplicate ACK: no payload, nothing new acked,
                # data outstanding, window unchanged.
                yield from self._on_dup_ack()
            self.peer_window = new_wnd
            self._wake_send_space()
            if self._fin_sent and self.snd_una >= self.snd_nxt:
                if self.state == LAST_ACK:
                    self._become_closed()
                elif self.state == FIN_WAIT and self.eof:
                    self._become_closed()
            self._kick_pump()

        # -- data -------------------------------------------------------
        if self._rx_data(hdr.seq, data, bool(hdr.flags & TCP_FIN)):
            # Wake the blocked reader before generating the ACK -- the
            # wakeup is what the RR benchmarks' latency rides on.
            yield node.exec(costs.process_wakeup)
            self._wake_receivers()
            yield from self._send_pure_ack()

    def _rx_data(self, seq: int, data: bytes, fin: bool) -> bool:
        """Receive-side state update (no yields, so it is directly
        property-testable over arbitrary segment interleavings).

        Returns True when the segment carried payload or FIN -- every
        such segment must be ACKed, *including* wholly-duplicate ones: a
        below-window segment means our previous ACK was lost, and
        staying silent would leave the peer's retransmit loop
        live-locked."""
        if not data and not fin:
            return False
        end = seq + len(data)
        if data:
            if end <= self.rcv_nxt:
                self.dup_segments += 1  # wholly below window: re-ACK only
            elif seq <= self.rcv_nxt:
                if seq < self.rcv_nxt:
                    # Partial overlap: trim the already-received head.
                    self.dup_segments += 1
                    data = data[self.rcv_nxt - seq :]
                self._accept_data(data)
                self._drain_ooo()
            else:
                self._ooo[seq] = data
        if fin:
            if end == self.rcv_nxt and not self.eof:
                self.rcv_nxt += 1
                self._set_eof()
            elif end > self.rcv_nxt:
                self._ooo[end] = _FIN_SENTINEL
        return True

    # ------------------------------------------------------------------
    # Congestion control (RFC 5681/6582 shaped; active when
    # costs.tcp_congestion == "rfc")
    # ------------------------------------------------------------------
    def _set_cwnd(self, value: int) -> None:
        value = max(1, min(int(value), self._cwnd_cap))
        if value != self.cwnd:
            self.cwnd = value
            self.cwnd_trace.append((self.layer.stack.node.sim.now, value))

    def _on_ack_advance(self, acked: int) -> bool:
        """Congestion response to an ACK that advanced ``snd_una``.

        Returns True when the caller should retransmit the next hole
        (partial ACK while recovering from a fast retransmit or an
        RTO)."""
        self.dup_acks = 0
        if not self._cc_enabled:
            return False
        in_recovery = self.snd_una < self._recover_seq
        if not self._in_fast_recovery and not in_recovery and self.cwnd >= self._cwnd_cap:
            # Wide open (the lossless-path default): growth would only
            # clamp back to the cap, so skip the route lookup entirely.
            return False
        mss = self._eff_mss()
        if self._in_fast_recovery:
            if not in_recovery:
                # Full ACK: recovery complete, deflate to ssthresh.
                self._in_fast_recovery = False
                self._set_cwnd(self.ssthresh)
                return False
            # NewReno partial ACK: deflate by the amount acked, grant
            # one MSS; the caller resends the next hole.
            self._set_cwnd(max(mss, self.cwnd - acked + mss))
            return True
        if self.cwnd < self.ssthresh:
            self._set_cwnd(self.cwnd + min(acked, mss))  # slow start
        else:
            # Congestion avoidance: ~one MSS per RTT (AIMD additive part).
            self._set_cwnd(self.cwnd + max(1, (mss * mss) // self.cwnd))
        # Post-RTO loss recovery: ACK-clock the remaining holes too.
        return in_recovery

    def _on_dup_ack(self):
        """Dup-ACK bookkeeping; fires fast retransmit at the threshold
        (generator, softirq context)."""
        self.dup_acks += 1
        self.dup_acks_rcvd += 1
        node = self.layer.stack.node
        costs = node.costs
        if self._in_fast_recovery:
            # Each further dup ACK means one more segment left the
            # network: inflate cwnd so new data keeps flowing.
            self._set_cwnd(self.cwnd + self._eff_mss())
            self._kick_pump()
        elif self.dup_acks >= costs.tcp_dupack_threshold and self._retx_buf:
            mss = self._eff_mss()
            flight = self.snd_nxt - self.snd_una
            self.ssthresh = max(flight // 2, 2 * mss)
            self._in_fast_recovery = True
            self._recover_seq = self.snd_nxt
            self.fast_retransmits += 1
            self._set_cwnd(self.ssthresh + costs.tcp_dupack_threshold * mss)
            yield from self._resend_head()
            self._retx_deadline = node.sim.now + costs.tcp_rto

    def _resend_head(self):
        """Retransmit the first unacked segment (generator)."""
        node = self.layer.stack.node
        costs = node.costs
        seq, data, flags = self._retx_buf[0]
        hdr = self._make_header(flags, seq=seq)
        self.retransmissions += 1
        yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
        yield from self.layer.stack.ipv4.output(self.remote[0], IPPROTO_TCP, hdr, data)

    def congestion_stats(self) -> CongestionStats:
        """Snapshot of this connection's congestion state."""
        return CongestionStats(
            cwnd=self.cwnd,
            ssthresh=self.ssthresh,
            in_fast_recovery=self._in_fast_recovery,
            retransmissions=self.retransmissions,
            fast_retransmits=self.fast_retransmits,
            rto_retransmits=self.rto_retransmits,
            dup_acks_rcvd=self.dup_acks_rcvd,
            dup_segments=self.dup_segments,
            cwnd_trace=tuple(self.cwnd_trace),
        )

    def _accept_data(self, data: bytes) -> None:
        self.rcv_nxt += len(data)
        self.bytes_received += len(data)
        self._recv_buf.append(data)
        self._recv_buf_bytes += len(data)

    def _drain_ooo(self) -> None:
        while True:
            nxt = self._ooo.pop(self.rcv_nxt, None)
            if nxt is None:
                return
            if nxt is _FIN_SENTINEL:
                self.rcv_nxt += 1
                self._set_eof()
                return
            self._accept_data(nxt)

    def _set_eof(self) -> None:
        self.eof = True
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT and self._fin_sent and self.snd_una >= self.snd_nxt:
            self._become_closed()
        self._wake_receivers()

    def _become_closed(self) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        # No more data can arrive: blocked readers must see EOF, not
        # re-queue forever (matters for RST and backlog-overflow aborts;
        # the graceful paths reached here with eof already set).
        self.eof = True
        self.layer._forget(self)
        if not self.closed_event.triggered:
            self.closed_event.succeed()
        self._wake_receivers()
        while self._send_space_waiters:
            waiter = self._send_space_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()

    def _wake_receivers(self) -> None:
        # One segment wakes one reader (its payload is one reader's
        # breakfast), but EOF/close is terminal: every blocked reader
        # must wake or concurrent readers sleep forever.
        wake_all = self.eof or self.state == CLOSED
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                if not wake_all:
                    break

    def _send_pure_ack(self):
        node = self.layer.stack.node
        hdr = self._make_header(TCP_ACK, seq=self.snd_nxt)
        yield node.exec(node.costs.tcp_layer)
        yield from self.layer.stack.ipv4.output(self.remote[0], IPPROTO_TCP, hdr, b"")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TcpConnection {self.local[0]}:{self.local[1]} -> "
            f"{self.remote[0]}:{self.remote[1]} {self.state}>"
        )


class TcpListener:
    """Passive socket: accepts incoming connections on a port.

    Accepted connections inherit the listener's buffer sizes, as with
    real sockets."""

    def __init__(
        self,
        layer: "TcpLayer",
        port: int,
        backlog: int = 16,
        sndbuf: int = 262144,
        rcvbuf: int = 262144,
    ):
        self.layer = layer
        self.port = port
        self.backlog = backlog
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self._ready: deque[TcpConnection] = deque()
        self._accept_waiters: deque = deque()
        self.closed = False
        self.backlog_drops = 0

    def accept(self):
        """Wait for and return an ESTABLISHED connection (generator)."""
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall)
        while not self._ready:
            waiter = node.sim.event(name=f"accept:{self.port}")
            self._accept_waiters.append(waiter)
            yield waiter
        return self._ready.popleft()

    def close(self) -> None:
        """Stop listening (queued-but-unaccepted connections are kept)."""
        self.closed = True
        self.layer.listeners.pop(self.port, None)

    def _offer(self, conn: TcpConnection) -> None:
        if len(self._ready) >= self.backlog:
            # Overflow: abort the connection instead of leaving it
            # ESTABLISHED in the demux table forever (it would never be
            # accepted, so nothing could ever close it).  The peer's
            # next segment hits a demux miss and draws an RST.
            self.backlog_drops += 1
            self.layer.backlog_drops += 1
            conn._become_closed()
            return
        self._ready.append(conn)
        while self._accept_waiters:
            waiter = self._accept_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                break


class TcpLayer:
    """Per-stack TCP: listeners, connection demux, ephemeral ports."""
    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        stack.ipv4.register_protocol(IPPROTO_TCP, self.input)
        self.connections: dict[tuple, TcpConnection] = {}
        self.listeners: dict[int, TcpListener] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rx_no_match = 0
        self.rsts_sent = 0
        self.backlog_drops = 0
        self.conns_opened = 0
        #: congestion counters rolled up from forgotten connections
        #: (live ones are summed on demand in congestion_totals).
        self._closed_cc: Counter = Counter()
        # Register with the simulator so trace.engine_stats can sweep
        # every stack's TCP counters without knowing the topology.
        sim = stack.node.sim
        layers = getattr(sim, "_tcp_layers", None)
        if layers is None:
            layers = []
            sim._tcp_layers = layers
        layers.append(self)

    # -- API ----------------------------------------------------------
    def listen(self, port: int, backlog: int = 16, sndbuf: int = 262144,
               rcvbuf: int = 262144) -> TcpListener:
        """Open a passive socket; accepted connections inherit the buffers."""
        if port in self.listeners:
            raise OSError(f"TCP port {port} already listening")
        listener = TcpListener(self, port, backlog, sndbuf=sndbuf, rcvbuf=rcvbuf)
        self.listeners[port] = listener
        return listener

    def connect(self, remote: tuple[IPv4Addr, int], sndbuf: int = 262144, rcvbuf: int = 262144):
        """Active open (generator).  Returns the ESTABLISHED connection."""
        node = self.stack.node
        local = (self.stack.ip, self._alloc_ephemeral())
        conn = TcpConnection(self, local, remote, sndbuf=sndbuf, rcvbuf=rcvbuf)
        key = (remote[0], remote[1], local[1])
        self.connections[key] = conn
        conn.state = SYN_SENT
        hdr = conn._make_header(TCP_SYN, seq=conn.snd_nxt)
        conn._retx_buf.append((conn.snd_nxt, b"", TCP_SYN))
        conn.snd_nxt += 1  # SYN consumes a sequence number
        conn._arm_retx()
        yield node.exec(node.costs.syscall + node.costs.tcp_layer)
        yield from self.stack.ipv4.output(remote[0], IPPROTO_TCP, hdr, b"")
        yield conn.established
        if conn.state == CLOSED:
            raise OSError(f"connection to {remote[0]}:{remote[1]} refused")
        return conn

    def _alloc_ephemeral(self) -> int:
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if not any(k[2] == port for k in self.connections):
                return port
        raise OSError("out of ephemeral TCP ports")

    # -- demux ----------------------------------------------------------
    def input(self, packet: Packet):
        """Softirq-side segment demultiplexing (generator)."""
        hdr: TcpHeader = packet.l4
        key = (packet.ip.src, hdr.sport, hdr.dport)
        conn = self.connections.get(key)
        if conn is not None:
            yield from conn.on_segment(packet)
            return
        listener = self.listeners.get(hdr.dport)
        if listener is not None and hdr.flags & TCP_SYN and not hdr.flags & TCP_ACK:
            yield from self._passive_open(listener, packet)
            return
        self.rx_no_match += 1
        # Demux miss on a non-SYN segment: our side has no state (closed
        # and forgotten, or aborted on backlog overflow), so answer RST.
        # Without it a peer whose final ACK was lost retransmits its FIN
        # against the void forever -- the go-back-N livelock.  Bare SYNs
        # stay silently dropped: a connect racing ahead of listen()
        # relies on SYN retransmission finding the listener later.
        if not hdr.flags & (TCP_RST | TCP_SYN):
            yield from self._send_rst(packet)

    def _send_rst(self, packet: Packet):
        """Answer an unmatched segment with a RST (generator)."""
        node = self.stack.node
        hdr: TcpHeader = packet.l4
        seg_len = len(packet.payload) + (1 if hdr.flags & (TCP_SYN | TCP_FIN) else 0)
        rst = TcpHeader(
            sport=hdr.dport,
            dport=hdr.sport,
            seq=hdr.ack if hdr.flags & TCP_ACK else 0,
            ack=(hdr.seq + seg_len) & 0xFFFFFFFF,
            flags=TCP_RST | TCP_ACK,
            window=0,
        )
        self.rsts_sent += 1
        yield node.exec(node.costs.tcp_layer)
        yield from self.stack.ipv4.output(packet.ip.src, IPPROTO_TCP, rst, b"")

    def _passive_open(self, listener: TcpListener, packet: Packet):
        node = self.stack.node
        hdr: TcpHeader = packet.l4
        local = (self.stack.ip, hdr.dport)
        remote = (packet.ip.src, hdr.sport)
        conn = TcpConnection(
            self, local, remote, sndbuf=listener.sndbuf, rcvbuf=listener.rcvbuf
        )
        self.connections[(remote[0], remote[1], local[1])] = conn
        conn.state = SYN_RCVD
        conn.rcv_nxt = hdr.seq + 1
        conn.peer_window = hdr.window << WINDOW_SCALE
        synack = conn._make_header(TCP_SYN | TCP_ACK, seq=conn.snd_nxt)
        conn._retx_buf.append((conn.snd_nxt, b"", TCP_SYN | TCP_ACK))
        conn.snd_nxt += 1
        conn._arm_retx()
        yield node.exec(node.costs.tcp_layer)
        yield from self.stack.ipv4.output(remote[0], IPPROTO_TCP, synack, b"")

    def _deliver_to_accept_queue(self, conn: TcpConnection) -> None:
        listener = self.listeners.get(conn.local[1])
        if listener is not None:
            listener._offer(conn)

    def _forget(self, conn: TcpConnection) -> None:
        key = (conn.remote[0], conn.remote[1], conn.local[1])
        if self.connections.pop(key, None) is None:
            return  # already rolled up (idempotent on double close)
        for counter_key, attr in _CC_ROLLUP:
            self._closed_cc[counter_key] += getattr(conn, attr)

    def congestion_totals(self) -> dict:
        """Aggregate congestion/retransmit counters for this stack:
        forgotten connections' rollup plus the live ones, summed --
        the per-layer slice of ``trace.engine_stats(...)["tcp"]``."""
        totals = Counter(self._closed_cc)
        for conn in self.connections.values():
            for counter_key, attr in _CC_ROLLUP:
                totals[counter_key] += getattr(conn, attr)
        out = {
            "conns": self.conns_opened,
            "backlog_drops": self.backlog_drops,
            "rsts_sent": self.rsts_sent,
        }
        for counter_key, _attr in _CC_ROLLUP:
            out[counter_key] = totals[counter_key]
        return out
