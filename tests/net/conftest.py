"""Mini network topologies for net-layer tests."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.nic import EthernetSwitch, PhysNIC
from repro.net.node import Node
from repro.net.stack import NetworkStack
from repro.sim.resources import CPUCores


@pytest.fixture
def host(sim):
    """Single host with only the loopback device."""
    cpus = CPUCores(sim, 2)
    node = Node(sim, cpus, DEFAULT_COSTS, "host")
    NetworkStack(node, IPv4Addr("10.0.0.1"))
    return node


@pytest.fixture
def lan(sim):
    """Two hosts on a switch: returns (node_a, node_b, switch)."""
    switch = EthernetSwitch(sim, DEFAULT_COSTS)
    nodes = []
    for i in range(2):
        cpus = CPUCores(sim, 2)
        node = Node(sim, cpus, DEFAULT_COSTS, f"h{i}")
        NetworkStack(node, IPv4Addr(f"10.0.0.{i + 1}"))
        nic = PhysNIC(node, DEFAULT_COSTS, f"h{i}.eth0", MacAddr(0x020000000001 + i))
        nic.connect(switch)
        node.stack.add_device(nic)
        nodes.append(node)
    return nodes[0], nodes[1], switch
