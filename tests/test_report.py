"""Formatting helpers used by the benchmark harness."""

import pytest

from repro.report import format_series, format_table, ratio


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            "T", ["a", "b"], [("row1", {"a": 1.0, "b": 2.5})], precision=1
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "row1" in text and "1.0" in text and "2.5" in text

    def test_missing_value_dash(self):
        text = format_table("T", ["a", "b"], [("r", {"a": 1.0})])
        assert "-" in text.splitlines()[-1]

    def test_units(self):
        text = format_table("T", ["a"], [("lat", {"a": 5.0})], unit_by_row={"lat": "us"})
        assert "lat (us)" in text

    def test_thousands_separator(self):
        text = format_table("T", ["a"], [("r", {"a": 12345.0})], precision=0)
        assert "12,345" in text

    def test_column_alignment(self):
        text = format_table(
            "T",
            ["col"],
            [("short", {"col": 1.0}), ("much_longer_label", {"col": 22.0})],
        )
        lines = text.splitlines()
        # all rows have equal width
        assert len(set(len(l) for l in lines[2:])) <= 2


class TestFormatSeries:
    def test_basic(self):
        text = format_series("S", "x", [1, 2], {"y1": [10.0, 20.0], "y2": [1.0, 2.0]})
        assert "y1" in text and "y2" in text
        assert "20.0" in text

    def test_short_series_padded(self):
        text = format_series("S", "x", [1, 2], {"y": [10.0]})
        assert text.splitlines()[-1].strip().endswith("-")


class TestRatio:
    def test_ratio(self):
        assert ratio(10, 4) == 2.5

    def test_zero_denominator(self):
        with pytest.raises(ValueError):
            ratio(1, 0)
