"""Calibration helper: print paper-vs-measured for Tables 1-3."""
import sys
import time

from repro import scenarios
from repro.calibration import DEFAULT_COSTS
from repro.workloads import pingpong, netperf, lmbench, netpipe

PAPER = {
    # metric: (inter_machine, netfront_netback, xenloop, native_loopback)
    "ping_rtt_us": (101, 140, 28, 6),
    "tcp_rr": (9387, 10236, 28529, 31969),
    "udp_rr": (9784, 12600, 32803, 39623),
    "tcp_stream": (941, 2656, 4143, 4666),
    "udp_stream": (710, 707, 4380, 4928),
    "lmbench_bw": (848, 1488, 4920, 5336),
    "lmbench_lat_us": (107, 98, 33, 25),
    "netpipe_bw": (645, 697, 2048, 4836),
    "netpipe_lat_us": (77.25, 60.98, 24.89, 23.81),
}
ORDER = ["inter_machine", "netfront_netback", "xenloop", "native_loopback"]

def measure(name, costs):
    scn = scenarios.build(name, costs)
    scn.warmup()
    out = {}
    out["ping_rtt_us"] = pingpong.flood_ping(scn, count=100).rtt_us
    out["tcp_rr"] = netperf.tcp_rr(scn, duration=0.1).trans_per_sec
    out["udp_rr"] = netperf.udp_rr(scn, duration=0.1).trans_per_sec
    out["tcp_stream"] = netperf.tcp_stream(scn, duration=0.03).mbps
    out["udp_stream"] = netperf.udp_stream(scn, duration=0.03, msg_size=8192).mbps
    out["lmbench_bw"] = lmbench.bw_tcp(scn, total_bytes=2 << 20).mbps
    out["lmbench_lat_us"] = lmbench.lat_tcp(scn, round_trips=200).latency_us
    np_res = netpipe.run(scn, sizes=[64, 4096])
    out["netpipe_bw"] = np_res.points[1].mbps
    out["netpipe_lat_us"] = np_res.points[0].latency_us
    return out

def main(costs=DEFAULT_COSTS):
    results = {}
    for name in ORDER:
        t0 = time.time()
        results[name] = measure(name, costs)
        print(f"  [{name} done in {time.time()-t0:.1f}s]", file=sys.stderr)
    print(f"{'metric':16s}" + "".join(f"{n[:13]:>26s}" for n in ORDER))
    for metric, paper_vals in PAPER.items():
        cells = []
        for i, n in enumerate(ORDER):
            cells.append(f"{results[n][metric]:10.1f} (p {paper_vals[i]:7.1f})")
        print(f"{metric:16s}" + "".join(f"{c:>26s}" for c in cells))

if __name__ == "__main__":
    main()
