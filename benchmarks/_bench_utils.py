"""Shared benchmark helpers (scenario builders, output emission)."""

from __future__ import annotations

import pathlib

from repro import scenarios

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: scenario order used for every table/figure, matching the paper's columns.
SCENARIO_ORDER = ["inter_machine", "netfront_netback", "xenloop", "native_loopback"]

#: shorter control-plane settings so warmup doesn't dominate bench time
#: (data-path constants are untouched -- this only affects setup).
BENCH_COSTS = scenarios.DEFAULT_COSTS.replace(
    discovery_period=0.5, bootstrap_timeout=0.02
)


def build_warm(name: str, costs=BENCH_COSTS, **kwargs):
    scn = scenarios.build(name, costs, **kwargs)
    scn.warmup(max_wait=20.0)
    return scn


def emit(name: str, text: str) -> None:
    """Print a rendered table/series and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
