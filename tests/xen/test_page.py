"""Page and SharedRegion invariants."""

import numpy as np
import pytest

from repro.xen.page import PAGE_SIZE, Page, SharedRegion


class TestPage:
    def test_default_buffer(self):
        p = Page(owner=1)
        assert p.buf.shape == (PAGE_SIZE,)
        assert p.buf.dtype == np.uint8
        assert not p.buf.any()

    def test_unique_frames(self):
        frames = {Page(owner=1).frame for _ in range(50)}
        assert len(frames) == 50

    def test_zero(self):
        p = Page(owner=1)
        p.buf[:] = 0xFF
        p.zero()
        assert not p.buf.any()

    def test_bad_buffer_rejected(self):
        with pytest.raises(ValueError):
            Page(owner=1, buf=np.zeros(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            Page(owner=1, buf=np.zeros(PAGE_SIZE, dtype=np.uint16))


class TestSharedRegion:
    def test_pages_view_backing_array(self):
        region = SharedRegion(1, 4)
        region.array[PAGE_SIZE + 5] = 42
        assert region.pages[1].buf[5] == 42
        region.pages[3].buf[0] = 7
        assert region.array[3 * PAGE_SIZE] == 7

    def test_sizes(self):
        region = SharedRegion(1, 3)
        assert region.n_pages == 3
        assert region.size == 3 * PAGE_SIZE

    def test_ownership(self):
        region = SharedRegion(7, 2)
        assert all(p.owner == 7 for p in region.pages)

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            SharedRegion(1, 0)

    def test_region_backref(self):
        region = SharedRegion(1, 2)
        assert all(p.region is region for p in region.pages)

    def test_zero(self):
        region = SharedRegion(1, 2)
        region.array[:] = 1
        region.zero()
        assert not region.array.any()
