"""Run every ``benchmarks/bench_*.py`` in parallel and merge the results.

Each bench file runs in its own worker process (a multiprocessing pool
sized to the machine), so one slow figure doesn't serialize the suite
and a crash in one bench can't take down the rest.  Per-bench status,
wall-clock, and output tails are merged into one summary table and
written to ``benchmarks/results/run_benches.json``.

Usage::

    PYTHONPATH=src python tools/run_benches.py             # all benches
    PYTHONPATH=src python tools/run_benches.py fig4 fig5   # name filters
    PYTHONPATH=src python tools/run_benches.py -j 2        # pool size

or ``make bench-all``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
RESULTS_DIR = BENCH_DIR / "results"
SUMMARY_PATH = RESULTS_DIR / "run_benches.json"

#: lines of captured output kept per bench in the merged summary.
TAIL_LINES = 15


def discover(filters: list[str]) -> list[pathlib.Path]:
    """All bench_*.py files, optionally filtered by substring."""
    paths = sorted(BENCH_DIR.glob("bench_*.py"))
    if filters:
        paths = [p for p in paths if any(f in p.name for f in filters)]
    return paths


def run_one(path_str: str) -> dict:
    """Worker: run one bench file under pytest, capture the outcome."""
    path = pathlib.Path(path_str)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    t0 = time.perf_counter()
    try:
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(path),
                "--benchmark-only",
                "-q",
                "-s",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=1800,
        )
        status = "ok" if proc.returncode == 0 else f"exit {proc.returncode}"
        output = proc.stdout + proc.stderr
    except subprocess.TimeoutExpired as exc:
        status = "timeout"
        output = (exc.stdout or "") + (exc.stderr or "")
    wall = time.perf_counter() - t0
    tail = output.strip().splitlines()[-TAIL_LINES:]
    return {
        "bench": path.name,
        "status": status,
        "wall_s": round(wall, 2),
        "tail": tail,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("filters", nargs="*", help="substring filters on bench file names")
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=max(1, (os.cpu_count() or 1)),
        help="worker processes (default: CPU count)",
    )
    args = parser.parse_args()

    benches = discover(args.filters)
    if not benches:
        print(f"no benchmarks match {args.filters!r} under {BENCH_DIR}")
        return 2
    jobs = max(1, min(args.jobs, len(benches)))
    print(f"running {len(benches)} benches with {jobs} worker(s)...")

    t0 = time.perf_counter()
    if jobs == 1:
        results = [run_one(str(p)) for p in benches]
    else:
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.map(run_one, [str(p) for p in benches])
    total_wall = time.perf_counter() - t0

    width = max(len(r["bench"]) for r in results)
    failed = [r for r in results if r["status"] != "ok"]
    for r in results:
        print(f"  {r['bench']:<{width}}  {r['status']:>8}  {r['wall_s']:8.2f}s")
    print(
        f"{len(results) - len(failed)}/{len(results)} ok "
        f"in {total_wall:.1f}s wall ({jobs} worker(s))"
    )
    for r in failed:
        print(f"\n-- {r['bench']} ({r['status']}) --")
        print("\n".join(r["tail"]))

    RESULTS_DIR.mkdir(exist_ok=True)
    summary = {
        "jobs": jobs,
        "total_wall_s": round(total_wall, 2),
        "results": results,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {SUMMARY_PATH}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
