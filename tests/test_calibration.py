"""CostModel: structure, derived costs, and replace()."""

import dataclasses

import pytest

from repro.calibration import DEFAULT_COSTS, CostModel


class TestDerivedCosts:
    def test_copy_cost_linear(self):
        assert DEFAULT_COSTS.copy_cost(0) == 0
        assert DEFAULT_COSTS.copy_cost(2000) == pytest.approx(
            2 * DEFAULT_COSTS.copy_cost(1000)
        )

    def test_wire_time_includes_frame_overhead(self):
        c = DEFAULT_COSTS
        assert c.wire_time(0) == pytest.approx(c.wire_frame_overhead / c.wire_bps)
        # a 1500-byte frame on 1 Gbps takes ~12 us
        assert 11e-6 < c.wire_time(1500) < 14e-6

    def test_checksum_and_dma(self):
        c = DEFAULT_COSTS
        assert c.checksum_cost(4096) > 0
        assert c.dma_cost(4096) < c.copy_cost(4096)  # DMA beats memcpy


class TestReplace:
    def test_replace_returns_new_instance(self):
        other = DEFAULT_COSTS.replace(discovery_period=1.0)
        assert other.discovery_period == 1.0
        assert DEFAULT_COSTS.discovery_period == 5.0
        assert other is not DEFAULT_COSTS

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COSTS.discovery_period = 2.0

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            DEFAULT_COSTS.replace(nonexistent_knob=1.0)


class TestPaperDefaults:
    def test_paper_constants(self):
        """Values the paper states explicitly."""
        assert DEFAULT_COSTS.discovery_period == 5.0  # Sect. 3.2
        assert DEFAULT_COSTS.bootstrap_retries == 3  # Sect. 3.3
        assert DEFAULT_COSTS.wire_bps == 125e6  # 1 Gbps testbed
        assert DEFAULT_COSTS.ring_size == 256

    def test_all_times_positive(self):
        for field in dataclasses.fields(CostModel):
            value = getattr(DEFAULT_COSTS, field.name)
            if not isinstance(value, (int, float)):
                continue  # mode knobs (e.g. tcp_congestion) are strings
            assert value >= 0, field.name
