"""Fast-path invariants: immediate run queue ordering, event counter,
and batched CPU cost charging (``CPUCores.execute_batch``)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import CPUCores


def _tag(order, label):
    return lambda ev: order.append(label)


class TestSameTimeOrdering:
    def test_heap_and_immediate_fire_in_scheduling_order(self, sim):
        """Same-timestamp events fire in FIFO *scheduling* order whether
        they sit on the heap (delayed) or the immediate run queue
        (zero-delay succeed / timeout(0))."""
        order = []
        # Heap entries for t=1.0, created first (lowest sequence numbers).
        sim.timeout(1.0).callbacks.append(_tag(order, "heap-1"))
        sim.timeout(1.0).callbacks.append(_tag(order, "heap-2"))

        def driver():
            yield sim.timeout(1.0)  # resumes at t=1.0, after heap-1/heap-2
            order.append("driver")
            for i in (1, 2):
                ev = sim.event()
                ev.callbacks.append(_tag(order, f"imm-{i}"))
                ev.succeed()  # immediate queue, same timestamp
            yield sim.timeout(0)  # behind the two immediates
            order.append("driver-after")

        sim.process(driver())
        sim.run()
        assert order == ["heap-1", "heap-2", "driver", "imm-1", "imm-2", "driver-after"]

    def test_zero_delay_succeed_fires_before_later_heap_event(self, sim):
        order = []
        sim.timeout(2.0).callbacks.append(_tag(order, "late-heap"))
        ev = sim.event()
        ev.callbacks.append(_tag(order, "immediate"))
        ev.succeed()
        sim.run()
        assert order == ["immediate", "late-heap"]
        assert sim.now == 2.0

    def test_immediate_queue_preserves_fifo_among_many(self, sim):
        order = []
        for i in range(20):
            ev = sim.event()
            ev.callbacks.append(_tag(order, i))
            ev.succeed()
        sim.run()
        assert order == list(range(20))

    def test_delayed_succeed_goes_through_heap(self, sim):
        order = []
        a = sim.event()
        a.callbacks.append(_tag(order, "delayed"))
        a.succeed(delay=1.0)
        b = sim.event()
        b.callbacks.append(_tag(order, "now"))
        b.succeed()
        sim.run()
        assert order == ["now", "delayed"]

    def test_event_count_counts_all_calendar_entries(self, sim):
        assert sim.event_count == 0

        def worker():
            yield sim.timeout(1.0)
            yield sim.timeout(0)

        sim.process(worker())
        sim.run()
        # init resume + two timeouts + two process-resume steps are all
        # popped off the calendar; the exact total is an implementation
        # detail, but it must be positive and monotonic.
        first = sim.event_count
        assert first > 0
        sim.timeout(0)
        sim.run()
        assert sim.event_count == first + 1


class TestExecuteBatch:
    def test_cost_equals_sum_of_parts(self):
        sim = Simulator()
        cpus = CPUCores(sim, n_cores=1)
        done = cpus.execute_batch("A", [1.0, 2.0, 0.5])
        sim.run()
        assert done.processed
        assert sim.now == pytest.approx(3.5)
        assert cpus.total_busy_time == pytest.approx(3.5)

    def test_switch_penalty_charged_once_per_batch(self):
        sim = Simulator()
        cpus = CPUCores(sim, n_cores=1, switch_penalty=0.5)
        cpus.execute("B", 1.0)  # prime the core's last_domain
        sim.run()
        assert cpus.total_switches == 0
        cpus.execute_batch("A", [1.0, 1.0, 1.0])
        sim.run()
        # one switch B->A for the whole batch, not one per part
        assert cpus.total_switches == 1
        assert sim.now == pytest.approx(1.0 + 0.5 + 3.0)

    def test_batch_matches_sequential_total_cost(self):
        parts = [0.25, 0.5, 0.125]
        sim_a = Simulator()
        cpus_a = CPUCores(sim_a, n_cores=1)
        cpus_a.execute_batch("A", parts)
        sim_a.run()
        sim_b = Simulator()
        cpus_b = CPUCores(sim_b, n_cores=1)

        def sequential():
            for cost in parts:
                yield cpus_b.execute("A", cost)

        sim_b.process(sequential())
        sim_b.run()
        assert sim_a.now == pytest.approx(sim_b.now)
        assert cpus_a.total_busy_time == pytest.approx(cpus_b.total_busy_time)

    def test_affinity_prefers_warm_core(self):
        sim = Simulator()
        cpus = CPUCores(sim, n_cores=2, switch_penalty=1.0)
        cpus.execute("A", 1.0)
        cpus.execute("B", 1.0)
        sim.run()
        # Both cores warm; a batch for A must land on A's core: no switch.
        cpus.execute_batch("A", [0.5, 0.5])
        sim.run()
        assert cpus.total_switches == 0

    def test_negative_part_rejected(self):
        sim = Simulator()
        cpus = CPUCores(sim, n_cores=1)
        with pytest.raises(ValueError):
            cpus.execute_batch("A", [1.0, -0.1])

    def test_empty_batch_completes_at_current_time(self):
        sim = Simulator()
        cpus = CPUCores(sim, n_cores=1)
        done = cpus.execute_batch("A", [])
        sim.run()
        assert done.processed
        assert sim.now == 0.0
