"""Split-driver edge cases: ring saturation, batching, thresholds."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr
from repro.xen.machine import XenMachine
from tests.conftest import run_gen


@pytest.fixture
def pair(sim):
    # tiny rings so saturation is easy to hit
    costs = DEFAULT_COSTS.replace(ring_size=8)
    machine = XenMachine(sim, costs, "m0", n_cores=2)
    vm1 = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
    vm2 = machine.create_guest("vm2", ip=IPv4Addr("10.0.0.2"))
    return machine, vm1, vm2


class TestRingSaturation:
    def test_tx_ring_full_applies_backpressure_not_loss(self, sim, pair):
        _machine, vm1, vm2 = pair
        server = vm2.stack.udp_socket(8801, rcvbuf=1 << 22)
        client = vm1.stack.udp_socket()
        count = 100  # >> ring_size of 8

        def cli():
            for i in range(count):
                yield from client.sendto(i.to_bytes(2, "big"), (vm2.ip, 8801))

        got = []

        def srv():
            for _ in range(count):
                data, _ = yield from server.recvfrom()
                got.append(int.from_bytes(data, "big"))

        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=30)
        assert got == list(range(count))

    def test_tx_slots_reclaimed(self, sim, pair):
        _machine, vm1, vm2 = pair
        run_gen(sim, vm1.stack.udp.socket().sendto(b"x", (vm2.ip, 9)))
        sim.run(until=sim.now + 0.01)
        ring = vm1.netfront.tx_ring
        assert ring.free_slots == ring.size  # all responses consumed


class TestCopyVsTransferThreshold:
    def test_small_packets_cheaper_per_byte(self, sim):
        """Below netback_copy_threshold the rx path grant-copies; above it
        the costlier transfer+zero path runs (paper Sect. 2).  Jitter is
        disabled so the ~2 us threshold discontinuity is measurable."""
        costs = DEFAULT_COSTS.replace(virq_jitter=0.0)
        machine = XenMachine(sim, costs, "m0", n_cores=2)
        vm1 = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        vm2 = machine.create_guest("vm2", ip=IPv4Addr("10.0.0.2"))

        def rtt(size, seq):
            res = {}

            def gen():
                ident = vm1.stack.icmp.alloc_ident()
                t0 = sim.now
                w = yield from vm1.stack.icmp.send_echo(vm2.ip, ident, seq, size)
                yield sim.any_of([w, sim.timeout(1.0)])
                res["rtt"] = sim.now - t0 if w.triggered else None

            run_gen(sim, gen())
            return res["rtt"]

        rtt(56, 0)  # ARP warm
        small = rtt(costs.netback_copy_threshold - 100, 1)
        big = rtt(costs.netback_copy_threshold + 100, 2)
        assert small is not None and big is not None
        assert big > small


class TestBatching:
    def test_netback_amortizes_wakeups(self, sim, pair):
        """A burst of packets costs far fewer netback wakeups than
        packets (the drain loop batches while the ring is non-empty)."""
        machine, vm1, vm2 = pair
        server = vm2.stack.udp_socket(8802, rcvbuf=1 << 22)
        client = vm1.stack.udp_socket()
        netback = vm1.netfront.netback
        port = vm1.netfront.evtchn_port
        count = 64

        def cli():
            for _ in range(count):
                yield from client.sendto(bytes(200), (vm2.ip, 8802))

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 0.05)
        assert netback.tx_packets >= count
        assert port.notifies_coalesced > 0  # burst coalescing happened
