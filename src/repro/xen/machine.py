"""Physical machines.

:class:`Machine` is bare hardware (cores + optional NIC slot) used by
the native baselines; :class:`XenMachine` adds the hypervisor, XenStore,
Dom0, the Dom0 software bridge, and guest-domain creation with full
split-driver network wiring.
"""

from __future__ import annotations

import itertools

from typing import Optional

from repro.calibration import CostModel
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.bridge import Bridge, NicBridgePort
from repro.net.nic import EthernetSwitch, PhysNIC
from repro.net.node import Node
from repro.net.stack import NetworkStack
from repro.sim.engine import Simulator
from repro.sim.resources import CPUCores
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor
from repro.xen.xenstore import XenStore

__all__ = ["Machine", "XenMachine"]

#: global counter for auto-assigned guest MACs -- they must be unique
#: across *machines* (xend randomizes within the Xen OUI; a collision
#: would confuse every bridge and ARP cache on the segment).
_mac_counter = itertools.count(1)


def reset_guest_mac_counter(start: int = 1) -> None:
    """Rebase the auto-assigned guest MAC counter.

    The counter is process-global, so a forked shard worker inherits
    whatever state the parent left behind.  Each worker rebases it to
    its shard's global guest-position offset before building (see
    :func:`repro.topology.build_shard`): every guest then gets the same
    MAC it would have received in the equivalent unsharded build, and
    workers can never collide with each other.
    """
    global _mac_counter
    _mac_counter = itertools.count(start)


class Machine:
    """Bare hardware: CPU cores and a name."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str, n_cores: int = 2):
        self.sim = sim
        self.costs = costs
        self.name = name
        self.cpus = CPUCores(sim, n_cores, costs.domain_switch_penalty)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class XenMachine(Machine):
    """A machine running the Xen hypervisor with Dom0 and a software bridge."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str, n_cores: int = 2):
        super().__init__(sim, costs, name, n_cores)
        self.hypervisor = Hypervisor(sim, costs)
        self.xenstore = XenStore()
        self.dom0 = Domain(self, self.hypervisor.alloc_domid(), f"{name}.dom0", is_dom0=True)
        self.hypervisor.register_domain(self.dom0)
        self.bridge = Bridge(self.dom0, name=f"{name}.xenbr0")
        self.nic: Optional[PhysNIC] = None

    @property
    def domains(self) -> dict[int, Domain]:
        """domid -> Domain for every live domain (Dom0 included)."""
        return self.hypervisor.domains

    @property
    def guests(self) -> list[Domain]:
        """Live unprivileged domains, in creation order."""
        return [d for d in self.domains.values() if not d.is_dom0]

    # -- physical connectivity ------------------------------------------------
    def attach_network(self, switch: EthernetSwitch, mac: MacAddr) -> PhysNIC:
        """Give the machine a physical NIC, uplinked to the Dom0 bridge."""
        if self.nic is not None:
            raise RuntimeError(f"{self.name} already has a NIC")
        self.nic = PhysNIC(self.dom0, self.costs, f"{self.name}.eth0", mac)
        self.nic.connect(switch)
        self.bridge.add_port(NicBridgePort(self.nic))
        return self.nic

    # -- domain lifecycle ----------------------------------------------------
    def create_guest(
        self,
        name: str,
        ip: Optional[IPv4Addr] = None,
        mac: Optional[MacAddr] = None,
        prefix_len: int = 24,
        vcpus: int = 1,
    ) -> Domain:
        """Create a guest domain; when ``ip`` is given, wire up the full
        netfront/netback split-driver path onto the Dom0 bridge.

        Guests default to one vCPU, matching the paper's testbed
        (dual-core machine, 512 MB single-vCPU guests)."""
        domid = self.hypervisor.alloc_domid()
        guest = Domain(self, domid, name)
        self.hypervisor.register_domain(guest)
        guest.vcpus = vcpus
        self.cpus.set_vcpu_limit(guest.sched_key, vcpus)
        self.xenstore.write(0, f"/local/domain/{domid}/name", name)
        if ip is not None:
            if mac is None:
                mac = MacAddr(0x00163E000000 + next(_mac_counter))  # Xen OUI
            guest.mac = mac
            guest.ip = ip
            NetworkStack(guest, ip, prefix_len=prefix_len)
            # Deferred import: xennet builds on the xen substrate.
            from repro.xennet.setup import connect_vif

            connect_vif(guest)
        return guest

    def adopt_domain(self, guest: Domain) -> int:
        """Attach a migrated-in domain: new domid, fresh XenStore subtree,
        new split-driver wiring.  Returns the new domid."""
        guest.machine = self
        guest._bind_cpus(self.cpus)
        guest.domid = self.hypervisor.alloc_domid()
        self.hypervisor.register_domain(guest)
        self.cpus.set_vcpu_limit(guest.sched_key, getattr(guest, "vcpus", 1))
        self.xenstore.write(0, f"/local/domain/{guest.domid}/name", guest.name)
        if guest.stack is not None:
            from repro.xennet.setup import connect_vif

            connect_vif(guest)
        return guest.domid

    def remove_domain(self, guest: Domain) -> None:
        """Detach a domain (shutdown or migration-out)."""
        if guest.netfront is not None:
            guest.netfront.disconnect()
        self.xenstore.rm(0, f"/local/domain/{guest.domid}")
        self.hypervisor.unregister_domain(guest)
