"""Reproduce the simulation-engine hot-path profile on demand.

Runs the engine-throughput workload (``udp_stream`` on a scenario) under
cProfile and prints the hottest functions, the view that motivated the
fast-path work: immediate run queue, allocation-free resume, single-shot
CPU completions, and batched cost charging.  A serialization-cost
breakdown (pack/parse/copy time plus the wire-cache hit rates) follows
the profile, attributing the packet data path's share of the wall.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py
    PYTHONPATH=src python tools/profile_hotpath.py --duration 0.1 --sort cumulative
    PYTHONPATH=src python tools/profile_hotpath.py -o hotpath.pstats  # for snakeviz etc.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro import scenarios, trace
from repro.net.packet import WIRE_STATS
from repro.workloads import netperf
from repro.xen.event_channel import NOTIFY_STATS

#: (bucket, filename substring, function-name substrings): how profiled
#: functions map onto the serialization-cost categories.
_SER_BUCKETS = (
    ("pack", "net/packet.py", ("to_bytes", "to_l3_bytes", "to_l3_parts", "_ip_header_bytes", "_fill")),
    ("parse", "net/packet.py", ("from_bytes", "from_l3_bytes", "_parse_body")),
    ("copy", "core/fifo.py", ("push", "push_vec", "pop", "peek", "peek_view", "_write_stream")),
)


def serialization_breakdown(ps: pstats.Stats, wall: float) -> str:
    """Aggregate profiled tottime into pack/parse/copy buckets."""
    totals = {name: 0.0 for name, _, _ in _SER_BUCKETS}
    for (filename, _lineno, funcname), (_cc, _nc, tottime, _ct, _callers) in ps.stats.items():
        for bucket, file_part, fn_parts in _SER_BUCKETS:
            if file_part in filename and any(p in funcname for p in fn_parts):
                totals[bucket] += tottime
                break
    lines = ["serialization cost breakdown:"]
    total = sum(totals.values())
    for bucket in totals:
        share = 100.0 * totals[bucket] / wall if wall else 0.0
        lines.append(f"  {bucket:>5}: {totals[bucket] * 1e3:8.1f} ms  ({share:4.1f}% of wall)")
    lines.append(
        f"  total: {total * 1e3:8.1f} ms  ({100.0 * total / wall if wall else 0.0:4.1f}% of wall)"
    )
    snap = WIRE_STATS.snapshot()
    l3_total = snap["l3_cache_hits"] + snap["l3_cache_misses"]
    hdr_total = snap["header_cache_hits"] + snap["header_cache_misses"]
    lines.append(
        "  wire caches: "
        f"l3 {snap['l3_cache_hits']:,}/{l3_total:,} hits "
        f"({100.0 * snap['l3_cache_hits'] / l3_total if l3_total else 0.0:.1f}%), "
        f"hdr {snap['header_cache_hits']:,}/{hdr_total:,} hits "
        f"({100.0 * snap['header_cache_hits'] / hdr_total if hdr_total else 0.0:.1f}%), "
        f"lazy_l4={snap['lazy_l4_parses']:,}"
    )
    lines.append(
        f"  bytes: packed={snap['bytes_packed']:,}  parsed={snap['bytes_parsed']:,}  "
        f"fifo_in={snap['fifo_bytes_in']:,}  fifo_out={snap['fifo_bytes_out']:,}"
    )
    return "\n".join(lines)


def notify_breakdown(messages: int) -> str:
    """Notification-suppression rates for the profiled run.

    Reports notifies per message and drained entries per batch from
    :data:`repro.xen.event_channel.NOTIFY_STATS` -- the view that shows
    whether the check-flag-then-notify protocol is actually eliding
    hypercalls on this workload (and how well the NAPI-style receiver
    is amortizing its per-batch CPU charge).
    """
    snap = NOTIFY_STATS.snapshot()
    fifo_total = snap["fifo_notifies"] + snap["fifo_suppressed"]
    ring_total = snap["ring_notifies"] + snap["ring_suppressed"]
    sent = snap["fifo_notifies"] + snap["ring_notifies"]
    batches = snap["drain_batches"]
    lines = ["notify-rate breakdown:"]
    lines.append(
        f"   fifo: {snap['fifo_notifies']:,}/{fifo_total:,} sent "
        f"({100.0 * snap['fifo_suppressed'] / fifo_total if fifo_total else 0.0:.1f}% suppressed)"
    )
    lines.append(
        f"   ring: {snap['ring_notifies']:,}/{ring_total:,} sent "
        f"({100.0 * snap['ring_suppressed'] / ring_total if ring_total else 0.0:.1f}% suppressed)"
    )
    lines.append(
        f"  rates: {sent / messages if messages else 0.0:.2f} notifies/message  "
        f"{snap['drain_entries'] / batches if batches else 0.0:.1f} entries/batch "
        f"({snap['drain_entries']:,} entries, {batches:,} batches)"
    )
    return "\n".join(lines)


def shard_breakdown(entries: list) -> str:
    """Per-shard table for a sharded run: events, wall, throughput, null
    messages sent/received, frames exported/imported, and time blocked
    waiting on the conservative horizon -- the view that makes lookahead
    stalls visible instead of showing up as unexplained scaling loss."""
    header = (
        f"{'shard':>5}  {'machine':<10}  {'events':>10}  {'wall_s':>7}  "
        f"{'ev/s':>9}  {'nulls out/in':>13}  {'frames out/in':>13}  "
        f"{'blocked_s':>9}  {'blk%':>5}"
    )
    lines = ["per-shard breakdown:", header, "-" * len(header)]
    for e in entries:
        stats = e["stats"]
        pdes = e.get("pdes") or {}
        wall = stats.get("wall_s") or 0.0
        blocked = pdes.get("blocked_s", 0.0)
        lines.append(
            f"{e['shard']:>5}  {(e.get('machine') or '-'):<10}  "
            f"{stats['events']:>10,}  {wall:>7.3f}  "
            f"{stats.get('events_per_sec') or 0.0:>9,.0f}  "
            f"{pdes.get('null_sent', 0):>6,}/{pdes.get('null_recv', 0):<6,}  "
            f"{pdes.get('frames_out', 0):>6,}/{pdes.get('frames_in', 0):<6,}  "
            f"{blocked:>9.3f}  "
            f"{100.0 * blocked / wall if wall else 0.0:>4.0f}%"
        )
    return "\n".join(lines)


#: (bucket, filename substring): where a serving run's tottime lands --
#: the arrival generator + workers, the timer wheel, the network stack,
#: and the engine's calendar loop.
_SERVING_BUCKETS = (
    ("workload", "workloads/serving.py"),
    ("timer-wheel", "sim/timers.py"),
    ("net-stack", "/net/"),
    ("engine", "sim/engine.py"),
)


def serving_breakdown(ps: pstats.Stats, wall: float) -> str:
    """Aggregate profiled tottime into the serving-path buckets."""
    totals = {name: 0.0 for name, _ in _SERVING_BUCKETS}
    for (filename, _lineno, _funcname), (_cc, _nc, tottime, _ct, _callers) in ps.stats.items():
        for bucket, file_part in _SERVING_BUCKETS:
            if file_part in filename:
                totals[bucket] += tottime
                break
    lines = ["serving cost breakdown:"]
    for bucket, total in totals.items():
        share = 100.0 * total / wall if wall else 0.0
        lines.append(f"  {bucket:>11}: {total * 1e3:8.1f} ms  ({share:4.1f}% of wall)")
    return "\n".join(lines)


def profile_serving(args) -> None:
    """The open-loop serving variant: profile one ``xenloop_serving``
    cell and attribute the wall to workload / timer wheel / stack /
    engine -- the view that shows the wheel and the streaming histogram
    staying out of the way at high request rates."""
    from repro import report
    from repro.scenarios import run_serving_cell

    WIRE_STATS.reset()
    NOTIFY_STATS.reset()
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    summary = run_serving_cell(
        data_path=args.scenario if args.scenario in ("fifo", "netfront") else "fifo",
        requests=args.requests,
        rate=args.rate,
    )
    profiler.disable()
    wall = time.perf_counter() - t0

    print(
        f"xenloop_serving data_path={summary['data_path']} "
        f"requests={summary['requests']:,} rate={summary['rate']:,.0f}/s: "
        f"p50={summary['p50_us']:.1f}us  p99={summary['p99_us']:.1f}us  "
        f"p999={summary['p999_us']:.1f}us  slo_viol={summary['slo_violations']}"
    )
    print(
        f"{summary['events']:,} events in {wall:.2f}s wall "
        f"= {summary['events'] / wall if wall else 0.0:,.0f} events/s\n"
    )
    ps = pstats.Stats(profiler)
    ps.sort_stats(args.sort).print_stats(args.limit)
    print(serving_breakdown(ps, wall))
    if summary.get("timers"):
        print("\n" + report.format_engine_stats({"events": summary["events"], "timers": summary["timers"]}).splitlines()[-1])
    if args.output:
        ps.dump_stats(args.output)
        print(f"raw profile written to {args.output}")


def profile_sharded(args) -> None:
    """The sharded variant: run the PDES scaling grid and print the
    per-shard breakdown.  cProfile does not cross fork(), so the
    function-level profile is skipped here -- profile one shard's
    workload with ``--shards 0`` instead."""
    from repro.sim import pdes

    spec = pdes.bench_grid_spec(args.machines, 2, args.msg_size, args.duration)
    t0 = time.perf_counter()
    sharded = pdes.run_sharded(spec, shards=args.shards)
    wall = time.perf_counter() - t0
    stats = sharded.stats
    total_mbps = sum(r["result"]["mbps"] for r in sharded.results)
    print(
        f"{spec.name} udp_stream msg_size={args.msg_size} "
        f"duration={args.duration} shards={args.shards}: "
        f"{total_mbps:,.1f} Mbit/s simulated"
    )
    print(
        f"{stats['events']:,} events in {wall:.2f}s wall "
        f"= {stats['events'] / wall if wall else 0.0:,.0f} events/s "
        f"(sum of per-shard engines)\n"
    )
    print(shard_breakdown(sharded.shards))
    print("\n(function-level cProfile skipped: child processes are not profiled)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="xenloop")
    parser.add_argument("--msg-size", type=int, default=4096)
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument(
        "--sort", default="tottime", choices=["tottime", "cumulative", "ncalls"]
    )
    parser.add_argument("--limit", type=int, default=25, help="rows to print")
    parser.add_argument(
        "--warm", action="store_true",
        help="run scenario warmup (XenLoop channels connected) before the "
        "stream; the warmup wall lands in the setup share of the split",
    )
    parser.add_argument("-o", "--output", help="also dump raw pstats to this file")
    parser.add_argument(
        "--shards", type=int, default=0,
        help="0 (default): profile the classic single-simulator workload; "
        "N>=1: run the sharded grid and print the per-shard breakdown",
    )
    parser.add_argument(
        "--machines", type=int, default=2,
        help="machine count for the sharded grid (default: 2)",
    )
    parser.add_argument(
        "--serving", action="store_true",
        help="profile an open-loop xenloop_serving cell instead of the "
        "udp_stream workload (use --scenario fifo|netfront, --requests, --rate)",
    )
    parser.add_argument(
        "--requests", type=int, default=5000,
        help="request count for --serving (default: 5000)",
    )
    parser.add_argument(
        "--rate", type=float, default=20000.0,
        help="offered load in req/s for --serving (default: 20000)",
    )
    args = parser.parse_args()

    if args.serving:
        profile_serving(args)
        return
    if args.shards > 0:
        profile_sharded(args)
        return

    WIRE_STATS.reset()
    NOTIFY_STATS.reset()
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    scn = scenarios.build(args.scenario)
    if args.warm:
        scn.warmup()
    setup_wall = time.perf_counter() - t0
    result = netperf.udp_stream(scn, msg_size=args.msg_size, duration=args.duration)
    profiler.disable()
    wall = time.perf_counter() - t0

    stats = trace.engine_stats(scn.sim, wall_s=wall)
    print(
        f"{args.scenario} udp_stream msg_size={args.msg_size} "
        f"duration={args.duration}: {result.mbps:,.1f} Mbit/s simulated"
    )
    print(
        f"{stats['events']:,} events in {wall:.2f}s wall "
        f"= {stats['events_per_sec']:,.0f} events/s"
    )
    # Setup vs measured split: the setup share is what checkpoint/fork
    # warm-starting (repro.sim.snapshot) can amortize across repetitions.
    measured_wall = wall - setup_wall
    setup_what = "build+warmup" if args.warm else "build"
    print(
        f"wall split: setup ({setup_what}) {setup_wall:.3f}s "
        f"({100.0 * setup_wall / wall if wall else 0.0:.1f}%) vs "
        f"measured stream {measured_wall:.3f}s "
        f"({100.0 * measured_wall / wall if wall else 0.0:.1f}%)\n"
    )
    ps = pstats.Stats(profiler)
    ps.sort_stats(args.sort).print_stats(args.limit)
    print(serialization_breakdown(ps, wall))
    print()
    print(notify_breakdown(result.messages_sent))
    if args.output:
        ps.dump_stats(args.output)
        print(f"raw profile written to {args.output}")


if __name__ == "__main__":
    main()
