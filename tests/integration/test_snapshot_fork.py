"""Fork-equivalence goldens: a child forked from a warm snapshot must
reproduce a cold run bit for bit.

This is the determinism contract the whole checkpoint/warm-start
feature rests on: ``os.fork`` duplicates the live simulator (generator
frames and all), so running the same workload in the child yields
exactly the event stream -- results, wire counters, notify counters --
that a never-forked process would have produced.  Pinned against the
same goldens as ``test_fastpath_determinism.py``.
"""

import pytest

import importlib

from repro import scenarios

# The scenarios package re-exports the fault_matrix *builder function*,
# shadowing the submodule attribute -- import the module explicitly.
fm = importlib.import_module("repro.scenarios.fault_matrix")
from repro.net.packet import WIRE_STATS
from repro.sim.snapshot import HAS_FORK, SimSnapshot
from repro.workloads.netperf import udp_stream
from tests.integration.test_fastpath_determinism import (
    FAST,
    GOLDEN_NOTIFY_COUNTERS,
    GOLDEN_UDP_WARM_XENLOOP,
    GOLDEN_WIRE_COUNTERS,
)
from repro.xen.event_channel import NOTIFY_STATS

pytestmark = pytest.mark.skipif(not HAS_FORK, reason="needs os.fork")


def _stream_with_counters(cluster):
    WIRE_STATS.reset()
    NOTIFY_STATS.reset()
    r = udp_stream(cluster, msg_size=4096, duration=0.02)
    return (
        (r.bytes_received, r.mbps, r.messages_sent, r.drops),
        WIRE_STATS.snapshot(),
        NOTIFY_STATS.snapshot(),
    )


@pytest.fixture(scope="module")
def warm_snap():
    scn = scenarios.build("xenloop", FAST, seed=7)
    scn.warmup(max_wait=20.0)
    return SimSnapshot.capture(scn, label="warm xenloop seed=7")


class TestForkEquivalence:
    def test_fork_replays_warm_goldens(self, warm_snap):
        """One forked run reproduces the pinned warm-xenloop goldens:
        simulated result AND serialization AND notify counters."""
        result, wire, notify = warm_snap.fork(_stream_with_counters)
        assert result == GOLDEN_UDP_WARM_XENLOOP
        assert wire == GOLDEN_WIRE_COUNTERS
        assert notify == GOLDEN_NOTIFY_COUNTERS

    def test_repeated_forks_identical(self, warm_snap):
        """N forks of one snapshot are N bit-identical replays."""
        a = warm_snap.fork(_stream_with_counters)
        b = warm_snap.fork(_stream_with_counters)
        assert a == b

    def test_parent_untouched_by_forks(self, warm_snap):
        before = (
            warm_snap.cluster.sim.now,
            warm_snap.cluster.sim.event_count,
        )
        warm_snap.fork(_stream_with_counters)
        assert (
            warm_snap.cluster.sim.now,
            warm_snap.cluster.sim.event_count,
        ) == before

    def test_fork_propagates_child_errors(self, warm_snap):
        from repro.sim.snapshot import SnapshotForkError

        def boom(_cluster):
            raise RuntimeError("child exploded")

        with pytest.raises(SnapshotForkError, match="child exploded"):
            warm_snap.fork(boom)


class TestFaultMatrixForking:
    def test_forked_cell_equals_cold_cell(self):
        """Fork-per-cell reproduces the cold per-cell result exactly,
        including the processed-event count (the determinism check)."""
        cell = next(c for c in fm.matrix_cells() if c.name == "drop:CreateChannel")
        snap = fm.pair_snapshot(seed=0, machines=cell.machines)
        forked = fm.run_cell_forked(cell, snap, seed=0)
        cold = fm.run_cell(cell, seed=0)
        assert forked.pop("warm_fork") is True
        assert forked == cold

    def test_full_matrix_warm_forked(self):
        """The default sweep runs every cell as a fork and converges."""
        results = fm.run_fault_matrix()
        assert len(results) == len(fm.matrix_cells())
        assert all(r["ok"] for r in results), [
            (r["cell"], r["detail"]) for r in results if not r["ok"]
        ]
        assert all(r.get("warm_fork") for r in results)

    def test_matrix_warm_equals_cold(self):
        """Cell-for-cell bit equality between the warm-forked sweep and
        the cold sweep (events included)."""
        warm = fm.run_fault_matrix()
        cold = fm.run_fault_matrix(warm=False)
        for w, c in zip(warm, cold):
            w = dict(w)
            assert w.pop("warm_fork") is True
            assert w == c
