"""Measurement probes used by workloads and benchmarks.

These are plain accumulators -- they never schedule events -- so probing
is free of simulation side effects.

Streaming percentiles
---------------------
Open-loop serving scenarios record one latency per request at millions
of requests per run, so percentile machinery has to be O(1) per sample
with bounded memory.  :class:`LogHistogram` is the HDR-histogram-shaped
answer: fixed log-spaced buckets (128 sub-buckets per power of two),
O(1) ``record``, O(buckets) ``percentile``, exact count/mean/min/max,
and element-wise mergeable across shards and forked reps.  The bucket
index is a pure function of the value, so goldens can pin *bucket
indices* (exactly stable across platforms) rather than floats.

:class:`LatencyProbe` keeps its exact per-sample semantics by default
(existing goldens pin interpolated percentiles) but gains a cached
sorted view -- ``percentile()`` no longer re-sorts on every call -- and
an opt-in ``streaming=True`` mode that retains no per-sample list and
delegates percentiles to a :class:`LogHistogram`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = [
    "Counter",
    "Deadline",
    "LatencyProbe",
    "LogHistogram",
    "ThroughputProbe",
    "TimeSeries",
    "summarize",
]


class Counter:
    """Named monotonically increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """(time, value) samples, e.g. transactions/sec during migration."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, t: float, value: float) -> None:
        """Append one (time, value) sample; times must not go backwards."""
        if self.times and t < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))


#: sub-bucket resolution: 2**7 sub-buckets per power of two.
_SUB_BITS = 7
_SUB_COUNT = 1 << _SUB_BITS  # 128
_SUB_SCALE = float(1 << (_SUB_BITS + 1))  # (m - 0.5) * 256 -> [0, 128)
#: sentinel bucket for exact zero (frexp(0.0) would collide with the
#: boundary between the e=0 and e=-1 octaves).
_ZERO_INDEX = -(1 << 60)


class LogHistogram:
    """Fixed-bucket logarithmic histogram (HDR-style).

    Values are binned by ``math.frexp``: a value ``v = m * 2**e`` with
    ``m in [0.5, 1)`` lands in sub-bucket ``int((m - 0.5) * 256)`` of
    octave ``e``, giving 128 log-spaced buckets per power of two.  The
    bucket index ``(e << 7) + sub`` is monotone in ``v`` (negative
    exponents included), so percentile lookup is a walk over sorted
    indices and goldens can pin indices exactly.

    Guarantees:

    * ``record`` is O(1) (one frexp + one dict increment) and retains no
      per-sample state -- memory is O(distinct buckets), bounded by the
      dynamic range of the data (128 buckets per decade-ish octave).
    * bucket width / lower bound <= 1/128, so the bucket *midpoint*
      returned by :meth:`percentile` is within ``REL_ERROR`` (1/128,
      under 1%) of any exact sample in the bucket.
    * count/total/min/max are tracked exactly: ``mean`` is exact, and
      ``percentile(0)`` / ``percentile(100)`` return the exact min/max.
    * two histograms merge by element-wise bucket addition
      (:meth:`merge` is associative and commutative), so shards and
      forked reps combine without precision loss.
    """

    #: documented relative-error bound of percentile() vs an exact
    #: same-rank sorted percentile (bucket half-width / lower bound).
    REL_ERROR = 1.0 / (1 << _SUB_BITS)  # 1/128, < 1%

    __slots__ = ("name", "buckets", "count", "total", "total_sq", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = math.inf
        self.max = -math.inf

    @staticmethod
    def bucket_index(value: float) -> int:
        """The bucket index for ``value`` (monotone in value)."""
        if value == 0.0:
            return _ZERO_INDEX
        m, e = math.frexp(value)
        return (e << _SUB_BITS) + int((m - 0.5) * _SUB_SCALE)

    @staticmethod
    def bucket_value(index: int) -> float:
        """Representative (midpoint) value of bucket ``index``."""
        if index == _ZERO_INDEX:
            return 0.0
        e, sub = index >> _SUB_BITS, index & (_SUB_COUNT - 1)
        # bucket spans [0.5 + sub/256, 0.5 + (sub+1)/256) * 2**e
        return math.ldexp(0.5 + (sub + 0.5) / _SUB_SCALE, e)

    def record(self, value: float) -> None:
        """Record one sample; O(1), no per-sample state retained."""
        if value < 0:
            raise ValueError(f"negative sample: {value}")
        idx = self.bucket_index(value)
        buckets = self.buckets
        buckets[idx] = buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Exact mean of all recorded samples."""
        if not self.count:
            raise ValueError("no samples")
        return self.total / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation (from exact running moments)."""
        if not self.count:
            raise ValueError("no samples")
        var = self.total_sq / self.count - (self.total / self.count) ** 2
        return math.sqrt(max(var, 0.0))

    def percentile_index(self, p: float) -> int:
        """Bucket index holding the p-th percentile (nearest-rank).

        Platform-exact -- this is what goldens pin.
        """
        if not self.count:
            raise ValueError("no samples")
        if not 0 <= p <= 100:
            raise ValueError("percentile in [0, 100]")
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                return idx
        raise AssertionError("bucket counts inconsistent")  # pragma: no cover

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, within :data:`REL_ERROR` of exact.

        ``p=0`` and ``p=100`` return the exact min/max; interior
        percentiles return the midpoint of the bucket holding the
        nearest-rank sample (rank ``ceil(p/100 * n)``).
        """
        if not self.count:
            raise ValueError("no samples")
        if p <= 0:
            return self.min
        if p >= 100:
            return self.max
        return self.bucket_value(self.percentile_index(p))

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into self (element-wise bucket add); returns self."""
        buckets = self.buckets
        for idx, n in other.buckets.items():
            buckets[idx] = buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def to_dict(self) -> dict:
        """JSON-able state (sorted bucket pairs), mergeable via :meth:`from_dict`."""
        return {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": [[idx, self.buckets[idx]] for idx in sorted(self.buckets)],
        }

    @classmethod
    def from_dict(cls, state: dict, name: str = "") -> "LogHistogram":
        hist = cls(name)
        hist.count = state["count"]
        hist.total = state["total"]
        hist.total_sq = state["total_sq"]
        if hist.count:
            hist.min = state["min"]
            hist.max = state["max"]
        hist.buckets = {int(idx): int(n) for idx, n in state["buckets"]}
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogHistogram({self.name}, n={self.count})"


class Deadline:
    """SLO accumulator: counts samples landing over a latency deadline.

    Streaming and mergeable like :class:`LogHistogram` -- O(1) per
    sample, no per-sample state.  ``record`` returns whether the sample
    violated the deadline so callers can cross-check against timer-based
    accounting.
    """

    __slots__ = ("name", "slo", "count", "violations", "worst")

    def __init__(self, slo: float, name: str = ""):
        if slo <= 0:
            raise ValueError(f"SLO deadline must be positive: {slo}")
        self.name = name
        self.slo = slo
        self.count = 0
        self.violations = 0
        self.worst = 0.0

    def record(self, latency: float) -> bool:
        """Record one latency; True when it exceeds the deadline."""
        self.count += 1
        if latency > self.worst:
            self.worst = latency
        if latency > self.slo:
            self.violations += 1
            return True
        return False

    @property
    def violation_fraction(self) -> float:
        """Fraction of samples over the deadline (0.0 when empty)."""
        return self.violations / self.count if self.count else 0.0

    def merge(self, other: "Deadline") -> "Deadline":
        """Fold ``other`` (same SLO) into self; returns self."""
        if other.slo != self.slo:
            raise ValueError(f"SLO mismatch: {self.slo} vs {other.slo}")
        self.count += other.count
        self.violations += other.violations
        if other.worst > self.worst:
            self.worst = other.worst
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return f"Deadline({self.name}, slo={self.slo}, {self.violations}/{self.count})"


class LatencyProbe:
    """Accumulates per-operation latencies (seconds).

    Default mode keeps every sample and serves exact interpolated
    percentiles (cached sorted view, invalidated on ``record``).  With
    ``streaming=True`` no per-sample list is retained: samples stream
    into a :class:`LogHistogram` and ``percentile`` serves the
    histogram's nearest-rank answer (within ``LogHistogram.REL_ERROR``).
    """

    def __init__(self, name: str = "", streaming: bool = False):
        self.name = name
        self.hist: Optional[LogHistogram] = LogHistogram(name) if streaming else None
        self.samples: Optional[list[float]] = None if streaming else []
        self._sorted: Optional[list[float]] = None

    @property
    def streaming(self) -> bool:
        return self.samples is None

    def record(self, latency: float) -> None:
        """Record one latency sample in seconds."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if self.samples is None:
            self.hist.record(latency)
        else:
            self.samples.append(latency)
            self._sorted = None

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self.hist.count if self.samples is None else len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency in seconds (exact in both modes)."""
        if self.samples is None:
            return self.hist.mean
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        return self.mean * 1e6

    def percentile(self, p: float) -> float:
        """Percentile, ``p`` in [0, 100].

        Exact (linear-interpolated) in list mode; histogram nearest-rank
        in streaming mode.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile in [0, 100]")
        if self.samples is None:
            return self.hist.percentile(p)
        if not self.samples:
            raise ValueError("no samples")
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        k = (len(ordered) - 1) * p / 100.0
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return ordered[int(k)]
        return ordered[lo] * (hi - k) + ordered[hi] * (k - lo)


class ThroughputProbe:
    """Accumulates bytes (or transactions) over a measured interval."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def open(self, t: float) -> None:
        """Start the measurement interval at time ``t``."""
        self.start_time = t

    def record(self, n: int, t: float) -> None:
        """Accumulate ``n`` units observed at time ``t``."""
        if self.start_time is None:
            self.start_time = t
        self.total += n
        self.end_time = t

    @property
    def elapsed(self) -> float:
        """Observed interval length in seconds."""
        if self.start_time is None or self.end_time is None:
            raise ValueError("probe never recorded")
        return self.end_time - self.start_time

    def rate(self) -> float:
        """Units per second over the observed interval."""
        elapsed = self.elapsed
        if elapsed <= 0:
            raise ValueError("interval too short to compute a rate")
        return self.total / elapsed

    def mbps(self) -> float:
        """Throughput in Mbit/s, interpreting ``total`` as bytes."""
        return self.rate() * 8 / 1e6


def summarize(samples) -> dict[str, float]:
    """min/mean/max/stdev of an iterable of floats.

    Also accepts a :class:`LogHistogram` or a streaming
    :class:`LatencyProbe`, summarised from their exact running moments
    (no sample list required).  The iterable path is unchanged --
    existing goldens that pin its float results stay bit-identical.
    """
    if isinstance(samples, LatencyProbe) and samples.streaming:
        samples = samples.hist
    if isinstance(samples, LogHistogram):
        if not samples.count:
            raise ValueError("no samples")
        return {
            "n": samples.count,
            "min": samples.min,
            "mean": samples.mean,
            "max": samples.max,
            "stdev": samples.stdev,
        }
    data = list(samples)
    if not data:
        raise ValueError("no samples")
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n
    return {
        "n": n,
        "min": min(data),
        "mean": mean,
        "max": max(data),
        "stdev": math.sqrt(var),
    }
