"""The Scenario object every topology builder returns.

A built evaluation topology plus its measurement endpoints and a
``warmup()`` that drives ARP resolution (and, for XenLoop topologies,
discovery + channel bootstrap) to completion so that measurements start
from the steady state the paper's numbers reflect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.calibration import CostModel
from repro.core.channel import ChannelState
from repro.core.discovery import DiscoveryModule
from repro.core.module import XenLoopModule
from repro.net.addr import IPv4Addr
from repro.net.nic import EthernetSwitch
from repro.net.node import Node
from repro.sim.engine import SimulationError, Simulator

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """A built evaluation topology plus its measurement endpoints."""
    name: str
    sim: Simulator
    costs: CostModel
    #: the two communication endpoints (may be the same node for loopback).
    node_a: Node
    node_b: Node
    ip_a: IPv4Addr
    ip_b: IPv4Addr
    machines: list = field(default_factory=list)
    switch: Optional[EthernetSwitch] = None
    modules: dict = field(default_factory=dict)  # node name -> XenLoopModule
    discovery: Optional[DiscoveryModule] = None
    #: whether warmup() should wait for XenLoop channels to connect
    #: (False for topologies whose endpoints start on different machines).
    expect_channels: bool = True

    def warmup(self, max_wait: float = 30.0) -> None:
        """Run the simulation until the data path is in steady state."""
        self._ping_once()
        if not self.modules or not self.expect_channels:
            return
        deadline = self.sim.now + max_wait
        while self.sim.now < deadline:
            if self._channels_connected():
                return
            # Discovery announcements arrive every discovery_period; each
            # ping after an announcement triggers channel bootstrap.
            self.sim.run(until=self.sim.now + self.costs.discovery_period / 4)
            self._ping_once()
        raise SimulationError(f"{self.name}: XenLoop channels never connected")

    def _ping_once(self) -> None:
        stack = self.node_a.stack

        def _gen():
            ident = stack.icmp.alloc_ident()
            waiter = yield from stack.icmp.send_echo(self.ip_b, ident, 0)
            yield self.sim.any_of([waiter, self.sim.timeout(1.0)])

        proc = self.sim.process(_gen(), name="warmup-ping")
        self.sim.run_until_complete(proc, timeout=5.0)

    def _channels_connected(self) -> bool:
        if not self.modules:
            return True
        for module in self.modules.values():
            if not any(
                ch.state is ChannelState.CONNECTED for ch in module.channels.values()
            ):
                return False
        return True

    def xenloop_module(self, node: Node) -> Optional[XenLoopModule]:
        """The XenLoop module loaded in ``node``, if any."""
        return self.modules.get(node.name)
