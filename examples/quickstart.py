#!/usr/bin/env python
"""Quickstart: two co-resident Xen guests, with and without XenLoop.

Builds the paper's evaluation setup (one dual-core Xen machine, two
1-vCPU guests), measures ping latency and TCP throughput over the
standard netfront/netback path, then loads XenLoop and measures again.

Run:  python examples/quickstart.py
"""

from repro import scenarios
from repro.workloads import netperf, pingpong


def measure(scn, label):
    ping = pingpong.flood_ping(scn, count=100)
    stream = netperf.tcp_stream(scn, duration=0.03)
    rr = netperf.tcp_rr(scn, duration=0.05)
    print(f"{label:24s} ping RTT {ping.rtt_us:7.1f} us   "
          f"TCP {stream.mbps:7.0f} Mbit/s   {rr.trans_per_sec:8.0f} trans/s")
    return ping, stream, rr


def main():
    print("== Standard netfront/netback path (via Dom0) ==")
    base = scenarios.netfront_netback()
    base.warmup()
    base_ping, base_stream, _ = measure(base, "netfront/netback")

    print("\n== With the XenLoop module loaded in both guests ==")
    xl = scenarios.xenloop()
    xl.warmup()  # discovery announcement + channel bootstrap
    xl_ping, xl_stream, _ = measure(xl, "xenloop")

    module = xl.xenloop_module(xl.node_a)
    print(f"\nXenLoop module stats (vm1): {module.stats()}")
    for channel in module.channels.values():
        print(f"  channel to dom{channel.peer_domid}: "
              f"{channel.pkts_sent} pkts sent, {channel.pkts_received} received, "
              f"role={'listener' if channel.is_listener else 'connector'}")

    print(f"\nLatency improvement : {base_ping.rtt_us / xl_ping.rtt_us:.1f}x")
    print(f"Bandwidth improvement: {xl_stream.mbps / base_stream.mbps:.1f}x")
    print("\nEverything above used unmodified socket applications -- the "
          "module intercepts packets beneath the network layer.")


if __name__ == "__main__":
    main()
