"""Event-channel notification suppression: protocol and race tests.

The suppression protocol is consumer-owns-flag: only the receiver sets
and clears CONSUMER_WAITING in the shared FIFO descriptor; the sender
reads it right after a push (no yield point in between) and skips the
notify hypercall when it is clear.  These tests pin the three things
that make it safe:

* the pre-sleep race -- an entry pushed after the receiver armed the
  flag but before it blocked is found by the final occupancy re-check,
  never stranded until the idle reaper fires;
* suppression actually suppresses -- a connected-channel burst sends
  far fewer notifies than messages;
* no lost wakeup under fault-injected notify loss, for arbitrary
  traffic interleavings (hypothesis property test): every datagram is
  eventually delivered, if necessary by the teardown drain.
"""

import pytest

from repro import scenarios
from repro.core.channel import ENTRY_STREAM
from repro.faults import NOTIFY_DROP, FaultPlan, FaultRule
from tests.conftest import run_gen
from tests.core.conftest import FAST, first_channel


class TestPreSleepRace:
    def test_entry_pushed_in_rearm_window_is_not_stranded(self, xl):
        """A push that lands exactly in the window between the drain
        worker arming CONSUMER_WAITING and blocking (so its notify was
        suppressed -- the producer read the flag as clear) must be
        delivered by the worker's final occupancy re-check, not sit in
        the FIFO until the idle-channel reaper tears the channel down."""
        sim = xl.sim
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        got = []
        ch_b.stream_handler = got.append

        fifo = ch_b.in_fifo
        orig_arm = fifo.set_consumer_waiting
        raced = {"done": False}

        def arm_then_race():
            orig_arm()
            if not raced["done"]:
                raced["done"] = True
                # The racing producer: its push landed, its flag read
                # came back clear, so it sent no notify.
                assert fifo.push(b"raced", ENTRY_STREAM)

        fifo.set_consumer_waiting = arm_then_race

        notifies_before = ch_a.notifies
        run_gen(sim, ch_a.send_entry(ENTRY_STREAM, b"first"))
        sim.run(until=sim.now + 0.01)

        assert raced["done"], "drain worker never re-armed"
        assert got == [b"first", b"raced"]
        # Exactly one notify moved both entries: the explicit send's.
        assert ch_a.notifies == notifies_before + 1
        # The worker went back to sleep armed, FIFO fully drained.
        assert fifo.is_empty
        assert fifo.consumer_waiting

    def test_suppressed_entry_while_draining_is_delivered(self, xl):
        """A push from inside the drain worker's own delivery phase (the
        flag is clear, so the notify is suppressed) is picked up by the
        same drain pass."""
        sim = xl.sim
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        got = []

        def handler(payload):
            got.append(payload)
            if payload == b"first":
                # Mid-drain push, CONSUMER_WAITING is clear: suppressed.
                assert not ch_b.in_fifo.consumer_waiting
                assert ch_b.in_fifo.push(b"mid-drain", ENTRY_STREAM)

        ch_b.stream_handler = handler
        run_gen(sim, ch_a.send_entry(ENTRY_STREAM, b"first"))
        sim.run(until=sim.now + 0.01)
        assert got == [b"first", b"mid-drain"]
        assert ch_b.in_fifo.is_empty


class TestSuppressionEfficacy:
    def test_burst_suppresses_most_notifies(self, xl):
        """While the receiver's drain worker is awake, pushes skip the
        notify hypercall entirely: a connected-channel burst must send
        strictly fewer notifies than messages and record suppressions."""
        sim = xl.sim
        ch_a = first_channel(xl, xl.node_a)
        server = xl.node_b.stack.udp_socket(7104, rcvbuf=1 << 22)
        client = xl.node_a.stack.udp_socket()
        n = 200

        def cli():
            for _ in range(n):
                yield from client.sendto(bytes(1000), (xl.ip_b, 7104))

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 0.1)
        assert server.rx_msgs == n
        sent = ch_a.pkts_sent
        assert ch_a.notifies < sent
        assert ch_a.notifies_suppressed > 0
        assert ch_a.notifies + ch_a.notifies_suppressed >= sent

    def test_drain_batches_counted(self, xl):
        sim = xl.sim
        ch_b = first_channel(xl, xl.node_b)
        server = xl.node_b.stack.udp_socket(7105, rcvbuf=1 << 22)
        client = xl.node_a.stack.udp_socket()

        def cli():
            for _ in range(50):
                yield from client.sendto(bytes(500), (xl.ip_b, 7105))

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 0.1)
        assert ch_b.drain_entries >= 50
        assert 0 < ch_b.drain_batches <= ch_b.drain_entries


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestNoLostWakeupProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        gaps=st.lists(
            st.sampled_from([0.0, 1e-5, 2e-4, 5e-3, 0.06]),
            min_size=3,
            max_size=12,
        ),
        skip=st.integers(min_value=0, max_value=10),
        times=st.integers(min_value=1, max_value=4),
    )
    def test_all_datagrams_survive_notify_loss(self, gaps, skip, times):
        """Arbitrary push/drain/sleep interleavings (driven by the gap
        pattern) with fault-injected notify loss: every pushed entry is
        eventually received -- through flag-armed retry on the next push,
        the pre-sleep re-check, or the teardown drain when the lost
        notify was the last one and the module is unloaded."""
        scn = scenarios.xenloop(FAST, seed=7)
        scn.warmup(max_wait=10.0)
        plan = FaultPlan(
            (FaultRule(kind=NOTIFY_DROP, times=times, skip=skip),), seed=1
        ).install(scn.sim)
        sim = scn.sim
        server = scn.node_b.stack.udp_socket(7201, rcvbuf=1 << 22)
        client = scn.node_a.stack.udp_socket()

        def cli():
            for i, gap in enumerate(gaps):
                yield from client.sendto(i.to_bytes(2, "big"), (scn.ip_b, 7201))
                if gap:
                    yield sim.timeout(gap)

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=60)
        sim.run(until=sim.now + 0.5)
        if server.rx_msgs < len(gaps):
            # The lost notify was the final one and no later traffic
            # healed it: "received or torn down" -- unload both modules;
            # the teardown drain delivers what is still in the FIFO.
            for node in (scn.node_a, scn.node_b):
                module = scn.xenloop_module(node)
                if module.loaded:
                    unload = sim.process(module.unload())
                    sim.run_until_complete(unload, timeout=30)
            sim.run(until=sim.now + 0.5)
        assert server.rx_msgs == len(gaps)
        assert sum(plan.snapshot()["injected"].values()) >= 0  # plan active
