"""TCP: handshake, stream integrity, windows, close, out-of-order."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr
from repro.net.node import Node
from repro.net.stack import NetworkStack
from repro.sim.engine import Simulator
from repro.sim.resources import CPUCores
from tests.conftest import run_gen


def connect_pair(sim, node_a, node_b, port=5000, **kwargs):
    """Establish a connection; returns (client_conn, server_conn).

    Buffer kwargs (sndbuf/rcvbuf) apply to both ends."""
    listener = node_b.stack.tcp_listen(port, **kwargs)
    result = {}

    def srv():
        result["server"] = yield from listener.accept()

    def cli():
        result["client"] = yield from node_a.stack.tcp_connect(
            (node_b.stack.ip, port), **kwargs
        )

    sp = sim.process(srv())
    cp = sim.process(cli())
    sim.run_until_complete(cp, timeout=10)
    sim.run_until_complete(sp, timeout=10)
    return result["client"], result["server"]


class TestHandshake:
    def test_connect_accept(self, sim, host):
        client, server = connect_pair(sim, host, host)
        assert client.state == "ESTABLISHED"
        assert server.state == "ESTABLISHED"

    def test_ports_match(self, sim, host):
        client, server = connect_pair(sim, host, host)
        assert client.remote == server.local
        assert server.remote == client.local

    def test_inter_machine_connect(self, sim, lan):
        a, b, _ = lan
        client, server = connect_pair(sim, a, b)
        assert client.state == server.state == "ESTABLISHED"

    def test_listen_port_collision(self, host):
        host.stack.tcp_listen(5000)
        with pytest.raises(OSError):
            host.stack.tcp_listen(5000)

    def test_connect_to_closed_port_stalls(self, sim, host):
        # no listener: SYN is dropped and connect never completes
        def cli():
            conn = yield from host.stack.tcp_connect((host.stack.ip, 9999))
            return conn

        proc = sim.process(cli())
        sim.run(until=1.0)
        assert not proc.triggered

    def test_concurrent_connections_demuxed(self, sim, host):
        listener = host.stack.tcp_listen(5000)
        results = {}

        def srv():
            for i in range(2):
                conn = yield from listener.accept()
                results[f"s{i}"] = conn

        def cli(i):
            conn = yield from host.stack.tcp_connect((host.stack.ip, 5000))
            yield from conn.send(bytes([i]))
            results[f"c{i}"] = conn

        sp = sim.process(srv())
        sim.process(cli(0))
        sim.process(cli(1))
        sim.run_until_complete(sp, timeout=10)
        assert results["c0"].local != results["c1"].local


class TestDataTransfer:
    def test_byte_exact_delivery(self, sim, host):
        client, server = connect_pair(sim, host, host)
        payload = bytes(range(256)) * 100  # 25600 bytes

        def cli():
            yield from client.send(payload)

        def srv():
            return (yield from server.recv_exactly(len(payload)))

        sim.process(cli())
        assert run_gen(sim, srv()) == payload

    def test_bidirectional_transfer(self, sim, host):
        client, server = connect_pair(sim, host, host)

        def cli():
            yield from client.send(b"question")
            return (yield from client.recv_exactly(6))

        def srv():
            yield from server.recv_exactly(8)
            yield from server.send(b"answer")

        sim.process(srv())
        assert run_gen(sim, cli()) == b"answer"

    def test_segments_respect_gso_max(self, sim, host):
        client, server = connect_pair(sim, host, host)
        payload = bytes(DEFAULT_COSTS.gso_max * 3)

        def cli():
            yield from client.send(payload)

        def srv():
            yield from server.recv_exactly(len(payload))

        sim.process(cli())
        run_gen(sim, srv())
        assert client.segments_sent >= 3

    def test_mss_on_physical_path(self, sim, lan):
        a, b, _ = lan
        client, server = connect_pair(sim, a, b)
        payload = bytes(10000)

        def cli():
            yield from client.send(payload)

        def srv():
            yield from server.recv_exactly(len(payload))

        sim.process(cli())
        run_gen(sim, srv())
        # 10000 bytes over 1448-byte MSS -> at least 7 segments
        assert client.segments_sent >= 7

    def test_recv_partial_reads(self, sim, host):
        client, server = connect_pair(sim, host, host)

        def cli():
            yield from client.send(b"abcdefgh")

        chunks = []

        def srv():
            for _ in range(4):
                chunks.append((yield from server.recv(2)))

        sim.process(cli())
        run_gen(sim, srv())
        assert b"".join(chunks) == b"abcdefgh"

    def test_send_on_unconnected_raises(self, sim, host):
        conn_cls = host.stack.tcp
        client, _server = connect_pair(sim, host, host)
        client.state = "CLOSED"
        with pytest.raises(OSError):
            run_gen(sim, client.send(b"x"))


class TestFlowControl:
    def test_sender_respects_receiver_window(self, sim, host):
        client, server = connect_pair(
            sim, host, host, rcvbuf=8192, sndbuf=8192
        )
        # server never reads; client tries to push far more than rcvbuf
        sent = {}

        def cli():
            yield from client.send(bytes(100_000))
            sent["done"] = True

        sim.process(cli())
        sim.run(until=1.0)
        # send() blocks once SNDBUF fills and the closed window stops the pump
        assert "done" not in sent
        # receiver buffered roughly a window's worth, not everything
        assert server._recv_buf_bytes <= 8192 + DEFAULT_COSTS.gso_max

    def test_window_reopens_when_app_reads(self, sim, host):
        client, server = connect_pair(sim, host, host, rcvbuf=8192)
        total = 100_000

        def cli():
            yield from client.send(bytes(total))
            return True

        def srv():
            got = 0
            while got < total:
                got += len((yield from server.recv(4096)))
            return got

        cp = sim.process(cli())
        sp = sim.process(srv())
        assert sim.run_until_complete(sp, timeout=60) == total
        assert sim.run_until_complete(cp, timeout=60)


class TestClose:
    def test_eof_after_close(self, sim, host):
        client, server = connect_pair(sim, host, host)

        def cli():
            yield from client.send(b"bye")
            yield from client.close()

        def srv():
            data = yield from server.recv(100)
            eof = yield from server.recv(100)
            return data, eof

        sim.process(cli())
        data, eof = run_gen(sim, srv())
        assert data == b"bye"
        assert eof == b""

    def test_full_close_reaches_closed_state(self, sim, host):
        client, server = connect_pair(sim, host, host)

        def cli():
            yield from client.close()
            yield client.closed_event

        def srv():
            data = yield from server.recv(10)
            assert data == b""
            yield from server.close()

        sim.process(srv())
        run_gen(sim, cli())
        sim.run(until=sim.now + 0.01)
        assert client.state == "CLOSED"
        assert server.state == "CLOSED"

    def test_connection_forgotten_after_close(self, sim, host):
        n_before = len(host.stack.tcp.connections)
        client, server = connect_pair(sim, host, host)

        def cli():
            yield from client.close()

        def srv():
            yield from server.recv(10)
            yield from server.close()

        sim.process(cli())
        sim.process(srv())
        sim.run(until=sim.now + 1.0)
        assert len(host.stack.tcp.connections) == n_before


class TestOutOfOrder:
    def test_ooo_segments_reassembled(self, sim, host):
        """Deliver segments to on_segment out of order directly."""
        client, server = connect_pair(sim, host, host)
        from repro.net.ethernet import IPPROTO_TCP
        from repro.net.packet import IPv4Header, Packet, TcpHeader, TCP_ACK, TCP_PSH

        base = server.rcv_nxt

        def seg(seq_off, data):
            hdr = TcpHeader(
                sport=client.local[1],
                dport=server.local[1],
                seq=base + seq_off,
                ack=server.snd_nxt,
                flags=TCP_ACK | TCP_PSH,
                window=8000,
            )
            ip = IPv4Header(client.local[0], server.local[0], IPPROTO_TCP)
            return Packet(payload=data, l4=hdr, ip=ip)

        def inject():
            yield from server.on_segment(seg(3, b"def"))
            yield from server.on_segment(seg(0, b"abc"))

        def srv():
            return (yield from server.recv_exactly(6))

        sim.process(inject())
        assert run_gen(sim, srv()) == b"abcdef"


@settings(max_examples=10, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=5000), min_size=1, max_size=8)
)
def test_stream_integrity_property(chunks):
    """Whatever write pattern the app uses, the receiver sees the exact
    concatenated byte stream."""
    sim = Simulator()
    cpus = CPUCores(sim, 2)
    node = Node(sim, cpus, DEFAULT_COSTS, "host")
    NetworkStack(node, IPv4Addr("10.0.0.1"))
    client, server = connect_pair(sim, node, node)
    total = b"".join(chunks)

    def cli():
        for chunk in chunks:
            yield from client.send(chunk)

    def srv():
        return (yield from server.recv_exactly(len(total)))

    sim.process(cli())
    proc = sim.process(srv())
    assert sim.run_until_complete(proc, timeout=120) == total


class TestListenerBacklog:
    def test_backlog_overflow_drops_offer(self, sim, host):
        """Connections beyond the accept backlog are silently not queued
        (the peer stays in limbo, as with a real SYN-queue overflow)."""
        listener = host.stack.tcp_listen(5800, backlog=1)
        conns = []

        def cli():
            conn = yield from host.stack.tcp_connect((host.stack.ip, 5800))
            conns.append(conn)

        for _ in range(3):
            sim.process(cli())
        sim.run(until=1.0)
        assert len(listener._ready) == 1
