#!/usr/bin/env python
"""Live migration demo: seamless switching between network paths.

Reproduces the paper's Sect. 4.5 experiment interactively: two VMs on
different machines exchange TCP request/response transactions; one
migrates onto the other's machine (XenLoop discovers co-residency and
the rate jumps), then migrates back (the channel tears down and traffic
transparently returns to the wire).

Run:  python examples/live_migration.py
"""

from repro import scenarios
from repro.workloads import migration_rr

COSTS = scenarios.DEFAULT_COSTS.replace(
    discovery_period=1.0,
    migration_duration=1.0,
    migration_downtime=0.1,
)


def main():
    scn = scenarios.migration_pair(COSTS)
    scn.warmup()
    print("vm1 on machine A, vm2 on machine B; running netperf TCP_RR "
          "while vm2 migrates A-ward and back...\n")
    res = migration_rr.run(scn, co_resident_hold=8.0, bin_width=0.5, settle=4.0)

    peak = max(v for _t, v in res.rates())
    print(f"{'time':>6s}  {'trans/s':>8s}")
    for t, rate in res.rates():
        bar = "#" * int(40 * rate / peak)
        marker = ""
        if abs(t - res.migrate_in_at) < 0.26:
            marker = "  <- vm2 starts migrating to machine A"
        elif abs(t - res.migrate_away_at) < 0.26:
            marker = "  <- vm2 starts migrating back to machine B"
        print(f"{t:6.1f}  {rate:8.0f}  {bar}{marker}")

    print("\nThe rate jump is the XenLoop channel engaging after the "
          "discovery module announces the newly co-resident guest; the "
          "TCP connection itself never breaks.")


if __name__ == "__main__":
    main()
