"""Mini-MPI message framing over simulated TCP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import scenarios
from repro.mpi import mpi_connect_pair

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2)


def make_pair(port=9400):
    scn = scenarios.native_loopback(FAST)
    sim = scn.sim
    rank0_connect, rank1_accept = mpi_connect_pair(scn, port=port)
    result = {}

    def r0():
        result["c0"] = yield from rank0_connect()

    def r1():
        result["c1"] = yield from rank1_accept()

    sim.process(r1())
    proc = sim.process(r0())
    sim.run_until_complete(proc, timeout=10)
    sim.run(until=sim.now + 0.01)
    return scn, result["c0"], result["c1"]


class TestFraming:
    def test_message_boundaries_preserved(self, ):
        scn, c0, c1 = make_pair()
        sim = scn.sim
        msgs = [b"first", b"", b"third-message" * 100]

        def sender():
            for m in msgs:
                yield from c0.send(m)

        got = []

        def receiver():
            for _ in msgs:
                got.append((yield from c1.recv()))

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run_until_complete(proc, timeout=30)
        assert got == msgs

    def test_counters(self):
        scn, c0, c1 = make_pair(port=9401)
        sim = scn.sim

        def sender():
            yield from c0.send(b"x")

        def receiver():
            yield from c1.recv()

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run_until_complete(proc, timeout=10)
        assert c0.msgs_sent == 1
        assert c1.msgs_received == 1

    def test_bidirectional_interleaving(self):
        scn, c0, c1 = make_pair(port=9402)
        sim = scn.sim

        def r0():
            yield from c0.send(b"ping")
            reply = yield from c0.recv()
            return reply

        def r1():
            data = yield from c1.recv()
            yield from c1.send(data + b"-pong")

        sim.process(r1())
        proc = sim.process(r0())
        assert sim.run_until_complete(proc, timeout=10) == b"ping-pong"

    @settings(max_examples=10, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=50000))
    def test_arbitrary_payload_roundtrip(self, payload):
        scn, c0, c1 = make_pair(port=9403)
        sim = scn.sim

        def sender():
            yield from c0.send(payload)

        def receiver():
            return (yield from c1.recv())

        sim.process(sender())
        proc = sim.process(receiver())
        assert sim.run_until_complete(proc, timeout=60) == payload
