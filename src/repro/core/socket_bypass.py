"""Experimental transport-layer XenLoop (the paper's future work).

Sect. 6: "we are presently investigating whether XenLoop functionality
can [be] implemented transparently between the socket and transport
layers in the protocol stack, instead of below the network layer ...
This can potentially lead to elimination of network protocol processing
overhead from the inter-VM data path."

:class:`SocketBypassModule` extends the regular XenLoop module with
exactly that: when an application connects a TCP socket to a
co-resident guest that has a connected channel, the connection is
transparently served by a :class:`BypassConnection` that moves the
application byte stream through the FIFO directly -- no TCP segments,
no IP headers, no checksums.  The server side is equally transparent:
the accepted connection object comes out of the ordinary listener's
``accept()``.

The channel is already reliable and ordered (it is shared memory with
producer/consumer indices), so the stream protocol is minimal: SYN /
SYN-ACK / DATA / FIN / RST frames multiplexed by stream id.  What this
variant gives up -- and why the paper left it as future work -- is
**migration transparency**: a TCP connection survives channel teardown
because the packets fall back to the standard path, but a byte stream
that lives *inside* the channel has nothing to fall back to.  Bypass
connections are therefore errored out when the channel dies, and the
module refuses to create new ones while any peer relationship is
unstable.  The ablation benchmark quantifies the protocol-processing
saving this buys on the steady-state data path.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.channel import Channel, ChannelDeadError, ChannelState, ENTRY_STREAM
from repro.core.module import XenLoopModule

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.addr import IPv4Addr
    from repro.xen.domain import Domain

__all__ = ["BypassConnection", "SocketBypassModule"]

_FRAME = struct.Struct("!IBH")  # stream_id, kind, port

KIND_SYN = 1
KIND_SYN_ACK = 2
KIND_DATA = 3
KIND_FIN = 4
KIND_RST = 5

#: per-frame payload cap: large writes are chunked so no frame outgrows
#: the FIFO and the receiver interleaves streams fairly.
MAX_FRAME_PAYLOAD = 16384

#: sender-side flow control: block the app while more than this many
#: bytes sit on the channel's waiting list.
WAITING_LIST_CAP = 65536


class BypassError(OSError):
    """A bypass stream operation failed (e.g. the channel died)."""
    pass


class BypassConnection:
    """A socket-compatible byte-stream endpoint over the XenLoop channel.

    Exposes the same blocking-generator API as
    :class:`repro.net.tcp.TcpConnection` (``send`` / ``recv`` /
    ``recv_exactly`` / ``close`` / ``established`` / ``closed_event`` /
    ``state``), so applications cannot tell which one ``connect`` or
    ``accept`` handed them.
    """

    def __init__(self, module: "SocketBypassModule", channel: Channel, stream_id: int, port: int):
        self.module = module
        self.channel = channel
        self.stream_id = stream_id
        self.port = port
        self.guest = module.guest
        # TcpConnection-compatible endpoint tuples.  The peer's IP is
        # recovered from the neighbour cache via the channel's MAC.
        peer_ip = module.peer_ip(channel)
        self.local = (self.guest.stack.ip, port)
        self.remote = (peer_ip, port)
        sim = self.guest.sim
        self.state = "CONNECTING"
        self.established = sim.event(name="bypass-established")
        self.closed_event = sim.event(name="bypass-closed")
        self._recv_buf: deque[bytes] = deque()
        self._recv_bytes = 0
        self._recv_waiters: deque = deque()
        self.eof = False
        self._fin_sent = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- application API ------------------------------------------------
    def send(self, data: bytes):
        """Blocking send (generator): the byte stream goes through the
        FIFO with no transport/network processing at all."""
        if self.state != "ESTABLISHED":
            raise BypassError(f"send on {self.state} bypass stream")
        node = self.guest
        # The syscall + socket-layer cost rides as a precharge on the
        # first frame's FIFO charge (one calendar entry instead of two);
        # it is charged standalone only when there is no frame to carry
        # it or the sender blocks on flow control first.
        precharge = node.costs.syscall + node.costs.socket_layer
        if not data:
            yield node.exec(precharge)
            return 0
        offset = 0
        while offset < len(data):
            while self.channel.waiting_bytes > WAITING_LIST_CAP:
                if precharge:
                    yield node.exec(precharge)
                    precharge = 0.0
                try:
                    yield self.channel.wait_waiting_space()
                except ChannelDeadError as exc:
                    raise BypassError("bypass stream died while sending") from exc
                if self.state == "CLOSED":
                    raise BypassError("bypass stream died while sending")
            chunk = data[offset : offset + MAX_FRAME_PAYLOAD]
            taken = yield from self.module.send_stream_frame(
                self.channel, self.stream_id, KIND_DATA, self.port, chunk,
                precharge=precharge,
            )
            precharge = 0.0
            if not taken:
                raise BypassError("channel torn down mid-stream")
            self.bytes_sent += len(chunk)
            offset += len(chunk)
        return len(data)

    def recv(self, max_bytes: int):
        """Blocking receive (generator); b"" on EOF."""
        node = self.guest
        yield node.exec(node.costs.syscall + node.costs.socket_layer)
        while not self._recv_buf and not self.eof:
            if self.state == "CLOSED" and not self._recv_buf:
                return b""
            waiter = node.sim.event(name="bypass-recv")
            self._recv_waiters.append(waiter)
            yield waiter
        if not self._recv_buf:
            return b""
        chunks: list[bytes] = []
        taken = 0
        while self._recv_buf and taken < max_bytes:
            head = self._recv_buf[0]
            want = max_bytes - taken
            if len(head) <= want:
                chunks.append(self._recv_buf.popleft())
                taken += len(head)
            else:
                chunks.append(head[:want])
                self._recv_buf[0] = head[want:]
                taken += want
        self._recv_bytes -= taken
        yield node.exec(node.costs.copy_cost(taken))  # kernel -> user
        return b"".join(chunks)

    def recv_exactly(self, n: int):
        """Receive exactly ``n`` bytes (generator); raises on early EOF."""
        parts: list[bytes] = []
        got = 0
        while got < n:
            chunk = yield from self.recv(n - got)
            if not chunk:
                raise BypassError(f"stream closed after {got}/{n} bytes")
            parts.append(chunk)
            got += len(chunk)
        return b"".join(parts)

    def close(self):
        """Half-close: send FIN; fully closed once both sides have."""
        if self.state in ("CLOSED",) or self._fin_sent:
            return
        node = self.guest
        yield node.exec(node.costs.syscall)
        self._fin_sent = True
        yield from self.module.send_stream_frame(
            self.channel, self.stream_id, KIND_FIN, self.port, b""
        )
        if self.eof:
            self._become_closed()

    # -- frame arrival (drain-worker context, synchronous) -----------------
    def on_data(self, payload: bytes) -> None:
        """Frame arrival (drain-worker context): buffer and wake readers."""
        self._recv_buf.append(payload)
        self._recv_bytes += len(payload)
        self.bytes_received += len(payload)
        self._wake()

    def on_fin(self) -> None:
        """Peer FIN arrival: mark EOF and finish the close handshake."""
        self.eof = True
        if self._fin_sent:
            self._become_closed()
        self._wake()

    def on_channel_death(self) -> None:
        """The underlying channel died (teardown/migration): bypass
        streams have no fallback path and must error out."""
        self.eof = True
        self._become_closed()

    def _become_closed(self) -> None:
        if self.state == "CLOSED":
            return
        self.state = "CLOSED"
        self.module.forget_stream(self)
        if not self.closed_event.triggered:
            self.closed_event.succeed()
        self._wake()

    def _wake(self) -> None:
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                break

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BypassConnection sid={self.stream_id} {self.state}>"


class SocketBypassModule(XenLoopModule):
    """XenLoop plus transparent socket-layer interception."""

    def __init__(self, guest: "Domain", **kwargs):
        super().__init__(guest, **kwargs)
        #: (channel, stream_id) -> BypassConnection
        self._streams: dict[tuple[int, int], BypassConnection] = {}
        self._next_stream_id = 2 if guest.domid % 2 == 0 else 1  # odd/even split
        self.bypass_connects = 0
        self.bypass_fallbacks = 0
        guest.stack.transport_intercept = self

    # -- transparent connect interception -----------------------------------
    def intercept_connect(self, remote: "tuple[IPv4Addr, int]"):
        """Called by the stack's tcp_connect (generator).  Returns a
        BypassConnection, or None to fall back to real TCP."""
        guest = self.guest
        stack = guest.stack
        dst_ip, dst_port = remote
        if not self.loaded or not dst_ip.in_subnet(stack.network, stack.prefix_len):
            return None
        mac = stack.arp.lookup(dst_ip)
        if mac is None:
            mac = yield from stack.arp.resolve(dst_ip)
            if mac is None:
                return None
        channel = self.channels.get(mac)
        if channel is None or channel.state is not ChannelState.CONNECTED:
            self.bypass_fallbacks += 1
            return None
        if channel.stream_handler is None:
            self._attach_stream_handler(channel)

        stream_id = self._alloc_stream_id()
        conn = BypassConnection(self, channel, stream_id, dst_port)
        self._streams[(id(channel), stream_id)] = conn
        taken = yield from self.send_stream_frame(
            channel, stream_id, KIND_SYN, dst_port, b""
        )
        if not taken:
            self.forget_stream(conn)
            self.bypass_fallbacks += 1
            return None
        result = yield guest.sim.any_of(
            [conn.established, guest.sim.timeout(self.guest.costs.bootstrap_timeout * 4)]
        )
        if not conn.established.triggered or conn.state != "ESTABLISHED":
            # no listener / peer refused: fall back to real TCP
            self.forget_stream(conn)
            self.bypass_fallbacks += 1
            return None
        self.bypass_connects += 1
        return conn

    def _alloc_stream_id(self) -> int:
        sid = self._next_stream_id
        self._next_stream_id += 2  # keep odd/even spaces disjoint per side
        return sid

    # -- frame plumbing --------------------------------------------------
    def send_stream_frame(
        self,
        channel: Channel,
        stream_id: int,
        kind: int,
        port: int,
        payload: bytes,
        precharge: float = 0.0,
    ):
        """Push one stream frame onto the channel (generator).

        Scatter-gather: the frame header and the payload chunk go into
        the FIFO as two views -- the application bytes are copied once,
        straight into the ring.  ``precharge`` is extra caller-side CPU
        work folded into the frame's first charge."""
        taken = yield from channel.send_entry_parts(
            ENTRY_STREAM, (_FRAME.pack(stream_id, kind, port), payload), precharge
        )
        return taken

    def _attach_stream_handler(self, channel: Channel) -> None:
        def handler(payload: Optional[bytes]) -> None:
            if payload is None:
                self._channel_died(channel)
            else:
                self._stream_input(channel, payload)

        channel.stream_handler = handler

    def channel_created(self, channel: Channel) -> None:
        """LifecycleHooks: every new channel -- whichever handshake path
        created it -- gets the stream demultiplexer attached."""
        if channel.stream_handler is None:
            self._attach_stream_handler(channel)

    def _stream_input(self, channel: Channel, frame: bytes) -> None:
        if len(frame) < _FRAME.size:
            return
        stream_id, kind, port = _FRAME.unpack_from(frame)
        payload = frame[_FRAME.size :]
        key = (id(channel), stream_id)
        conn = self._streams.get(key)
        if kind == KIND_SYN:
            self._passive_open(channel, stream_id, port)
        elif conn is None:
            return  # stale frame for a forgotten stream
        elif kind == KIND_SYN_ACK:
            conn.state = "ESTABLISHED"
            if not conn.established.triggered:
                conn.established.succeed()
        elif kind == KIND_DATA:
            conn.on_data(payload)
        elif kind == KIND_FIN:
            conn.on_fin()
        elif kind == KIND_RST:
            conn.on_channel_death()

    def _passive_open(self, channel: Channel, stream_id: int, port: int) -> None:
        guest = self.guest
        listener = guest.stack.tcp.listeners.get(port)
        if listener is None:
            guest.spawn(
                self.send_stream_frame(channel, stream_id, KIND_RST, port, b""),
                name="bypass-rst",
            )
            return
        conn = BypassConnection(self, channel, stream_id, port)
        conn.state = "ESTABLISHED"
        conn.established.succeed()
        self._streams[(id(channel), stream_id)] = conn
        listener._offer(conn)
        guest.spawn(
            self.send_stream_frame(channel, stream_id, KIND_SYN_ACK, port, b""),
            name="bypass-synack",
        )

    def _channel_died(self, channel: Channel) -> None:
        for (chan_id, _sid), conn in list(self._streams.items()):
            if chan_id == id(channel):
                conn.on_channel_death()

    def forget_stream(self, conn: BypassConnection) -> None:
        """Remove a finished stream from the demux table."""
        self._streams.pop((id(conn.channel), conn.stream_id), None)

    def peer_ip(self, channel: Channel):
        """Reverse-resolve the channel peer's IP from the ARP cache."""
        for ip, mac in self.guest.stack.arp.table.items():
            if mac == channel.peer_mac:
                return ip
        return None

    def stats(self) -> dict[str, int]:
        """Module stats extended with bypass connect/fallback counters."""
        base = super().stats()
        base["bypass_connects"] = self.bypass_connects
        base["bypass_fallbacks"] = self.bypass_fallbacks
        base["bypass_streams"] = len(self._streams)
        return base
