"""Gate CI on engine-throughput regressions.

Groups the history in ``BENCH_engine.json`` by benchmark configuration
-- ``(kind, shards, machines, data_path, warm_start, n_guests, cell,
smoke)``, where classic single-simulator entries are shards=0,
pre-annotation entries default to the xennet ring,
``kind="cluster_scale"`` entries (from ``bench_cluster_scale.py``)
additionally split by guest count, and ``kind="congestion"`` entries
(from ``bench_congestion.py``) split by their cell label and CI-smoke
sizing -- and,
within every group holding at least two entries, compares the
newest entry against the **median** of the group's earlier entries.
Grouping keeps the comparison like-for-like: a 4-shard scaling entry
is never measured against the 1-shard baseline, a FIFO-path entry
never against a ring-path one, and a 100-guest cluster entry never
against the 1,000-guest sweep.  The median (rather than the immediate
predecessor) keeps one lucky or unlucky recording from creating --
or masking -- a regression for every run that follows.

Shared runners swing hard between sessions (the recorded history spans
200k-312k events/s for a bit-identical event stream), so the default
threshold targets real hot-path damage, not scheduler weather: it
catches "someone made the engine 1.7x slower", not 20% drift.

Usage::

    python tools/check_bench_regression.py [--history BENCH_engine.json] [--threshold 0.4]

Exits 0 when every group is within threshold (groups with fewer than
two entries are reported but not gated); exits 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def _group_key(entry: dict) -> tuple:
    return (
        entry.get("kind", "engine"),
        entry.get("shards", 0),
        entry.get("machines", 1),
        entry.get("data_path", "xennet-ring"),
        bool(entry.get("warm_start")),
        entry.get("n_guests", 0),
        # congestion entries split by cell label and CI-vs-full sizing
        # (bench_congestion.py); "" / False on every other kind.
        entry.get("cell", ""),
        bool(entry.get("smoke")),
    )


def _group_label(key: tuple) -> str:
    kind, shards, machines, data_path, warm_start, n_guests, cell, smoke = key
    if kind == "cluster_scale":
        return f"[cluster-scale {n_guests}-guest/{machines}-machine]"
    if kind == "congestion":
        return f"[congestion {cell}{' smoke' if smoke else ''}]"
    if kind == "serving":
        return f"[serving {cell}{' smoke' if smoke else ''}]"
    mode = "classic" if shards == 0 else f"{shards}-shard/{machines}-machine"
    suffix = " +warm-start" if warm_start else ""
    return f"[{mode} {data_path}{suffix}]"


def check(history_path: Path, threshold: float) -> int:
    data = json.loads(history_path.read_text())
    history = data.get("history", [])
    groups: dict[tuple, list[dict]] = {}
    for entry in history:
        groups.setdefault(_group_key(entry), []).append(entry)

    failed = False
    compared = 0
    for key in sorted(groups):
        entries = groups[key]
        label = _group_label(key)
        if len(entries) < 2:
            print(f"{label}: no baseline (first recorded entry) -- gate skipped")
            continue
        last = entries[-1]
        baseline = statistics.median(e["events_per_sec"] for e in entries[:-1])
        last_eps = last["events_per_sec"]
        floor = baseline * (1.0 - threshold)
        ok = last_eps >= floor
        compared += 1
        failed = failed or not ok
        print(
            f"{'OK' if ok else 'REGRESSION'} {label}: "
            f"{last.get('sha', '?')} {last_eps:,.0f} events/s vs "
            f"median of {len(entries) - 1} prior {baseline:,.0f} events/s "
            f"(floor {floor:,.0f} = -{threshold:.0%})"
        )
    if not compared:
        print(f"{history_path}: no group has two entries, nothing to compare")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", default="BENCH_engine.json", type=Path,
        help="bench history file (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold", default=0.4, type=float,
        help="max allowed fractional drop vs the group median (default: 0.4)",
    )
    args = parser.parse_args()
    return check(args.history, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
