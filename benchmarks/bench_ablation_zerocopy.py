"""Ablation: the two-copy design versus receive-side zero-copy.

Reruns the design comparison of Sect. 3.3 ("comparing options for data
transfer"): the authors implemented an sk_buff-points-into-FIFO receive
path and found "any potential benefits of avoiding copy at the receiver
are overshadowed by the large amount of time that the precious space in
FIFO could be held up during protocol processing", causing back-pressure
on the sender.  The paper's shipped design is two copies.
"""

from repro import report, scenarios
from repro.workloads import netperf

from _bench_utils import BENCH_COSTS, emit

VARIANTS = {"two-copy (paper's choice)": False, "zero-copy receive": True}


def _measure():
    rows = {}
    for label, zc in VARIANTS.items():
        scn = scenarios.xenloop(BENCH_COSTS, zero_copy_rx=zc)
        scn.warmup(max_wait=20.0)
        rows[label] = {
            "tcp_stream_mbps": netperf.tcp_stream(scn, duration=0.03).mbps,
            "udp_stream_mbps": netperf.udp_stream(
                scn, duration=0.03, msg_size=8192
            ).mbps,
            "tcp_rr_per_s": netperf.tcp_rr(scn, duration=0.05).trans_per_sec,
        }
    return rows


def test_ablation_two_copy_vs_zero_copy(run_once, benchmark):
    rows = run_once(_measure)
    columns = ["tcp_stream_mbps", "udp_stream_mbps", "tcp_rr_per_s"]
    emit(
        "ablation_zerocopy",
        report.format_table(
            "Ablation: two-copy vs receive-side zero-copy",
            columns,
            list(rows.items()),
            precision=0,
        ),
    )
    benchmark.extra_info.update(
        {k: {c: round(v) for c, v in row.items()} for k, row in rows.items()}
    )
    two = rows["two-copy (paper's choice)"]
    zero = rows["zero-copy receive"]
    # The paper's conclusion: the copy saved does not pay for the FIFO
    # space held during protocol processing.
    assert two["tcp_stream_mbps"] > zero["tcp_stream_mbps"]
    assert two["udp_stream_mbps"] > zero["udp_stream_mbps"]
