"""Open-loop request/response serving -- production-shaped load.

Every other workload here is closed-loop (netperf-style: the next
request waits for the previous response), which hides queueing: a slow
server just slows the generator down.  Production traffic is open-loop
-- requests arrive on their own clock whether or not the server keeps
up -- so latency includes queueing delay and the tail explodes near
saturation.  This module supplies that generator:

* a single seeded **arrival process** (Poisson or Pareto/heavy-tailed
  inter-arrivals) paced on the simulator's timer wheel,
* a pool of persistent TCP connections per client guest (many flows
  multiplexed over one XenLoop channel per guest pair), each draining
  its own FIFO share of the arrivals,
* per-request latency (completion minus *arrival*, so queueing counts)
  streamed into a :class:`repro.sim.stats.LogHistogram` -- no
  per-sample list anywhere on the hot path,
* a per-request SLO deadline armed on the timer wheel and cancelled by
  the response in the common case (the mass-cancellation pattern the
  wheel's O(1) tombstoning exists for), cross-checked against the
  :class:`repro.sim.stats.Deadline` accumulator.

Workers survive connection loss (guest crash/restart churn): the failed
request counts as an error, its deadline fires, and the worker
reconnects with a short backoff.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.sim.stats import Deadline, LogHistogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Cluster

__all__ = ["ServingProbe", "ServingResult", "open_loop_rr"]

#: reconnect backoff after a dropped connection (seconds).
_RECONNECT_BACKOFF = 0.01
_RECONNECT_TRIES = 20


@dataclass
class ServingProbe:
    """Streaming accumulators for one serving run (registered on
    ``sim._serving_probes`` so :func:`repro.trace.engine_stats` reports
    them)."""

    name: str
    slo: float
    hist: LogHistogram = field(default_factory=LogHistogram)
    deadline: Deadline = None  # type: ignore[assignment]
    #: arrivals generated (offered load).
    offered: int = 0
    #: requests completed (response fully received).
    completed: int = 0
    #: requests lost to connection failure (churn).
    errors: int = 0
    #: SLO deadline timers that fired (request not done by arrival+slo).
    deadline_fires: int = 0
    #: reconnects performed by workers after a dropped connection.
    reconnects: int = 0

    def __post_init__(self):
        if self.deadline is None:
            self.deadline = Deadline(self.slo, name=self.name)

    def counters(self) -> dict:
        """Flat numeric summary (sums cleanly across shards/forks)."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "errors": self.errors,
            "slo_violations": self.deadline.violations,
            "deadline_fires": self.deadline_fires,
            "reconnects": self.reconnects,
        }


@dataclass
class ServingResult:
    """Outcome of one open-loop run.  Percentiles come from the
    streaming histogram; ``p50_idx``/``p99_idx`` are the platform-exact
    bucket indices goldens pin."""

    arrival: str
    rate: float
    offered: int
    completed: int
    errors: int
    duration: float
    throughput_rps: float
    p50_us: float
    p99_us: float
    p999_us: float
    p50_idx: int
    p99_idx: int
    slo: float
    slo_violations: int
    deadline_fires: int
    reconnects: int
    probe: ServingProbe


def _probes(sim) -> list:
    probes = getattr(sim, "_serving_probes", None)
    if probes is None:
        probes = sim._serving_probes = []
    return probes


def echo_server(cluster: "Cluster", server: str, req_size: int, resp_size: int, port: int):
    """Accept connections forever on ``server``; each echoes a
    ``resp_size``-byte response per ``req_size``-byte request."""
    node = cluster.guests[server]
    payload = bytes(resp_size)

    def serve(conn, i):
        try:
            while True:
                yield from conn.recv_exactly(req_size)
                yield from conn.send(payload)
        except OSError:
            pass  # client went away (end of run, or churn)

    def acceptor():
        listener = node.stack.tcp_listen(port, backlog=64)
        i = 0
        try:
            while True:
                conn = yield from listener.accept()
                node.sim.process(serve(conn, i), name=f"serve-{i}")
                i += 1
        except OSError:
            pass  # listener torn down with the guest

    return cluster.sim.process(acceptor(), name=f"serving-{server}")


def open_loop_rr(
    cluster: "Cluster",
    server: str,
    clients: Sequence[str],
    requests: int = 10_000,
    rate: float = 20_000.0,
    arrival: str = "poisson",
    pareto_alpha: float = 1.5,
    conns_per_client: int = 4,
    req_size: int = 128,
    resp_size: int = 512,
    slo: float = 0.002,
    port: int = 5401,
    timeout: float = 600.0,
    name: str = "serving",
) -> ServingResult:
    """Drive ``requests`` open-loop request/response transactions from
    ``clients`` into ``server`` and return tail-latency statistics.

    ``rate`` is the offered load in requests/second across the whole
    cluster; ``arrival`` is ``"poisson"`` (exponential inter-arrivals)
    or ``"pareto"`` (heavy-tailed, shape ``pareto_alpha`` > 1, same
    mean).  Arrivals are assigned round-robin to
    ``len(clients) * conns_per_client`` persistent connections; each
    connection serves its share FIFO, so queueing delay lands in the
    measured latency exactly as an open-loop client would see it.
    """
    if arrival not in ("poisson", "pareto"):
        raise ValueError(f"arrival must be 'poisson' or 'pareto', not {arrival!r}")
    if rate <= 0:
        raise ValueError(f"rate must be positive: {rate}")
    sim = cluster.sim
    wheel = sim.wheel
    rng = sim.rng
    probe = ServingProbe(name=name, slo=slo)
    _probes(sim).append(probe)
    echo_server(cluster, server, req_size, resp_size, port)
    server_ip = cluster.guests[server].stack.ip
    req_payload = bytes(req_size)
    done = sim.event("serving-done")

    mean_gap = 1.0 / rate
    # Same-mean Pareto: gap = xm * (1 + pareto(alpha)), E = xm*a/(a-1).
    pareto_xm = mean_gap * (pareto_alpha - 1.0) / pareto_alpha

    n_workers = len(clients) * conns_per_client
    queues: list[deque] = [deque() for _ in range(n_workers)]
    waiters: list[Optional[object]] = [None] * n_workers
    state = {"settled": 0, "generating": True}

    def _settle(n: int = 1) -> None:
        state["settled"] += n
        if (
            not state["generating"]
            and state["settled"] >= probe.offered
            and not done.triggered
        ):
            done.succeed()
            # Wake idle workers so they observe the exit condition.
            for wid, waiter in enumerate(waiters):
                if waiter is not None:
                    waiters[wid] = None
                    waiter.succeed()

    def _deadline_cb() -> None:
        probe.deadline_fires += 1

    def generator():
        for i in range(requests):
            gap = (
                rng.exponential(mean_gap)
                if arrival == "poisson"
                else pareto_xm * (1.0 + rng.pareto(pareto_alpha))
            )
            if gap > 0.0:
                yield wheel.timeout(gap)
            wid = i % n_workers
            handle = wheel.call_at(sim.now + slo, _deadline_cb)
            queues[wid].append((sim.now, handle))
            probe.offered += 1
            waiter = waiters[wid]
            if waiter is not None:
                waiters[wid] = None
                waiter.succeed()
        state["generating"] = False
        _settle(0)  # all arrivals may already be settled

    def worker(client: str, wid: int):
        node = cluster.guests[client]
        queue = queues[wid]
        conn = None
        while True:
            if not queue:
                if not state["generating"] and state["settled"] >= probe.offered:
                    break
                event = sim.event()
                waiters[wid] = event
                yield event
                continue
            t_arr, handle = queue.popleft()
            try:
                if conn is None:
                    attempt = 0
                    while True:
                        try:
                            conn = yield from node.stack.tcp_connect((server_ip, port))
                            break
                        except OSError:
                            attempt += 1
                            if attempt >= _RECONNECT_TRIES:
                                raise
                            yield wheel.timeout(_RECONNECT_BACKOFF)
                    if attempt:
                        probe.reconnects += 1
                yield from conn.send(req_payload)
                yield from conn.recv_exactly(resp_size)
            except OSError:
                # Connection died mid-request (crash/migration churn):
                # the request is lost, its deadline fires on its own.
                conn = None
                probe.errors += 1
                probe.reconnects += 1
                handle.cancel()
                _settle()
                continue
            latency = sim.now - t_arr
            handle.cancel()
            probe.hist.record(latency)
            probe.deadline.record(latency)
            probe.completed += 1
            _settle()
        if conn is not None:
            yield from conn.close()

    t0 = sim.now
    sim.process(generator(), name="serving-arrivals")
    procs = []
    for wid in range(n_workers):
        client = clients[wid % len(clients)]
        procs.append(sim.process(worker(client, wid), name=f"serving-{client}-{wid}"))

    def waiter_proc():
        yield done
        # Let workers run their close handshakes.
        for proc in procs:
            if proc.is_alive:
                yield proc

    sim.run_until_complete(sim.process(waiter_proc(), name="serving-wait"), timeout=timeout)
    duration = sim.now - t0

    hist = probe.hist
    if hist.count:
        p50_us = hist.percentile(50) * 1e6
        p99_us = hist.percentile(99) * 1e6
        p999_us = hist.percentile(99.9) * 1e6
        p50_idx = hist.percentile_index(50)
        p99_idx = hist.percentile_index(99)
    else:  # pragma: no cover - every request lost
        p50_us = p99_us = p999_us = 0.0
        p50_idx = p99_idx = 0
    return ServingResult(
        arrival=arrival,
        rate=rate,
        offered=probe.offered,
        completed=probe.completed,
        errors=probe.errors,
        duration=duration,
        throughput_rps=probe.completed / duration if duration > 0 else 0.0,
        p50_us=p50_us,
        p99_us=p99_us,
        p999_us=p999_us,
        p50_idx=p50_idx,
        p99_idx=p99_idx,
        slo=slo,
        slo_violations=probe.deadline.violations,
        deadline_fires=probe.deadline_fires,
        reconnects=probe.reconnects,
        probe=probe,
    )
