"""The thousand-guest control plane, end to end at small scale.

Delta-mode clusters here are a handful of guests, which keeps each test
fast while still exercising the full protocol surface: multicast
RosterDelta/FullSync scans, the quiescent-scan fast path, WhoIs-driven
sparse mappings, the per-guest channel budget's eviction and
re-establishment, and identity refresh when a crashed guest restarts
reusing its pinned MAC.
"""

import importlib
import sys

import pytest

from repro import topology
from repro.calibration import DEFAULT_COSTS
from repro.core.channel import ChannelState

FAST = DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)

importlib.import_module("repro.scenarios.fault_matrix")
fm = sys.modules["repro.scenarios.fault_matrix"]


def _delta_spec(n=3, budget=None, full_sync_every=8, pin_last_mac=False):
    """``n`` XenLoop guests on one machine, delta discovery."""
    guests = []
    for i in range(n):
        pinned = pin_last_mac and i == n - 1
        guests.append(
            topology.GuestSpec(
                f"vm{i + 1}",
                channel_budget=budget,
                mac="00:16:3e:ff:00:05" if pinned else None,
            )
        )
    return topology.ClusterSpec(
        name="delta_test",
        machines=(topology.MachineSpec(name="xenA", guests=tuple(guests)),),
        discovery_mode="delta",
        full_sync_every=full_sync_every,
        expect_channels=False,
    )


def _udp(scn, src, dst, port, payload=b"ping"):
    """One datagram src -> dst; returns what dst received."""
    sim = scn.sim
    server = dst.stack.udp_socket(port)
    client = src.stack.udp_socket()

    def gen():
        yield from client.sendto(payload, (dst.stack.ip, port))
        data, _ = yield from server.recvfrom()
        return data

    proc = sim.process(gen())
    data = sim.run_until_complete(proc, timeout=5.0)
    server.close()
    client.close()
    return data


def _connect(scn, src, dst, port):
    """Drive traffic until the src->dst channel is CONNECTED."""
    sim = scn.sim
    module = scn.modules[src.name]
    for _ in range(50):
        assert _udp(scn, src, dst, port) == b"ping"
        channel = module.channels.get(dst.mac)
        if channel is not None and channel.state is ChannelState.CONNECTED:
            return channel
        sim.run(until=sim.now + FAST.discovery_period / 2)
    raise AssertionError(f"{src.name}->{dst.name} channel never connected")


class TestSparseMapping:
    def test_mapping_grows_only_on_demand(self):
        """A guest's mapping holds the peers it resolved, not the roster."""
        scn = _delta_spec(n=4).build(FAST, seed=7)
        a, b = scn.guests["vm1"], scn.guests["vm2"]
        scn.sim.run(until=FAST.discovery_period * 2)  # let scans happen
        assert scn.modules["vm1"].mapping == {}  # nothing resolved yet
        _connect(scn, a, b, port=7601)
        control = scn.modules["vm1"].control
        assert set(control.mapping) == {b.mac}  # one peer, not three
        assert control.whois_sent >= 1
        assert control.roster.epoch >= 1
        dom0 = scn.discoveries[0]
        assert dom0.whois_answered >= 1

    def test_delta_mode_is_deterministic(self):
        """Two identical builds walk the identical event stream."""
        counts = []
        for _ in range(2):
            scn = _delta_spec(n=3).build(FAST, seed=7)
            _connect(scn, scn.guests["vm1"], scn.guests["vm2"], port=7602)
            scn.sim.run(until=2.0)
            counts.append(
                (scn.sim.event_count, scn.modules["vm1"].stats(),
                 scn.discoveries[0].epoch)
            )
        assert counts[0] == counts[1]

    def test_module_snapshot_carries_roster_state(self):
        scn = _delta_spec(n=3).build(FAST, seed=7)
        _connect(scn, scn.guests["vm1"], scn.guests["vm2"], port=7603)
        snap = scn.modules["vm1"].snapshot_state()
        assert snap["delta_discovery"] is True
        roster = snap["control"]["roster"]
        assert roster["epoch"] >= 1 and roster["track_all"] is False


class TestQuiescentFastPath:
    def test_unchanged_scan_builds_no_frame(self, monkeypatch):
        """A quiescent scan must not even construct a RosterDelta, let
        alone serialize or send one (full syncs disabled here)."""
        scn = _delta_spec(n=3, full_sync_every=0).build(FAST, seed=7)
        sim = scn.sim
        dom0 = scn.discoveries[0]
        sim.run(until=FAST.discovery_period * 1.5)  # the one changed scan
        assert dom0.deltas_sent == 1

        disc_mod = sys.modules["repro.core.discovery"]

        def boom(*args, **kwargs):
            raise AssertionError("RosterDelta built on a quiescent scan")

        monkeypatch.setattr(disc_mod, "RosterDelta", boom)
        monkeypatch.setattr(disc_mod, "FullSync", boom)
        frames_before = dom0.announcements_sent
        sim.run(until=sim.now + FAST.discovery_period * 5)
        assert dom0.quiescent_scans >= 4
        assert dom0.announcements_sent == frames_before


class TestChannelBudget:
    def test_eviction_and_reestablishment_round_trip(self):
        """budget=1: a second peer evicts the first's channel (LRU); the
        first peer re-establishes on its next traffic."""
        scn = _delta_spec(n=3, budget=1).build(FAST, seed=7)
        a, b, c = (scn.guests[f"vm{i}"] for i in (1, 2, 3))
        module = scn.modules["vm1"]

        _connect(scn, a, b, port=7604)
        assert set(module.channels) == {b.mac}

        _connect(scn, a, c, port=7605)  # over budget: a<->b is the LRU victim
        scn.sim.run(until=scn.sim.now + 0.5)  # let the eviction teardown land
        assert module.control.budget_evictions >= 1
        assert set(module.channels) == {c.mac}
        assert len(module.channels) <= 1

        # Round trip: traffic to b again re-establishes within the budget.
        _connect(scn, a, b, port=7606)
        scn.sim.run(until=scn.sim.now + 0.5)
        assert len(module.channels) <= 1
        assert module.channels[b.mac].state is ChannelState.CONNECTED
        # and the data path used channels, not just netfront fallback
        assert module.pkts_via_channel > 0

    def test_budget_never_exceeded_under_fanout(self):
        scn = _delta_spec(n=4, budget=2).build(FAST, seed=7)
        a = scn.guests["vm1"]
        for i, port in ((2, 7611), (3, 7612), (4, 7613)):
            _connect(scn, a, scn.guests[f"vm{i}"], port=port)
            scn.sim.run(until=scn.sim.now + 0.5)
            connected = [
                ch for ch in scn.modules["vm1"].channels.values()
                if ch.state is ChannelState.CONNECTED
            ]
            assert len(connected) <= 2


class TestIdentityRefresh:
    def test_same_mac_restart_updates_mapping_announce_mode(self):
        """Satellite regression (announce mode): a crash + restart reusing
        a pinned MAC re-advertises under a fresh domid, and the peer's
        mapping must follow instead of routing to the dead identity."""
        cluster = fm._build_pair(fm.MATRIX_COSTS, seed=0, pin_mac=True)
        sim = cluster.sim
        vm1, vm2 = cluster.guests["vm1"], cluster.guests["vm2"]
        _connect(cluster, vm1, vm2, port=7621)
        old_domid, mac = vm2.domid, vm2.mac

        vm2.crash()
        new = cluster.restart_guest("vm2")
        assert new.mac == mac and new.domid != old_domid
        sim.run(until=sim.now + FAST.discovery_period * 3)

        module = cluster.modules["vm1"]
        assert module.control.mapping[mac] == new.domid
        # no channel still bound to the dead incarnation
        for channel in module.channels.values():
            assert channel.peer_domid != old_domid

    def test_same_mac_restart_updates_mapping_delta_mode(self):
        """The same regression through the RosterDelta identity-change
        path: crash + restart inside one scan window, so the scanner
        emits a join for an already-tracked MAC with a new domid."""
        scn = _delta_spec(n=3, pin_last_mac=True).build(FAST, seed=7)
        sim = scn.sim
        a, b = scn.guests["vm1"], scn.guests["vm3"]
        _connect(scn, a, b, port=7622)
        old_domid, mac = b.domid, b.mac

        b.crash()
        new = scn.restart_guest("vm3")  # same scan window: no leave seen
        assert new.mac == mac and new.domid != old_domid
        sim.run(until=sim.now + FAST.discovery_period * 3)

        control = scn.modules["vm1"].control
        assert control.mapping[mac] == new.domid
        for channel in scn.modules["vm1"].channels.values():
            assert channel.peer_domid != old_domid
        # and the refreshed identity carries traffic again
        _connect(scn, a, new, port=7623)

    def test_fault_matrix_cell_exists_and_passes(self):
        cell = next(
            c for c in fm.matrix_cells()
            if c.name == "crash_restart_same_mac:connected"
        )
        assert cell.pin_mac
        result = fm.run_cell(cell)
        assert result["ok"], result["detail"]
        assert result["recovered"].get("guest_restart") == 1
