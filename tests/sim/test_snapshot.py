"""Unit coverage for the checkpoint subsystem: capture determinism,
digest verification, persistence, and the stale-parent guard.

The fork-equivalence goldens (a forked child reproduces a cold run bit
for bit) live in ``tests/integration/test_snapshot_fork.py``; this file
covers the snapshot mechanics themselves.
"""

import json

import pytest

from repro import scenarios
from repro.sim.snapshot import (
    SNAPSHOT_FORMAT,
    SimSnapshot,
    SnapshotError,
    SnapshotMismatch,
    SnapshotStale,
    build_from_recipe,
    capture_state,
    fault_pair_recipe,
    scenario_recipe,
    state_digest,
)

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


def _warm_recipe(seed=7):
    return scenario_recipe("xenloop", costs=FAST, seed=seed, warm={"max_wait": 20.0})


class TestCaptureDeterminism:
    def test_same_seed_builds_same_digest(self):
        """Two same-recipe builds in ONE process capture identically --
        the property restore() relies on (guards against process-global
        leakage like the guest MAC counter)."""
        a = capture_state(build_from_recipe(_warm_recipe()))
        b = capture_state(build_from_recipe(_warm_recipe()))
        assert state_digest(a) == state_digest(b)
        assert a == b

    def test_different_seed_different_digest(self):
        a = capture_state(build_from_recipe(_warm_recipe(seed=7)))
        b = capture_state(build_from_recipe(_warm_recipe(seed=8)))
        assert state_digest(a) != state_digest(b)

    def test_capture_is_read_only(self):
        """Capturing twice back-to-back yields the same tree and does
        not advance the simulator."""
        scn = build_from_recipe(_warm_recipe())
        before = (scn.sim.now, scn.sim.event_count)
        a = capture_state(scn)
        b = capture_state(scn)
        assert a == b
        assert (scn.sim.now, scn.sim.event_count) == before

    def test_state_is_canonical_json(self):
        state = capture_state(build_from_recipe(_warm_recipe()))
        json.dumps(state)  # no tuples, sets, numpy scalars, non-str keys

    def test_fault_pair_recipe_roundtrip(self):
        recipe = fault_pair_recipe(seed=3, machines=2)
        a = capture_state(build_from_recipe(recipe))
        b = capture_state(build_from_recipe(recipe))
        assert state_digest(a) == state_digest(b)
        assert len(a["machines"]) == 2


class TestPersistence:
    def test_save_load_restore_roundtrip(self, tmp_path):
        recipe = _warm_recipe()
        snap = SimSnapshot.capture(build_from_recipe(recipe), recipe=recipe)
        path = tmp_path / "snap.json"
        snap.save(path)

        loaded = SimSnapshot.load(path)
        assert loaded.digest == snap.digest
        assert loaded.sim_time == snap.sim_time
        assert loaded.cluster is None
        cluster = loaded.restore()
        assert cluster is loaded.cluster
        assert cluster.sim.now == snap.sim_time
        assert cluster.sim.event_count == snap.event_count

    def test_tampered_manifest_raises_mismatch(self, tmp_path):
        recipe = _warm_recipe()
        snap = SimSnapshot.capture(build_from_recipe(recipe), recipe=recipe)
        path = tmp_path / "snap.json"
        snap.save(path)
        doc = json.loads(path.read_text())
        doc["digest"] = "0" * 64
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotMismatch):
            SimSnapshot.load(path).restore()

    def test_unknown_format_rejected(self, tmp_path):
        recipe = _warm_recipe()
        snap = SimSnapshot.capture(build_from_recipe(recipe), recipe=recipe)
        path = tmp_path / "snap.json"
        snap.save(path)
        doc = json.loads(path.read_text())
        doc["format"] = SNAPSHOT_FORMAT + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError):
            SimSnapshot.load(path)

    def test_restore_without_recipe_rejected(self):
        snap = SimSnapshot.capture(build_from_recipe(_warm_recipe()))
        with pytest.raises(SnapshotError):
            snap.restore()

    def test_unknown_recipe_kind_rejected(self):
        with pytest.raises(SnapshotError):
            build_from_recipe({"kind": "nonsense"})


class TestStaleGuard:
    def test_fork_refuses_after_parent_ran(self):
        scn = build_from_recipe(_warm_recipe())
        snap = SimSnapshot.capture(scn)
        scn.sim.run(until=scn.sim.now + 1.0)  # parent moves past capture
        with pytest.raises(SnapshotStale):
            snap.fork(lambda cluster: None)


class TestClusterApi:
    def test_cluster_snapshot_and_from_snapshot(self, tmp_path):
        recipe = _warm_recipe()
        scn = build_from_recipe(recipe)
        snap = scn.snapshot(recipe=recipe, label="via Cluster")
        assert snap.digest == state_digest(capture_state(scn))
        path = tmp_path / "snap.json"
        snap.save(path)
        from repro.topology import Cluster

        rebuilt = Cluster.from_snapshot(str(path))
        assert rebuilt.sim.now == scn.sim.now
        assert rebuilt.sim.event_count == scn.sim.event_count

    def test_inspect_mentions_engine_and_digest(self):
        recipe = _warm_recipe()
        snap = SimSnapshot.capture(build_from_recipe(recipe), recipe=recipe)
        text = snap.inspect()
        assert "engine:" in text
        assert snap.digest in text
        assert "vm1" in text
