"""Checkpoint/warm-start forking of simulator state.

Every fault-matrix cell, bench repetition, and sweep point used to pay
the full cluster warmup (discovery, handshake, ARP, channel bootstrap)
from scratch.  This module makes that a one-time cost: build and warm a
cluster once, :meth:`SimSnapshot.capture` it, then :meth:`~SimSnapshot.fork`
it into as many independent experiments as needed -- the gem5
checkpoint trick, adapted to a generator-coroutine engine.

Two layers, because the engine's processes are live Python generators
(which CPython cannot pickle or deep-copy):

**Live forking** (:meth:`SimSnapshot.fork`)
    ``os.fork()`` duplicates the whole interpreter image -- generator
    frames, calendar heap, FIFO pages, everything -- so the child IS
    the captured simulator, bit for bit, at zero serialization cost.
    The child runs a caller-supplied function against the cluster and
    returns its (picklable) result over a pipe; the parent's copy is
    never touched, so one snapshot forks any number of identical
    children.  A guard digest of ``(now, seq, event_count)`` refuses to
    fork from a parent that ran past the capture point.

**Persistent manifests** (:meth:`~SimSnapshot.save` / :meth:`~SimSnapshot.load`
/ :meth:`~SimSnapshot.restore`)
    A versioned JSON document holding the build *recipe* (scenario name
    or fault-pair shape, cost model, seed, warm steps), the captured
    state tree (every subsystem's ``snapshot_state()``), and a sha256
    digest over that tree.  ``restore()`` re-executes the recipe --
    deterministic replay -- then re-captures and verifies the digest,
    so code drift or nondeterminism since the save surfaces as
    :class:`SnapshotMismatch` instead of silently different results.

Determinism contract: a child forked from a post-warmup snapshot, run
with the same seed and workload, is bit-identical to a cold run that
warmed up and continued in one process -- pinned against the golden
counters in ``tests/integration/test_snapshot_fork.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import traceback
from typing import Any, Callable, Optional

__all__ = [
    "HAS_FORK",
    "SNAPSHOT_FORMAT",
    "SimSnapshot",
    "SnapshotError",
    "SnapshotForkError",
    "SnapshotMismatch",
    "SnapshotStale",
    "build_from_recipe",
    "capture_state",
    "fault_pair_recipe",
    "scenario_recipe",
    "state_digest",
]

#: manifest format version; bump on any change to the captured tree's
#: shape so a stale manifest fails loudly instead of digest-mismatching.
SNAPSHOT_FORMAT = 1

#: live forking needs a POSIX fork (the PDES shard runner already does;
#: platforms without it can still save/restore/inspect manifests).
HAS_FORK = hasattr(os, "fork")


class SnapshotError(RuntimeError):
    """Base error for the snapshot subsystem."""


class SnapshotMismatch(SnapshotError):
    """Deterministic replay of the recipe reached a different state."""


class SnapshotStale(SnapshotError):
    """The live simulator ran past the capture point; forking from it
    would not reproduce the snapshot."""


class SnapshotForkError(SnapshotError):
    """A forked child raised; carries the child's traceback text."""


# ---------------------------------------------------------------------------
# State capture
# ---------------------------------------------------------------------------

def _jsonable(value: Any) -> Any:
    """Normalize a captured tree to plain JSON types (str keys, no
    numpy scalars, no tuples/sets) so digests are canonical."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def capture_state(cluster) -> dict:
    """Walk a built cluster/scenario and collect every subsystem's
    ``snapshot_state()`` into one plain tree.

    Strictly read-only: nothing is scheduled, run, or mutated, so
    capturing is safe at any quiescent point (between ``run`` calls)
    and a forked child continues exactly as the parent would have.
    """
    state: dict = {"sim": cluster.sim.snapshot_state()}

    guests = getattr(cluster, "guests", None)
    if not guests:
        guests = {}
        for node in (cluster.node_a, cluster.node_b):
            guests.setdefault(node.name, node)

    gstate: dict = {}
    for name, guest in guests.items():
        entry: dict = {
            "alive": getattr(guest, "alive", True),
            "domid": getattr(guest, "domid", None),
        }
        stack = getattr(guest, "stack", None)
        if stack is not None:
            entry["stack"] = stack.snapshot_state()
        netfront = getattr(guest, "netfront", None)
        if netfront is not None:
            entry["netfront"] = {
                "suspended": netfront.suspended,
                "tx_ring": (
                    netfront.tx_ring.snapshot_state() if netfront.tx_ring else None
                ),
                "tx_packets": netfront.tx_packets,
                "rx_packets": netfront.rx_packets,
                "limbo": len(netfront._limbo),
                "txq": len(netfront._txq),
            }
        gstate[name] = entry
    state["guests"] = gstate

    state["modules"] = {
        name: module.snapshot_state()
        for name, module in (getattr(cluster, "modules", None) or {}).items()
    }

    mstate: dict = {}
    for machine in getattr(cluster, "machines", None) or []:
        entry = {}
        hyper = getattr(machine, "hypervisor", None)
        if hyper is not None:
            entry["grant_tables"] = {
                str(domid): table.snapshot_state()
                for domid, table in hyper.grant_tables.items()
            }
            entry["evtchn"] = hyper.evtchn.snapshot_state()
            entry["hypercalls"] = hyper.hypercalls
        xenstore = getattr(machine, "xenstore", None)
        if xenstore is not None:
            entry["xenstore"] = xenstore.snapshot_state()
        mstate[machine.name] = entry
    state["machines"] = mstate

    discos = getattr(cluster, "discoveries", None)
    if not discos:
        single = getattr(cluster, "discovery", None)
        discos = [single] if single is not None else []
    state["discoveries"] = [d.snapshot_state() for d in discos]

    return _jsonable(state)


def state_digest(state: dict) -> str:
    """sha256 over the canonical JSON encoding of a captured tree."""
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _first_divergence(a: Any, b: Any, path: str = "") -> str:
    """Dotted path of the first differing leaf (digest-mismatch hint)."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key} (missing on one side)"
            if a[key] != b[key]:
                return _first_divergence(a[key], b[key], f"{path}.{key}")
        return path or "<equal>"
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path} (length {len(a)} vs {len(b)})"
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return _first_divergence(x, y, f"{path}[{i}]")
        return path or "<equal>"
    return f"{path} ({a!r} vs {b!r})"


# ---------------------------------------------------------------------------
# Recipes: how to rebuild the simulator this snapshot describes
# ---------------------------------------------------------------------------

def scenario_recipe(
    name: str,
    costs=None,
    seed: int = 0,
    warm: Optional[dict] = None,
    kwargs: Optional[dict] = None,
) -> dict:
    """Recipe for a registered scenario, optionally warmed up.

    ``warm`` is falsy (no warmup) or ``{"max_wait": <seconds>}``.
    """
    recipe: dict = {"kind": "scenario", "name": name, "seed": seed}
    if costs is not None:
        recipe["costs"] = dataclasses.asdict(costs)
    if warm:
        recipe["warm"] = dict(warm)
    if kwargs:
        recipe["kwargs"] = dict(kwargs)
    return recipe


def fault_pair_recipe(
    costs=None, seed: int = 0, machines: int = 1, pin_mac: bool = False
) -> dict:
    """Recipe for the fault matrix's two-guest pair (pre-fault: plans
    bind after build, so this snapshot point precedes any injection).

    ``pin_mac`` is recorded only when set, so recipes (and their
    digests) from before the pinned-MAC cells are unchanged.
    """
    recipe: dict = {"kind": "fault_pair", "seed": seed, "machines": machines}
    if pin_mac:
        recipe["pin_mac"] = True
    if costs is not None:
        recipe["costs"] = dataclasses.asdict(costs)
    return recipe


def build_from_recipe(recipe: dict):
    """Deterministically re-execute a recipe into a live cluster."""
    from repro.calibration import DEFAULT_COSTS, CostModel

    kind = recipe.get("kind")
    costs = CostModel(**recipe["costs"]) if recipe.get("costs") else DEFAULT_COSTS
    seed = recipe.get("seed", 0)
    if kind == "scenario":
        from repro import scenarios

        scn = scenarios.build(
            recipe["name"], costs=costs, seed=seed, **(recipe.get("kwargs") or {})
        )
        warm = recipe.get("warm")
        if warm:
            scn.warmup(max_wait=float(warm.get("max_wait", 30.0)))
        return scn
    if kind == "fault_pair":
        import importlib
        import sys

        importlib.import_module("repro.scenarios.fault_matrix")
        # The scenarios package re-exports the fault_matrix *builder*,
        # shadowing the submodule attribute -- go through sys.modules.
        fm = sys.modules["repro.scenarios.fault_matrix"]
        base = fm.MATRIX_COSTS if not recipe.get("costs") else costs
        return fm._build_pair(
            base,
            seed,
            machines=recipe.get("machines", 1),
            pin_mac=recipe.get("pin_mac", False),
        )
    raise SnapshotError(f"unknown recipe kind {kind!r}")


# ---------------------------------------------------------------------------
# Live forking
# ---------------------------------------------------------------------------

def _fork_call(fn: Callable[[], Any]) -> Any:
    """Run ``fn`` in a forked child; return its pickled result.

    The child exits with ``os._exit`` so the parent's buffered output,
    atexit hooks, and pytest machinery never run twice.  Exceptions in
    the child come back as :class:`SnapshotForkError` with the child's
    traceback text.
    """
    if not HAS_FORK:
        raise SnapshotError("live forking needs os.fork (POSIX only)")
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        os.close(read_fd)
        code = 0
        try:
            payload = pickle.dumps((True, fn()))
        except BaseException:
            code = 1
            try:
                payload = pickle.dumps((False, traceback.format_exc()))
            except Exception:
                payload = pickle.dumps((False, "child failed; traceback unpicklable"))
        try:
            with os.fdopen(write_fd, "wb") as pipe:
                pipe.write(payload)
        finally:
            os._exit(code)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as pipe:
        data = pipe.read()
    os.waitpid(pid, 0)
    if not data:
        raise SnapshotForkError("forked child died before returning a result")
    ok, result = pickle.loads(data)
    if not ok:
        raise SnapshotForkError(f"forked child raised:\n{result}")
    return result


# ---------------------------------------------------------------------------
# The snapshot object
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class SimSnapshot:
    """A captured simulator: state tree + digest + rebuild recipe.

    Holding a live ``cluster`` reference enables :meth:`fork`; a
    snapshot loaded from disk has no live cluster until :meth:`restore`
    replays the recipe (and verifies the digest).
    """

    state: dict
    digest: str
    sim_time: float
    event_count: int
    seq: int
    recipe: Optional[dict] = None
    label: str = ""
    format: int = SNAPSHOT_FORMAT
    cluster: Any = dataclasses.field(default=None, repr=False, compare=False)

    # -- capture ---------------------------------------------------------
    @classmethod
    def capture(cls, cluster, recipe: Optional[dict] = None, label: str = "") -> "SimSnapshot":
        """Capture a live cluster (read-only; the cluster keeps running
        as the fork parent)."""
        state = capture_state(cluster)
        sim = cluster.sim
        return cls(
            state=state,
            digest=state_digest(state),
            sim_time=sim.now,
            event_count=sim.event_count,
            seq=sim._seq,
            recipe=recipe,
            label=label,
            cluster=cluster,
        )

    # -- live forking ----------------------------------------------------
    def _live_cluster(self):
        cluster = self.cluster
        if cluster is None:
            cluster = self.restore()
        sim = cluster.sim
        live = (sim.now, sim._seq, sim.event_count)
        captured = (self.sim_time, self.seq, self.event_count)
        if live != captured:
            raise SnapshotStale(
                f"parent simulator moved past the capture point: "
                f"(now, seq, events) {live} != captured {captured}"
            )
        return cluster

    def fork(self, fn: Callable[[Any], Any]) -> Any:
        """Run ``fn(cluster)`` against a forked copy of the snapshot.

        The parent's simulator is untouched; every call forks the same
        captured state, so N calls yield N independent, bit-identical
        replays.  ``fn``'s return value must be picklable.
        """
        cluster = self._live_cluster()
        return _fork_call(lambda: fn(cluster))

    def fork_many(self, fns) -> list:
        """Fork one child per callable, sequentially, returning their
        results in order (sequential keeps output deterministic and
        suits the single-core container; children are independent, so a
        parallel variant only changes wall time, never results)."""
        return [self.fork(fn) for fn in fns]

    # -- persistence -----------------------------------------------------
    def manifest(self) -> dict:
        return {
            "format": self.format,
            "label": self.label,
            "recipe": self.recipe,
            "sim_time": self.sim_time,
            "event_count": self.event_count,
            "seq": self.seq,
            "digest": self.digest,
            "state": self.state,
        }

    def save(self, path) -> None:
        """Write the versioned JSON manifest (no live state; restore
        replays the recipe)."""
        with open(path, "w") as fh:
            json.dump(self.manifest(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "SimSnapshot":
        with open(path) as fh:
            doc = json.load(fh)
        fmt = doc.get("format")
        if fmt != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"manifest format {fmt!r} != supported {SNAPSHOT_FORMAT}"
            )
        return cls(
            state=doc["state"],
            digest=doc["digest"],
            sim_time=doc["sim_time"],
            event_count=doc["event_count"],
            seq=doc["seq"],
            recipe=doc.get("recipe"),
            label=doc.get("label", ""),
            format=fmt,
        )

    def restore(self):
        """Rebuild the simulator by deterministic replay of the recipe,
        verify the digest, and bind the result as the live cluster.

        A digest mismatch means the code or its determinism drifted
        since the save -- the first differing leaf is named in the
        error so the drift is debuggable, not just detectable.
        """
        if self.recipe is None:
            raise SnapshotError("snapshot has no recipe; cannot restore")
        cluster = build_from_recipe(self.recipe)
        fresh = capture_state(cluster)
        fresh_digest = state_digest(fresh)
        if fresh_digest != self.digest:
            raise SnapshotMismatch(
                "replayed state diverges from the manifest at "
                f"{_first_divergence(self.state, fresh)} "
                f"(digest {fresh_digest[:12]} != {self.digest[:12]})"
            )
        self.cluster = cluster
        return cluster

    # -- inspection ------------------------------------------------------
    def inspect(self) -> str:
        """Human-readable summary of the captured state tree."""
        sim = self.state.get("sim", {})
        lines = [
            f"SimSnapshot format={self.format}"
            + (f" label={self.label!r}" if self.label else ""),
            f"  recipe: {json.dumps(self.recipe) if self.recipe else '(none: live-only)'}",
            f"  engine: t={self.sim_time:.6f}s  events={self.event_count:,}  "
            f"seq={self.seq:,}  calendar={sim.get('queue_len', 0)}+"
            f"{sim.get('ready_len', 0)} pending",
            f"  digest: {self.digest}",
        ]
        for name, guest in sorted(self.state.get("guests", {}).items()):
            stack = guest.get("stack") or {}
            lines.append(
                f"  guest {name}: domid={guest.get('domid')} "
                f"alive={guest.get('alive')} "
                f"arp={len((stack.get('arp') or {}).get('table', {}))} "
                f"udp_socks={len(stack.get('udp_sockets', {}))}"
            )
        for name, module in sorted(self.state.get("modules", {}).items()):
            control = module.get("control", {})
            channels = control.get("channels", {})
            states = ",".join(
                f"{mac}:{ch['ctrl']['fsm']['state']}" for mac, ch in sorted(channels.items())
            )
            lines.append(
                f"  module {name}: mapping={len(control.get('mapping', {}))} "
                f"channels=[{states or '-'}] "
                f"via_channel={module.get('pkts_via_channel', 0)}"
            )
        for name, machine in sorted(self.state.get("machines", {}).items()):
            grants = sum(
                len(t.get("entries", {}))
                for t in machine.get("grant_tables", {}).values()
            )
            ports = len((machine.get("evtchn") or {}).get("ports", {}))
            lines.append(f"  machine {name}: grants={grants} evtchn_ports={ports}")
        return "\n".join(lines)
