"""MAC and IPv4 address types.

Both are immutable, hashable wrappers over integers with the usual
string formats.  Keeping them as real types (instead of raw strings)
catches a whole class of "passed an IP where a MAC was expected" bugs
in the bridge/ARP/XenLoop mapping-table code.
"""

from __future__ import annotations

from functools import total_ordering

__all__ = ["IPv4Addr", "MacAddr", "BROADCAST_MAC"]


@total_ordering
class MacAddr:
    """48-bit Ethernet MAC address."""

    __slots__ = ("value",)

    def __init__(self, value: "int | str | MacAddr"):
        if isinstance(value, MacAddr):
            self.value = value.value
        elif isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"bad MAC string: {value!r}")
            self.value = int("".join(f"{int(p, 16):02x}" for p in parts), 16)
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC out of range: {value:#x}")
            self.value = value
        else:
            raise TypeError(f"cannot build MAC from {type(value).__name__}")

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit of the first octet is set."""
        return bool((self.value >> 40) & 0x01)

    @property
    def is_link_local(self) -> bool:
        """True for the IEEE 802.1D reserved range 01:80:c2:00:00:0x.

        802.1D-conformant bridges must never forward frames addressed
        to this block out of another port toward the wider network --
        XenLoop's delta-discovery multicast rides on this guarantee to
        stay machine-local.
        """
        return (self.value & ~0xF) == 0x0180C2000000

    def to_bytes(self) -> bytes:
        """6-byte big-endian wire representation."""
        return self.value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddr":
        """Parse 6 wire bytes into a MacAddr."""
        if len(data) != 6:
            raise ValueError(f"MAC needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other) -> bool:
        return isinstance(other, MacAddr) and self.value == other.value

    def __lt__(self, other: "MacAddr") -> bool:
        if not isinstance(other, MacAddr):
            return NotImplemented
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddr('{self}')"


BROADCAST_MAC = MacAddr((1 << 48) - 1)


@total_ordering
class IPv4Addr:
    """32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: "int | str | IPv4Addr"):
        if isinstance(value, IPv4Addr):
            self.value = value.value
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"bad IPv4 string: {value!r}")
            octets = [int(p) for p in parts]
            if any(not 0 <= o <= 255 for o in octets):
                raise ValueError(f"bad IPv4 string: {value!r}")
            self.value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 out of range: {value:#x}")
            self.value = value
        else:
            raise TypeError(f"cannot build IPv4 from {type(value).__name__}")

    def in_subnet(self, network: "IPv4Addr", prefix_len: int) -> bool:
        """Whether this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"bad prefix length {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self.value & mask) == (network.value & mask)

    def to_bytes(self) -> bytes:
        """4-byte big-endian wire representation."""
        return self.value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Addr":
        """Parse 4 wire bytes into an IPv4Addr."""
        if len(data) != 4:
            raise ValueError(f"IPv4 needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __eq__(self, other) -> bool:
        return isinstance(other, IPv4Addr) and self.value == other.value

    def __lt__(self, other: "IPv4Addr") -> bool:
        if not isinstance(other, IPv4Addr):
            return NotImplemented
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ipv4", self.value))

    def __str__(self) -> str:
        v = self.value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Addr('{self}')"
