"""The experimental transport-layer XenLoop variant (paper future work)."""

import pytest

from repro import scenarios
from repro.core.socket_bypass import BypassConnection, BypassError
from repro.workloads import netperf
from tests.core.conftest import FAST


@pytest.fixture
def bp():
    scn = scenarios.xenloop(FAST, socket_bypass=True)
    scn.warmup(max_wait=10.0)
    return scn


def tcp_pair(scn, port):
    """Connect via the ordinary socket API; returns (client, server)."""
    sim = scn.sim
    listener = scn.node_b.stack.tcp_listen(port)
    out = {}

    def srv():
        out["server"] = yield from listener.accept()

    def cli():
        out["client"] = yield from scn.node_a.stack.tcp_connect((scn.ip_b, port))

    sim.process(srv())
    proc = sim.process(cli())
    sim.run_until_complete(proc, timeout=10)
    sim.run(until=sim.now + 0.01)
    return out["client"], out["server"]


class TestTransparency:
    def test_connect_yields_bypass_stream(self, bp):
        client, server = tcp_pair(bp, 7801)
        assert isinstance(client, BypassConnection)
        assert isinstance(server, BypassConnection)
        assert client.state == server.state == "ESTABLISHED"

    def test_same_api_as_tcp(self, bp):
        """The application code below is byte-for-byte what the TCP tests
        run -- transparency means it cannot tell the difference."""
        client, server = tcp_pair(bp, 7802)
        sim = bp.sim
        payload = bytes(range(256)) * 100

        def cli():
            yield from client.send(payload)

        def srv():
            return (yield from server.recv_exactly(len(payload)))

        sim.process(cli())
        proc = sim.process(srv())
        assert sim.run_until_complete(proc, timeout=30) == payload

    def test_no_listener_falls_back_to_tcp(self, bp):
        """Connecting to a port nobody listens on must not hang in the
        bypass layer; it falls back to TCP (which then stalls exactly as
        real TCP would)."""
        sim = bp.sim

        def cli():
            conn = yield from bp.node_a.stack.tcp_connect((bp.ip_b, 7999))
            return conn

        proc = sim.process(cli())
        sim.run(until=sim.now + 2.0)
        assert not proc.triggered  # TCP SYN to a closed port: no answer
        module = bp.xenloop_module(bp.node_a)
        assert module.bypass_fallbacks >= 1

    def test_fallback_to_tcp_before_channel_exists(self):
        scn = scenarios.xenloop(FAST, socket_bypass=True)
        # no warmup: no channel yet -> connect falls back to real TCP
        client, server = tcp_pair(scn, 7803)
        from repro.net.tcp import TcpConnection

        assert isinstance(client, TcpConnection)

    def test_eof_semantics(self, bp):
        client, server = tcp_pair(bp, 7804)
        sim = bp.sim

        def cli():
            yield from client.send(b"bye")
            yield from client.close()

        def srv():
            data = yield from server.recv(100)
            eof = yield from server.recv(100)
            return data, eof

        sim.process(cli())
        proc = sim.process(srv())
        data, eof = sim.run_until_complete(proc, timeout=10)
        assert data == b"bye"
        assert eof == b""

    def test_full_close_both_sides(self, bp):
        client, server = tcp_pair(bp, 7805)
        sim = bp.sim

        def cli():
            yield from client.close()
            yield client.closed_event

        def srv():
            yield from server.recv(10)
            yield from server.close()

        sim.process(srv())
        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=10)
        assert client.state == "CLOSED"
        module = bp.xenloop_module(bp.node_a)
        assert module.stats()["bypass_streams"] == 0


class TestPerformance:
    def test_rr_faster_than_base_xenloop(self):
        """The whole point: no transport/network processing on the path."""
        results = {}
        for bypass in (False, True):
            scn = scenarios.xenloop(FAST, socket_bypass=bypass)
            scn.warmup(max_wait=10.0)
            results[bypass] = netperf.tcp_rr(scn, duration=0.05).trans_per_sec
        assert results[True] > 1.2 * results[False]

    def test_stream_faster_than_base_xenloop(self):
        results = {}
        for bypass in (False, True):
            scn = scenarios.xenloop(FAST, socket_bypass=bypass)
            scn.warmup(max_wait=10.0)
            results[bypass] = netperf.tcp_stream(scn, duration=0.02).mbps
        assert results[True] > results[False]


class TestChannelDeath:
    def test_streams_error_on_module_unload(self, bp):
        client, server = tcp_pair(bp, 7806)
        sim = bp.sim
        module_a = bp.xenloop_module(bp.node_a)
        proc = sim.process(module_a.unload())
        sim.run_until_complete(proc, timeout=10)
        sim.run(until=sim.now + 0.2)
        assert client.state == "CLOSED"

        def try_send():
            yield from client.send(b"x")

        with pytest.raises(BypassError):
            sim.run_until_complete(sim.process(try_send()), timeout=5)

    def test_new_connections_fall_back_after_unload(self, bp):
        sim = bp.sim
        module_a = bp.xenloop_module(bp.node_a)
        proc = sim.process(module_a.unload())
        sim.run_until_complete(proc, timeout=10)
        sim.run(until=sim.now + 0.2)
        client, _server = tcp_pair(bp, 7807)
        from repro.net.tcp import TcpConnection

        assert isinstance(client, TcpConnection)
