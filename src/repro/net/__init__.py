"""Simulated network substrate.

A faithful-in-structure model of the Linux networking path the paper's
prototype lives in: sk_buff-like packets, a protocol stack with
netfilter hooks between layers, ARP neighbour cache, IPv4 with
fragmentation, UDP, a simplified windowed TCP, BSD-style sockets, and
devices (loopback, physical NIC + switch, and -- in ``repro.xennet`` --
the Xen split driver).
"""

from repro.net.addr import IPv4Addr, MacAddr
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.sockets import SOCK_DGRAM, SOCK_STREAM, Socket

__all__ = [
    "IPv4Addr",
    "MacAddr",
    "Node",
    "Packet",
    "SOCK_DGRAM",
    "SOCK_STREAM",
    "Socket",
]
