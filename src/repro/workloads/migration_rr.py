"""netperf TCP_RR sampled while a guest live-migrates (Fig. 11).

Reproduces the paper's migration experiment: vm1 and vm2 start on
different machines exchanging 1-byte TCP request-response transactions;
vm2 migrates onto vm1's machine (the guests detect co-residency,
bootstrap a XenLoop channel, and the transaction rate jumps), then
migrates away again (the channel tears down and the rate returns to the
inter-machine level).  The output is a time series of transactions per
sampling bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.stats import TimeSeries
from repro.xen.migration import live_migrate

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios import Scenario

__all__ = ["MigrationRrResult", "run"]


@dataclass
class MigrationRrResult:
    """Fig. 11 outcome: rate time series plus migration marks."""
    series: TimeSeries
    migrate_in_at: float
    migrate_away_at: float

    def rates(self) -> list[tuple[float, float]]:
        """The (time, transactions/sec) samples as a list."""
        return list(self.series)


def run(
    scenario: "Scenario",
    co_resident_hold: float = 10.0,
    bin_width: float = 0.25,
    settle: float = 8.0,
    port: int = 5401,
) -> MigrationRrResult:
    """Drive Fig. 11 on a :func:`repro.scenarios.migration_pair` scenario."""
    sim = scenario.sim
    vm2 = scenario.node_b
    machine_a, machine_b = scenario.machines
    series = TimeSeries("tcp_rr_rate")
    state = {"count": 0, "stop": False}
    marks = {}

    def server():
        listener = scenario.node_b.stack.tcp_listen(port)
        conn = yield from listener.accept()
        listener.close()
        while not state["stop"]:
            try:
                yield from conn.recv_exactly(1)
            except OSError:
                return
            yield from conn.send(b"y")

    def client():
        conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
        while not state["stop"]:
            yield from conn.send(b"x")
            yield from conn.recv_exactly(1)
            state["count"] += 1

    def sampler():
        while not state["stop"]:
            before = state["count"]
            yield sim.timeout(bin_width)
            series.record(sim.now, (state["count"] - before) / bin_width)

    def orchestrator():
        # Phase 1: separate machines.
        yield sim.timeout(settle)
        marks["in_start"] = sim.now
        yield from live_migrate(vm2, machine_a)
        # Phase 2: co-resident; give discovery + bootstrap time to engage.
        yield sim.timeout(co_resident_hold)
        marks["away_start"] = sim.now
        yield from live_migrate(vm2, machine_b)
        # Phase 3: separate again.
        yield sim.timeout(settle)
        state["stop"] = True

    sim.process(server(), name="mig-rr-server")
    sim.process(client(), name="mig-rr-client")
    sim.process(sampler(), name="mig-rr-sampler")
    orch = sim.process(orchestrator(), name="mig-orchestrator")
    sim.run_until_complete(orch, timeout=600)
    # Let the last transactions settle so the final bin is recorded.
    sim.run(until=sim.now + 2 * bin_width)
    return MigrationRrResult(
        series=series,
        migrate_in_at=marks["in_start"],
        migrate_away_at=marks["away_start"],
    )
