"""Sharded-PDES unit tests: per-shard seed derivation, shard-count
resolution, the cross-shard frame codec, and the lookahead constant.

The end-to-end determinism contract (bit-identical sharded reruns,
1-shard == unsharded) lives in tests/integration/test_determinism.py;
this file covers the pieces in isolation.
"""

import pickle

import pytest

from repro import topology
from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.devices import decode_frame, encode_frame
from repro.net.ethernet import ETH_HEADER_LEN
from repro.net.packet import IPPROTO_UDP, EthHeader, IPv4Header, Packet, UdpHeader
from repro.sim import pdes
from repro.sim.rng import DEFAULT_SEED, make_rng, make_shard_seeds


class TestShardSeeds:
    def test_single_shard_passes_seed_through(self):
        # n=1 must NOT wrap the seed: the 1-shard path feeds it to the
        # plain Simulator and must stay bit-identical to unsharded runs.
        assert make_shard_seeds(42, 1) == [42]
        assert make_shard_seeds(None, 1) == [DEFAULT_SEED]

    def test_spawn_keys_are_distinct(self):
        for n in (2, 3, 8):
            seeds = make_shard_seeds(7, n)
            assert len(seeds) == n
            assert len({tuple(s.spawn_key) for s in seeds}) == n

    def test_shard_streams_never_collide(self):
        # First draw of every shard RNG, across shard indexes AND base
        # seeds: all pairwise distinct (SeedSequence.spawn guarantees
        # independent child states; a duplicate here would mean two
        # shards replaying the same jitter stream).
        draws = [
            make_rng(s).random()
            for base in (0, 1, 7, 12345)
            for s in make_shard_seeds(base, 8)
        ]
        assert len(set(draws)) == len(draws)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            make_shard_seeds(0, 0)


class TestResolveShards:
    def _grid(self, n_machines=2):
        return pdes.bench_grid_spec(n_machines, 2, 4096, 0.01)

    def test_accepts_one_and_machine_count(self):
        spec = self._grid(3)
        assert pdes._resolve_shards(spec, 1) == 1
        assert pdes._resolve_shards(spec, 3) == 3
        assert pdes._resolve_shards(spec, None) == 3  # default: per machine

    def test_rejects_other_counts(self):
        with pytest.raises(ValueError, match="shards must be 1 or"):
            pdes._resolve_shards(self._grid(2), 3)

    def test_rejects_cross_shard_workloads(self):
        spec = self._grid(2)
        crossed = topology.ClusterSpec(
            name="crossed",
            machines=spec.machines,
            workloads=(
                topology.WorkloadSpec("udp_stream", client="m0g0", server="m1g0"),
            ),
            expect_channels=False,
        )
        with pytest.raises(ValueError, match="spans shards"):
            pdes._resolve_shards(crossed, 2)
        # ...but a single shard holds the whole cluster, so it's fine.
        assert pdes._resolve_shards(crossed, 1) == 1

    def test_rejects_migrate_churn(self):
        spec = self._grid(2)
        churny = topology.ClusterSpec(
            name="churny",
            machines=spec.machines,
            workloads=spec.workloads,
            churn=(
                topology.ChurnAction(
                    at=0.1, action="migrate", guest="m0g0", to_machine="xen1"
                ),
            ),
            expect_channels=False,
        )
        with pytest.raises(ValueError, match="migration is not supported"):
            pdes._resolve_shards(churny, 2)


class TestFrameCodec:
    def _eth(self, ethertype=0x0800):
        return EthHeader(
            dst=MacAddr("00:16:3e:00:00:02"),
            src=MacAddr("00:16:3e:00:00:01"),
            ethertype=ethertype,
        )

    def test_ip_frame_roundtrip(self):
        pkt = Packet(
            payload=b"hello shard",
            l4=UdpHeader(sport=1234, dport=5678),
            ip=IPv4Header(
                src=IPv4Addr("10.0.0.1"), dst=IPv4Addr("10.0.0.2"), proto=IPPROTO_UDP
            ),
            eth=self._eth(),
        )
        out = decode_frame(encode_frame(pkt))
        assert out.eth.to_bytes() == pkt.eth.to_bytes()
        assert out.to_l3_bytes() == pkt.to_l3_bytes()
        assert out.payload == b"hello shard"
        assert out.l4.dport == 5678
        assert out.ip.src == pkt.ip.src

    def test_non_ip_frame_roundtrip(self):
        # ARP / discovery frames carry their serialized body in payload.
        pkt = Packet(payload=b"\x00\x01arp-ish", eth=self._eth(0x0806))
        out = decode_frame(encode_frame(pkt))
        assert out.ip is None
        assert out.payload == b"\x00\x01arp-ish"
        assert out.eth.ethertype == 0x0806
        assert out.eth.src == pkt.eth.src

    def test_meta_is_dropped(self):
        pkt = Packet(payload=b"x", eth=self._eth(0x0806))
        pkt.meta["via"] = "trace-only"
        assert decode_frame(encode_frame(pkt)).meta == {}

    def test_blob_survives_pickling(self):
        # The blob is what actually crosses the process pipe.
        pkt = Packet(
            payload=b"wire",
            l4=UdpHeader(sport=1, dport=2),
            ip=IPv4Header(
                src=IPv4Addr("10.0.0.1"), dst=IPv4Addr("10.0.0.2"), proto=IPPROTO_UDP
            ),
            eth=self._eth(),
        )
        blob = encode_frame(pkt)
        out = decode_frame(pickle.loads(pickle.dumps(blob)))
        assert out.to_l3_bytes() == pkt.to_l3_bytes()


class TestLookahead:
    def test_lookahead_is_min_frame_latency(self):
        c = DEFAULT_COSTS
        expected = c.switch_latency + c.wire_time(ETH_HEADER_LEN) + c.nic_rx_latency
        assert pdes.lookahead(c) == expected
        assert pdes.lookahead(c) > 0.0
