"""Node: anything that runs software and owns a network stack.

A ``Node`` is a native host or a Xen domain (``repro.xen.domain.Domain``
subclasses it).  It knows how to charge CPU time to the right schedule
entity on the right physical machine, and it owns the processes that
make up its "kernel" and applications.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Optional

from repro.calibration import CostModel
from repro.sim.engine import Event, Process, Simulator
from repro.sim.resources import CPUCores

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack

__all__ = ["Node"]


class Node:
    """An OS instance: CPU accounting + process spawning + a stack slot."""

    def __init__(
        self,
        sim: Simulator,
        cpus: CPUCores,
        costs: CostModel,
        name: str,
        sched_key: Optional[Any] = None,
    ):
        self.sim = sim
        self.cpus = cpus
        self.costs = costs
        self.name = name
        #: key under which this node's work is scheduled on the cores;
        #: all of Dom0's work shares one key, each guest has its own.
        self.sched_key = sched_key if sched_key is not None else name
        self.stack: "NetworkStack | None" = None
        self.alive = True
        self._bind_cpus(cpus)

    def _bind_cpus(self, cpus: CPUCores) -> None:
        """(Re)bind :meth:`exec` as a partial over ``cpus.execute``.

        ``exec`` is the single hottest call in the simulation; the
        C-level partial skips one Python frame per CPU charge.  Must be
        re-called whenever the node moves to different cores (migration
        -- see ``Machine.adopt_domain``).
        """
        self.cpus = cpus
        self.exec = partial(cpus.execute, self.sched_key)

    def exec(self, cost: float) -> Event:  # overridden per-instance by _bind_cpus
        """Charge ``cost`` seconds of CPU to this node; event fires when done."""
        return self.cpus.execute(self.sched_key, cost)

    def spawn(self, generator, name: str = "") -> Process:
        """Run a generator as a process belonging to this node."""
        return self.sim.process(generator, name=f"{self.name}:{name or 'proc'}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name}>"
