"""The full fault-injection matrix as a tier-1 integration test.

Every cell of the {frame type x handshake phase x fault kind} sweep must
converge: surviving channels CONNECTED or cleanly gone, zero leaked
grants / event-channel ports / staging buffers / ARP waiters /
reassembly buffers, and traffic delivered (via the channel or the
netfront fallback) wherever the cell expects it.  The same sweep gates
CI via ``make fault-matrix``.
"""

import pytest

from repro.scenarios.fault_matrix import matrix_cells, run_cell, run_fault_matrix


@pytest.mark.parametrize("cell", matrix_cells(), ids=lambda c: c.name)
def test_cell_converges(cell):
    result = run_cell(cell)
    assert result["ok"], result["detail"]
    # Never a vacuous pass: every cell actually injected its fault.
    assert sum(result["injected"].values()) > 0, "fault never fired"


def test_full_sweep_all_ok():
    results = run_fault_matrix()
    assert len(results) == len(matrix_cells())
    bad = [r["cell"] for r in results if not r["ok"]]
    assert not bad, f"failed cells: {bad}"


def test_faults_off_run_has_no_injections():
    """A plan-free build of the same pair is what the goldens pin; the
    matrix result dicts make the faults-on/faults-off distinction
    explicit -- a cell with zero rules injects nothing."""
    from repro.scenarios.fault_matrix import MatrixCell

    result = run_cell(MatrixCell("baseline", ()))
    assert result["ok"], result["detail"]
    assert result["injected"] == {}
    assert result["received"] == result["sent"]
