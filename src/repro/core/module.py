"""The guest-resident XenLoop module (paper Sect. 3.1).

A self-contained "kernel module": it registers a netfilter hook beneath
the network layer, keeps the [guest-ID, MAC] mapping table of
co-resident guests (fed by Dom0 discovery announcements), owns one
:class:`~repro.core.channel.Channel` per active peer, and handles
module unload, guest shutdown, and live migration transparently.

Per-packet dispatch in the hook (Sect. 3.1): resolve the next hop's MAC
through the neighbour (ARP) cache; if that MAC belongs to a co-resident
guest with a connected channel and the packet fits the FIFO, copy it
onto the channel (STOLEN); otherwise let it continue down the standard
netfront/netback path (ACCEPT), bootstrapping a channel in the
background on first traffic.

Ordering note: packets taking different paths (channel vs. standard)
can be reordered relative to each other -- a too-big datagram on the
slow path can be overtaken by a later small one through the FIFO.  The
real XenLoop has the same property; it is invisible to TCP (sequence
numbers) and permitted for UDP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.channel import Channel, ChannelState
from repro.core.fifo import BufferPool
from repro.core.protocol import (
    Announce,
    ChannelAck,
    ConnectRequest,
    CreateChannel,
    parse_message,
)
from repro.net.addr import MacAddr
from repro.net.ethernet import ETH_P_IP, ETH_P_XENLOOP
from repro.net.netfilter import HookPoint, Verdict
from repro.net.packet import EthHeader, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.domain import Domain

__all__ = ["XenLoopModule"]


class XenLoopModule:
    """The self-contained guest 'kernel module' of the paper."""
    def __init__(
        self,
        guest: "Domain",
        fifo_order: int = 13,
        idle_timeout: Optional[float] = None,
        zero_copy_rx: bool = False,
    ):
        """Load the module into ``guest``.

        ``fifo_order``: k, so each FIFO holds 2^k 8-byte slots (the
        paper's default channel uses 64 KB per direction = k=13).
        ``idle_timeout``: optionally tear down channels with no traffic
        for this many seconds ("conserve system resources", Sect. 3.1).
        ``zero_copy_rx``: use the receive-side zero-copy variant the
        paper evaluated and rejected (ablation only).
        """
        if guest.stack is None or guest.netfront is None:
            raise ValueError("XenLoop needs a guest with a vif network stack")
        self.guest = guest
        self.fifo_order = fifo_order
        self.idle_timeout = idle_timeout
        self.zero_copy_rx = zero_copy_rx
        self.loaded = True

        #: MAC -> guest-ID of co-resident XenLoop-willing guests.
        self.mapping: dict[MacAddr, int] = {}
        self.channels: dict[MacAddr, Channel] = {}
        self._saved_packets: list[bytes] = []
        #: per-node staging buffers shared by all this guest's channels
        #: (waiting-list joins of scatter-gather entries; see BufferPool).
        self.staging_pool = BufferPool()

        # Statistics.
        self.pkts_via_channel = 0
        self.pkts_via_standard = 0
        self.pkts_too_big = 0
        self.announcements_seen = 0

        stack = guest.stack
        stack.netfilter.register(HookPoint.POST_ROUTING, self._post_routing_hook)
        stack.register_ethertype(ETH_P_XENLOOP, self._control_input)
        guest.pre_migrate_callbacks.append(self._pre_migrate)
        guest.post_migrate_callbacks.append(self._post_migrate)
        guest.shutdown_callbacks.append(self._shutdown)

        guest.spawn(self._advertise(), name="xenloop-advertise")
        if idle_timeout is not None:
            guest.spawn(self._idle_monitor(), name="xenloop-idle")

    # ------------------------------------------------------------------
    # XenStore advertisement (soft-state discovery, Sect. 3.2)
    # ------------------------------------------------------------------
    def _advertise(self):
        yield from self.guest.xs_write(
            f"{self.guest.xs_prefix}/xenloop", str(self.guest.mac)
        )

    def _unadvertise(self):
        yield from self.guest.xs_rm(f"{self.guest.xs_prefix}/xenloop")

    # ------------------------------------------------------------------
    # The netfilter hook (sender context)
    # ------------------------------------------------------------------
    def _post_routing_hook(self, packet: Packet, dev):
        guest = self.guest
        if not self.loaded or dev is not guest.netfront.vif or packet.ip is None:
            return Verdict.ACCEPT
        yield guest.exec(guest.costs.xenloop_lookup)
        stack = guest.stack
        dst = packet.ip.dst
        if dst.in_subnet(stack.network, stack.prefix_len):
            next_hop = dst
        elif stack.gateway is not None:
            next_hop = stack.gateway
        else:
            return Verdict.ACCEPT
        mac = stack.arp.lookup(next_hop)
        if mac is None:
            return Verdict.ACCEPT  # let the standard path trigger ARP
        peer_domid = self.mapping.get(mac)
        if peer_domid is None:
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        channel = self.channels.get(mac)
        if channel is None:
            self._initiate_bootstrap(mac, peer_domid)
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        if channel.state is not ChannelState.CONNECTED:
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        if not channel.fits(packet.l3_len):
            self.pkts_too_big += 1
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        taken = yield from channel.send_packet(packet)
        if not taken:
            # Channel went inactive under us (peer teardown/migration).
            self.pkts_via_standard += 1
            return Verdict.ACCEPT
        self.pkts_via_channel += 1
        self._last_traffic = guest.sim.now
        return Verdict.STOLEN

    # ------------------------------------------------------------------
    # Channel bootstrap orchestration
    # ------------------------------------------------------------------
    def _initiate_bootstrap(self, mac: MacAddr, peer_domid: int) -> None:
        channel = Channel(self, peer_domid, mac)
        self.channels[mac] = channel
        if channel.is_listener:
            self.guest.spawn(channel.listener_start(), name="xl-listen")
        else:
            # We are the connector: ask the (smaller-ID) peer to create.
            channel.state = ChannelState.BOOTSTRAPPING
            self.guest.spawn(
                self.send_control(mac, ConnectRequest(self.guest.domid, self.guest.mac)),
                name="xl-connreq",
            )

    def send_control(self, dst_mac: MacAddr, msg):
        """Send an out-of-band XenLoop-type control frame via the standard
        netfront path (generator)."""
        vif = self.guest.netfront.vif
        yield from self.guest.stack.link_output(vif, dst_mac, ETH_P_XENLOOP, msg.to_bytes())

    # ------------------------------------------------------------------
    # Control-plane input (softirq context)
    # ------------------------------------------------------------------
    def _control_input(self, packet: Packet, dev):
        guest = self.guest
        yield guest.exec(guest.costs.xenloop_lookup)
        if not self.loaded:
            return
        try:
            msg = parse_message(packet.payload)
        except ValueError:
            return
        if isinstance(msg, Announce):
            self._handle_announce(msg)
        elif isinstance(msg, ConnectRequest):
            self._handle_connect_request(msg)
        elif isinstance(msg, CreateChannel):
            self._handle_create_channel(msg, packet.eth.src)
        elif isinstance(msg, ChannelAck):
            channel = self.channels.get(packet.eth.src)
            if channel is not None:
                channel.on_channel_ack()

    def _handle_announce(self, msg: Announce) -> None:
        self.announcements_seen += 1
        fresh = {
            mac: domid
            for domid, mac in msg.entries
            if mac != self.guest.mac
        }
        # Tear down channels whose peer vanished or changed identity
        # (migrated away, died, or unloaded its module).
        for mac, channel in list(self.channels.items()):
            if fresh.get(mac) == channel.peer_domid:
                continue
            if channel.state in (ChannelState.CONNECTED, ChannelState.BOOTSTRAPPING):
                self.guest.spawn(channel.teardown(), name="xl-teardown")
            else:
                self.channels.pop(mac, None)
        self.mapping = fresh

    def _handle_connect_request(self, msg: ConnectRequest) -> None:
        mac = msg.sender_mac
        self.mapping.setdefault(mac, msg.sender_domid)
        if self.guest.domid > msg.sender_domid:
            return  # misdirected: we are not the smaller ID
        channel = self.channels.get(mac)
        if channel is not None and channel.state in (
            ChannelState.BOOTSTRAPPING,
            ChannelState.CONNECTED,
        ):
            return  # bootstrap already in flight (simultaneous initiation)
        channel = Channel(self, msg.sender_domid, mac)
        self.channels[mac] = channel
        self.guest.spawn(channel.listener_start(), name="xl-listen")

    def _handle_create_channel(self, msg: CreateChannel, src_mac: MacAddr) -> None:
        self.mapping.setdefault(src_mac, msg.sender_domid)
        channel = self.channels.get(src_mac)
        if channel is None:
            channel = Channel(self, msg.sender_domid, src_mac)
            self.channels[src_mac] = channel
        if channel.state is ChannelState.CONNECTED:
            return  # duplicate create (listener retry after ack loss)
        self.guest.spawn(channel.connector_complete(msg), name="xl-connect")

    # ------------------------------------------------------------------
    # Channel bookkeeping
    # ------------------------------------------------------------------
    def channel_closed(self, channel: Channel) -> None:
        """Channel callback: drop a closed channel from the table."""
        current = self.channels.get(channel.peer_mac)
        if current is channel:
            del self.channels[channel.peer_mac]

    def resend_via_standard_path(self, l3_bytes: bytes) -> None:
        """Re-send a saved packet over netfront (after teardown/migration)."""
        packet = Packet.from_l3_bytes(l3_bytes)
        guest = self.guest

        def _resend():
            stack = guest.stack
            mac = stack.arp.lookup(packet.ip.dst)
            if mac is None:
                mac = yield from stack.arp.resolve(packet.ip.dst)
                if mac is None:
                    return
            vif = guest.netfront.vif
            packet.eth = EthHeader(dst=mac, src=vif.mac, ethertype=ETH_P_IP)
            yield guest.exec(vif.tx_cost(packet))
            yield vif.queue_xmit(packet)

        guest.spawn(_resend(), name="xl-resend")

    # ------------------------------------------------------------------
    # Lifecycle: unload, shutdown, migration (Sect. 3.3-3.4)
    # ------------------------------------------------------------------
    def unload(self):
        """Remove the module (generator): forestall new connections, tear
        down all channels, unregister hooks."""
        if not self.loaded:
            return
        self.loaded = False
        yield from self._unadvertise()
        for channel in list(self.channels.values()):
            saved = yield from channel.teardown()
            for data in saved:
                self.resend_via_standard_path(data)
        guest = self.guest
        guest.stack.netfilter.unregister(HookPoint.POST_ROUTING, self._post_routing_hook)
        guest.stack.unregister_ethertype(ETH_P_XENLOOP)
        if guest.stack.transport_intercept is self:
            guest.stack.transport_intercept = None
        if self._pre_migrate in guest.pre_migrate_callbacks:
            guest.pre_migrate_callbacks.remove(self._pre_migrate)
        if self._post_migrate in guest.post_migrate_callbacks:
            guest.post_migrate_callbacks.remove(self._post_migrate)
        if self._shutdown in guest.shutdown_callbacks:
            guest.shutdown_callbacks.remove(self._shutdown)

    def _shutdown(self):
        if not self.loaded:
            return
        self.loaded = False
        yield from self._unadvertise()
        for channel in list(self.channels.values()):
            yield from channel.teardown()

    def _pre_migrate(self):
        """Hypervisor callback before migration: remove the advertisement,
        save pending packets, tear every channel down."""
        if not self.loaded:
            return
        yield from self._unadvertise()
        self._saved_packets = []
        for channel in list(self.channels.values()):
            saved = yield from channel.teardown()
            self._saved_packets.extend(saved)
        self.mapping.clear()

    def _post_migrate(self):
        """After resuming on the new machine: re-advertise under the new
        domid and resend the saved packets via the standard path."""
        if not self.loaded:
            return
        yield from self._advertise()
        saved, self._saved_packets = self._saved_packets, []
        for data in saved:
            self.resend_via_standard_path(data)

    # ------------------------------------------------------------------
    # Optional idle-channel reaper
    # ------------------------------------------------------------------
    _last_traffic = 0.0

    def _idle_monitor(self):
        guest = self.guest
        while self.loaded:
            yield guest.sim.timeout(self.idle_timeout)
            cutoff = guest.sim.now - self.idle_timeout
            for channel in list(self.channels.values()):
                if (
                    channel.state is ChannelState.CONNECTED
                    and channel.last_activity < cutoff
                ):
                    yield from channel.teardown()

    def stats(self) -> dict[str, int]:
        """Snapshot of per-module packet and channel counters."""
        return {
            "via_channel": self.pkts_via_channel,
            "via_standard": self.pkts_via_standard,
            "too_big": self.pkts_too_big,
            "channels": len(self.channels),
            "announcements": self.announcements_seen,
        }
