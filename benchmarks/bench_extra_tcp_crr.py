"""Extra (not in the paper): netperf TCP_CRR across the four scenarios.

Connect + request + response + close per transaction.  Interesting for
XenLoop because every handshake segment crosses the channel too: the
speedup on connection-heavy workloads (short-lived HTTP-style
connections, the paper's web-service motivation) matches the RR
speedup, which a socket-level solution that pays per-connection setup
(e.g. XenSockets' explicit connections) would not get for free.
"""

from repro import report
from repro.workloads import netperf

from _bench_utils import SCENARIO_ORDER, build_warm, emit


def _measure():
    row = {}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        row[name] = netperf.tcp_crr(scn, duration=0.1).trans_per_sec
    return row


def test_extra_tcp_crr(run_once, benchmark):
    row = run_once(_measure)
    emit(
        "extra_tcp_crr",
        report.format_table(
            "Extra: netperf TCP_CRR (connections/sec; not in the paper)",
            SCENARIO_ORDER,
            [("TCP_CRR (conn/s)", row)],
            precision=0,
        ),
    )
    benchmark.extra_info["crr"] = {k: round(v) for k, v in row.items()}
    assert row["xenloop"] > 2 * row["netfront_netback"]
    assert row["native_loopback"] > row["xenloop"]
