"""netperf-style workloads: TCP_RR, UDP_RR, TCP_STREAM, UDP_STREAM.

Faithful to netperf's measurement loops:

* ``*_RR``: one outstanding transaction at a time (send request, await
  response); reports transactions/second.
* ``TCP_STREAM``: blast a byte stream in ``msg_size`` writes; reports
  receiver-side Mbit/s.
* ``UDP_STREAM``: blast datagrams of ``msg_size``; reports receiver-side
  Mbit/s (datagrams can be dropped at the socket buffer, as in real
  netperf UDP tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios import Scenario

__all__ = [
    "RrResult",
    "StreamResult",
    "tcp_crr",
    "tcp_rr",
    "tcp_stream",
    "udp_rr",
    "udp_stream",
]

_WARMUP_TRANSACTIONS = 10


@dataclass
class RrResult:
    """Request-response outcome: rate and latency stats."""
    transactions: int
    trans_per_sec: float
    latency_us: float
    #: per-transaction latency percentiles (virq jitter gives a real
    #: distribution; netperf's -j option reports the same quantities).
    p50_us: float = 0.0
    p99_us: float = 0.0


def _rr_result(samples: list[float]) -> RrResult:
    from repro.sim.stats import LatencyProbe

    probe = LatencyProbe()
    for s in samples:
        probe.record(s)
    total = sum(samples)
    n = len(samples)
    return RrResult(
        transactions=n,
        trans_per_sec=n / total,
        latency_us=total / n * 1e6,
        p50_us=probe.percentile(50) * 1e6,
        p99_us=probe.percentile(99) * 1e6,
    )


@dataclass
class StreamResult:
    """Stream outcome: receiver-side bytes, Mbit/s, and drops."""
    bytes_received: int
    mbps: float
    messages_sent: int
    drops: int


def tcp_rr(
    scenario: "Scenario",
    duration: float = 0.2,
    req_size: int = 1,
    resp_size: int = 1,
    port: int = 5201,
) -> RrResult:
    """netperf TCP_RR: one outstanding transaction at a time."""
    sim = scenario.sim
    done = {}

    def server():
        listener = scenario.node_b.stack.tcp_listen(port)
        conn = yield from listener.accept()
        listener.close()
        resp = bytes(resp_size)
        while True:
            try:
                yield from conn.recv_exactly(req_size)
            except OSError:
                break
            yield from conn.send(resp)
        yield from conn.close()

    def client():
        conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
        req = bytes(req_size)
        for _ in range(_WARMUP_TRANSACTIONS):
            yield from conn.send(req)
            yield from conn.recv_exactly(resp_size)
        t0 = sim.now
        samples = []
        while sim.now - t0 < duration:
            t_start = sim.now
            yield from conn.send(req)
            yield from conn.recv_exactly(resp_size)
            samples.append(sim.now - t_start)
        yield from conn.close()
        done["result"] = _rr_result(samples)

    sim.process(server(), name="netperf-rr-server")
    proc = sim.process(client(), name="netperf-rr-client")
    sim.run_until_complete(proc, timeout=duration * 20 + 30)
    return done["result"]


def udp_rr(
    scenario: "Scenario",
    duration: float = 0.2,
    req_size: int = 1,
    resp_size: int = 1,
    port: int = 5202,
) -> RrResult:
    """netperf UDP_RR: one outstanding datagram transaction at a time."""
    sim = scenario.sim
    done = {}
    stop = {"flag": False}

    def server():
        sock = scenario.node_b.stack.udp_socket(port)
        resp = bytes(max(1, resp_size))
        while not stop["flag"]:
            _data, addr = yield from sock.recvfrom()
            yield from sock.sendto(resp, addr)

    def client():
        sock = scenario.node_a.stack.udp_socket()
        req = bytes(max(1, req_size))
        for _ in range(_WARMUP_TRANSACTIONS):
            yield from sock.sendto(req, (scenario.ip_b, port))
            yield from sock.recvfrom()
        t0 = sim.now
        samples = []
        while sim.now - t0 < duration:
            t_start = sim.now
            yield from sock.sendto(req, (scenario.ip_b, port))
            yield from sock.recvfrom()
            samples.append(sim.now - t_start)
        stop["flag"] = True
        # One final wake for the server loop's pending recv.
        yield from sock.sendto(req, (scenario.ip_b, port))
        done["result"] = _rr_result(samples)

    sim.process(server(), name="netperf-udprr-server")
    proc = sim.process(client(), name="netperf-udprr-client")
    sim.run_until_complete(proc, timeout=duration * 20 + 30)
    return done["result"]


def tcp_crr(
    scenario: "Scenario",
    duration: float = 0.1,
    req_size: int = 64,
    resp_size: int = 1024,
    port: int = 5206,
) -> RrResult:
    """netperf TCP_CRR: connect + request + response + close per
    transaction -- measures connection-setup cost through the channel."""
    sim = scenario.sim
    done = {}
    listener = scenario.node_b.stack.tcp_listen(port, backlog=64)
    stop = {"flag": False}

    def server():
        resp = bytes(resp_size)
        while not stop["flag"]:
            conn = yield from listener.accept()
            yield from conn.recv_exactly(req_size)
            yield from conn.send(resp)
            yield from conn.close()

    def client():
        req = bytes(req_size)

        def one_transaction():
            conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
            yield from conn.send(req)
            yield from conn.recv_exactly(resp_size)
            yield from conn.close()

        for _ in range(_WARMUP_TRANSACTIONS):
            yield from one_transaction()
        t0 = sim.now
        samples = []
        while sim.now - t0 < duration:
            t_start = sim.now
            yield from one_transaction()
            samples.append(sim.now - t_start)
        stop["flag"] = True
        done["result"] = _rr_result(samples)

    sim.process(server(), name="netperf-crr-server")
    proc = sim.process(client(), name="netperf-crr-client")
    sim.run_until_complete(proc, timeout=duration * 50 + 60)
    listener.close()
    return done["result"]


def tcp_stream(
    scenario: "Scenario",
    duration: float = 0.05,
    msg_size: int = 16384,
    port: int = 5203,
) -> StreamResult:
    """netperf TCP_STREAM: blast a byte stream; receiver-side Mbit/s."""
    sim = scenario.sim
    done = {}

    def server():
        listener = scenario.node_b.stack.tcp_listen(port)
        conn = yield from listener.accept()
        listener.close()
        total = 0
        t_first = None
        while True:
            data = yield from conn.recv(1 << 17)
            if not data:
                break
            if t_first is None:
                t_first = sim.now
            total += len(data)
        elapsed = sim.now - t_first if t_first is not None else 0.0
        mbps = total * 8 / elapsed / 1e6 if elapsed > 0 else 0.0
        done["server"] = (total, mbps)
        yield from conn.close()

    def client():
        conn = yield from scenario.node_a.stack.tcp_connect((scenario.ip_b, port))
        msg = bytes(msg_size)
        t0 = sim.now
        n = 0
        while sim.now - t0 < duration:
            yield from conn.send(msg)
            n += 1
        yield from conn.close()
        yield conn.closed_event
        done["messages"] = n

    sim.process(server(), name="netperf-stream-server")
    proc = sim.process(client(), name="netperf-stream-client")
    sim.run_until_complete(proc, timeout=duration * 100 + 60)
    total, mbps = done["server"]
    return StreamResult(total, mbps, done["messages"], drops=0)


def udp_stream(
    scenario: "Scenario",
    duration: float = 0.05,
    msg_size: int = 8192,
    port: int = 5204,
    rcvbuf: int = 1 << 20,
) -> StreamResult:
    """netperf UDP_STREAM: blast datagrams; receiver-side Mbit/s + drops."""
    sim = scenario.sim
    done = {}
    state = {"total": 0, "t_first": None, "t_last": None, "stop": False}

    def server():
        sock = scenario.node_b.stack.udp_socket(port, rcvbuf=rcvbuf)
        done["sock"] = sock
        while not state["stop"]:
            data, _addr = yield from sock.recvfrom()
            if data == b"STOP":
                break
            if state["t_first"] is None:
                state["t_first"] = sim.now
            state["total"] += len(data)
            state["t_last"] = sim.now

    def client():
        sock = scenario.node_a.stack.udp_socket()
        msg = bytes(msg_size)
        t0 = sim.now
        n = 0
        while sim.now - t0 < duration:
            yield from sock.sendto(msg, (scenario.ip_b, port))
            n += 1
        state["stop"] = True
        yield from sock.sendto(b"STOP", (scenario.ip_b, port))
        done["messages"] = n

    sproc = sim.process(server(), name="netperf-udpstream-server")
    proc = sim.process(client(), name="netperf-udpstream-client")
    sim.run_until_complete(proc, timeout=duration * 100 + 60)
    # Let in-flight datagrams drain before reading the tallies.
    sim.run(until=sim.now + 0.05)
    total = state["total"]
    if state["t_first"] is not None and state["t_last"] is not None and state["t_last"] > state["t_first"]:
        mbps = total * 8 / (state["t_last"] - state["t_first"]) / 1e6
    else:
        mbps = 0.0
    drops = done["sock"].drops
    done["sock"].close()  # free the port for back-to-back runs
    return StreamResult(total, mbps, done["messages"], drops=drops)
