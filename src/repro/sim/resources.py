"""Shared-resource primitives built on the event engine.

* :class:`Resource` -- counting semaphore with FIFO fairness.
* :class:`Store` -- FIFO item buffer with blocking get (and optional
  bounded capacity with blocking put).
* :class:`CPUCores` -- the physical-CPU model: ``n`` identical cores
  executing work segments on behalf of *domains*, charging a
  domain-switch penalty whenever a core switches from one domain to
  another.  This penalty is how the simulation reproduces the
  TLB/cache-miss overhead the paper attributes to excessive switching
  between guest domains and the driver domain (Sect. 2).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque, Hashable, Optional

from repro.sim.engine import TRIGGERED, Event, SimulationError, Simulator

__all__ = ["CPUCores", "Resource", "Store"]


class Resource:
    """Counting semaphore.  ``yield res.acquire()`` ... ``res.release()``."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        """Request a unit; the returned event fires when granted."""
        ev = Event(self.sim, "resource.acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a unit, admitting the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release of an idle resource")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        """Number of acquirers currently waiting."""
        return len(self._waiters)


class Store:
    """FIFO item buffer.

    ``put`` appends an item; when ``capacity`` is bounded and the buffer
    is full, the returned event fires only once space frees up.  ``get``
    returns an event that fires with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Append an item; blocks (event pending) while a bounded store is full."""
        ev = Event(self.sim, "store.put")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when a bounded store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        """Take the oldest item; the event fires when one is available."""
        ev = Event(self.sim, "store.get")
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(found, item)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class _Core:
    __slots__ = ("index", "busy", "last_domain")

    def __init__(self, index: int):
        self.index = index
        self.busy = False
        self.last_domain: Optional[Hashable] = None


class _Completion:
    """Calendar entry marking the end of one CPU work segment.

    Replaces the old Timeout-plus-callback-lambda chain with a single
    scheduled record: the whole segment lifecycle is one heap entry, no
    intermediate Event or closure allocation.  Scheduling order matches
    the old ``_start``/``_finish`` chain exactly (one sequence number per
    segment, completion work before ``done.succeed()``).

    ``st`` is the domain's ``[running, limit]`` accounting record (see
    :attr:`CPUCores._dom`), carried here so releasing the segment is a
    list update instead of a second dict lookup on the domain key.
    """

    __slots__ = ("cpus", "core", "st", "done")

    def __init__(self, cpus: "CPUCores", core: _Core, st: list, done: Event):
        self.cpus = cpus
        self.core = core
        self.st = st
        self.done = done

    def _process(self) -> None:
        # Inlined CPUCores._release + Event.succeed (the two hottest
        # calls in the whole simulation run through here): free the
        # core, decrement the domain's running count, admit the next
        # queued segment, then trigger ``done`` on the immediate run
        # queue.  ``done`` is engine-owned and still PENDING by
        # construction, so the succeed() re-trigger guard is skipped.
        cpus = self.cpus
        self.core.busy = False
        self.st[0] -= 1
        if cpus._queue:
            cpus._admit(self.core)
        done = self.done
        done._state = TRIGGERED
        sim = done.sim
        sim._seq += 1
        sim._ready.append((sim.now, sim._seq, done))


class _CallCompletion:
    """Calendar entry ending a CPU segment by *calling* a function.

    The :meth:`CPUCores.execute_call` variant of :class:`_Completion`:
    instead of succeeding a done Event (one calendar entry for the
    completion plus one for the event bounce, plus an Event allocation),
    the completion invokes ``fn()`` directly -- the whole segment
    lifecycle is ONE heap entry and zero Event objects.  Used by the
    event-channel upcall path, where the continuation is always a plain
    handler call with no waiters.
    """

    __slots__ = ("cpus", "core", "st", "fn")

    def __init__(self, cpus: "CPUCores", core: _Core, st: list, fn):
        self.cpus = cpus
        self.core = core
        self.st = st
        self.fn = fn

    def _process(self) -> None:
        cpus = self.cpus
        self.core.busy = False
        self.st[0] -= 1
        if cpus._queue:
            cpus._admit(self.core)
        self.fn()


class CPUCores:
    """``n`` identical cores shared by simulation *domains*.

    Work is submitted with :meth:`execute`, which returns an event firing
    when the segment completes.  Scheduling is FIFO with one twist: a
    free core that last ran the requesting domain is preferred, and when
    no such core exists the segment pays ``switch_penalty`` extra --
    modelling the TLB/cache refill cost of a domain switch.

    This is intentionally simpler than Xen's credit scheduler; the
    quantity that matters for the paper's evaluation is the *count and
    cost of domain switches* on the data path, which this captures.
    """

    def __init__(self, sim: Simulator, n_cores: int, switch_penalty: float = 0.0):
        if n_cores < 1:
            raise ValueError("need at least one core")
        self.sim = sim
        self.cores = [_Core(i) for i in range(n_cores)]
        self.switch_penalty = switch_penalty
        self._queue: Deque[tuple[list, Hashable, float, Any]] = deque()
        #: per-domain accounting: domain -> ``[running, limit]`` where
        #: ``running`` is the count of in-flight segments and ``limit``
        #: the vCPU cap (None = all cores; guests in the paper's testbed
        #: are 1-vCPU, Dom0 and native hosts get all cores).  One dict
        #: lookup on the hottest path; completions carry the list.
        self._dom: dict[Hashable, list] = {}
        self.total_busy_time = 0.0
        self.total_switches = 0

    def set_vcpu_limit(self, domain: Hashable, n: int) -> None:
        """Cap a domain's concurrent segments (its vCPU count)."""
        if n < 1:
            raise ValueError("vCPU limit must be >= 1")
        st = self._dom.get(domain)
        if st is None:
            self._dom[domain] = [0, n]
        else:
            st[1] = n

    @property
    def _vcpu_limit(self) -> dict[Hashable, int]:
        """Per-domain vCPU caps as a plain dict (introspection/tests)."""
        return {d: st[1] for d, st in self._dom.items() if st[1] is not None}

    def _may_run(self, domain: Hashable) -> bool:
        st = self._dom.get(domain)
        return st is None or st[1] is None or st[0] < st[1]

    def execute(self, domain: Hashable, cost: float) -> Event:
        """Run ``cost`` seconds of work for ``domain``; event fires at end."""
        if cost < 0:
            raise ValueError(f"negative work cost: {cost}")
        done = Event(self.sim, "cpu")
        # Inlined _may_run/_pick_core (this is the hottest call site in
        # the whole simulation); selection order matches _pick_core
        # exactly: prefer a free core that last ran this domain, else the
        # first free core.
        st = self._dom.get(domain)
        if st is None:
            st = self._dom[domain] = [0, None]
        if st[1] is None or st[0] < st[1]:
            best = None
            for core in self.cores:
                if core.busy:
                    continue
                if core.last_domain == domain:
                    best = core
                    break
                if best is None:
                    best = core
            if best is not None:
                self._start(best, domain, st, cost, done)
                return done
        self._queue.append((st, domain, cost, done))
        return done

    def execute_call(self, domain: Hashable, cost: float, fn) -> None:
        """Run ``cost`` seconds of work for ``domain``; call ``fn()`` at end.

        The fire-and-forget variant of :meth:`execute` for continuations
        nobody waits on (event-channel upcall handlers): completing the
        segment calls ``fn`` directly instead of succeeding an Event, so
        the whole segment costs one calendar entry instead of two and
        allocates no Event.  Scheduling (core affinity, vCPU limits,
        switch penalty, FIFO queueing) is identical to :meth:`execute`.
        """
        if cost < 0:
            raise ValueError(f"negative work cost: {cost}")
        st = self._dom.get(domain)
        if st is None:
            st = self._dom[domain] = [0, None]
        if st[1] is None or st[0] < st[1]:
            best = None
            for core in self.cores:
                if core.busy:
                    continue
                if core.last_domain == domain:
                    best = core
                    break
                if best is None:
                    best = core
            if best is not None:
                self._start(best, domain, st, cost, fn)
                return
        self._queue.append((st, domain, cost, fn))

    def execute_batch(self, domain: Hashable, costs) -> Event:
        """Run several work parts for ``domain`` as ONE segment.

        The segment's cost is the sum of ``costs``; core affinity is
        resolved once and at most one ``switch_penalty`` is charged for
        the whole batch -- this is the batched-cost-charging primitive
        the per-packet paths use to coalesce a drained burst into a
        single calendar entry.  The returned event fires when the whole
        batch completes.
        """
        total = 0.0
        for cost in costs:
            if cost < 0:
                raise ValueError(f"negative work cost: {cost}")
            total += cost
        return self.execute(domain, total)

    @property
    def queued(self) -> int:
        """Work segments waiting for a core or a vCPU slot."""
        return len(self._queue)

    def _pick_core(self, domain: Hashable) -> Optional[_Core]:
        best = None
        for core in self.cores:
            if core.busy:
                continue
            if core.last_domain == domain:
                return core
            if best is None:
                best = core
        return best

    def _start(self, core: _Core, domain: Hashable, st: list, cost: float, done) -> None:
        total = cost
        last = core.last_domain
        if last is not None and last != domain:
            total += self.switch_penalty
            self.total_switches += 1
        core.busy = True
        core.last_domain = domain
        st[0] += 1
        self.total_busy_time += total
        # Single scheduled completion for the whole segment, placed on
        # the calendar directly (Simulator._schedule inlined; ``total``
        # is never negative here).  ``done`` is an Event (execute) or a
        # bare callable (execute_call).
        comp = (
            _Completion(self, core, st, done)
            if type(done) is Event
            else _CallCompletion(self, core, st, done)
        )
        sim = self.sim
        sim._seq += 1
        if total == 0.0:
            sim._ready.append((sim.now, sim._seq, comp))
        else:
            heappush(sim._queue, (sim.now + total, sim._seq, comp))

    def _admit(self, freed: _Core) -> None:
        """Admit the first queued segment whose domain is under its limit.

        Called from the completion records right after they free a core
        (_may_run/_pick_core inlined: with 1-vCPU guests the queue is
        rarely empty here, making this the second-hottest CPU path).
        """
        for i, (qst, qdomain, cost, ev) in enumerate(self._queue):
            if qst[1] is None or qst[0] < qst[1]:
                del self._queue[i]
                chosen = None
                for c in self.cores:
                    if c.busy:
                        continue
                    if c.last_domain == qdomain:
                        chosen = c
                        break
                    if chosen is None:
                        chosen = c
                self._start(chosen or freed, qdomain, qst, cost, ev)
                return
