"""Minimal message-passing library over simulated TCP sockets.

Stands in for MPICH in the paper's netpipe-mpich and OSU benchmarks:
the benchmarks there are *unmodified* MPI applications whose transport
(ch3:sock) runs over ordinary TCP -- which is exactly why they benefit
from XenLoop transparently.  This library gives our reimplementations
of those benchmarks the same property: blocking ``send``/``recv`` with
a length-prefixed wire framing over an ordinary simulated TCP
connection, no knowledge of XenLoop anywhere.
"""

from repro.mpi.comm import MpiConnection, mpi_connect_pair

__all__ = ["MpiConnection", "mpi_connect_pair"]
