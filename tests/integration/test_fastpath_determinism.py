"""Golden-value determinism regression for the engine fast path.

These tuples were captured on the optimised engine (immediate run
queue, allocation-free resume, single-shot CPU completions, batched
cost charging) with seed=7 and the FAST control-plane costs.  Any
change to engine scheduling order, cost charging, or the data-path
batching that shifts simulated results will break these exact
comparisons -- which is the point: the fast path must not change what
the simulation computes, only how fast it computes it.
"""

from repro import scenarios
from repro.net.packet import WIRE_STATS
from repro.workloads.netperf import tcp_rr, udp_stream
from repro.xen.event_channel import NOTIFY_STATS

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)

GOLDEN_UDP = {
    # (bytes_received, mbps, messages_sent, drops)
    "xenloop": (1134592, 457.5352803299374, 362, 0),
    "netfront_netback": (1150976, 457.23153498833443, 366, 0),
}

#: same workload after scenario warmup (XenLoop channel CONNECTED), so
#: the traffic actually crosses the FIFO data path.
GOLDEN_UDP_WARM_XENLOOP = (5533696, 2216.5262726330157, 1966, 360)

#: the zero-copy data path's serialization counters for that warm run --
#: they are part of the deterministic output and must not drift.
GOLDEN_WIRE_COUNTERS = {
    "l3_cache_hits": 0,
    "l3_cache_misses": 1967,
    "header_cache_hits": 0,
    "header_cache_misses": 3934,
    "lazy_l4_parses": 1967,
    "bytes_packed": 55076,
    "bytes_parsed": 8068476,
    "fifo_bytes_in": 8107816,
    "fifo_bytes_out": 8107816,
    "pool_hits": 0,
    "pool_misses": 0,
}

#: event-channel suppression counters for the same warm run: the
#: notification-suppression protocol's behavior is deterministic output
#: too.  fifo_notifies < messages_sent (1,177 kicks for 1,966 entries)
#: and ~40% of data-available notifies suppressed is the tentpole's
#: whole point; ring traffic is zero because the warm run's datagrams
#: all cross the FIFO.
GOLDEN_NOTIFY_COUNTERS = {
    "fifo_notifies": 1177,
    "fifo_suppressed": 790,
    "ring_notifies": 0,
    "ring_suppressed": 0,
    "drain_batches": 1402,
    "drain_entries": 1967,
}

GOLDEN_TCP_RR = {
    # (transactions, trans_per_sec, latency_us, p50_us, p99_us)
    "xenloop": (
        147,
        7327.289562248531,
        136.47611323458182,
        136.4531879913993,
        143.23696230360108,
    ),
    "netfront_netback": (
        148,
        7397.525022656094,
        135.18034706707192,
        135.1635829300807,
        141.9331283702719,
    ),
}


def _udp(name):
    scn = scenarios.build(name, FAST, seed=7)
    r = udp_stream(scn, msg_size=4096, duration=0.02)
    return (r.bytes_received, r.mbps, r.messages_sent, r.drops)


def _tcp_rr(name):
    scn = scenarios.build(name, FAST, seed=7)
    r = tcp_rr(scn, duration=0.02)
    return (r.transactions, r.trans_per_sec, r.latency_us, r.p50_us, r.p99_us)


class TestGoldenValues:
    """Bit-exact simulated results for fixed seeds (no approx here)."""

    def test_udp_stream_xenloop(self):
        assert _udp("xenloop") == GOLDEN_UDP["xenloop"]

    def test_udp_stream_netfront_netback(self):
        assert _udp("netfront_netback") == GOLDEN_UDP["netfront_netback"]

    def test_tcp_rr_xenloop(self):
        assert _tcp_rr("xenloop") == GOLDEN_TCP_RR["xenloop"]

    def test_tcp_rr_netfront_netback(self):
        assert _tcp_rr("netfront_netback") == GOLDEN_TCP_RR["netfront_netback"]

    def test_udp_stream_repeatable_within_process(self):
        assert _udp("xenloop") == _udp("xenloop")

    def test_udp_stream_warm_xenloop_fifo_path(self):
        """The FIFO data path's results AND wire counters are golden."""
        scn = scenarios.build("xenloop", FAST, seed=7)
        scn.warmup(max_wait=20.0)
        WIRE_STATS.reset()
        NOTIFY_STATS.reset()
        r = udp_stream(scn, msg_size=4096, duration=0.02)
        assert (
            r.bytes_received,
            r.mbps,
            r.messages_sent,
            r.drops,
        ) == GOLDEN_UDP_WARM_XENLOOP
        assert WIRE_STATS.snapshot() == GOLDEN_WIRE_COUNTERS
        assert NOTIFY_STATS.snapshot() == GOLDEN_NOTIFY_COUNTERS
