"""Seeded randomness helpers.

All stochastic behaviour in the simulation draws from a generator
obtained here so that every scenario run is reproducible from a single
seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "make_shard_seeds"]

DEFAULT_SEED = 0x5EED


def make_rng(seed=None) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``None`` maps to the project-wide default seed (not OS entropy) --
    simulations must be reproducible by default.  ``seed`` may also be a
    :class:`numpy.random.SeedSequence` (the per-shard streams handed out
    by :func:`make_shard_seeds`).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def make_shard_seeds(seed: int | None, n_shards: int) -> list:
    """Derive one independent seed per simulation shard.

    A sharded run (:mod:`repro.sim.pdes`) gives every shard its own RNG
    stream.  Two properties matter:

    * ``n_shards == 1`` returns ``[seed]`` unchanged, so the one-shard
      path seeds its simulator exactly like an unsharded run and stays
      bit-identical to the pinned goldens.
    * ``n_shards > 1`` spawns children from a single
      :class:`numpy.random.SeedSequence` rooted at ``seed``.  Spawned
      sequences are collision-free by construction (each child extends
      the parent's entropy with a unique spawn key), so no two shards --
      for any shard count -- ever draw the same stream.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, not {n_shards}")
    base = DEFAULT_SEED if seed is None else seed
    if n_shards == 1:
        return [base]
    return list(np.random.SeedSequence(base).spawn(n_shards))
