"""Hypervisor: per-machine grant tables, event channels, domid space.

The pieces of Xen that XenLoop and the split drivers call into.  The
hypervisor also provides ``exec_in_domain``, the mechanism by which an
event-channel upcall runs handler code in the target domain's CPU
context (charging that domain, not the notifier).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.calibration import CostModel
from repro.sim.engine import Simulator
from repro.xen.event_channel import EventChannelSubsys
from repro.xen.grant_table import GrantTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.domain import Domain

__all__ = ["Hypervisor"]


class Hypervisor:
    """Per-machine grant tables, event channels, and domid space."""
    def __init__(self, sim: Simulator, costs: CostModel):
        self.sim = sim
        self.costs = costs
        self.domains: dict[int, "Domain"] = {}
        self.grant_tables: dict[int, GrantTable] = {}
        self.evtchn = EventChannelSubsys(sim, costs, self.exec_in_domain)
        self.evtchn.domain_name = self._domain_name
        self._next_domid = 0
        self.hypercalls = 0

    def _domain_name(self, domid: int) -> "str | None":
        """Resolve a domid to its domain name (fault-rule matching)."""
        domain = self.domains.get(domid)
        return domain.name if domain is not None else None

    def alloc_domid(self) -> int:
        """Allocate the next domain id (never reused)."""
        domid = self._next_domid
        self._next_domid += 1
        return domid

    def register_domain(self, domain: "Domain") -> None:
        """Register a domain and create its grant table."""
        if domain.domid in self.domains:
            raise ValueError(f"domid {domain.domid} already registered")
        self.domains[domain.domid] = domain
        table = GrantTable(domain.domid)
        table.sim = self.sim
        table.name_of = self._domain_name
        self.grant_tables[domain.domid] = table

    def unregister_domain(self, domain: "Domain") -> None:
        """Drop a domain's grant table and close its event channels."""
        self.domains.pop(domain.domid, None)
        self.grant_tables.pop(domain.domid, None)
        self.evtchn.close_all_for(domain.domid)

    def exec_in_domain(self, domid: int, cost: float, fn: Callable[[], None]) -> None:
        """Charge ``cost`` to ``domid`` and then run ``fn`` in its context.

        Single-entry upcall: the CPU segment is submitted directly with a
        call continuation, so one virq costs exactly one calendar entry
        (the segment's completion) on top of its delivery -- the old
        per-upcall chain burned four (spawn resume, completion, done
        bounce, process-finish placeholder).
        """
        domain = self.domains.get(domid)
        if domain is None or not domain.alive:
            return  # domain died while the upcall was in flight
        domain.cpus.execute_call(domain.sched_key, cost, fn)
