"""Figure 5: XenLoop UDP throughput versus FIFO size.

"Increasing the FIFO size has a positive impact on the achievable
bandwidth.  In our experiments, we set the FIFO size at 64 KB in each
direction" (Sect. 4.2).  FIFO size here is 2^k slots of 8 bytes, so
k=10 -> 8 KB ... k=16 -> 512 KB.
"""

from repro import report
from repro.workloads import netperf

from _bench_utils import build_warm, emit

ORDERS = [10, 11, 12, 13, 14, 15]  # 8 KB .. 256 KB per direction
MSG_SIZE = 12000


def _measure():
    values = []
    for k in ORDERS:
        scn = build_warm("xenloop", fifo_order=k)
        res = netperf.udp_stream(
            scn, duration=0.02, msg_size=MSG_SIZE, port=5700, rcvbuf=1 << 22
        )
        values.append(res.mbps)
    return values


def test_fig5_throughput_vs_fifo_size(run_once, benchmark):
    values = run_once(_measure)
    sizes_kb = [(8 << k) // 1024 for k in ORDERS]
    emit(
        "fig5_fifo_size",
        report.format_series(
            f"Fig. 5: XenLoop UDP throughput (Mbit/s, {MSG_SIZE} B msgs) vs FIFO size (KB)",
            "fifo_kb",
            sizes_kb,
            {"xenloop": values},
            precision=0,
        ),
    )
    benchmark.extra_info["series"] = dict(zip(sizes_kb, (round(v) for v in values)))
    # Shape: larger FIFOs help, with diminishing returns; FIFOs smaller
    # than the datagram fall back to netfront entirely, and a FIFO
    # holding a single datagram stalls on every late drain.
    assert values[0] < values[1] < values[2]
    assert values[-1] == max(values)
