"""Interdomain event channels.

The 1-bit notification primitive under both the netfront/netback rings
and the XenLoop channel.  The property that shapes performance -- and
that the paper's FIFO drain loops exploit -- is **pending-bit
coalescing**: a notify while the target's pending bit is already set is
a no-op, so a burst of packets costs one virtual IRQ, and the receiver
must re-check the ring/FIFO after clearing the bit to avoid losing a
wakeup.  This module reproduces exactly those semantics:

* ``notify`` sets the peer port's pending bit; if it was already set,
  nothing else happens;
* after ``virq_delivery_latency`` the pending bit is *cleared* and the
  registered handler runs in the target domain's context (charged
  ``virq_entry`` on the target's CPU);
* a notify arriving after the clear but during handler execution
  triggers a fresh upcall -- the race the re-check loop closes.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.calibration import CostModel
from repro.sim.engine import Simulator

__all__ = ["EventChannelError", "EventChannelSubsys", "NOTIFY_STATS", "NotifyStats", "Port"]


class NotifyStats:
    """Process-global notification counters (WIRE_STATS pattern).

    Tracks how often the notify hypercall was actually issued versus
    suppressed by the consumer-advertised waiting state -- separately for
    the XenLoop FIFO channel (``fifo_*``) and the netfront/netback ring
    protocol (``ring_*``) -- plus the channel drain worker's batched-pop
    counters.  Reset with :meth:`reset` before a measured run; snapshot
    via :func:`repro.trace.engine_stats`.
    """

    __slots__ = (
        "fifo_notifies",
        "fifo_suppressed",
        "ring_notifies",
        "ring_suppressed",
        "drain_batches",
        "drain_entries",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.fifo_notifies = 0
        self.fifo_suppressed = 0
        self.ring_notifies = 0
        self.ring_suppressed = 0
        self.drain_batches = 0
        self.drain_entries = 0

    def snapshot(self) -> dict:
        return {
            "fifo_notifies": self.fifo_notifies,
            "fifo_suppressed": self.fifo_suppressed,
            "ring_notifies": self.ring_notifies,
            "ring_suppressed": self.ring_suppressed,
            "drain_batches": self.drain_batches,
            "drain_entries": self.drain_entries,
        }


#: the process-global instance every notify/suppress site updates.
NOTIFY_STATS = NotifyStats()


class EventChannelError(Exception):
    """Invalid event-channel operation."""


class _Delivery:
    """Calendar entry for one in-flight virq delivery.

    Replaces the Timeout-plus-callback-lambda pair with a single slotted
    record: scheduling consumes one sequence number exactly like the
    Timeout it replaces, so event ordering (and thus determinism) is
    unchanged while the per-notify allocations drop from an Event, a
    callbacks list, and a closure to one small record.
    """

    __slots__ = ("subsys", "peer")

    def __init__(self, subsys: "EventChannelSubsys", peer: "Port"):
        self.subsys = subsys
        self.peer = peer

    def _process(self) -> None:
        self.subsys._deliver(self.peer)


class Port:
    """One endpoint of an (eventual) interdomain channel."""

    __slots__ = (
        "domid",
        "port",
        "remote_domid",
        "peer",
        "pending",
        "handler",
        "closed",
        "notifies_sent",
        "notifies_coalesced",
        "notifies_suppressed",
        "upcalls",
    )

    def __init__(self, domid: int, port: int, remote_domid: int):
        self.domid = domid
        self.port = port
        self.remote_domid = remote_domid
        self.peer: Optional["Port"] = None
        self.pending = False
        self.handler: Optional[Callable[[], None]] = None
        self.closed = False
        self.notifies_sent = 0
        self.notifies_coalesced = 0
        #: notifies the owner *avoided sending* because the peer had not
        #: armed its waiting/event flag (counted at the send site).
        self.notifies_suppressed = 0
        self.upcalls = 0

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self.closed else ("bound" if self.peer else "unbound")
        return f"<Port dom{self.domid}:{self.port} {state}>"


class EventChannelSubsys:
    """Hypervisor-side event-channel state for one machine.

    The ``exec_in_domain`` callable injects handler execution into a
    domain's CPU context: ``exec_in_domain(domid, cost, fn)`` charges
    ``cost`` to that domain and then calls ``fn()``.
    """

    def __init__(self, sim: Simulator, costs: CostModel, exec_in_domain: Callable):
        self.sim = sim
        self.costs = costs
        self._exec_in_domain = exec_in_domain
        self._ports: dict[tuple[int, int], Port] = {}
        self._next_port: dict[int, itertools.count] = {}
        #: domid -> name resolver for fault-rule matching (set by the
        #: hypervisor; None outside a full machine).
        self.domain_name: Optional[Callable[[int], Optional[str]]] = None
        #: 1-bit pending coalescing (real Xen semantics).  Turned off only
        #: by the coalescing ablation benchmark: every notify then incurs
        #: a full upcall.
        self.coalescing = True

    def snapshot_state(self) -> dict:
        """Every port's binding and pending bit, for the manifest."""
        return {
            "ports": {
                f"{domid}:{portnum}": {
                    "remote_domid": port.remote_domid,
                    "connected": port.peer is not None,
                    "pending": port.pending,
                    "closed": port.closed,
                    "notifies_sent": port.notifies_sent,
                    "notifies_suppressed": port.notifies_suppressed,
                    "upcalls": port.upcalls,
                }
                for (domid, portnum), port in self._ports.items()
            },
            "coalescing": self.coalescing,
        }

    def _alloc_port_number(self, domid: int) -> int:
        counter = self._next_port.setdefault(domid, itertools.count(1))
        return next(counter)

    def _require_live(self, domid: int) -> None:
        """Refuse hypercalls from a torn-down domain.

        A crashed guest's in-flight kernel work keeps running in the
        simulator (crash kills no processes), and ``close_all_for`` has
        already reclaimed the domain's ports -- a port allocated *after*
        that would leak forever.  Real Xen can't receive hypercalls from
        a destroyed domain at all; raising here is the moral equivalent.
        Skipped when no resolver is wired up (bare subsys in unit tests).
        """
        if self.domain_name is not None and self.domain_name(domid) is None:
            raise EventChannelError(f"dom{domid} is not a live domain")

    # -- lifecycle -----------------------------------------------------
    def alloc_unbound(self, domid: int, remote_domid: int) -> Port:
        """Allocate a port in ``domid`` that ``remote_domid`` may bind to."""
        self._require_live(domid)
        port = Port(domid, self._alloc_port_number(domid), remote_domid)
        self._ports[(domid, port.port)] = port
        return port

    def bind_interdomain(self, domid: int, remote_domid: int, remote_port: int) -> Port:
        """Bind a new local port to the peer's unbound port."""
        self._require_live(domid)
        peer = self._ports.get((remote_domid, remote_port))
        if peer is None or peer.closed:
            raise EventChannelError(f"no unbound port dom{remote_domid}:{remote_port}")
        if peer.remote_domid != domid:
            raise EventChannelError(
                f"port dom{remote_domid}:{remote_port} reserved for dom{peer.remote_domid}"
            )
        if peer.peer is not None:
            raise EventChannelError(f"port dom{remote_domid}:{remote_port} already bound")
        local = Port(domid, self._alloc_port_number(domid), remote_domid)
        self._ports[(domid, local.port)] = local
        local.peer = peer
        peer.peer = local
        return local

    def set_handler(self, port: Port, handler: Callable[[], None]) -> None:
        """Install the upcall handler run in the port owner's context."""
        port.handler = handler

    def close(self, port: Port) -> None:
        """Close a port; the peer survives but notifies become no-ops."""
        port.closed = True
        port.handler = None
        if port.peer is not None:
            port.peer.peer = None
            port.peer = None
        self._ports.pop((port.domid, port.port), None)

    def close_all_for(self, domid: int) -> int:
        """Close every port owned by ``domid`` (domain teardown)."""
        stale = [p for (d, _n), p in self._ports.items() if d == domid]
        for port in stale:
            self.close(port)
        return len(stale)

    # -- notification --------------------------------------------------
    def notify(self, port: Port) -> None:
        """Signal the peer of ``port``.

        The ``evtchn_send`` hypercall cost is charged by the caller (it
        happens in the caller's context); this method implements the
        delivery semantics.
        """
        if port.closed:
            raise EventChannelError(f"notify on closed {port!r}")
        peer = port.peer
        if peer is None or peer.closed:
            # Peer tore down (e.g. mid-migration): notification is lost,
            # exactly as on real Xen.
            return
        port.notifies_sent += 1
        plan = self.sim.fault_plan
        if plan is not None and plan.has_notify_rules:
            # Fault tap: the send hypercall happened (counted above), but
            # the wakeup never reaches the peer -- the drain loop's
            # pending-bit re-check is what must recover.
            name = self.domain_name(port.domid) if self.domain_name else None
            if plan.notify_lost(name):
                return
        if peer.pending and self.coalescing:
            port.notifies_coalesced += 1
            return
        peer.pending = True
        latency = self.costs.virq_delivery_latency
        jitter = self.costs.virq_jitter
        if jitter > 0:
            latency *= 1 + jitter * (float(self.sim.rng.random()) - 0.5)
        self.sim._schedule(_Delivery(self, peer), latency)

    def _deliver(self, peer: Port) -> None:
        if peer.closed:
            return
        # Clear-before-handle: notifies landing during the handler set the
        # bit again and schedule a fresh upcall.
        peer.pending = False
        handler = peer.handler
        if handler is None:
            return
        peer.upcalls += 1
        self._exec_in_domain(peer.domid, self.costs.virq_entry, handler)
