"""Thousand-guest cluster scenario (control-plane scale).

The paper's evaluation stops at a handful of guests; the roadmap's
north star needs the control plane to survive three orders of magnitude
more.  ``xenloop_bigcluster`` is the pinned scale scenario: ≥1,000
XenLoop guests across two Xen machines, running the delta-discovery
protocol (one multicast frame per *changed* scan instead of a
full-roster unicast per guest), sparse WhoIs-resolved per-guest
mappings, a per-guest channel budget, and a churn schedule (migration,
crash, restart) exercising the soft-state recovery paths at scale.

Scale invariants the tests/bench assert on this scenario:

* discovery control messages per scan are O(changes), not O(n) -- a
  quiescent scan sends nothing at all;
* a guest's mapping holds O(active peers) entries, not O(cluster);
* a guest's channel table is bounded by ``channel_budget``.
"""

from __future__ import annotations

from repro import topology
from repro.calibration import DEFAULT_COSTS, CostModel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import scenario

__all__ = ["bigcluster_spec", "xenloop_bigcluster"]


def bigcluster_spec(
    n_guests: int = 1000,
    n_machines: int = 2,
    channel_budget: int | None = 8,
    full_sync_every: int = 8,
    churn: bool = True,
) -> topology.ClusterSpec:
    """The declarative spec behind :func:`xenloop_bigcluster`.

    Exposed separately so the scaling bench and the smoke test can
    build reduced-size variants (``n_guests=100``) of the *same* spec
    rather than hand-rolling near-copies.
    """
    if n_machines < 1 or n_guests < 2:
        raise ValueError("bigcluster needs at least one machine and two guests")
    per_machine, leftover = divmod(n_guests, n_machines)
    counts = [per_machine + (1 if i < leftover else 0) for i in range(n_machines)]
    machines = tuple(
        topology.MachineSpec(
            name=f"xen{i}",
            guests=tuple(
                topology.GuestSpec(f"m{i}g{j}", channel_budget=channel_budget)
                for j in range(counts[i])
            ),
        )
        for i in range(n_machines)
    )
    churn_schedule: tuple[topology.ChurnAction, ...] = ()
    if churn:
        actions = [
            # Crash + restart (fresh identity: peers must prune the old
            # domid and re-resolve the new one through WhoIs).
            topology.ChurnAction(at=0.5, action="crash", guest="m0g2"),
            topology.ChurnAction(at=1.5, action="restart", guest="m0g2"),
        ]
        if n_machines > 1 and counts[1] > 1:
            # Live-migrate a guest between machines: its channels tear
            # down pre-migrate and it rejoins the destination Dom0's
            # roster at that scanner's next epoch.
            actions.insert(
                1,
                topology.ChurnAction(
                    at=1.0, action="migrate", guest="m1g1", to_machine="xen0"
                ),
            )
        churn_schedule = tuple(actions)
    return topology.ClusterSpec(
        name="xenloop_bigcluster",
        machines=machines,
        discovery_mode="delta",
        full_sync_every=full_sync_every,
        prefix_len=16,
        churn=churn_schedule,
        # warmup() drives the first co-resident pair; the other guests'
        # channels form lazily on their own first traffic (and are
        # bounded by the per-guest budget).
        expect_channels=True,
    )


@scenario(
    description="≥1,000 XenLoop guests, delta discovery + channel budget, under churn."
)
def xenloop_bigcluster(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    n_guests: int = 1000,
    n_machines: int = 2,
    channel_budget: int | None = 8,
    full_sync_every: int = 8,
) -> Scenario:
    """≥1,000 XenLoop guests across ``n_machines`` Xen machines on the
    thousand-guest control plane (delta discovery, sparse rosters,
    channel budget), with a migration + crash/restart churn schedule.

    The endpoints are the first two guests of the first machine; the
    churn schedule runs via ``run_churn()``.
    """
    spec = bigcluster_spec(
        n_guests=n_guests,
        n_machines=n_machines,
        channel_budget=channel_budget,
        full_sync_every=full_sync_every,
    )
    return spec.build(costs, seed=seed)
