"""Channel bootstrap while the standard path is saturated.

The paper's bootstrap runs out-of-band over netfront while data traffic
continues on the same path; these tests check the control plane is not
starved by a saturating stream and that the switchover happens
mid-stream without loss."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.02)


class TestBootstrapUnderLoad:
    @pytest.mark.slow
    def test_channel_connects_during_saturating_udp(self):
        scn = scenarios.xenloop(FAST)
        sim = scn.sim
        server = scn.node_b.stack.udp_socket(9601, rcvbuf=1 << 24)
        client = scn.node_a.stack.udp_socket()
        state = {"sent": 0, "stop": False}

        def blaster():
            while not state["stop"]:
                yield from client.sendto(bytes(1400), (scn.ip_b, 9601))
                state["sent"] += 1

        def drainer():
            while not state["stop"]:
                yield from server.recvfrom()

        sim.process(blaster())
        sim.process(drainer())

        deadline = sim.now + 20.0
        module_a = scn.xenloop_module(scn.node_a)
        while sim.now < deadline:
            sim.run(until=sim.now + 0.1)
            if any(
                ch.state is ChannelState.CONNECTED
                for ch in module_a.channels.values()
            ):
                break
        else:
            pytest.fail("bootstrap starved by data traffic")
        # After connecting, subsequent datagrams use the channel.
        via_before = module_a.pkts_via_channel
        sim.run(until=sim.now + 0.05)
        state["stop"] = True
        sim.run(until=sim.now + 0.05)
        assert module_a.pkts_via_channel > via_before
        assert state["sent"] > 500  # the stream really was saturating

    def test_tcp_stream_switches_paths_without_corruption(self):
        # aggressive discovery so the switchover lands mid-stream (the
        # 3 MB stream lasts ~15 ms of simulated time)
        costs = FAST.replace(discovery_period=0.005)
        scn = scenarios.xenloop(costs)
        sim = scn.sim
        listener = scn.node_b.stack.tcp_listen(9602)
        total = 3_000_000
        out = {}

        def srv():
            conn = yield from listener.accept()
            got = 0
            checksum = 0
            while got < total:
                data = yield from conn.recv(1 << 16)
                if not data:
                    break
                got += len(data)
                checksum = (checksum + sum(data[:8])) & 0xFFFFFFFF
            out["got"] = got

        def cli():
            conn = yield from scn.node_a.stack.tcp_connect((scn.ip_b, 9602))
            sent = 0
            while sent < total:
                chunk = bytes([sent % 251]) * min(32768, total - sent)
                yield from conn.send(chunk)
                sent += len(chunk)

        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=120)
        assert out["got"] == total
        module_a = scn.xenloop_module(scn.node_a)
        # the stream started on netfront and finished on the channel
        assert module_a.pkts_via_standard > 0
        assert module_a.pkts_via_channel > 0
