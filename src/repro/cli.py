"""Command-line interface: regenerate the paper's headline results
without pytest.

Usage::

    python -m repro list
    python -m repro ping [scenario]
    python -m repro snapshot            # Tables 1-3 in one run
    python -m repro fig11               # migration timeline
    python -m repro bypass              # future-work socket bypass
    python -m repro faults              # fault-injection matrix sweep
"""

from __future__ import annotations

import argparse
import sys

from repro import report, scenarios
from repro.workloads import lmbench, migration_rr, netperf, pingpong

SCENARIO_ORDER = ["inter_machine", "netfront_netback", "xenloop", "native_loopback"]


def _warm(name: str, **kwargs):
    scn = scenarios.build(name, **kwargs)
    scn.warmup()
    return scn


def cmd_list(_args) -> int:
    """List scenarios and available commands."""
    print("scenarios:")
    print(report.scenario_catalog())
    print("\ncommands: list, ping, snapshot, fig11, bypass, trace, faults")
    print("full benchmark harness: pytest benchmarks/ --benchmark-only -s")
    return 0


def cmd_ping(args) -> int:
    """Flood-ping one scenario or all four."""
    names = [args.scenario] if args.scenario else SCENARIO_ORDER
    for name in names:
        scn = _warm(name)
        res = pingpong.flood_ping(scn, count=args.count)
        print(f"{name:20s} {res.rtt_us:8.1f} us RTT  "
              f"(min {res.min_us:.1f}, max {res.max_us:.1f}, {res.count} pings)")
    return 0


def cmd_snapshot(_args) -> int:
    """Measure every Tables 1-3 metric across the four scenarios."""
    rows = {
        "flood ping RTT (us)": {},
        "lmbench lat_tcp (us)": {},
        "netperf TCP_RR (trans/s)": {},
        "netperf UDP_RR (trans/s)": {},
        "lmbench bw_tcp (Mbps)": {},
        "netperf TCP_STREAM (Mbps)": {},
        "netperf UDP_STREAM (Mbps)": {},
    }
    for name in SCENARIO_ORDER:
        print(f"measuring {name}...", file=sys.stderr)
        scn = _warm(name)
        rows["flood ping RTT (us)"][name] = pingpong.flood_ping(scn, count=100).rtt_us
        rows["lmbench lat_tcp (us)"][name] = lmbench.lat_tcp(scn, round_trips=200).latency_us
        rows["netperf TCP_RR (trans/s)"][name] = netperf.tcp_rr(scn, duration=0.05).trans_per_sec
        rows["netperf UDP_RR (trans/s)"][name] = netperf.udp_rr(scn, duration=0.05).trans_per_sec
        rows["lmbench bw_tcp (Mbps)"][name] = lmbench.bw_tcp(scn, total_bytes=2 << 20).mbps
        rows["netperf TCP_STREAM (Mbps)"][name] = netperf.tcp_stream(scn, duration=0.03).mbps
        rows["netperf UDP_STREAM (Mbps)"][name] = netperf.udp_stream(
            scn, duration=0.03, msg_size=32768
        ).mbps
    print(report.format_table(
        "Tables 1-3 snapshot (see EXPERIMENTS.md for paper values)",
        SCENARIO_ORDER,
        list(rows.items()),
        precision=1,
    ))
    return 0


def cmd_fig11(_args) -> int:
    """Print the Fig. 11 migration timeline as ASCII."""
    costs = scenarios.DEFAULT_COSTS.replace(
        discovery_period=1.0, migration_duration=1.0, migration_downtime=0.1
    )
    scn = scenarios.migration_pair(costs)
    scn.warmup()
    res = migration_rr.run(scn, co_resident_hold=8.0, bin_width=0.5, settle=4.0)
    peak = max(v for _t, v in res.rates())
    for t, rate in res.rates():
        print(f"{t:6.1f}s {rate:8.0f} trans/s  {'#' * int(40 * rate / peak)}")
    print(f"\nmigrate in at t={res.migrate_in_at:.1f}s, away at t={res.migrate_away_at:.1f}s")
    return 0


def cmd_trace(args) -> int:
    """Print a traced ping's hop-by-hop timeline per scenario."""
    from repro import trace

    names = [args.scenario] if args.scenario else SCENARIO_ORDER
    for name in names:
        scn = _warm(name)
        records = trace.traced_ping(scn)
        print(f"\n{name}: echo-request hop timeline")
        prev = 0.0
        for stage, t_us in records:
            print(f"  {t_us:8.2f} us  (+{t_us - prev:6.2f})  {stage}")
            prev = t_us
    return 0


def cmd_bypass(_args) -> int:
    """Compare the shipped design against the future-work socket bypass."""
    rows = {}
    for label, bypass in (("below network layer (paper)", False),
                          ("socket-layer bypass (future work)", True)):
        scn = scenarios.xenloop(socket_bypass=bypass)
        scn.warmup()
        rows[label] = {
            "tcp_rr_per_s": netperf.tcp_rr(scn, duration=0.05).trans_per_sec,
            "tcp_stream_mbps": netperf.tcp_stream(scn, duration=0.02).mbps,
        }
    print(report.format_table(
        "Transport-layer interception (paper Sect. 6 future work)",
        ["tcp_rr_per_s", "tcp_stream_mbps"],
        list(rows.items()),
        precision=0,
    ))
    return 0


def cmd_faults(args) -> int:
    """Run the fault-injection matrix; nonzero exit on any failed cell."""
    from repro.scenarios.fault_matrix import run_fault_matrix

    results = run_fault_matrix(seed=args.seed, shards=args.shards)
    print(report.format_fault_matrix(results))
    return 0 if all(r["ok"] for r in results) else 1


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="XenLoop reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list scenarios and commands")
    ping = sub.add_parser("ping", help="flood-ping one or all scenarios")
    ping.add_argument("scenario", nargs="?", choices=list(scenarios.SCENARIO_BUILDERS))
    ping.add_argument("--count", type=int, default=100)
    sub.add_parser("snapshot", help="Tables 1-3 in one run")
    sub.add_parser("fig11", help="migration timeline (Fig. 11)")
    sub.add_parser("bypass", help="future-work socket bypass comparison")
    tr = sub.add_parser("trace", help="hop-by-hop ping timeline per path")
    tr.add_argument("scenario", nargs="?", choices=list(scenarios.SCENARIO_BUILDERS))
    flt = sub.add_parser("faults", help="fault-injection matrix sweep")
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument(
        "--shards", type=int, default=1, choices=(1, 2),
        help="2: run each cell under the two-shard PDES mode "
        "(fault recovery across the process boundary)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "ping": cmd_ping,
        "snapshot": cmd_snapshot,
        "fig11": cmd_fig11,
        "bypass": cmd_bypass,
        "trace": cmd_trace,
        "faults": cmd_faults,
    }
    if args.command is None:
        parser.print_help()
        return 2
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
