"""Hierarchical timer wheel: the engine's second calendar source.

Open-loop serving pushes one short-lived timer per request (arrival
ticks, RTO deadlines, per-request SLO deadlines) through the calendar.
On the ``(time, seq)`` heap that is O(log n) per insert and -- worse --
a cancelled deadline (the overwhelmingly common case: the response beat
the deadline) either stays in the heap until it fires as a no-op or
forces an O(n) re-heapify.  The classic kernel answer is a hierarchical
timer wheel: O(1) insert into a tick-indexed slot, O(1) lazy
cancellation (the entry is tombstoned in place and dropped when its
slot is scanned -- never re-heapified), amortised O(1) expiry.

Bit-identical merge contract
----------------------------
:class:`Simulator` merges the wheel with the delay heap and the
immediate run queue exactly like the heap and deque are merged today:
the globally oldest ``(time, seq)`` entry fires next, every entry
consumes one sequence number at creation, and seq uniqueness breaks
same-time ties.  A simulation that moves a timer from ``sim.timeout``
onto ``sim.wheel.timeout`` at the same call site therefore replays
**bit-identically** -- same firing order, same seq consumption -- which
is how the PR 1-9 goldens survive the TCP RTO path moving here.

Structure
---------
Time is quantised to ticks of ``2**-14`` s (~61 us -- fine enough that
sub-tick ordering only matters within one slot, which is sorted on
expiry).  Four levels of 256 slots cover ~15.6 ms / 4 s / 17 min / 73 h
of future; farther timers wait in an overflow heap.  Slots are filed by
*absolute* tick with frame matching against the cursor (the next
uncollected tick), so cascading a higher-level slot re-files its
entries exactly one level down and can never loop.  Per-level bitmaps
(one int, one bit per non-empty slot) make "next non-empty slot" a
couple of integer ops, so advancing over empty time is O(levels), not
O(ticks).

Expired slots drain, sorted by ``(time, seq)``, into the ``_due`` list
consumed through an index pointer; late inserts behind the cursor
bisect into place.  Tombstones (lazily cancelled timers) are skipped at
the head and dropped wholesale whenever their slot is scanned; when the
last live timer goes, the whole structure resets so tombstone memory is
bounded by the live high-water mark.
"""

from __future__ import annotations

from bisect import insort
from math import isfinite
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.engine import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["TimerWheel", "WheelTimeout", "WheelTimer"]

#: tick quantum in seconds (power of two: ``t / TICK`` is float-exact).
TICK = 2.0**-14  # ~61 us
_LEVEL_BITS = 8
_SLOTS = 1 << _LEVEL_BITS  # 256 slots per level
_MASK = _SLOTS - 1
_LEVELS = 4

_KEY = (lambda e: e.key)


class WheelTimeout(Event):
    """Drop-in :class:`~repro.sim.engine.Timeout` living on the wheel.

    Consumes one sequence number at creation and fires at the same
    ``(time, seq)`` a heap Timeout would -- substituting one for the
    other at a call site cannot change simulation order.
    """

    __slots__ = ("delay", "time", "seq", "key", "cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name="wheel-timeout")
        self.delay = delay
        self._state = 1  # TRIGGERED
        self._ok = True
        self._value = value
        self.cancelled = False
        sim.wheel._insert(self, sim.now + delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WheelTimeout({self.delay}) {hex(id(self))}>"


class WheelTimer:
    """A cancellable callback timer (not an Event -- nothing waits on it).

    The serving deadline pattern: armed per request, cancelled by the
    response in the common case.  ``cancel()`` is O(1) -- the entry is
    tombstoned where it lies and reaped when its slot is scanned.
    """

    __slots__ = ("time", "seq", "key", "cancelled", "callback", "_wheel")

    def __init__(self, wheel: "TimerWheel", time: float, callback: Callable[[], None]):
        self.callback = callback
        self.cancelled = False
        self._wheel = wheel
        wheel._insert(self, time)

    def cancel(self) -> bool:
        """Tombstone the timer; True if it had not fired (or been
        cancelled) yet."""
        if self.cancelled:
            return False
        wheel = self._wheel
        if wheel is None:
            return False  # already fired
        self.cancelled = True
        wheel._cancelled(self)
        return True

    def _process(self) -> None:
        self._wheel = None
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<WheelTimer t={self.time} {state}>"


class TimerWheel:
    """Hierarchical timer wheel bound to one :class:`Simulator`.

    Created lazily via ``sim.wheel``; a simulator that never touches it
    pays one predicate per event in the engine loops and nothing else.
    """

    __slots__ = (
        "sim",
        "_slots",
        "_bitmaps",
        "_cursor",
        "_due",
        "_due_pos",
        "_overflow",
        "_live",
        "scheduled",
        "fired",
        "cancels",
        "cascades",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: per-level slot lists: _slots[level][slot] -> list of entries.
        self._slots = [[[] for _ in range(_SLOTS)] for _ in range(_LEVELS)]
        #: per-level non-empty-slot bitmap (bit s set <=> slot s non-empty).
        self._bitmaps = [0] * _LEVELS
        #: next tick not yet collected into ``_due``.
        self._cursor = 0
        #: expired/overdue entries sorted by (time, seq), consumed via
        #: ``_due_pos`` (popping a Python list head is O(n); an index is O(1)).
        self._due: list = []
        self._due_pos = 0
        #: far-future entries: sorted list of entries (by key).
        self._overflow: list = []
        #: live (uncancelled, unfired) entries anywhere in the wheel.
        self._live = 0
        self.scheduled = 0
        self.fired = 0
        self.cancels = 0
        self.cascades = 0

    # -- public API ------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> WheelTimeout:
        """A yieldable timeout scheduled on the wheel (see
        :class:`WheelTimeout` for the heap-equivalence contract)."""
        return WheelTimeout(self.sim, delay, value)

    def call_at(self, time: float, callback: Callable[[], None]) -> WheelTimer:
        """Arm ``callback`` to run at absolute sim time ``time``; returns
        a handle whose ``cancel()`` is O(1)."""
        if time < self.sim.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.sim.now})")
        return WheelTimer(self, time, callback)

    def call_after(self, delay: float, callback: Callable[[], None]) -> WheelTimer:
        """Arm ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return WheelTimer(self, self.sim.now + delay, callback)

    def __len__(self) -> int:
        return self._live

    def counters(self) -> dict:
        """Lifetime counters for trace/report plumbing."""
        return {
            "scheduled": self.scheduled,
            "fired": self.fired,
            "cancelled": self.cancels,
            "cascades": self.cascades,
            "live": self._live,
        }

    def snapshot_state(self) -> dict:
        """Pending live entries as (time, seq, kind) triples plus
        counters -- digest material, mirroring the engine calendar."""
        entries = [e for e in self._due[self._due_pos :] if not e.cancelled]
        entries.extend(e for e in self._overflow if not e.cancelled)
        for level in self._slots:
            for slot in level:
                entries.extend(e for e in slot if not e.cancelled)
        entries.sort(key=_KEY)
        return {
            "live": self._live,
            "cursor": self._cursor,
            "pending": [[e.time, e.seq, type(e).__name__] for e in entries],
            "counters": self.counters(),
        }

    # -- engine-facing ---------------------------------------------------
    def head(self):
        """The earliest live entry (its ``.key`` is ``(time, seq)``), or
        None when the wheel is empty.  Ensures that entry sits at
        ``_due[_due_pos]`` so :meth:`pop_head` is O(1)."""
        due = self._due
        pos = self._due_pos
        n = len(due)
        while True:
            while pos < n and due[pos].cancelled:
                pos += 1
            if pos < n:
                self._due_pos = pos
                return due[pos]
            # _due exhausted: everything live (if anything) is in the
            # wheel proper at ticks >= cursor, strictly after every
            # consumed entry.  Collect the next non-empty slot.
            self._due_pos = pos
            if self._live == 0:
                self._reset()
                return None
            self._collect()
            due = self._due
            pos = self._due_pos  # _collect may compact the consumed prefix
            n = len(due)

    def pop_head(self):
        """Remove and return the entry :meth:`head` reported (caller
        must have just called :meth:`head`)."""
        entry = self._due[self._due_pos]
        self._due_pos += 1
        self._live -= 1
        self.fired += 1
        if self._live == 0:
            self._reset()
        return entry

    # -- internals -------------------------------------------------------
    def _reset(self) -> None:
        """Drop consumed/tombstoned storage once nothing live remains
        (slots may still hold tombstones; _due holds consumed entries)."""
        if self._due:
            self._due = []
            self._due_pos = 0
        bitmaps = self._bitmaps
        for level in range(_LEVELS):
            if bitmaps[level]:
                bitmaps[level] = 0
                self._slots[level] = [[] for _ in range(_SLOTS)]
        if self._overflow:
            self._overflow = []

    def _insert(self, entry, time: float) -> None:
        sim = self.sim
        if not isfinite(time):
            raise SimulationError(f"timer at non-finite time {time}")
        sim._seq += 1
        entry.time = time
        entry.seq = sim._seq
        entry.key = (time, sim._seq)
        self.scheduled += 1
        if self._live == 0:
            # Empty wheel: re-anchor the cursor at now so frames stay
            # tight around the present (minimises overflow residency).
            self._reset()
            now_tick = int(sim.now / TICK)
            if now_tick > self._cursor:
                self._cursor = now_tick
        self._live += 1
        self._file(entry, int(time / TICK))

    def _file(self, entry, tick: int) -> None:
        """Place ``entry`` by absolute tick, frame-matched to the cursor."""
        cursor = self._cursor
        if tick < cursor:
            # Overdue relative to collection (never relative to ``now``:
            # fire times are >= now and consumed keys are <= (now, seq)),
            # so this lands at or after _due_pos -- order is preserved.
            insort(self._due, entry, lo=self._due_pos, key=_KEY)
            return
        delta = tick ^ cursor  # high bits differ <=> different frame
        for level in range(_LEVELS):
            if delta < (1 << ((level + 1) * _LEVEL_BITS)):
                slot = (tick >> (level * _LEVEL_BITS)) & _MASK
                self._slots[level][slot].append(entry)
                self._bitmaps[level] |= 1 << slot
                return
        insort(self._overflow, entry, key=_KEY)

    def _cancelled(self, entry) -> None:
        """Account a tombstoned entry (storage reaped lazily)."""
        self.cancels += 1
        self._live -= 1
        if self._live == 0:
            self._reset()

    def _collect(self) -> None:
        """Advance the cursor to the next non-empty slot and drain it
        (sorted, tombstones dropped) into ``_due``.  Caller guarantees
        ``_live > 0`` and ``_due`` exhausted."""
        bitmaps = self._bitmaps
        slots = self._slots
        while True:
            cursor = self._cursor
            # Push-down phase: a higher-level slot sitting exactly at the
            # cursor's position covers the *current* sub-frame (it was
            # filed before the cursor rolled in; the roll-in always lands
            # on the sub-frame boundary, sub-bits zero).  It must drain
            # into the lower levels before anything lower is consumed,
            # or newer same-frame inserts (which file straight to level
            # 0) would fire ahead of older entries still parked above.
            cascaded = False
            for level in range(1, _LEVELS):
                frame = level * _LEVEL_BITS
                pos = (cursor >> frame) & _MASK
                if not bitmaps[level] & (1 << pos):
                    continue
                entries = slots[level][pos]
                slots[level][pos] = []
                bitmaps[level] &= ~(1 << pos)
                self.cascades += 1
                file = self._file
                for e in entries:
                    if not e.cancelled:
                        file(e, int(e.time / TICK))
                cascaded = True
                break
            if cascaded:
                continue
            pos0 = cursor & _MASK
            bm = bitmaps[0] >> pos0
            if bm:
                slot = pos0 + ((bm & -bm).bit_length() - 1)
                entries = slots[0][slot]
                slots[0][slot] = []
                bitmaps[0] &= ~(1 << slot)
                self._cursor = (cursor & ~_MASK) + slot + 1
                live = sorted((e for e in entries if not e.cancelled), key=_KEY)
                if live:
                    if self._due_pos:
                        # Compact consumed prefix before extending.
                        del self._due[: self._due_pos]
                        self._due_pos = 0
                    self._due.extend(live)
                    return
                continue
            # Level-0 frame exhausted: cascade the next higher-level slot
            # down, rebasing the cursor to that slot's frame start.
            # The push-down phase above guarantees the cursor's own slot
            # at every level is empty here, so this scan (inclusive of
            # the cursor position, which the shift keeps cheap) only ever
            # finds strictly-future sub-frames -- the rebase below never
            # moves the cursor backwards.
            for level in range(1, _LEVELS):
                pos = (cursor >> (level * _LEVEL_BITS)) & _MASK
                bm = bitmaps[level] >> pos
                if not bm:
                    continue
                slot = pos + ((bm & -bm).bit_length() - 1)
                entries = slots[level][slot]
                slots[level][slot] = []
                bitmaps[level] &= ~(1 << slot)
                frame = level * _LEVEL_BITS
                base = cursor >> (frame + _LEVEL_BITS) << (frame + _LEVEL_BITS)
                self._cursor = base | (slot << frame)
                self.cascades += 1
                file = self._file
                for e in entries:
                    if e.cancelled:
                        continue
                    file(e, int(e.time / TICK))
                break
            else:
                # Only the overflow heap is left: rebase to the earliest
                # overflow entry's top-level frame and re-file what fits.
                overflow = self._overflow
                first = next(e for e in overflow if not e.cancelled)
                top = (_LEVELS - 1) * _LEVEL_BITS + _LEVEL_BITS
                self._cursor = int(first.time / TICK) >> top << top
                self.cascades += 1
                keep = []
                file = self._file
                horizon = (self._cursor >> top) + 1 << top
                for e in overflow:
                    if e.cancelled:
                        continue
                    tick = int(e.time / TICK)
                    if tick < horizon:
                        file(e, tick)
                    else:
                        keep.append(e)
                self._overflow = keep
