"""Failure injection and races in the XenLoop control plane."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState
from repro.core.module import XenLoopModule
from repro.core.protocol import Announce, ChannelAck, CreateChannel, parse_message
from repro.net.ethernet import ETH_P_XENLOOP
from repro.net.packet import EthHeader, Packet
from tests.core.conftest import FAST, first_channel, udp_once


class TestBootstrapRaces:
    def test_simultaneous_initiation(self, xl_cold):
        """Both guests send first traffic in the same instant; exactly one
        channel pair must result (smaller-ID guest as listener)."""
        scn = xl_cold
        sim = scn.sim
        sim.run(until=2 * FAST.discovery_period)  # mappings populated
        a_sock = scn.node_a.stack.udp_socket(7601)
        b_sock = scn.node_b.stack.udp_socket(7601)

        # several packets each way: the first resolves ARP (standard
        # path), the next hits the hook and initiates bootstrap
        def from_a():
            for _ in range(3):
                yield from a_sock.sendto(b"a", (scn.ip_b, 7601))
                yield sim.timeout(0.001)

        def from_b():
            for _ in range(3):
                yield from b_sock.sendto(b"b", (scn.ip_a, 7601))
                yield sim.timeout(0.001)

        sim.process(from_a())
        sim.process(from_b())
        sim.run(until=sim.now + 1.0)
        module_a = scn.xenloop_module(scn.node_a)
        module_b = scn.xenloop_module(scn.node_b)
        assert len(module_a.channels) == 1
        assert len(module_b.channels) == 1
        ch_a = first_channel(scn, scn.node_a)
        ch_b = first_channel(scn, scn.node_b)
        assert ch_a.state is ChannelState.CONNECTED
        assert ch_b.state is ChannelState.CONNECTED
        assert ch_a.is_listener != ch_b.is_listener

    def test_duplicate_create_channel_reacked_when_connected(self, xl):
        """A listener retry arriving after the connector already mapped
        (lost ack) must re-trigger the ack without corrupting state.
        A genuine retry carries the listener's *current* transport, so
        the port number matches the one the connector is bound to."""
        scn = xl
        sim = scn.sim
        ch_a = first_channel(scn, scn.node_a)
        ch_b = first_channel(scn, scn.node_b)
        connector = ch_a if not ch_a.is_listener else ch_b
        module = scn.modules[connector.guest.name]
        listener = ch_b if not ch_a.is_listener else ch_a
        # Replay a create_channel at the connected connector.
        msg = CreateChannel(
            sender_domid=listener.guest.domid,
            gref_out=1,
            gref_in=2,
            evtchn_port=listener.port.port,
        )
        module._handle_create_channel(msg, listener.guest.mac)
        sim.run(until=sim.now + 0.1)
        assert connector.state is ChannelState.CONNECTED
        assert connector.port.peer is listener.port  # same transport
        assert udp_once(scn, b"still-works", port=7602) == b"still-works"

    def test_stale_create_channel_replaces_dead_transport(self, xl):
        """A create_channel whose port does NOT match the connector's
        bound transport means the listener rebuilt its side (retries
        exhausted, old port closed).  Blindly re-acking would leave both
        ends 'connected' over dead transports and the data path deaf
        forever -- the connector must tear its husk down and handshake
        against the new transport instead (the double-migration race in
        the churn scenarios)."""
        scn = xl
        sim = scn.sim
        ch_a = first_channel(scn, scn.node_a)
        ch_b = first_channel(scn, scn.node_b)
        connector = ch_a if not ch_a.is_listener else ch_b
        module = scn.modules[connector.guest.name]
        listener = ch_b if not ch_a.is_listener else ch_a
        msg = CreateChannel(
            sender_domid=listener.guest.domid,
            gref_out=1,
            gref_in=2,
            evtchn_port=999,  # no such port: a vanished transport
        )
        module._handle_create_channel(msg, listener.guest.mac)
        sim.run(until=sim.now + 0.1)
        # The stale CONNECTED husk is gone (the fabricated transport
        # cannot be mapped, so the reconnect fails cleanly) and the next
        # traffic re-initiates a working handshake from scratch.
        assert connector is not module.channels.get(listener.guest.mac)
        assert udp_once(scn, b"still-works", port=7602) == b"still-works"

    def test_connect_request_to_larger_id_ignored(self, xl_cold):
        """A misdirected connect_request (receiver has the larger ID) must
        not create a listener-side channel."""
        scn = xl_cold
        scn.sim.run(until=2 * FAST.discovery_period)
        big = max((scn.node_a, scn.node_b), key=lambda n: n.domid)
        small = min((scn.node_a, scn.node_b), key=lambda n: n.domid)
        module = scn.modules[big.name]
        from repro.core.protocol import ConnectRequest

        module._handle_connect_request(ConnectRequest(small.domid, small.mac))
        scn.sim.run(until=scn.sim.now + 0.2)
        assert not module.channels


class TestMalformedControlFrames:
    def _inject(self, scn, node, payload):
        sim = scn.sim
        peer = scn.node_b if node is scn.node_a else scn.node_a
        frame = Packet(
            payload=payload,
            eth=EthHeader(node.mac, peer.mac, ETH_P_XENLOOP),
        )
        node.stack.deliver(frame, node.netfront.vif)
        sim.run(until=sim.now + 0.05)

    def test_garbage_payload_dropped(self, xl):
        self._inject(xl, xl.node_a, b"\xff" * 40)
        assert udp_once(xl, b"survives", port=7603) == b"survives"

    def test_truncated_message_dropped(self, xl):
        self._inject(xl, xl.node_a, b"\x00")
        assert udp_once(xl, b"survives2", port=7604) == b"survives2"

    def test_unknown_message_type_dropped(self, xl):
        self._inject(xl, xl.node_a, b"\x00\x63" + bytes(10))
        assert udp_once(xl, b"survives3", port=7605) == b"survives3"

    def test_create_channel_with_bogus_grefs_fails_cleanly(self, xl_cold):
        """A create_channel naming grant refs that were never issued must
        abort the connector bootstrap without wedging the module."""
        scn = xl_cold
        sim = scn.sim
        sim.run(until=2 * FAST.discovery_period)
        connector_node = max((scn.node_a, scn.node_b), key=lambda n: n.domid)
        listener_node = min((scn.node_a, scn.node_b), key=lambda n: n.domid)
        module = scn.modules[connector_node.name]
        bogus = CreateChannel(
            sender_domid=listener_node.domid,
            gref_out=4242,
            gref_in=4343,
            evtchn_port=77,
        )
        module._handle_create_channel(bogus, listener_node.mac)
        sim.run(until=sim.now + 0.2)
        assert not any(
            ch.state is ChannelState.CONNECTED for ch in module.channels.values()
        )
        # traffic still flows via the standard path, and a real bootstrap
        # can still succeed afterwards
        assert udp_once(scn, b"fallback-ok", port=7606) == b"fallback-ok"
        scn.warmup(max_wait=10.0)
        assert first_channel(scn, connector_node).state is ChannelState.CONNECTED


class TestAnnouncementEdgeCases:
    def test_peer_domid_change_triggers_teardown(self, xl):
        """If an announcement maps the peer's MAC to a new domid (migrated
        away and back), the stale channel is torn down."""
        scn = xl
        sim = scn.sim
        module_a = scn.xenloop_module(scn.node_a)
        old_channel = first_channel(scn, scn.node_a)
        fake = Announce(
            sender_domid=0,
            entries=[(scn.node_b.domid + 40, scn.node_b.mac)],
        )
        module_a._handle_announce(fake)
        sim.run(until=sim.now + 0.2)
        assert old_channel.state is ChannelState.CLOSED

    def test_empty_announcement_prunes_everything(self, xl):
        scn = xl
        scn.discovery.stop()  # no fresh announcements repopulating state
        module_a = scn.xenloop_module(scn.node_a)
        module_a._handle_announce(Announce(sender_domid=0, entries=[]))
        scn.sim.run(until=scn.sim.now + 0.2)
        assert not module_a.mapping
        assert not module_a.channels

    def test_announcement_roundtrips_through_wire_format(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=2 * FAST.discovery_period)
        module_a = scn.xenloop_module(scn.node_a)
        # mapping was populated from real parsed frames
        assert module_a.mapping == {scn.node_b.mac: scn.node_b.domid}


class TestEventChannelLossTolerance:
    def test_notify_after_peer_closed_port(self, xl):
        """Teardown race: one side notifies while the other has already
        closed its port; nothing crashes and the module recovers."""
        scn = xl
        sim = scn.sim
        ch_a = first_channel(scn, scn.node_a)
        ch_b = first_channel(scn, scn.node_b)
        # Close B's port behind A's back (harsher than a clean teardown).
        scn.node_b.machine.hypervisor.evtchn.close(ch_b.port)
        # A sends: packet goes into the FIFO, notify is lost.  The drain
        # never happens, but nothing deadlocks, and the subsequent
        # announcement-driven teardown cleans up.
        sock = scn.node_a.stack.udp_socket()

        def send():
            yield from sock.sendto(b"lost", (scn.ip_b, 7607))

        proc = sim.process(send())
        sim.run_until_complete(proc, timeout=5)
        sim.run(until=sim.now + 0.5)
        assert ch_a.state in (ChannelState.CONNECTED, ChannelState.CLOSED)
