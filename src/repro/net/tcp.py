"""Simplified TCP: handshake, reliable windowed byte stream, GSO-sized
segments, immediate ACKs.

Scope (documented in DESIGN.md): none of the simulated data paths lose
packets -- the FIFO falls back to netfront when full, rings apply
backpressure, and the wire model is lossless -- so there are no
retransmission timers or congestion control.  What *is* modelled, because
the paper's numbers depend on it:

* segment sizing from the route's device (GSO super-segments on
  virtual/loopback devices vs. MSS-sized segments on the physical NIC),
* flow control via the advertised receive window (this is what causes
  the large-message back-pressure effects in Figs. 8-9),
* per-segment transport CPU plus checksum and copy costs,
* ACK traffic flowing back through the same channel as data,
* out-of-order segment buffering, needed when a connection's packets
  switch between the netfront path and the XenLoop channel in flight
  (channel bootstrap, teardown, migration).

Sequence numbers are carried modulo 2^32 on the wire (the FIFO
round-trips real bytes) but connections are assumed to transfer less
than 4 GB, which every benchmark in the paper satisfies per run.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.net.addr import IPv4Addr
from repro.net.ethernet import IPPROTO_TCP
from repro.net.packet import (
    Packet,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_SYN,
    TcpHeader,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack

__all__ = ["TcpConnection", "TcpLayer", "TcpListener"]

#: implicit window-scale shift applied to the 16-bit wire window field.
WINDOW_SCALE = 3

EPHEMERAL_BASE = 32768

#: out-of-order-buffer sentinel marking a FIN (identity-compared, so it
#: can never collide with real payload bytes).
_FIN_SENTINEL = b"\x00FIN-SENTINEL"

# Connection states (subset of the RFC 793 machine).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"


class TcpConnection:
    """One direction-symmetric TCP connection endpoint."""

    def __init__(
        self,
        layer: "TcpLayer",
        local: tuple[IPv4Addr, int],
        remote: tuple[IPv4Addr, int],
        sndbuf: int = 262144,
        rcvbuf: int = 262144,
    ):
        self.layer = layer
        self.local = local
        self.remote = remote
        self.state = CLOSED
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf

        sim = layer.stack.node.sim
        self.established = sim.event(name="tcp-established")
        self.closed_event = sim.event(name="tcp-closed")

        # Send side.
        self.snd_una = 0
        self.snd_nxt = 0
        self.peer_window = 65535 << WINDOW_SCALE
        self._send_buf: deque[bytes] = deque()
        self._send_buf_bytes = 0
        self._send_space_waiters: deque = deque()
        self._pump_running = False
        self._fin_queued = False
        self._fin_sent = False

        # Retransmission (go-back-N on a fixed RTO; the only loss on any
        # simulated path is frames dropped during migration downtime).
        self._retx_buf: deque[tuple[int, bytes, int]] = deque()
        self._retx_deadline: float = 0.0
        self._retx_running = False
        self.retransmissions = 0

        # Receive side.
        self.rcv_nxt = 0
        self._recv_buf: deque[bytes] = deque()
        self._recv_buf_bytes = 0
        self._recv_waiters: deque = deque()
        self._ooo: dict[int, bytes] = {}
        self.eof = False

        # Stats.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0

    # ------------------------------------------------------------------
    # Application interface (generators, app process context)
    # ------------------------------------------------------------------
    def send(self, data: bytes):
        """Blocking send: returns once all of ``data`` is buffered."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT):
            raise OSError(f"send on {self.state} connection")
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall + node.costs.socket_layer)
        offset = 0
        while offset < len(data):
            while self._send_buf_bytes >= self.sndbuf:
                waiter = node.sim.event(name="tcp-sndbuf")
                self._send_space_waiters.append(waiter)
                yield waiter
                if self.state == CLOSED:
                    raise OSError("connection closed while sending")
            chunk = data[offset : offset + (self.sndbuf - self._send_buf_bytes)]
            yield node.exec(node.costs.copy_cost(len(chunk)))  # user->kernel
            self._send_buf.append(chunk)
            self._send_buf_bytes += len(chunk)
            offset += len(chunk)
            self._kick_pump()
        return len(data)

    def recv(self, max_bytes: int):
        """Blocking receive of up to ``max_bytes``; b"" signals EOF."""
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall + node.costs.socket_layer)
        while not self._recv_buf and not self.eof:
            waiter = node.sim.event(name="tcp-recv")
            self._recv_waiters.append(waiter)
            yield waiter
        if not self._recv_buf:
            return b""
        was_zero_window = (self._advertised_window() >> WINDOW_SCALE) == 0
        chunks: list[bytes] = []
        taken = 0
        while self._recv_buf and taken < max_bytes:
            head = self._recv_buf[0]
            want = max_bytes - taken
            if len(head) <= want:
                chunks.append(self._recv_buf.popleft())
                taken += len(head)
            else:
                chunks.append(head[:want])
                self._recv_buf[0] = head[want:]
                taken += want
        self._recv_buf_bytes -= taken
        yield node.exec(node.costs.copy_cost(taken))  # kernel->user
        if was_zero_window and (self._advertised_window() >> WINDOW_SCALE) > 0:
            # Window update: reopen a peer stalled on a zero window (real
            # TCP relies on persist-timer probes; lossless paths let the
            # receiver volunteer the update instead).
            yield from self._send_pure_ack()
        return b"".join(chunks)

    def recv_exactly(self, n: int):
        """Receive exactly ``n`` bytes (generator); raises on early EOF."""
        parts: list[bytes] = []
        got = 0
        while got < n:
            chunk = yield from self.recv(n - got)
            if not chunk:
                raise OSError(f"connection closed after {got}/{n} bytes")
            parts.append(chunk)
            got += len(chunk)
        return b"".join(parts)

    def close(self):
        """Close the send direction (generator); FIN goes out after the
        send buffer drains."""
        if self.state in (CLOSED, FIN_WAIT, LAST_ACK):
            return
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall)
        self._fin_queued = True
        self.state = FIN_WAIT if self.state == ESTABLISHED else LAST_ACK
        self._kick_pump()

    # ------------------------------------------------------------------
    # Transmit pump
    # ------------------------------------------------------------------
    def _kick_pump(self) -> None:
        if not self._pump_running and self._tx_work_possible():
            self._pump_running = True
            self.layer.stack.node.spawn(self._tx_pump(), name="tcp-pump")

    def _tx_work_possible(self) -> bool:
        if self._window_avail() <= 0:
            return False
        if self._send_buf:
            return True
        return self._fin_queued and not self._fin_sent

    def _window_avail(self) -> int:
        inflight = self.snd_nxt - self.snd_una
        return max(0, min(self.peer_window, self.layer.stack.node.costs.tcp_window) - inflight)

    def _eff_mss(self) -> int:
        dev, _next_hop = self.layer.stack.ipv4.route(self.remote[0])
        costs = self.layer.stack.node.costs
        if dev.gso:
            return costs.gso_max
        return min(costs.mss, dev.mtu - 40)

    def _tx_pump(self):
        node = self.layer.stack.node
        costs = node.costs
        try:
            while True:
                if self._send_buf and self._window_avail() > 0:
                    size = min(self._eff_mss(), self._send_buf_bytes, self._window_avail())
                    data = self._take_from_send_buf(size)
                    hdr = self._make_header(TCP_ACK | TCP_PSH, seq=self.snd_nxt)
                    self._retx_buf.append((self.snd_nxt, data, TCP_ACK | TCP_PSH))
                    self.snd_nxt += len(data)
                    self.bytes_sent += len(data)
                    self.segments_sent += 1
                    self._arm_retx()
                    yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
                    yield from self.layer.stack.ipv4.output(
                        self.remote[0], IPPROTO_TCP, hdr, data
                    )
                    self._wake_send_space()
                elif (
                    self._fin_queued
                    and not self._fin_sent
                    and not self._send_buf
                    and self._window_avail() > 0
                ):
                    hdr = self._make_header(TCP_ACK | TCP_FIN, seq=self.snd_nxt)
                    self._retx_buf.append((self.snd_nxt, b"", TCP_ACK | TCP_FIN))
                    self.snd_nxt += 1  # FIN consumes a sequence number
                    self._fin_sent = True
                    self.segments_sent += 1
                    self._arm_retx()
                    yield node.exec(costs.tcp_layer)
                    yield from self.layer.stack.ipv4.output(
                        self.remote[0], IPPROTO_TCP, hdr, b""
                    )
                else:
                    break
        finally:
            self._pump_running = False
            # Data may have been queued while the last output blocked.
            self._kick_pump()

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _arm_retx(self) -> None:
        node = self.layer.stack.node
        self._retx_deadline = node.sim.now + node.costs.tcp_rto
        if not self._retx_running:
            self._retx_running = True
            node.spawn(self._retx_loop(), name="tcp-retx")

    def _retx_loop(self):
        node = self.layer.stack.node
        sim = node.sim
        costs = node.costs
        try:
            while self._retx_buf and self.state != CLOSED:
                wait = self._retx_deadline - sim.now
                if wait > 0:
                    yield sim.timeout(wait)
                    continue
                # RTO expired: go-back-N, resend everything unacked with
                # the original segment boundaries (the receiver's
                # out-of-order buffer absorbs duplicates).
                for seq, data, flags in list(self._retx_buf):
                    if self.state == CLOSED:
                        return
                    hdr = self._make_header(flags, seq=seq)
                    self.retransmissions += 1
                    yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
                    yield from self.layer.stack.ipv4.output(
                        self.remote[0], IPPROTO_TCP, hdr, data
                    )
                self._retx_deadline = sim.now + costs.tcp_rto
        finally:
            self._retx_running = False
            if self._retx_buf and self.state != CLOSED:
                self._arm_retx()

    def _prune_retx(self) -> None:
        """Drop fully-acked segments from the retransmit buffer."""
        while self._retx_buf:
            seq, data, flags = self._retx_buf[0]
            consumed = len(data) + (1 if flags & (TCP_FIN | TCP_SYN) else 0)
            if seq + consumed <= self.snd_una:
                self._retx_buf.popleft()
            else:
                break
        if self._retx_buf:
            # Progress restarts the timer (RFC 6298 5.3).
            node = self.layer.stack.node
            self._retx_deadline = node.sim.now + node.costs.tcp_rto

    def _take_from_send_buf(self, size: int) -> bytes:
        chunks: list[bytes] = []
        taken = 0
        while taken < size:
            head = self._send_buf[0]
            want = size - taken
            if len(head) <= want:
                chunks.append(self._send_buf.popleft())
                taken += len(head)
            else:
                chunks.append(head[:want])
                self._send_buf[0] = head[want:]
                taken += want
        self._send_buf_bytes -= taken
        return b"".join(chunks)

    def _wake_send_space(self) -> None:
        while self._send_space_waiters and self._send_buf_bytes < self.sndbuf:
            waiter = self._send_space_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()

    def _advertised_window(self) -> int:
        return max(0, self.rcvbuf - self._recv_buf_bytes)

    def _make_header(self, flags: int, seq: int) -> TcpHeader:
        return TcpHeader(
            sport=self.local[1],
            dport=self.remote[1],
            seq=seq & 0xFFFFFFFF,
            ack=self.rcv_nxt & 0xFFFFFFFF,
            flags=flags,
            window=self._advertised_window() >> WINDOW_SCALE,
        )

    # ------------------------------------------------------------------
    # Segment arrival (generator, softirq context)
    # ------------------------------------------------------------------
    def on_segment(self, packet: Packet):
        """Process one arriving segment (generator, softirq context)."""
        node = self.layer.stack.node
        costs = node.costs
        hdr: TcpHeader = packet.l4
        data = packet.payload
        yield node.exec(costs.tcp_layer + costs.checksum_cost(len(data)))
        self.segments_received += 1

        # -- handshake transitions ------------------------------------
        if self.state == SYN_SENT:
            if hdr.flags & TCP_SYN and hdr.flags & TCP_ACK:
                self.rcv_nxt = hdr.seq + 1
                self.snd_una = hdr.ack
                self.peer_window = hdr.window << WINDOW_SCALE
                self.state = ESTABLISHED
                yield from self._send_pure_ack()
                if not self.established.triggered:
                    self.established.succeed()
            return
        if self.state == SYN_RCVD:
            if hdr.flags & TCP_ACK and hdr.ack >= self.snd_nxt:
                self.snd_una = hdr.ack
                self.peer_window = hdr.window << WINDOW_SCALE
                self.state = ESTABLISHED
                if not self.established.triggered:
                    self.established.succeed()
                self.layer._deliver_to_accept_queue(self)
                # The final handshake ACK may carry data (or a FIN race);
                # fall through to normal processing.
            else:
                return

        if hdr.flags & TCP_SYN:
            # Duplicate SYN/SYN-ACK (our handshake ACK was lost): re-ack
            # so the peer can stop retransmitting.
            yield from self._send_pure_ack()
            return

        # -- ACK processing --------------------------------------------
        if hdr.flags & TCP_ACK:
            if hdr.ack > self.snd_una:
                self.snd_una = hdr.ack
                self._prune_retx()
            self.peer_window = hdr.window << WINDOW_SCALE
            self._wake_send_space()
            if self._fin_sent and self.snd_una >= self.snd_nxt:
                if self.state == LAST_ACK:
                    self._become_closed()
                elif self.state == FIN_WAIT and self.eof:
                    self._become_closed()
            self._kick_pump()

        # -- data -------------------------------------------------------
        got_payload = len(data) > 0
        fin = bool(hdr.flags & TCP_FIN)
        if got_payload or fin:
            seq = hdr.seq
            if got_payload:
                if seq == self.rcv_nxt:
                    self._accept_data(data)
                    self._drain_ooo()
                elif seq > self.rcv_nxt:
                    self._ooo[seq] = data
                # seq < rcv_nxt: duplicate; ignore.
            if fin:
                fin_seq = seq + len(data)
                if fin_seq == self.rcv_nxt and not self.eof:
                    self.rcv_nxt += 1
                    self._set_eof()
                elif fin_seq > self.rcv_nxt:
                    self._ooo[fin_seq] = _FIN_SENTINEL
            # Wake the blocked reader before generating the ACK -- the
            # wakeup is what the RR benchmarks' latency rides on.
            yield node.exec(costs.process_wakeup)
            self._wake_receivers()
            yield from self._send_pure_ack()

    def _accept_data(self, data: bytes) -> None:
        self.rcv_nxt += len(data)
        self.bytes_received += len(data)
        self._recv_buf.append(data)
        self._recv_buf_bytes += len(data)

    def _drain_ooo(self) -> None:
        while True:
            nxt = self._ooo.pop(self.rcv_nxt, None)
            if nxt is None:
                return
            if nxt is _FIN_SENTINEL:
                self.rcv_nxt += 1
                self._set_eof()
                return
            self._accept_data(nxt)

    def _set_eof(self) -> None:
        self.eof = True
        if self.state == ESTABLISHED:
            self.state = CLOSE_WAIT
        elif self.state == FIN_WAIT and self._fin_sent and self.snd_una >= self.snd_nxt:
            self._become_closed()
        self._wake_receivers()

    def _become_closed(self) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self.layer._forget(self)
        if not self.closed_event.triggered:
            self.closed_event.succeed()
        self._wake_receivers()
        while self._send_space_waiters:
            waiter = self._send_space_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()

    def _wake_receivers(self) -> None:
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                break

    def _send_pure_ack(self):
        node = self.layer.stack.node
        hdr = self._make_header(TCP_ACK, seq=self.snd_nxt)
        yield node.exec(node.costs.tcp_layer)
        yield from self.layer.stack.ipv4.output(self.remote[0], IPPROTO_TCP, hdr, b"")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TcpConnection {self.local[0]}:{self.local[1]} -> "
            f"{self.remote[0]}:{self.remote[1]} {self.state}>"
        )


class TcpListener:
    """Passive socket: accepts incoming connections on a port.

    Accepted connections inherit the listener's buffer sizes, as with
    real sockets."""

    def __init__(
        self,
        layer: "TcpLayer",
        port: int,
        backlog: int = 16,
        sndbuf: int = 262144,
        rcvbuf: int = 262144,
    ):
        self.layer = layer
        self.port = port
        self.backlog = backlog
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self._ready: deque[TcpConnection] = deque()
        self._accept_waiters: deque = deque()
        self.closed = False

    def accept(self):
        """Wait for and return an ESTABLISHED connection (generator)."""
        node = self.layer.stack.node
        yield node.exec(node.costs.syscall)
        while not self._ready:
            waiter = node.sim.event(name=f"accept:{self.port}")
            self._accept_waiters.append(waiter)
            yield waiter
        return self._ready.popleft()

    def close(self) -> None:
        """Stop listening (queued-but-unaccepted connections are kept)."""
        self.closed = True
        self.layer.listeners.pop(self.port, None)

    def _offer(self, conn: TcpConnection) -> None:
        if len(self._ready) >= self.backlog:
            return  # silently dropped; peer is stuck, as with real overflow
        self._ready.append(conn)
        while self._accept_waiters:
            waiter = self._accept_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                break


class TcpLayer:
    """Per-stack TCP: listeners, connection demux, ephemeral ports."""
    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        stack.ipv4.register_protocol(IPPROTO_TCP, self.input)
        self.connections: dict[tuple, TcpConnection] = {}
        self.listeners: dict[int, TcpListener] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rx_no_match = 0

    # -- API ----------------------------------------------------------
    def listen(self, port: int, backlog: int = 16, sndbuf: int = 262144,
               rcvbuf: int = 262144) -> TcpListener:
        """Open a passive socket; accepted connections inherit the buffers."""
        if port in self.listeners:
            raise OSError(f"TCP port {port} already listening")
        listener = TcpListener(self, port, backlog, sndbuf=sndbuf, rcvbuf=rcvbuf)
        self.listeners[port] = listener
        return listener

    def connect(self, remote: tuple[IPv4Addr, int], sndbuf: int = 262144, rcvbuf: int = 262144):
        """Active open (generator).  Returns the ESTABLISHED connection."""
        node = self.stack.node
        local = (self.stack.ip, self._alloc_ephemeral())
        conn = TcpConnection(self, local, remote, sndbuf=sndbuf, rcvbuf=rcvbuf)
        key = (remote[0], remote[1], local[1])
        self.connections[key] = conn
        conn.state = SYN_SENT
        hdr = conn._make_header(TCP_SYN, seq=conn.snd_nxt)
        conn._retx_buf.append((conn.snd_nxt, b"", TCP_SYN))
        conn.snd_nxt += 1  # SYN consumes a sequence number
        conn._arm_retx()
        yield node.exec(node.costs.syscall + node.costs.tcp_layer)
        yield from self.stack.ipv4.output(remote[0], IPPROTO_TCP, hdr, b"")
        yield conn.established
        return conn

    def _alloc_ephemeral(self) -> int:
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if not any(k[2] == port for k in self.connections):
                return port
        raise OSError("out of ephemeral TCP ports")

    # -- demux ----------------------------------------------------------
    def input(self, packet: Packet):
        """Softirq-side segment demultiplexing (generator)."""
        hdr: TcpHeader = packet.l4
        key = (packet.ip.src, hdr.sport, hdr.dport)
        conn = self.connections.get(key)
        if conn is not None:
            yield from conn.on_segment(packet)
            return
        listener = self.listeners.get(hdr.dport)
        if listener is not None and hdr.flags & TCP_SYN and not hdr.flags & TCP_ACK:
            yield from self._passive_open(listener, packet)
            return
        self.rx_no_match += 1

    def _passive_open(self, listener: TcpListener, packet: Packet):
        node = self.stack.node
        hdr: TcpHeader = packet.l4
        local = (self.stack.ip, hdr.dport)
        remote = (packet.ip.src, hdr.sport)
        conn = TcpConnection(
            self, local, remote, sndbuf=listener.sndbuf, rcvbuf=listener.rcvbuf
        )
        self.connections[(remote[0], remote[1], local[1])] = conn
        conn.state = SYN_RCVD
        conn.rcv_nxt = hdr.seq + 1
        conn.peer_window = hdr.window << WINDOW_SCALE
        synack = conn._make_header(TCP_SYN | TCP_ACK, seq=conn.snd_nxt)
        conn._retx_buf.append((conn.snd_nxt, b"", TCP_SYN | TCP_ACK))
        conn.snd_nxt += 1
        conn._arm_retx()
        yield node.exec(node.costs.tcp_layer)
        yield from self.stack.ipv4.output(remote[0], IPPROTO_TCP, synack, b"")

    def _deliver_to_accept_queue(self, conn: TcpConnection) -> None:
        listener = self.listeners.get(conn.local[1])
        if listener is not None:
            listener._offer(conn)

    def _forget(self, conn: TcpConnection) -> None:
        key = (conn.remote[0], conn.remote[1], conn.local[1])
        self.connections.pop(key, None)
