"""Reproducibility: same seed => identical results, bit for bit."""

import pytest

from repro import scenarios
from repro.sim import pdes
from repro.workloads import netperf, pingpong

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)

#: pinned mesh results for seed=7 (see mesh_measure): two UDP streams
#: between distinct co-resident pairs of a 4-guest XenLoop mesh built
#: through the declarative topology layer.  If this moves, the spec
#: construction order (and hence the whole event sequence) changed.
GOLDEN_MESH = (
    (1269760, 502.57528436273225, 198, 0),
    (1236992, 501.1103562201159, 194, 0),
)


def measure(seed):
    scn = scenarios.xenloop(FAST, seed=seed)
    scn.warmup(max_wait=10.0)
    ping = pingpong.flood_ping(scn, count=50)
    rr = netperf.tcp_rr(scn, duration=0.02)
    return ping.rtt_us, ping.min_us, ping.max_us, rr.trans_per_sec, rr.p99_us


def mesh_measure(seed):
    scn = scenarios.xenloop_mesh(4, FAST, seed=seed)
    scn.warmup(max_wait=10.0)
    r12 = netperf.udp_stream(scn.view("vm1", "vm2"), duration=0.02, msg_size=8192)
    r34 = netperf.udp_stream(scn.view("vm3", "vm4"), duration=0.02, msg_size=8192)
    return (
        (r12.bytes_received, r12.mbps, r12.messages_sent, r12.drops),
        (r34.bytes_received, r34.mbps, r34.messages_sent, r34.drops),
    )


def _mesh_script(cluster):
    """The mesh_measure workload, run inside a 1-shard worker process."""
    cluster.warmup(max_wait=10.0)
    r12 = netperf.udp_stream(cluster.view("vm1", "vm2"), duration=0.02, msg_size=8192)
    r34 = netperf.udp_stream(cluster.view("vm3", "vm4"), duration=0.02, msg_size=8192)
    return [
        (r12.bytes_received, r12.mbps, r12.messages_sent, r12.drops),
        (r34.bytes_received, r34.mbps, r34.messages_sent, r34.drops),
    ]


def _sharded_fingerprint(seed):
    """Every simulation-derived observable of a 2-shard grid run."""
    spec = pdes.bench_grid_spec(2, 2, 8192, 0.02)
    run = pdes.run_sharded(spec, shards=2, costs=FAST, seed=seed)
    per_shard = tuple(
        (
            e["shard"],
            e["machine"],
            e["stats"]["events"],
            e["stats"]["sim_time"],
            e["pdes"]["frames_out"],
            e["pdes"]["frames_in"],
        )
        for e in run.shards
    )
    results = tuple(
        (r["client"], r["server"], tuple(sorted(r["result"].items())))
        for r in run.results
    )
    return per_shard, run.stats["events"], results


class TestDeterminism:
    def test_same_seed_identical_results(self):
        assert measure(seed=3) == measure(seed=3)

    def test_different_seed_different_jitter(self):
        a = measure(seed=1)
        b = measure(seed=2)
        # means are close (same model) but the jittered extremes differ
        assert a != b
        assert a[0] == pytest.approx(b[0], rel=0.2)

    def test_default_seed_stable(self):
        assert measure(seed=0) == measure(seed=0)

    def test_mesh_same_seed_identical_results(self):
        assert mesh_measure(seed=7) == mesh_measure(seed=7)

    def test_mesh_golden(self):
        """The 4-guest mesh (built via ClusterSpec) is pinned bit-for-bit."""
        assert mesh_measure(seed=7) == GOLDEN_MESH

    def test_sharded_same_seed_identical_results(self):
        """Two shards, run twice: the conservative protocol must yield the
        same event stream regardless of wall-clock pipe timing.  Only
        simulation-derived values are compared -- wall_s, blocked_s, and
        null-message counts legitimately vary with OS scheduling."""
        assert _sharded_fingerprint(seed=7) == _sharded_fingerprint(seed=7)

    def test_one_shard_matches_inprocess_build(self):
        """shards=1 routes through the ordinary build in a single worker
        process, so its results and event count are bit-identical to
        running the same spec in this process."""
        spec = pdes.bench_grid_spec(2, 2, 8192, 0.02)
        run = pdes.run_sharded(spec, shards=1, costs=FAST, seed=7)
        cluster = spec.build(FAST, seed=7)
        baseline = pdes.run_local_workloads(cluster)
        assert run.results == baseline
        assert run.stats["events"] == cluster.sim.event_count
        assert run.stats["sim_time"] == cluster.sim.now

    def test_one_shard_mesh_matches_golden(self):
        """The 1-shard sharded path replays the pinned unsharded mesh
        golden bit for bit (same spec, same seed, same event stream)."""
        spec = scenarios.xenloop_mesh(4, FAST, seed=7).spec
        run = pdes.run_sharded(spec, shards=1, costs=FAST, seed=7, script=_mesh_script)
        assert tuple(tuple(r) for r in run.results) == GOLDEN_MESH

    def test_zero_jitter_removes_all_randomness(self):
        costs = FAST.replace(virq_jitter=0.0)

        def run(seed):
            scn = scenarios.xenloop(costs, seed=seed)
            scn.warmup(max_wait=10.0)
            return pingpong.flood_ping(scn, count=30).rtt_us

        # with jitter off, even DIFFERENT seeds give identical timings
        assert run(seed=1) == run(seed=99)
