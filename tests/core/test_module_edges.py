"""Remaining module-level edge cases and statistics."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState
from repro.net.netfilter import HookPoint, Verdict
from tests.core.conftest import FAST, first_channel, udp_once


class TestHookEdges:
    def test_non_ip_frames_not_intercepted(self, xl):
        """ARP and other raw frames bypass the hook (it only sees L3)."""
        module_a = xl.xenloop_module(xl.node_a)
        before = module_a.pkts_via_channel
        xl.node_a.stack.arp.announce()
        xl.sim.run(until=xl.sim.now + 0.05)
        assert module_a.pkts_via_channel == before

    def test_off_subnet_traffic_not_intercepted(self, xl):
        """Traffic routed off-subnet (via a gateway that doesn't exist
        here) never consults the mapping table."""
        from repro.net.addr import IPv4Addr
        from repro.net.ipv4 import RoutingError

        module_a = xl.xenloop_module(xl.node_a)
        sock = xl.node_a.stack.udp_socket()
        sim = xl.sim

        def send():
            try:
                yield from sock.sendto(b"x", (IPv4Addr("192.168.77.1"), 9))
            except RoutingError:
                return "no-route"

        proc = sim.process(send())
        assert sim.run_until_complete(proc, timeout=5) == "no-route"

    def test_hook_unregistered_after_unload_stops_counting(self, xl):
        sim = xl.sim
        module_a = xl.xenloop_module(xl.node_a)
        proc = sim.process(module_a.unload())
        sim.run_until_complete(proc, timeout=5)
        sim.run(until=sim.now + 0.1)
        std_before = module_a.pkts_via_standard
        udp_once(xl, b"post", port=8950)
        assert module_a.pkts_via_standard == std_before  # module is gone

    def test_double_unload_is_noop(self, xl):
        sim = xl.sim
        module_a = xl.xenloop_module(xl.node_a)
        for _ in range(2):
            proc = sim.process(module_a.unload())
            sim.run_until_complete(proc, timeout=5)


class TestChannelAccounting:
    def test_bytes_counters_match_traffic(self, xl):
        ch_a = first_channel(xl, xl.node_a)
        sent_before = ch_a.bytes_sent
        payload = bytes(3000)
        udp_once(xl, payload, port=8951)
        # one UDP datagram = one L3 packet: payload + 28 bytes of headers
        assert ch_a.bytes_sent - sent_before == len(payload) + 28

    def test_notify_counter_tracks_pushes(self, xl):
        ch_a = first_channel(xl, xl.node_a)
        n_before = ch_a.notifies
        udp_once(xl, b"tick", port=8952)
        assert ch_a.notifies > n_before

    def test_stats_dict_is_fresh_each_call(self, xl):
        module_a = xl.xenloop_module(xl.node_a)
        s1 = module_a.stats()
        udp_once(xl, b"x", port=8953)
        s2 = module_a.stats()
        assert s2["via_channel"] >= s1["via_channel"]
        assert s1 is not s2


class TestHookCoexistence:
    def test_other_netfilter_hooks_still_run(self, xl):
        """A user firewall hook registered after XenLoop still sees the
        packets XenLoop declines (transparency for other netfilter
        users)."""
        seen = []

        def firewall(packet, dev):
            if packet.ip is not None:
                seen.append(packet.ip.dst)
            return Verdict.ACCEPT
            yield  # pragma: no cover

        xl.node_a.stack.netfilter.register(
            HookPoint.POST_ROUTING, firewall, priority=100
        )
        # channel-bound packets are STOLEN before the firewall (XenLoop
        # is below the network layer); loopback traffic still passes it.
        sim = xl.sim
        a_sock = xl.node_a.stack.udp_socket(8954)
        b_sock = xl.node_a.stack.udp_socket()

        def gen():
            yield from b_sock.sendto(b"self", (xl.ip_a, 8954))
            yield from a_sock.recvfrom()

        proc = sim.process(gen())
        sim.run_until_complete(proc, timeout=5)
        assert xl.ip_a in seen

    def test_drop_hook_before_xenloop_wins(self, xl):
        """A higher-priority DROP hook starves the channel -- hook
        ordering is respected."""
        def dropper(packet, dev):
            return Verdict.DROP
            yield  # pragma: no cover

        xl.node_a.stack.netfilter.register(
            HookPoint.POST_ROUTING, dropper, priority=-100
        )
        ch_a = first_channel(xl, xl.node_a)
        sent_before = ch_a.pkts_sent
        sim = xl.sim
        sock = xl.node_a.stack.udp_socket()

        def send():
            yield from sock.sendto(b"blocked", (xl.ip_b, 8955))

        proc = sim.process(send())
        sim.run_until_complete(proc, timeout=5)
        assert ch_a.pkts_sent == sent_before
        xl.node_a.stack.netfilter.unregister(HookPoint.POST_ROUTING, dropper)
