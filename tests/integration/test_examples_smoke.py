"""Smoke checks on the example scripts.

Each example is importable and exposes a ``main``; the cheapest one is
actually executed end-to-end (the others exercise the exact same
library paths as the workload tests, and running all of them belongs to
``make examples``)."""

import importlib.util
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "mpi_cluster", "web_service_tier",
                "live_migration", "path_anatomy"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = load(path)
        assert callable(getattr(module, "main", None)), f"{path.stem} has no main()"

    @pytest.mark.slow
    def test_quickstart_runs(self, capsys):
        module = load(ROOT / "examples" / "quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "Latency improvement" in out
        assert "Bandwidth improvement" in out
