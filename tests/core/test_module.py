"""XenLoopModule: hook dispatch, transparency, statistics, validation."""

import pytest

from repro.core.channel import ChannelState
from repro.core.module import XenLoopModule
from repro.net.addr import IPv4Addr
from tests.core.conftest import FAST, first_channel, udp_once
from repro import scenarios


class TestLoading:
    def test_requires_networked_guest(self, sim):
        from repro.calibration import DEFAULT_COSTS
        from repro.xen.machine import XenMachine

        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        guest = machine.create_guest("vm1")  # no IP -> no stack
        with pytest.raises(ValueError):
            XenLoopModule(guest)

    def test_advert_written_on_load(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=0.05)
        machine = scn.machines[0]
        path = f"/local/domain/{scn.node_a.domid}/xenloop"
        assert machine.xenstore.read(0, path) == str(scn.node_a.mac)

    def test_hook_registered(self, xl_cold):
        from repro.net.netfilter import HookPoint

        assert xl_cold.node_a.stack.netfilter.count(HookPoint.POST_ROUTING) == 1


class TestDispatch:
    def test_traffic_before_discovery_uses_standard_path(self, xl_cold):
        scn = xl_cold
        data = udp_once(scn, b"early", port=7301)
        assert data == b"early"
        module_a = scn.xenloop_module(scn.node_a)
        assert module_a.pkts_via_channel == 0

    def test_traffic_after_connect_uses_channel(self, xl):
        module_a = xl.xenloop_module(xl.node_a)
        before = module_a.pkts_via_channel
        udp_once(xl, b"direct", port=7302)
        assert module_a.pkts_via_channel > before

    def test_loopback_traffic_not_intercepted(self, xl):
        """Packets to the guest's own address go via lo, never the hook."""
        module_a = xl.xenloop_module(xl.node_a)
        before = module_a.pkts_via_channel + module_a.pkts_via_standard
        sim = xl.sim
        sock_a = xl.node_a.stack.udp_socket(7303)
        sock_b = xl.node_a.stack.udp_socket()

        def gen():
            yield from sock_b.sendto(b"self", (xl.ip_a, 7303))
            data, _ = yield from sock_a.recvfrom()
            return data

        proc = sim.process(gen())
        assert sim.run_until_complete(proc, timeout=5) == b"self"
        after = module_a.pkts_via_channel + module_a.pkts_via_standard
        assert after == before

    def test_stats_shape(self, xl):
        stats = xl.xenloop_module(xl.node_a).stats()
        assert set(stats) == {
            "via_channel",
            "via_standard",
            "too_big",
            "channels",
            "announcements",
            "whois_sent",
            "budget_evictions",
        }
        assert stats["channels"] == 1

    def test_tcp_connection_migrates_to_channel_midstream(self):
        """A TCP connection opened BEFORE the channel exists keeps working
        when later packets switch to the channel (seamless switch)."""
        scn = scenarios.xenloop(FAST)
        sim = scn.sim
        listener = scn.node_b.stack.tcp_listen(7304)
        state = {}

        def srv():
            conn = yield from listener.accept()
            total = 0
            while total < 200_000:
                data = yield from conn.recv(65536)
                if not data:
                    break
                total += len(data)
            state["total"] = total

        def cli():
            conn = yield from scn.node_a.stack.tcp_connect((scn.ip_b, 7304))
            state["conn"] = conn
            # send some data pre-channel
            sent = 0
            yield from conn.send(bytes(50_000))
            sent += 50_000
            # wait until the channel connects (discovery + bootstrap)
            while True:
                module = scn.xenloop_module(scn.node_a)
                if any(
                    ch.state is ChannelState.CONNECTED
                    for ch in module.channels.values()
                ):
                    break
                yield sim.timeout(FAST.discovery_period / 2)
                yield from conn.send(bytes(1000))  # keep traffic flowing
                sent += 1000
            yield from conn.send(bytes(200_000 - sent))

        sp = sim.process(srv())
        sim.process(cli())
        sim.run_until_complete(sp, timeout=120)
        assert state["total"] == 200_000
        module_a = scn.xenloop_module(scn.node_a)
        assert module_a.pkts_via_channel > 0
        assert module_a.pkts_via_standard > 0


class TestThreeGuests:
    def test_pairwise_channels(self):
        """Three co-resident guests form three independent channels."""
        scn = scenarios.xenloop(FAST)
        sim = scn.sim
        scn.warmup(max_wait=10.0)  # vm1<->vm2 channel first
        machine = scn.machines[0]
        vm3 = machine.create_guest("vm3", ip=IPv4Addr("10.0.0.3"))
        module3 = XenLoopModule(vm3)

        # vm3 <-> vm1 and vm3 <-> vm2 channels on first traffic
        for dst_node, dst_ip, port in (
            (scn.node_a, scn.ip_a, 7401),
            (scn.node_b, scn.ip_b, 7402),
        ):
            server = dst_node.stack.udp_socket(port)
            client = vm3.stack.udp_socket()

            def exchange(c=client, s=server, ip=dst_ip, p=port):
                yield from c.sendto(b"hi", (ip, p))
                data, _ = yield from s.recvfrom()
                return data

            # repeat traffic until the channel to this peer connects,
            # then once more so a packet actually crosses it
            connected = False
            for _ in range(30):
                proc = sim.process(exchange())
                sim.run_until_complete(proc, timeout=5)
                if connected:
                    break
                sim.run(until=sim.now + FAST.discovery_period / 2)
                connected = any(
                    ch.state is ChannelState.CONNECTED
                    and ch.peer_mac == dst_node.mac
                    for ch in module3.channels.values()
                )
        assert len(module3.channels) == 2
        assert module3.pkts_via_channel > 0
        # each peer also holds a channel back to vm3
        for node in (scn.node_a, scn.node_b):
            peer_module = scn.xenloop_module(node)
            assert vm3.mac in peer_module.channels
