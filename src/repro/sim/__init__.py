"""Discrete-event simulation substrate.

Everything in the reproduction runs on this engine: Xen domains, network
stacks, drivers, the XenLoop module, and the benchmark workloads are all
:class:`~repro.sim.engine.Process` instances scheduled by a single
:class:`~repro.sim.engine.Simulator`.

The engine follows the classic event-calendar design (a binary heap of
timestamped events) with SimPy-style generator processes: a process is a
Python generator that *yields* events; the engine resumes the generator
when the yielded event fires.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import CPUCores, Resource, Store
from repro.sim.stats import (
    Counter,
    Deadline,
    LatencyProbe,
    LogHistogram,
    ThroughputProbe,
    TimeSeries,
)
from repro.sim.timers import TimerWheel, WheelTimeout, WheelTimer

__all__ = [
    "AllOf",
    "AnyOf",
    "CPUCores",
    "Counter",
    "Deadline",
    "Event",
    "Interrupt",
    "LatencyProbe",
    "LogHistogram",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "ThroughputProbe",
    "TimeSeries",
    "Timeout",
    "TimerWheel",
    "WheelTimeout",
    "WheelTimer",
]
