"""Fixtures for XenLoop core tests: a live xenloop scenario with fast
discovery, plus traffic helpers."""

import pytest

from repro import scenarios
from repro.calibration import DEFAULT_COSTS


FAST = DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


@pytest.fixture
def xl():
    """Connected xenloop scenario (channels established)."""
    scn = scenarios.xenloop(FAST)
    scn.warmup(max_wait=10.0)
    return scn


@pytest.fixture
def xl_cold():
    """xenloop scenario before any discovery/bootstrap has happened."""
    return scenarios.xenloop(FAST)


def udp_once(scn, payload, port=7100, timeout=5.0):
    """Send one datagram a->b and return what b received."""
    sim = scn.sim
    server = scn.node_b.stack.udp_socket(port)
    client = scn.node_a.stack.udp_socket()

    def cli():
        yield from client.sendto(payload, (scn.ip_b, port))

    def srv():
        data, _ = yield from server.recvfrom()
        return data

    sim.process(cli())
    proc = sim.process(srv())
    data = sim.run_until_complete(proc, timeout=timeout)
    server.close()
    client.close()
    return data


def first_channel(scn, node):
    module = scn.xenloop_module(node)
    assert module.channels, f"no channels on {node.name}"
    return next(iter(module.channels.values()))
