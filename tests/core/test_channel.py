"""Channel bootstrap, data transfer, waiting list, and teardown."""

import pytest

from repro.core.channel import ChannelState
from repro.core.protocol import CreateChannel
from repro.net.udp import MAX_DGRAM
from repro import scenarios
from tests.core.conftest import FAST, first_channel, udp_once


class TestBootstrap:
    def test_channels_connect_after_discovery(self, xl):
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        assert ch_a.state is ChannelState.CONNECTED
        assert ch_b.state is ChannelState.CONNECTED

    def test_smaller_domid_is_listener(self, xl):
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        listener = ch_a if ch_a.is_listener else ch_b
        connector = ch_b if ch_a.is_listener else ch_a
        assert listener.guest.domid < listener.peer_domid
        assert connector.guest.domid > connector.peer_domid

    def test_fifos_cross_linked(self, xl):
        """A's out FIFO is B's in FIFO: genuinely shared memory."""
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        assert ch_a.out_fifo.region is ch_b.in_fifo.region
        assert ch_a.in_fifo.region is ch_b.out_fifo.region

    def test_connector_mapped_grants(self, xl):
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        connector = ch_a if not ch_a.is_listener else ch_b
        # 2 descriptor pages + 2 * 16 data pages for k=13
        assert len(connector._mapped_grefs) == 2 + 2 * 16

    def test_event_channel_bound(self, xl):
        ch_a = first_channel(xl, xl.node_a)
        ch_b = first_channel(xl, xl.node_b)
        assert ch_a.port.peer is ch_b.port

    def test_bootstrap_triggered_by_traffic_not_discovery(self, xl_cold):
        """Discovery alone must not create channels; first traffic does."""
        scn = xl_cold
        scn.sim.run(until=1.0)  # several discovery periods, no traffic
        assert not scn.xenloop_module(scn.node_a).channels
        assert not scn.xenloop_module(scn.node_b).channels


class TestBootstrapRetry:
    def _drop_n_create_channels(self, scn, n):
        """Patch both modules to drop the first n CREATE_CHANNEL frames."""
        dropped = {"count": 0}
        for node in (scn.node_a, scn.node_b):
            module = scn.xenloop_module(node)
            original = module.send_control

            def send_control(dst_mac, msg, _orig=original):
                if isinstance(msg, CreateChannel) and dropped["count"] < n:
                    dropped["count"] += 1

                    def noop():
                        return
                        yield  # pragma: no cover

                    return noop()
                return _orig(dst_mac, msg)

            module.send_control = send_control
        return dropped

    def test_listener_retries_lost_create(self, xl_cold):
        scn = xl_cold
        dropped = self._drop_n_create_channels(scn, 1)
        scn.warmup(max_wait=10.0)
        assert dropped["count"] == 1
        assert first_channel(scn, scn.node_a).state is ChannelState.CONNECTED

    def test_bootstrap_gives_up_after_retries(self, xl_cold):
        scn = xl_cold
        self._drop_n_create_channels(scn, 10_000)
        # traffic still flows (standard path); channels never connect
        scn.sim.run(until=1.0)
        data = udp_once(scn, b"fallback", port=7199)
        assert data == b"fallback"
        scn.sim.run(until=scn.sim.now + 1.0)
        module_a = scn.xenloop_module(scn.node_a)
        assert not any(
            ch.state is ChannelState.CONNECTED for ch in module_a.channels.values()
        )
        # the listener cleaned up its failed bootstrap grants
        listener = min((scn.node_a, scn.node_b), key=lambda n: n.domid)
        assert listener.grant_table.active_entries == 0


class TestDataTransfer:
    def test_udp_payload_via_channel(self, xl):
        payload = bytes(range(256)) * 8
        ch_a = first_channel(xl, xl.node_a)
        sent_before = ch_a.pkts_sent
        assert udp_once(xl, payload) == payload
        assert ch_a.pkts_sent == sent_before + 1

    def test_channel_bypasses_bridge(self, xl):
        machine = xl.machines[0]
        fwd_before = machine.bridge.frames_forwarded + machine.bridge.frames_flooded
        udp_once(xl, b"direct")
        fwd_after = machine.bridge.frames_forwarded + machine.bridge.frames_flooded
        assert fwd_after == fwd_before  # no Dom0 involvement on the data path

    def test_oversized_packet_falls_back(self, xl):
        module_a = xl.xenloop_module(xl.node_a)
        too_big_before = module_a.pkts_too_big
        payload = bytes(MAX_DGRAM)  # 65507 B datagram: L3 > FIFO capacity
        assert udp_once(xl, payload, port=7101, timeout=10.0) == payload
        assert module_a.pkts_too_big > too_big_before

    def test_bidirectional_traffic(self, xl):
        sim = xl.sim
        a_sock = xl.node_a.stack.udp_socket(7102)
        b_sock = xl.node_b.stack.udp_socket(7102)

        def a_side():
            yield from a_sock.sendto(b"from-a", (xl.ip_b, 7102))
            data, _ = yield from a_sock.recvfrom()
            return data

        def b_side():
            data, _ = yield from b_sock.recvfrom()
            yield from b_sock.sendto(b"from-b", (xl.ip_a, 7102))

        sim.process(b_side())
        proc = sim.process(a_side())
        assert sim.run_until_complete(proc, timeout=5) == b"from-b"
        ch_b = first_channel(xl, xl.node_b)
        assert ch_b.pkts_sent >= 1  # B used its own outgoing FIFO

    def test_notification_coalescing_under_burst(self, xl):
        sim = xl.sim
        ch_a = first_channel(xl, xl.node_a)
        server = xl.node_b.stack.udp_socket(7103, rcvbuf=1 << 22)
        client = xl.node_a.stack.udp_socket()

        def cli():
            for _ in range(200):
                yield from client.sendto(bytes(1000), (xl.ip_b, 7103))

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 0.1)
        assert server.rx_msgs == 200
        # 1-bit coalescing: far fewer upcalls than notifies
        port_b = ch_a.port.peer
        assert port_b.upcalls < ch_a.notifies


class TestWaitingList:
    def test_full_fifo_routes_through_waiting_list(self, xl):
        """A packet that finds the FIFO full goes to the waiting list and
        is flushed on the space-available notification, preserving order
        and losing nothing (paper Sect. 3.1)."""
        sim = xl.sim
        ch_a = first_channel(xl, xl.node_a)
        # Stuff the outgoing FIFO with filler entries (unknown type: the
        # receiver frees the slots but doesn't deliver them).  In real
        # operation the peer always has a pending notify by the time the
        # FIFO is full; the direct fill bypassed that, so notify once.
        while ch_a.out_fifo.push(bytes(2000), msg_type=99):
            pass
        assert ch_a.out_fifo.push_failures > 0
        xl.node_a.machine.hypervisor.evtchn.notify(ch_a.port)

        assert udp_once(xl, b"queued-behind-full-fifo", port=7104) == (
            b"queued-behind-full-fifo"
        )
        assert not ch_a.waiting_list  # flushed after space freed

    def test_order_preserved_behind_waiting_list(self, xl):
        sim = xl.sim
        ch_a = first_channel(xl, xl.node_a)
        while ch_a.out_fifo.push(bytes(2000), msg_type=99):
            pass
        xl.node_a.machine.hypervisor.evtchn.notify(ch_a.port)
        server = xl.node_b.stack.udp_socket(7114, rcvbuf=1 << 22)
        client = xl.node_a.stack.udp_socket()
        count = 50

        def cli():
            for i in range(count):
                yield from client.sendto(i.to_bytes(4, "big"), (xl.ip_b, 7114))

        got = []

        def srv():
            for _ in range(count):
                data, _ = yield from server.recvfrom()
                got.append(int.from_bytes(data, "big"))

        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=30)
        assert got == list(range(count))


class TestTeardown:
    def test_unload_tears_down_and_falls_back(self, xl):
        sim = xl.sim
        module_a = xl.xenloop_module(xl.node_a)
        module_b = xl.xenloop_module(xl.node_b)
        proc = sim.process(module_a.unload())
        sim.run_until_complete(proc, timeout=5)
        sim.run(until=sim.now + 0.1)
        assert not module_a.channels
        assert not module_b.channels  # peer disengaged via inactive flag
        # traffic continues transparently on the standard path
        assert udp_once(xl, b"post-unload", port=7105) == b"post-unload"

    def test_unload_revokes_grants(self, xl):
        sim = xl.sim
        listener_node = min((xl.node_a, xl.node_b), key=lambda n: n.domid)
        module = xl.xenloop_module(listener_node)
        proc = sim.process(module.unload())
        sim.run_until_complete(proc, timeout=5)
        sim.run(until=sim.now + 0.1)
        assert listener_node.grant_table.active_entries == 0

    def test_unload_removes_advert(self, xl):
        sim = xl.sim
        module_a = xl.xenloop_module(xl.node_a)
        proc = sim.process(module_a.unload())
        sim.run_until_complete(proc, timeout=5)
        machine = xl.machines[0]
        assert not machine.xenstore.exists(
            0, f"/local/domain/{xl.node_a.domid}/xenloop"
        )

    def test_peer_prunes_after_advert_removal(self, xl):
        """Soft state: once A's advert is gone, the next announcement no
        longer lists A, and B tears the channel down."""
        sim = xl.sim
        module_a = xl.xenloop_module(xl.node_a)
        module_b = xl.xenloop_module(xl.node_b)
        proc = sim.process(module_a.unload())
        sim.run_until_complete(proc, timeout=5)
        sim.run(until=sim.now + 3 * FAST.discovery_period)
        assert xl.node_a.mac not in module_b.mapping

    def test_guest_shutdown_cleans_up(self, xl):
        sim = xl.sim
        module_b = xl.xenloop_module(xl.node_b)
        proc = sim.process(xl.node_b.shutdown())
        sim.run_until_complete(proc, timeout=5)
        sim.run(until=sim.now + 0.1)
        module_a = xl.xenloop_module(xl.node_a)
        assert not module_a.channels
        assert not module_b.channels


class TestIdleReaper:
    def test_idle_channel_torn_down(self):
        scn = scenarios.xenloop(FAST)
        # Rebuild modules with an idle timeout.
        from repro.core.module import XenLoopModule

        sim = scn.sim
        for node in (scn.node_a, scn.node_b):
            module = scn.modules[node.name]
            proc = sim.process(module.unload())
            sim.run_until_complete(proc, timeout=5)
            scn.modules[node.name] = XenLoopModule(node, idle_timeout=0.5)
        scn.warmup(max_wait=10.0)
        assert scn.xenloop_module(scn.node_a).channels
        sim.run(until=sim.now + 2.0)  # idle far beyond the timeout
        assert not scn.xenloop_module(scn.node_a).channels
        assert not scn.xenloop_module(scn.node_b).channels
