"""Congestion-shaped workloads the paper never ran: N-to-1 incast and
mixed elephant/mice fairness.

Both drive the simulated socket API exactly like the netperf
reimplementations (no workload knows XenLoop exists), but are built to
make the congestion-control machinery visible:

* :func:`tcp_incast` -- N senders blast a fixed byte count into one
  receiving guest concurrently (the classic partition/aggregate
  pattern); reports per-flow completion goodput, Jain's fairness index,
  and the retransmit/fast-retransmit/RTO split.
* :func:`tcp_fairness` -- long-lived *elephant* streams share the path
  with short bursty *mice* flows for a fixed window; reports per-class
  goodput and fairness.

The reproduction question they open (EXPERIMENTS.md): the XenLoop FIFO
path never crosses the Dom0 bridge, so injected bridge loss
(:data:`repro.faults.PKT_LOSS`) leaves it untouched while the
netfront/netback path pays retransmissions *and* AIMD back-off --
loss-shaped traffic widens the paper's FIFO-vs-netfront gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Cluster

__all__ = [
    "FairnessResult",
    "FlowStat",
    "IncastResult",
    "jain_index",
    "tcp_fairness",
    "tcp_incast",
]


@dataclass
class FlowStat:
    """One flow's outcome: goodput plus sender-side congestion counters."""

    name: str
    bytes: int
    duration: float
    mbps: float
    retransmissions: int
    fast_retransmits: int
    rto_retransmits: int
    cwnd_final: int
    ssthresh_final: int


@dataclass
class IncastResult:
    """N-to-1 incast outcome."""

    flows: list
    duration: float
    aggregate_mbps: float
    #: Jain's index over per-flow goodput (1.0 = perfectly fair).
    fairness: float
    retransmissions: int
    fast_retransmits: int
    rto_retransmits: int


@dataclass
class FairnessResult:
    """Elephant/mice sharing outcome."""

    flows: list
    duration: float
    elephant_mbps: float
    mice_mbps: float
    #: Jain's index over every flow's goodput.
    fairness: float
    #: Jain's index over the elephants alone (like-for-like sharing).
    fairness_elephants: float
    retransmissions: int
    fast_retransmits: int
    rto_retransmits: int


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1]."""
    vals = [float(v) for v in values]
    if not vals:
        return 1.0
    square_sum = sum(v * v for v in vals)
    if square_sum == 0.0:
        return 1.0
    total = sum(vals)
    return (total * total) / (len(vals) * square_sum)


def _flow_stat(name: str, conn, nbytes: int, elapsed: float) -> FlowStat:
    return FlowStat(
        name=name,
        bytes=nbytes,
        duration=elapsed,
        mbps=nbytes * 8 / elapsed / 1e6 if elapsed > 0 else 0.0,
        retransmissions=conn.retransmissions,
        fast_retransmits=conn.fast_retransmits,
        rto_retransmits=conn.rto_retransmits,
        cwnd_final=conn.cwnd,
        ssthresh_final=conn.ssthresh,
    )


def _sink_server(cluster: "Cluster", server: str, port: int, n_flows: int):
    """Accept ``n_flows`` connections on ``server`` and drain each to EOF
    in its own process (generator, one accept loop)."""
    node = cluster.guests[server]

    def drain(conn):
        while True:
            chunk = yield from conn.recv(65536)
            if not chunk:
                break
        yield from conn.close()

    def acceptor():
        listener = node.stack.tcp_listen(port)
        for i in range(n_flows):
            conn = yield from listener.accept()
            node.sim.process(drain(conn), name=f"sink-drain-{i}")
        listener.close()

    return cluster.sim.process(acceptor(), name=f"sink-{server}")


def tcp_incast(
    cluster: "Cluster",
    server: str,
    senders: Sequence[str],
    bytes_per_flow: int = 1 << 20,
    msg_size: int = 16384,
    port: int = 5301,
    timeout: float = 120.0,
) -> IncastResult:
    """N-to-1 incast: every sender pushes ``bytes_per_flow`` into
    ``server`` concurrently; a flow's clock stops when its FIN is acked
    (retransmit tails count against goodput)."""
    sim = cluster.sim
    _sink_server(cluster, server, port, len(senders))
    server_ip = cluster.guests[server].stack.ip
    flows: dict[str, FlowStat] = {}
    t0 = sim.now

    def sender(name: str):
        node = cluster.guests[name]
        conn = yield from node.stack.tcp_connect((server_ip, port))
        payload = bytes(msg_size)
        left = bytes_per_flow
        while left > 0:
            chunk = payload if left >= msg_size else bytes(left)
            yield from conn.send(chunk)
            left -= len(chunk)
        yield from conn.close()
        yield conn.closed_event
        flows[name] = _flow_stat(name, conn, bytes_per_flow, sim.now - t0)

    procs = [sim.process(sender(name), name=f"incast-{name}") for name in senders]
    for proc in procs:
        sim.run_until_complete(proc, timeout=timeout)

    stats = [flows[name] for name in senders]
    duration = max(f.duration for f in stats)
    total_bytes = sum(f.bytes for f in stats)
    return IncastResult(
        flows=stats,
        duration=duration,
        aggregate_mbps=total_bytes * 8 / duration / 1e6 if duration > 0 else 0.0,
        fairness=jain_index([f.mbps for f in stats]),
        retransmissions=sum(f.retransmissions for f in stats),
        fast_retransmits=sum(f.fast_retransmits for f in stats),
        rto_retransmits=sum(f.rto_retransmits for f in stats),
    )


def tcp_fairness(
    cluster: "Cluster",
    server: str,
    elephants: Sequence[str],
    mice: Sequence[str],
    duration: float = 0.2,
    elephant_msg: int = 16384,
    mouse_burst: int = 8192,
    mouse_gap: float = 0.002,
    port: int = 5302,
    timeout: float = 120.0,
) -> FairnessResult:
    """Mixed flows sharing one sink for ``duration`` sim-seconds:
    elephants stream continuously; mice send ``mouse_burst`` bytes then
    idle ``mouse_gap`` seconds, netperf-CRR-shaped without the
    per-burst handshake."""
    sim = cluster.sim
    _sink_server(cluster, server, port, len(elephants) + len(mice))
    server_ip = cluster.guests[server].stack.ip
    flows: dict[str, FlowStat] = {}
    t_end = sim.now + duration

    def elephant(name: str):
        node = cluster.guests[name]
        conn = yield from node.stack.tcp_connect((server_ip, port))
        payload = bytes(elephant_msg)
        t0 = sim.now
        sent = 0
        while sim.now < t_end:
            yield from conn.send(payload)
            sent += len(payload)
        yield from conn.close()
        yield conn.closed_event
        flows[name] = _flow_stat(name, conn, sent, sim.now - t0)

    def mouse(name: str):
        node = cluster.guests[name]
        conn = yield from node.stack.tcp_connect((server_ip, port))
        payload = bytes(mouse_burst)
        t0 = sim.now
        sent = 0
        while sim.now < t_end:
            yield from conn.send(payload)
            sent += len(payload)
            yield sim.timeout(mouse_gap)
        yield from conn.close()
        yield conn.closed_event
        flows[name] = _flow_stat(name, conn, sent, sim.now - t0)

    procs = [sim.process(elephant(n), name=f"elephant-{n}") for n in elephants]
    procs += [sim.process(mouse(n), name=f"mouse-{n}") for n in mice]
    for proc in procs:
        sim.run_until_complete(proc, timeout=timeout)

    stats = [flows[n] for n in (*elephants, *mice)]
    wall = max(f.duration for f in stats)
    e_bytes = sum(flows[n].bytes for n in elephants)
    m_bytes = sum(flows[n].bytes for n in mice)
    return FairnessResult(
        flows=stats,
        duration=wall,
        elephant_mbps=e_bytes * 8 / wall / 1e6 if wall > 0 else 0.0,
        mice_mbps=m_bytes * 8 / wall / 1e6 if wall > 0 else 0.0,
        fairness=jain_index([f.mbps for f in stats]),
        fairness_elephants=jain_index([flows[n].mbps for n in elephants]),
        retransmissions=sum(f.retransmissions for f in stats),
        fast_retransmits=sum(f.fast_retransmits for f in stats),
        rto_retransmits=sum(f.rto_retransmits for f in stats),
    )
