"""Wiring a guest vif to Dom0: rings, event channel, netback, bridge port.

``connect_vif`` is called by :meth:`repro.xen.machine.XenMachine.create_guest`
at domain creation and again by :meth:`adopt_domain` after a live
migration (the migrated guest gets a brand-new ring/netback on the
destination machine, as on real Xen).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.resources import Store
from repro.xennet.netback import Netback
from repro.xennet.netfront import Netfront
from repro.xennet.ring import SlottedRing

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.domain import Domain

__all__ = ["connect_vif"]


def connect_vif(guest: "Domain") -> Netfront:
    """Wire (or re-wire) a guest's vif: rings, event channel, netback."""
    machine = guest.machine
    if guest.stack is None:
        raise ValueError(f"{guest.name} has no network stack")
    costs = guest.costs

    if guest.netfront is None:
        netfront = Netfront(guest, vif_name="eth0")
        guest.netfront = netfront
        guest.stack.add_device(netfront.vif, primary=True)
    else:
        netfront = guest.netfront  # reconnect after migration

    tx_ring = SlottedRing(machine.sim, costs.ring_size)
    rx_store = Store(machine.sim, capacity=costs.ring_size)

    evtchn = machine.hypervisor.evtchn
    guest_port = evtchn.alloc_unbound(guest.domid, machine.dom0.domid)
    dom0_port = evtchn.bind_interdomain(machine.dom0.domid, guest.domid, guest_port.port)

    netback = Netback(machine.dom0, netfront, tx_ring, rx_store, dom0_port)
    machine.bridge.add_port(netback.port)

    netfront.tx_ring = tx_ring
    netfront.rx_store = rx_store
    netfront.evtchn_port = guest_port
    netfront.netback = netback

    evtchn.set_handler(guest_port, netfront.on_interrupt)
    evtchn.set_handler(dom0_port, netback.on_interrupt)

    # Record the connection in XenStore, as xend does.
    machine.xenstore.write(0, f"/local/domain/{guest.domid}/device/vif/0/mac", str(guest.mac))
    netfront._kick_tx()
    return netfront
