"""TCP retransmission: recovery from injected loss.

The only loss on real simulated paths is migration downtime; these
tests inject loss directly via a dropping netfilter hook so the RTO
machinery is exercised deterministically.
"""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.netfilter import HookPoint, Verdict
from repro.net.packet import TcpHeader
from tests.net.test_tcp import connect_pair


class _Dropper:
    """POST_ROUTING hook dropping the next N TCP data segments."""

    def __init__(self, count, match=None):
        self.remaining = count
        self.match = match or (lambda pkt: len(pkt.payload) > 0)
        self.dropped = []

    def __call__(self, packet, dev):
        if (
            self.remaining > 0
            and isinstance(packet.l4, TcpHeader)
            and self.match(packet)
        ):
            self.remaining -= 1
            self.dropped.append(packet.l4.seq)
            return Verdict.DROP
        return Verdict.ACCEPT
        yield  # pragma: no cover


class TestRetransmission:
    def test_lost_data_segment_recovered(self, sim, host):
        client, server = connect_pair(sim, host, host)
        dropper = _Dropper(1)
        host.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(range(256)) * 32  # 8 KB

        def cli():
            yield from client.send(payload)

        def srv():
            return (yield from server.recv_exactly(len(payload)))

        sim.process(cli())
        proc = sim.process(srv())
        got = sim.run_until_complete(proc, timeout=30)
        assert got == payload
        assert dropper.dropped  # something really was lost
        assert client.retransmissions >= 1

    def test_burst_loss_recovered_in_one_rto(self, sim, host):
        """Go-back-N: a burst of consecutive losses costs ~one RTO, not
        one RTO per segment."""
        client, server = connect_pair(sim, host, host)
        dropper = _Dropper(5)
        host.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(100_000)

        def cli():
            yield from client.send(payload)

        def srv():
            return (yield from server.recv_exactly(len(payload)))

        t0 = sim.now
        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=30)
        elapsed = sim.now - t0
        assert elapsed < 2.5 * DEFAULT_COSTS.tcp_rto

    def test_no_loss_no_retransmissions(self, sim, host):
        client, server = connect_pair(sim, host, host)
        payload = bytes(50_000)

        def cli():
            yield from client.send(payload)

        def srv():
            return (yield from server.recv_exactly(len(payload)))

        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=30)
        assert client.retransmissions == 0

    def test_lost_fin_recovered(self, sim, host):
        client, server = connect_pair(sim, host, host)
        dropper = _Dropper(1, match=lambda pkt: bool(pkt.l4.flags & 0x01))  # FIN
        host.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)

        def cli():
            yield from client.send(b"tail")
            yield from client.close()

        def srv():
            data = yield from server.recv(10)
            eof = yield from server.recv(10)
            return data, eof

        sim.process(cli())
        proc = sim.process(srv())
        data, eof = sim.run_until_complete(proc, timeout=30)
        assert (data, eof) == (b"tail", b"")
        assert dropper.dropped

    def test_lost_syn_retried(self, sim, host):
        listener = host.stack.tcp_listen(5601)
        dropper = _Dropper(1, match=lambda pkt: bool(pkt.l4.flags & 0x02))  # SYN
        host.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        out = {}

        def srv():
            out["conn"] = yield from listener.accept()

        def cli():
            out["client"] = yield from host.stack.tcp_connect((host.stack.ip, 5601))

        sim.process(srv())
        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=30)
        assert out["client"].state == "ESTABLISHED"
        assert dropper.dropped

    def test_duplicate_segments_ignored(self, sim, host):
        """Retransmitted duplicates (receiver already has the bytes) must
        not corrupt the stream."""
        client, server = connect_pair(sim, host, host)
        # drop an ACK so the client retransmits data the server has
        dropper = _Dropper(
            2, match=lambda pkt: len(pkt.payload) == 0 and pkt.l4.flags == 0x10
        )
        host.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(range(256)) * 64

        def cli():
            yield from client.send(payload)

        def srv():
            return (yield from server.recv_exactly(len(payload)))

        sim.process(cli())
        proc = sim.process(srv())
        assert sim.run_until_complete(proc, timeout=30) == payload
        assert server.bytes_received == len(payload)
