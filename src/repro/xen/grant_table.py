"""Grant tables.

Each domain owns a :class:`GrantTable`; entries authorize exactly one
remote domain to map (share) or receive (transfer) a page.  The
semantics enforced here are the ones XenLoop's channel-bootstrap and
teardown protocols depend on:

* only the domain named in the entry may map it;
* an entry cannot be revoked while mapped (``gnttab_end_foreign_access``
  fails, as in Xen);
* transfers change page ownership and invalidate the entry.

CPU costs for grant operations are charged by the *callers* (netfront,
netback, the XenLoop module) using the :class:`~repro.calibration.CostModel`
constants, because which side pays which cost is exactly the accounting
the paper's "comparing options for data transfer" discussion
(Sect. 3.3) is about.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.xen.page import Page

__all__ = ["GrantError", "GrantRef", "GrantTable"]

GrantRef = int


class GrantError(Exception):
    """Invalid grant-table operation."""


class _GrantEntry:
    __slots__ = ("gref", "page", "granted_to", "mapped_by", "transferable", "used")

    def __init__(self, gref: GrantRef, page: Page, granted_to: int, transferable: bool):
        self.gref = gref
        self.page = page
        self.granted_to = granted_to
        self.mapped_by: set[int] = set()
        self.transferable = transferable
        self.used = False


class GrantTable:
    """Per-domain grant table."""

    def __init__(self, domid: int):
        self.domid = domid
        self._entries: dict[GrantRef, _GrantEntry] = {}
        self._next_ref = itertools.count(1)
        self.grants_issued = 0
        self.maps = 0
        self.transfers = 0
        #: fault-tap wiring, set by the hypervisor when the table belongs
        #: to a registered domain (None for standalone tables in tests).
        self.sim = None
        self.name_of = None

    def snapshot_state(self) -> dict:
        """Live grant entries (ref -> grantee/mapper summary) + counters."""
        return {
            "domid": self.domid,
            "entries": {
                str(gref): {
                    "granted_to": entry.granted_to,
                    "mapped_by": sorted(entry.mapped_by),
                    "transferable": entry.transferable,
                    "used": entry.used,
                }
                for gref, entry in self._entries.items()
            },
            "grants_issued": self.grants_issued,
            "maps": self.maps,
            "transfers": self.transfers,
        }

    # -- granting side --------------------------------------------------
    def grant_foreign_access(self, remote_domid: int, page: Page) -> GrantRef:
        """Allow ``remote_domid`` to map ``page``.  No hypercall needed at
        the granting side (the table is mapped into its address space)."""
        if remote_domid == self.domid:
            raise GrantError("cannot grant a page to oneself")
        gref = next(self._next_ref)
        self._entries[gref] = _GrantEntry(gref, page, remote_domid, transferable=False)
        self.grants_issued += 1
        return gref

    def grant_foreign_transfer(self, remote_domid: int, page: Page) -> GrantRef:
        """Offer ``page`` for ownership transfer to ``remote_domid``."""
        if remote_domid == self.domid:
            raise GrantError("cannot transfer a page to oneself")
        if page.owner != self.domid:
            raise GrantError(f"dom{self.domid} does not own {page!r}")
        gref = next(self._next_ref)
        self._entries[gref] = _GrantEntry(gref, page, remote_domid, transferable=True)
        self.grants_issued += 1
        return gref

    def end_foreign_access(self, gref: GrantRef) -> None:
        """Revoke an access grant.  Fails while the peer has it mapped."""
        entry = self._entries.get(gref)
        if entry is None:
            raise GrantError(f"no grant entry {gref} in dom{self.domid}")
        if entry.mapped_by:
            raise GrantError(f"grant {gref} still mapped by {sorted(entry.mapped_by)}")
        del self._entries[gref]

    # -- mapping side (hypercalls; cost charged by caller) -----------------
    def map_grant(self, gref: GrantRef, mapper_domid: int) -> Page:
        """Map an access grant; only the named domain may (hypercall)."""
        if self.sim is not None:
            plan = self.sim.fault_plan
            if plan is not None and plan.has_map_rules:
                name = self.name_of(mapper_domid) if self.name_of else None
                if plan.map_fails(name):
                    raise GrantError(
                        f"injected map failure: gref {gref} in dom{self.domid} "
                        f"for dom{mapper_domid}"
                    )
        entry = self._entries.get(gref)
        if entry is None:
            raise GrantError(f"no grant entry {gref} in dom{self.domid}")
        if entry.transferable:
            raise GrantError(f"grant {gref} is a transfer grant, not mappable")
        if entry.granted_to != mapper_domid:
            raise GrantError(
                f"grant {gref} is for dom{entry.granted_to}, not dom{mapper_domid}"
            )
        entry.mapped_by.add(mapper_domid)
        self.maps += 1
        return entry.page

    def unmap_grant(self, gref: GrantRef, mapper_domid: int) -> None:
        """Release a mapping previously obtained with map_grant."""
        entry = self._entries.get(gref)
        if entry is None:
            raise GrantError(f"no grant entry {gref} in dom{self.domid}")
        if mapper_domid not in entry.mapped_by:
            raise GrantError(f"grant {gref} not mapped by dom{mapper_domid}")
        entry.mapped_by.discard(mapper_domid)

    def transfer(self, gref: GrantRef, new_owner_domid: int) -> Page:
        """Complete a page transfer: ownership moves to ``new_owner_domid``."""
        entry = self._entries.get(gref)
        if entry is None:
            raise GrantError(f"no grant entry {gref} in dom{self.domid}")
        if not entry.transferable:
            raise GrantError(f"grant {gref} is an access grant, not transferable")
        if entry.granted_to != new_owner_domid:
            raise GrantError(
                f"transfer grant {gref} is for dom{entry.granted_to}, not dom{new_owner_domid}"
            )
        if entry.used:
            raise GrantError(f"transfer grant {gref} already used")
        entry.used = True
        entry.page.owner = new_owner_domid
        self.transfers += 1
        del self._entries[gref]
        return entry.page

    # -- introspection -----------------------------------------------------
    def lookup(self, gref: GrantRef) -> Optional[Page]:
        """The page behind ``gref``, or None."""
        entry = self._entries.get(gref)
        return entry.page if entry is not None else None

    @property
    def active_entries(self) -> int:
        """Number of live grant entries."""
        return len(self._entries)

    def revoke_all_for(self, remote_domid: int, force: bool = False) -> int:
        """Revoke every entry granted to ``remote_domid``; used on channel
        teardown.  With ``force`` the revocation succeeds even while
        mapped (domain destruction path)."""
        stale = [g for g, e in self._entries.items() if e.granted_to == remote_domid]
        for gref in stale:
            if self._entries[gref].mapped_by and not force:
                raise GrantError(f"grant {gref} still mapped; unmap before revoking")
            del self._entries[gref]
        return len(stale)
