"""Control-plane lifecycle FSM: every state x event move is pinned.

The expected table below is written out independently of
``repro.core.control.TRANSITIONS`` so a table edit that changes
semantics fails here rather than silently redefining the protocol.
"""

import itertools

import pytest

from repro.core.channel import ChannelState
from repro.core.control import TRANSITIONS, ChannelEvent, ChannelFSM
from tests.core.conftest import first_channel

S = ChannelState
E = ChannelEvent

#: every teardown cause closes a channel from every state (idempotently
#: so for CLOSED/FAILED); spelled out here, not imported from the code.
TEARDOWN_CAUSES = (E.LOCAL_TEARDOWN, E.PEER_LOST, E.IDLE_EXPIRED, E.PRE_MIGRATE, E.SHUTDOWN)

#: (state, event) -> expected new state; pairs absent here must be
#: IGNORED by the FSM (feed returns None, state unchanged).
EXPECTED = {
    (S.INIT, E.BOOTSTRAP_START): S.BOOTSTRAPPING,
    (S.INIT, E.CREATE_CHANNEL): S.BOOTSTRAPPING,
    (S.INIT, E.CONNECT_REQ): S.INIT,
    (S.INIT, E.ANNOUNCE_SEEN): S.INIT,
    (S.BOOTSTRAPPING, E.CREATE_ACK): S.CONNECTED,
    (S.BOOTSTRAPPING, E.HANDSHAKE_DONE): S.CONNECTED,
    (S.BOOTSTRAPPING, E.CREATE_CHANNEL): S.BOOTSTRAPPING,
    (S.BOOTSTRAPPING, E.MAP_FAILED): S.FAILED,
    (S.BOOTSTRAPPING, E.ACK_TIMEOUT): S.FAILED,
    (S.BOOTSTRAPPING, E.ANNOUNCE_SEEN): S.BOOTSTRAPPING,
    (S.CONNECTED, E.PEER_FIN): S.CLOSED,
    (S.CONNECTED, E.ANNOUNCE_SEEN): S.CONNECTED,
}
for _state in S:
    for _cause in TEARDOWN_CAUSES:
        EXPECTED[(_state, _cause)] = S.CLOSED

ALL_PAIRS = list(itertools.product(S, E))


class TestTransitionTable:
    @pytest.mark.parametrize(
        "state,event", ALL_PAIRS, ids=[f"{s.value}-{e.value}" for s, e in ALL_PAIRS]
    )
    def test_every_state_event_pair(self, state, event):
        fsm = ChannelFSM(initial=state)
        moved = fsm.feed(event)
        want = EXPECTED.get((state, event))
        if want is None:
            assert moved is None, f"{event} must be ignored in {state}"
            assert fsm.state is state
        else:
            assert moved is want
            assert fsm.state is want

    def test_table_covers_exactly_the_expected_pairs(self):
        assert set(TRANSITIONS) == set(EXPECTED)

    def test_out_of_order_create_ack_after_teardown(self):
        """A late CHANNEL_ACK (listener retry crossing our teardown on
        the wire) must not resurrect a closed channel."""
        fsm = ChannelFSM(initial=S.CONNECTED)
        assert fsm.feed(E.LOCAL_TEARDOWN) is S.CLOSED
        assert fsm.feed(E.CREATE_ACK) is None
        assert fsm.state is S.CLOSED

    def test_pre_migrate_during_bootstrap(self):
        """The Sect. 3.4 pre-migration callback abandons an in-flight
        handshake cleanly."""
        fsm = ChannelFSM(initial=S.INIT)
        assert fsm.feed(E.BOOTSTRAP_START) is S.BOOTSTRAPPING
        assert fsm.feed(E.PRE_MIGRATE) is S.CLOSED
        assert fsm.feed(E.CREATE_ACK) is None  # handshake frames now stale

    def test_failed_channel_only_moves_on_teardown(self):
        for event in E:
            fsm = ChannelFSM(initial=S.FAILED)
            if event in TEARDOWN_CAUSES:
                assert fsm.feed(event) is S.CLOSED
            else:
                assert fsm.feed(event) is None

    def test_history_records_moves_not_ignores(self):
        fsm = ChannelFSM()
        fsm.feed(E.BOOTSTRAP_START)
        fsm.feed(E.CREATE_ACK)  # ignored? no: BOOTSTRAPPING x CREATE_ACK moves
        fsm.feed(E.CREATE_ACK)  # now CONNECTED: ignored
        assert [(e, old.value, new.value) for e, old, new in ((h[0], h[1], h[2]) for h in fsm.history)] == [
            (E.BOOTSTRAP_START, "init", "bootstrapping"),
            (E.CREATE_ACK, "bootstrapping", "connected"),
        ]


class TestControllerIntegration:
    def test_late_ack_does_not_reopen_torn_down_channel(self, xl):
        """Drive a real connected channel through teardown, then replay
        the ack: the channel must stay CLOSED."""
        scn = xl
        ch = first_channel(scn, scn.node_a)
        listener_ch = ch if ch.is_listener else first_channel(scn, scn.node_b)
        proc = scn.sim.process(listener_ch.teardown(), name="test-teardown")
        scn.sim.run_until_complete(proc, timeout=5.0)
        assert listener_ch.state is S.CLOSED
        listener_ch.on_channel_ack()  # out-of-order ack after teardown
        assert listener_ch.state is S.CLOSED

    def test_teardown_is_idempotent(self, xl):
        scn = xl
        ch = first_channel(scn, scn.node_a)
        for _ in range(2):
            proc = scn.sim.process(ch.teardown(), name="test-teardown")
            scn.sim.run_until_complete(proc, timeout=5.0)
            assert ch.state is S.CLOSED

    def test_connected_channel_history_tells_the_story(self, xl):
        ch = first_channel(xl, xl.node_a)
        assert ch.state is S.CONNECTED
        events = [e for e, _old, _new in ch.ctrl.fsm.history]
        assert events[0] in (E.BOOTSTRAP_START, E.CREATE_CHANNEL)
        assert events[-1] in (E.CREATE_ACK, E.HANDSHAKE_DONE)
