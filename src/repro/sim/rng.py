"""Seeded randomness helpers.

All stochastic behaviour in the simulation draws from a generator
obtained here so that every scenario run is reproducible from a single
seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "make_shard_seeds", "rng_state", "set_rng_state"]

DEFAULT_SEED = 0x5EED


def rng_state(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state as plain Python values.

    The returned dict is JSON-serializable (PCG64 state words are plain
    ints) and round-trips through :func:`set_rng_state` bit-identically:
    restoring mid-stream reproduces exactly the draws a never-interrupted
    generator would have produced.  Used by the snapshot subsystem
    (:mod:`repro.sim.snapshot`) to capture every RNG stream.
    """

    def _plain(value):
        if isinstance(value, dict):
            return {k: _plain(v) for k, v in value.items()}
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        return value

    return _plain(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`rng_state` into ``rng``."""
    rng.bit_generator.state = state


def make_rng(seed=None) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``None`` maps to the project-wide default seed (not OS entropy) --
    simulations must be reproducible by default.  ``seed`` may also be a
    :class:`numpy.random.SeedSequence` (the per-shard streams handed out
    by :func:`make_shard_seeds`).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def make_shard_seeds(seed: int | None, n_shards: int) -> list:
    """Derive one independent seed per simulation shard.

    A sharded run (:mod:`repro.sim.pdes`) gives every shard its own RNG
    stream.  Two properties matter:

    * ``n_shards == 1`` returns ``[seed]`` unchanged, so the one-shard
      path seeds its simulator exactly like an unsharded run and stays
      bit-identical to the pinned goldens.
    * ``n_shards > 1`` spawns children from a single
      :class:`numpy.random.SeedSequence` rooted at ``seed``.  Spawned
      sequences are collision-free by construction (each child extends
      the parent's entropy with a unique spawn key), so no two shards --
      for any shard count -- ever draw the same stream.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, not {n_shards}")
    base = DEFAULT_SEED if seed is None else seed
    if n_shards == 1:
        return [base]
    return list(np.random.SeedSequence(base).spawn(n_shards))
