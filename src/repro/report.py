"""Table and series formatting for benchmark output.

Renders results in the same row/column layout as the paper's Tables 1-3
and prints figure series as aligned columns, so a bench run can be
compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "format_engine_stats",
    "format_fault_matrix",
    "format_series",
    "format_table",
    "ratio",
    "scenario_catalog",
]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[tuple[str, Mapping[str, float]]],
    unit_by_row: Optional[Mapping[str, str]] = None,
    precision: int = 1,
) -> str:
    """Render rows of {column: value} as an aligned ASCII table."""
    unit_by_row = unit_by_row or {}
    header = ["metric"] + list(columns)
    body: list[list[str]] = []
    for label, values in rows:
        unit = unit_by_row.get(label, "")
        shown = f"{label} ({unit})" if unit else label
        row = [shown]
        for col in columns:
            value = values.get(col)
            row.append("-" if value is None else f"{value:,.{precision}f}")
        body.append(row)
    widths = [max(len(r[i]) for r in [header] + body) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    precision: int = 1,
) -> str:
    """Render one figure: x column plus one column per scenario."""
    names = list(series)
    header = [x_label] + names
    body = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in names:
            ys = series[name]
            row.append(f"{ys[i]:,.{precision}f}" if i < len(ys) else "-")
        body.append(row)
    widths = [max(len(r[i]) for r in [header] + body) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(header)))
    for row in body:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_engine_stats(stats: Mapping[str, float]) -> str:
    """One-line render of :func:`repro.trace.engine_stats` output.

    Used by the throughput bench (and handy after any run) to report
    engine-level throughput alongside the simulated results.
    """
    parts = [f"events={int(stats['events']):,}"]
    if "sim_time" in stats:
        parts.append(f"sim_time={stats['sim_time']:.6f}s")
    if "wall_s" in stats:
        parts.append(f"wall={stats['wall_s']:.3f}s")
    if "events_per_sec" in stats:
        parts.append(f"rate={stats['events_per_sec']:,.0f} events/s")
    lines = ["engine: " + "  ".join(parts)]
    ser = stats.get("serialization")
    if ser is not None:
        hits = ser["l3_cache_hits"]
        misses = ser["l3_cache_misses"]
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        lines.append(
            "serialization: "
            f"l3_cache={hits:,}/{total:,} hits ({rate:.1f}%)  "
            f"hdr_cache={ser['header_cache_hits']:,}/"
            f"{ser['header_cache_hits'] + ser['header_cache_misses']:,}  "
            f"lazy_l4={ser['lazy_l4_parses']:,}  "
            f"packed={ser['bytes_packed']:,}B  parsed={ser['bytes_parsed']:,}B  "
            f"fifo_in={ser['fifo_bytes_in']:,}B  fifo_out={ser['fifo_bytes_out']:,}B  "
            f"pool={ser['pool_hits']:,}/{ser['pool_hits'] + ser['pool_misses']:,}"
        )
    ntf = stats.get("notify")
    if ntf is not None:
        fifo_total = ntf["fifo_notifies"] + ntf["fifo_suppressed"]
        ring_total = ntf["ring_notifies"] + ntf["ring_suppressed"]
        fifo_rate = 100.0 * ntf["fifo_suppressed"] / fifo_total if fifo_total else 0.0
        ring_rate = 100.0 * ntf["ring_suppressed"] / ring_total if ring_total else 0.0
        batches = ntf["drain_batches"]
        per_batch = ntf["drain_entries"] / batches if batches else 0.0
        lines.append(
            "notify: "
            f"fifo={ntf['fifo_notifies']:,}/{fifo_total:,} sent "
            f"({fifo_rate:.1f}% suppressed)  "
            f"ring={ntf['ring_notifies']:,}/{ring_total:,} sent "
            f"({ring_rate:.1f}% suppressed)  "
            f"drain={ntf['drain_entries']:,} entries/"
            f"{batches:,} batches ({per_batch:.1f}/batch)"
        )
    tcp = stats.get("tcp")
    if tcp is not None:
        lines.append(
            "tcp: "
            f"conns={tcp['conns']:,}  retx={tcp['retransmissions']:,} "
            f"(fast={tcp['fast_retransmits']:,}, rto={tcp['rto_retransmits']:,})  "
            f"dup_acks={tcp['dup_acks']:,}  dup_segs={tcp['dup_segments']:,}  "
            f"rst={tcp['rsts_sent']:,}  backlog_drops={tcp['backlog_drops']:,}"
        )
    warm = stats.get("warm_start")
    if warm is not None:
        if warm.get("supported", True):
            lines.append(
                "warm-start: "
                f"cold={warm['cold_wall_s']:.3f}s  warm={warm['warm_wall_s']:.3f}s  "
                f"capture={warm['capture_wall_s']:.3f}s  "
                f"speedup={warm['speedup']}x (fork per rep, results identical)"
            )
        else:
            lines.append(f"warm-start: unsupported ({warm.get('reason', '?')})")
    channels = stats.get("channels")
    if channels:
        for ch in channels:
            lines.append(
                f"  channel {ch['guest']}->dom{ch['peer_domid']}: "
                f"sent={ch['pkts_sent']:,}  recv={ch['pkts_received']:,}  "
                f"notifies={ch['notifies']:,}  "
                f"suppressed={ch['notifies_suppressed']:,}  "
                f"batches={ch['drain_batches']:,}"
            )
    flt = stats.get("faults")
    if flt is not None:
        def _counts(d: Mapping[str, int]) -> str:
            return ",".join(f"{k}={v}" for k, v in d.items()) or "-"

        lines.append(
            "faults: "
            f"rules={flt['rules']}  "
            f"injected[{_counts(flt['injected'])}]  "
            f"recovered[{_counts(flt['recovered'])}]  "
            f"degraded[{_counts(flt['degraded'])}]"
        )
    srv = stats.get("serving")
    if srv is not None:
        lines.append(
            "serving: "
            f"offered={srv['offered']:,}  completed={srv['completed']:,}  "
            f"errors={srv['errors']:,}  "
            f"slo_violations={srv['slo_violations']:,}  "
            f"deadline_fires={srv['deadline_fires']:,}  "
            f"reconnects={srv['reconnects']:,}"
        )
    tmr = stats.get("timers")
    if tmr is not None:
        sched = tmr["scheduled"]
        cancel_rate = 100.0 * tmr["cancelled"] / sched if sched else 0.0
        lines.append(
            "timers: "
            f"scheduled={sched:,}  fired={tmr['fired']:,}  "
            f"cancelled={tmr['cancelled']:,} ({cancel_rate:.1f}%)  "
            f"cascades={tmr['cascades']:,}"
        )
    pdes = stats.get("pdes")
    if pdes:
        lines.append(
            "pdes: "
            f"shards={pdes.get('shards', '?')}  "
            f"nulls={pdes.get('null_sent', 0):,} sent/"
            f"{pdes.get('null_recv', 0):,} recv  "
            f"frames={pdes.get('frames_out', 0):,} out/"
            f"{pdes.get('frames_in', 0):,} in  "
            f"blocked={pdes.get('blocked_s', 0.0):.3f}s"
        )
    shards = stats.get("shards")
    if shards:
        for sh in shards:
            wall = sh.get("wall_s")
            rate = sh.get("events_per_sec")
            blocked = sh.get("blocked_s")
            parts = [f"events={sh['events']:,}"]
            if wall is not None:
                parts.append(f"wall={wall:.3f}s")
            if rate is not None:
                parts.append(f"rate={rate:,.0f}/s")
            if blocked is not None and wall:
                parts.append(f"blocked={blocked:.3f}s ({100.0 * blocked / wall:.0f}%)")
            machine = sh.get("machine") or "-"
            lines.append(f"  shard {sh['shard']} ({machine}): " + "  ".join(parts))
    return "\n".join(lines)


def format_fault_matrix(results: Sequence[Mapping[str, object]]) -> str:
    """Render a fault_matrix sweep as an aligned cell table.

    Each result mapping needs ``cell`` (the swept {frame type x phase x
    fault kind} point), ``ok``, and the plan's ``injected`` /
    ``recovered`` / ``degraded`` counter dicts; failures carry a
    ``detail`` string with the violated invariant.  A ``run`` column
    shows how each cell executed: ``fork`` (warm fork of the pair
    snapshot), ``2sh`` (two-shard PDES), ``1sh!`` (requested sharded but
    fell back to the single simulator -- footnoted), or ``cold``.
    """
    header = ["cell", "ok", "run", "injected", "recovered", "degraded", "detail"]

    def _counts(d: Mapping[str, int]) -> str:
        return ",".join(f"{k}={v}" for k, v in sorted(d.items())) or "-"

    def _run_mode(res: Mapping[str, object]) -> str:
        if res.get("sharded_fallback"):
            return "1sh!"
        if res.get("shards", 1) > 1:
            return f"{res['shards']}sh"
        if res.get("warm_fork"):
            return "fork"
        return "cold"

    body = []
    for res in results:
        body.append(
            [
                str(res["cell"]),
                "PASS" if res["ok"] else "FAIL",
                _run_mode(res),
                _counts(res.get("injected", {})),
                _counts(res.get("recovered", {})),
                _counts(res.get("degraded", {})),
                str(res.get("detail", "") or ""),
            ]
        )
    widths = [max(len(r[i]) for r in [header] + body) for i in range(len(header))]
    title = "Fault matrix (frame type x handshake phase x fault kind)"
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    npass = sum(1 for r in results if r["ok"])
    lines.append(f"{npass}/{len(results)} cells converged")
    fallbacks = [str(r["cell"]) for r in results if r.get("sharded_fallback")]
    if fallbacks:
        lines.append(
            "1sh! = sharded run requested but unsupported for this cell "
            f"(ran unsharded): {', '.join(fallbacks)}"
        )
    return "\n".join(lines)


def scenario_catalog() -> str:
    """Render the scenario registry as an aligned name/description list.

    Reads :data:`repro.scenarios.SCENARIO_SPECS`, so a newly registered
    builder shows up here (and in ``python -m repro list``) with no
    other change.
    """
    from repro.scenarios import SCENARIO_SPECS

    width = max(len(name) for name in SCENARIO_SPECS)
    return "\n".join(
        f"  {spec.name.ljust(width)}  {spec.description}"
        for spec in SCENARIO_SPECS.values()
    )


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b used for paper-vs-measured factor comparisons."""
    if b == 0:
        raise ValueError("ratio denominator is zero")
    return a / b
