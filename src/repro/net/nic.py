"""Physical NIC, wire, and store-and-forward Ethernet switch.

Models the testbed's 1 Gbps switched Ethernet: each link hop serializes
frames at line rate, the switch adds a small store-and-forward latency,
and the receiving NIC delays delivery by an interrupt-moderation
latency (the dominant term in the ~100 us inter-machine ping RTT of
Table 1).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.calibration import CostModel
from repro.net.addr import MacAddr
from repro.net.devices import NetDevice, encode_frame
from repro.net.packet import Packet
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store

__all__ = ["EthernetSwitch", "PhysNIC", "ShardLink"]

TXQ_CAPACITY = 1024


class PhysNIC(NetDevice):
    """A physical Ethernet adapter attached to a switch port."""

    def __init__(self, node, costs: CostModel, name: str, mac: MacAddr, mtu: int = 1500):
        super().__init__(name, mac, mtu=mtu, gso=False)
        self.node = node
        self.costs = costs
        self.switch: Optional["EthernetSwitch"] = None
        #: when set, every received frame is handed to this callable
        #: instead of the normal dst-MAC filter (bridge/promiscuous mode).
        self.promisc_handler: Optional[Callable[[Packet], None]] = None
        self._txq = Store(node.sim, capacity=TXQ_CAPACITY)
        node.spawn(self._tx_loop(), name=f"{name}-tx")

    def connect(self, switch: "EthernetSwitch") -> None:
        """Cable the NIC into a switch port."""
        self.switch = switch
        switch.attach(self)

    # -- NetDevice interface ------------------------------------------------
    def tx_cost(self, packet: Packet) -> float:
        """Driver transmit cost: descriptor work plus DMA time."""
        return self.costs.nic_tx + self.costs.dma_cost(packet.wire_len)

    def rx_cost(self, packet: Packet) -> float:
        """Driver receive cost: descriptor work plus DMA time."""
        return self.costs.nic_rx + self.costs.dma_cost(packet.wire_len)

    def queue_xmit(self, packet: Packet) -> Event:
        """Queue the frame on the transmit ring (bounded; backpressure)."""
        self.count_tx(packet)
        return self._txq.put(packet)

    # -- medium ---------------------------------------------------------------
    def _tx_loop(self):
        sim = self.node.sim
        while True:
            packet = yield self._txq.get()
            from repro import trace

            trace.mark(packet, "nic-wire-tx", sim.now)
            # Serialization onto the wire at line rate.
            yield sim.timeout(self.costs.wire_time(packet.wire_len))
            if self.switch is not None:
                self.switch.ingress(self, packet)
            else:
                self.dropped += 1

    def receive(self, packet: Packet) -> None:
        """Frame arrives from the wire; delivered after interrupt latency."""
        timer = self.node.sim.timeout(self.costs.nic_rx_latency)
        timer.callbacks.append(lambda _ev: self._deliver(packet))

    def _deliver(self, packet: Packet) -> None:
        from repro import trace

        trace.mark(packet, "nic-rx", self.node.sim.now)
        if self.promisc_handler is not None:
            self.rx_packets += 1
            self.rx_bytes += packet.wire_len
            self.promisc_handler(packet)
            return
        eth = packet.eth
        if eth is None:
            self.dropped += 1
            return
        if eth.dst == self.mac or eth.dst.is_broadcast or eth.dst.is_multicast:
            self.deliver_up(packet)
        else:
            self.dropped += 1


class _SwitchPort:
    def __init__(self, switch: "EthernetSwitch", nic: PhysNIC):
        self.switch = switch
        self.nic = nic
        self.egress = Store(switch.sim, capacity=TXQ_CAPACITY)
        switch.sim.process(self._egress_loop(), name=f"switch-port-{nic.name}")

    def _egress_loop(self):
        sim = self.switch.sim
        costs = self.switch.costs
        while True:
            packet = yield self.egress.get()
            # Store-and-forward: switch latency + output serialization.
            yield sim.timeout(costs.switch_latency + costs.wire_time(packet.wire_len))
            self.nic.receive(packet)


class EthernetSwitch:
    """Learning switch connecting PhysNICs."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str = "switch"):
        self.sim = sim
        self.costs = costs
        self.name = name
        self._ports: dict[PhysNIC, _SwitchPort] = {}
        self._fdb: dict[MacAddr, _SwitchPort] = {}
        self.frames_forwarded = 0
        self.frames_flooded = 0

    def attach(self, nic: PhysNIC) -> None:
        """Create a switch port for ``nic``."""
        if nic in self._ports:
            raise ValueError(f"{nic.name} already attached")
        self._ports[nic] = _SwitchPort(self, nic)

    def forget(self, mac: MacAddr) -> None:
        """Drop a forwarding-table entry (e.g. after VM migration)."""
        self._fdb.pop(mac, None)

    def ingress(self, from_nic: PhysNIC, packet: Packet) -> None:
        """A frame arrives from a NIC: learn the source, forward or flood."""
        in_port = self._ports[from_nic]
        eth = packet.eth
        if eth is None:
            return
        self._fdb[eth.src] = in_port
        out = self._fdb.get(eth.dst)
        if out is not None and not eth.dst.is_broadcast and not eth.dst.is_multicast:
            if out is not in_port:
                self.frames_forwarded += 1
                out.egress.put(packet)
            return
        self.frames_flooded += 1
        for port in self._ports.values():
            if port is not in_port:
                port.egress.put(packet)


class ShardLink(EthernetSwitch):
    """The shard-local face of the cluster switch in a sharded run.

    Each shard (one per physical machine, see :mod:`repro.sim.pdes`)
    builds its machines against a ShardLink instead of the shared
    :class:`EthernetSwitch`.  Local traffic behaves exactly like the
    plain switch; frames for a MAC learned on another shard are
    serialized and exported through the shard runtime with their full
    arrival timestamp (switch latency + output serialization + NIC
    interrupt latency) precomputed, and imported frames are delivered
    straight to the local NICs at that timestamp.

    Fidelity note: the one thing the sharded link does *not* model is
    egress-port queueing contention at the switch -- two frames bound
    for the same remote machine serialize back-to-back on the real
    switch's output port, but export independently here.  The bench and
    fault-matrix workloads keep inter-machine traffic sparse (discovery
    broadcasts + ARP), where the difference is nil.
    """

    def __init__(self, sim: Simulator, costs: CostModel, runtime, name: str = "shardlink"):
        super().__init__(sim, costs, name)
        #: the PDES shard runtime; needs ``send_frame(dest_shard_or_None,
        #: t_send, arrival, blob)``.
        self.runtime = runtime
        self._remote: dict[MacAddr, int] = {}
        self.frames_exported = 0
        self.frames_imported = 0

    def forget(self, mac: MacAddr) -> None:
        super().forget(mac)
        self._remote.pop(mac, None)

    def _export(self, packet: Packet, dest: Optional[int]) -> None:
        costs = self.costs
        now = self.sim.now
        arrival = (
            now
            + costs.switch_latency
            + costs.wire_time(packet.wire_len)
            + costs.nic_rx_latency
        )
        self.frames_exported += 1
        self.runtime.send_frame(dest, now, arrival, encode_frame(packet))

    def ingress(self, from_nic: PhysNIC, packet: Packet) -> None:
        """Learn the source locally, then forward, flood, or export."""
        in_port = self._ports[from_nic]
        eth = packet.eth
        if eth is None:
            return
        self._fdb[eth.src] = in_port
        # A MAC seen on a local port is no longer remote (migration-in).
        self._remote.pop(eth.src, None)
        dst = eth.dst
        if not dst.is_broadcast and not dst.is_multicast:
            out = self._fdb.get(dst)
            if out is not None:
                if out is not in_port:
                    self.frames_forwarded += 1
                    out.egress.put(packet)
                return
            shard = self._remote.get(dst)
            if shard is not None:
                self._export(packet, shard)
                return
            # Unknown unicast: flood locally AND export to every peer.
        self.frames_flooded += 1
        for port in self._ports.values():
            if port is not in_port:
                port.egress.put(packet)
        self._export(packet, None)

    def import_frame(self, src_shard: int, packet: Packet) -> None:
        """Deliver a frame imported from ``src_shard`` at the current
        simulation time (the export already baked in every latency term,
        so this maps to :meth:`PhysNIC._deliver`, not ``receive``)."""
        eth = packet.eth
        if eth is None:
            return
        self._remote[eth.src] = src_shard
        self._fdb.pop(eth.src, None)
        self.frames_imported += 1
        dst = eth.dst
        if not dst.is_broadcast and not dst.is_multicast:
            out = self._fdb.get(dst)
            if out is not None:
                out.nic._deliver(packet)
                return
        for port in self._ports.values():
            port.nic._deliver(packet)
