"""OSU MPI micro-benchmarks (paper Sect. 4.4, Figs. 8-10).

* ``osu_bw``: sender pushes a *window* of back-to-back messages, then
  waits for a small ack -- measuring sustainable one-way bandwidth.
* ``osu_bibw``: both ranks push windows simultaneously -- bidirectional
  bandwidth (this is where FIFO back-pressure shows at large sizes).
* ``osu_latency``: classic ping-pong, reporting one-way latency.

All run over :mod:`repro.mpi` like the MVAPICH/MPICH originals run over
their transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.mpi import mpi_connect_pair

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios import Scenario

__all__ = [
    "OsuPoint",
    "OsuResult",
    "DEFAULT_SIZES",
    "osu_bw",
    "osu_bibw",
    "osu_latency",
]

DEFAULT_SIZES = [1, 64, 512, 2048, 8192, 16384, 32768, 65536]
_ACK = b"A" * 4


@dataclass
class OsuPoint:
    """One sweep point: message size and metric value."""
    size: int
    value: float  # Mbit/s for bandwidth tests, us for latency


@dataclass
class OsuResult:
    """Full OSU sweep with its metric name."""
    metric: str
    points: list[OsuPoint] = field(default_factory=list)

    def series(self) -> tuple[list[int], list[float]]:
        """The sweep as (sizes, values)."""
        return [p.size for p in self.points], [p.value for p in self.points]


def _iters_for(size: int) -> tuple[int, int]:
    """(window, iterations) roughly like the OSU defaults, scaled down."""
    if size <= 8192:
        return 32, 8
    return 16, 4


def osu_bw(
    scenario: "Scenario",
    sizes: Optional[Iterable[int]] = None,
    port: int = 9200,
) -> OsuResult:
    """OSU uni-directional bandwidth (windowed back-to-back sends)."""
    sim = scenario.sim
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    result = OsuResult("mbps")
    rank0_connect, rank1_accept = mpi_connect_pair(scenario, port=port)

    def rank1():
        comm = yield from rank1_accept()
        for size in sizes:
            window, iters = _iters_for(size)
            for _ in range(iters):
                for _ in range(window):
                    yield from comm.recv()
                yield from comm.send(_ACK)
        yield from comm.close()

    def rank0():
        comm = yield from rank0_connect()
        for size in sizes:
            window, iters = _iters_for(size)
            msg = bytes(size)
            t0 = sim.now
            for _ in range(iters):
                for _ in range(window):
                    yield from comm.send(msg)
                yield from comm.recv()  # window ack
            elapsed = sim.now - t0
            total = size * window * iters
            result.points.append(OsuPoint(size, total * 8 / elapsed / 1e6))
        yield from comm.close()

    sim.process(rank1(), name="osu-bw-rank1")
    proc = sim.process(rank0(), name="osu-bw-rank0")
    sim.run_until_complete(proc, timeout=600)
    return result


def osu_bibw(
    scenario: "Scenario",
    sizes: Optional[Iterable[int]] = None,
    port: int = 9201,
) -> OsuResult:
    """OSU bi-directional bandwidth (both ranks stream simultaneously)."""
    sim = scenario.sim
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    result = OsuResult("mbps")
    rank0_connect, rank1_accept = mpi_connect_pair(scenario, port=port)

    # Each rank runs a sender and a receiver process over the same
    # connection; both directions stream simultaneously.
    def make_side(get_comm, record):
        state = {}

        def main():
            comm = yield from get_comm()
            state["comm"] = comm
            for size in sizes:
                window, iters = _iters_for(size)
                msg = bytes(size)
                recv_done = sim.process(receiver(comm, size), name="osu-bibw-rx")
                t0 = sim.now
                for _ in range(iters):
                    for _ in range(window):
                        yield from comm.send(msg)
                    yield from comm.send(b"")  # zero-length window marker
                yield recv_done
                elapsed = sim.now - t0
                if record is not None:
                    total = 2 * size * window * iters  # both directions
                    record(size, total * 8 / elapsed / 1e6)
            yield from comm.close()

        def receiver(comm, size):
            window, iters = _iters_for(size)
            for _ in range(iters):
                got = 0
                while got < window:
                    data = yield from comm.recv()
                    if not data:
                        continue  # zero-length window marker from the peer
                    got += 1
            return None

        return main

    def record(size, mbps):
        result.points.append(OsuPoint(size, mbps))

    rank0 = make_side(rank0_connect, record)
    rank1 = make_side(rank1_accept, None)
    sim.process(rank1(), name="osu-bibw-rank1")
    proc = sim.process(rank0(), name="osu-bibw-rank0")
    sim.run_until_complete(proc, timeout=600)
    return result


def osu_latency(
    scenario: "Scenario",
    sizes: Optional[Iterable[int]] = None,
    port: int = 9202,
) -> OsuResult:
    """OSU latency: ping-pong, one-way microseconds per size."""
    sim = scenario.sim
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    result = OsuResult("latency_us")
    rank0_connect, rank1_accept = mpi_connect_pair(scenario, port=port)

    def rank1():
        comm = yield from rank1_accept()
        for size in sizes:
            _window, iters = _iters_for(size)
            reps = iters * 8
            for _ in range(reps):
                data = yield from comm.recv()
                yield from comm.send(data)
        yield from comm.close()

    def rank0():
        comm = yield from rank0_connect()
        for size in sizes:
            _window, iters = _iters_for(size)
            reps = iters * 8
            msg = bytes(size)
            t0 = sim.now
            for _ in range(reps):
                yield from comm.send(msg)
                yield from comm.recv()
            rtt = (sim.now - t0) / reps
            result.points.append(OsuPoint(size, rtt / 2 * 1e6))
        yield from comm.close()

    sim.process(rank1(), name="osu-lat-rank1")
    proc = sim.process(rank0(), name="osu-lat-rank0")
    sim.run_until_complete(proc, timeout=600)
    return result
