"""XenLoop control-message wire formats.

These messages travel as raw Ethernet frames with the XenLoop-type
protocol ID (:data:`repro.net.ethernet.ETH_P_XENLOOP`) over the
*standard* netfront/netback path -- out-of-band with respect to the
shared-memory channel they negotiate (paper Sect. 3.2-3.3):

* ``ANNOUNCE``   -- Dom0 discovery -> each willing guest: the collated
  list of [guest-ID, MAC] identity pairs of all advertising guests.
* ``CONNECT_REQUEST`` -- larger-ID guest -> smaller-ID guest: "you are
  the listener; please create a channel" (sent when the connector side
  sees first traffic).
* ``CREATE_CHANNEL`` -- listener -> connector: grant references of the
  two FIFO descriptor pages plus the unbound event-channel port.
* ``CHANNEL_ACK``  -- connector -> listener: channel is mapped and bound.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addr import MacAddr

__all__ = [
    "Announce",
    "ChannelAck",
    "ConnectRequest",
    "CreateChannel",
    "parse_message",
]

MSG_ANNOUNCE = 1
MSG_CONNECT_REQUEST = 2
MSG_CREATE_CHANNEL = 3
MSG_CHANNEL_ACK = 4

_HDR = struct.Struct("!HI")  # msg type, sender domid


@dataclass
class Announce:
    """[guest-ID, MAC] identity pairs of all willing co-resident guests."""

    sender_domid: int
    entries: list[tuple[int, MacAddr]]

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        out = [_HDR.pack(MSG_ANNOUNCE, self.sender_domid), struct.pack("!H", len(self.entries))]
        for domid, mac in self.entries:
            out.append(struct.pack("!I6s", domid, mac.to_bytes()))
        return b"".join(out)

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "Announce":
        (count,) = struct.unpack_from("!H", body)
        entries = []
        offset = 2
        for _ in range(count):
            domid, mac = struct.unpack_from("!I6s", body, offset)
            entries.append((domid, MacAddr.from_bytes(mac)))
            offset += 10
        return cls(sender, entries)


@dataclass
class ConnectRequest:
    """Larger-ID guest asking the smaller-ID peer to act as listener."""
    sender_domid: int
    sender_mac: MacAddr

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_CONNECT_REQUEST, self.sender_domid) + struct.pack(
            "!6s", self.sender_mac.to_bytes()
        )

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "ConnectRequest":
        (mac,) = struct.unpack_from("!6s", body)
        return cls(sender, MacAddr.from_bytes(mac))


@dataclass
class CreateChannel:
    """Three pieces of information, per the paper: two grant references
    (one per FIFO descriptor page) and the event-channel port number."""

    sender_domid: int
    #: gref of the descriptor page of the listener->connector FIFO.
    gref_out: int
    #: gref of the descriptor page of the connector->listener FIFO.
    gref_in: int
    evtchn_port: int

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_CREATE_CHANNEL, self.sender_domid) + struct.pack(
            "!III", self.gref_out, self.gref_in, self.evtchn_port
        )

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "CreateChannel":
        gref_out, gref_in, port = struct.unpack_from("!III", body)
        return cls(sender, gref_out, gref_in, port)


@dataclass
class ChannelAck:
    """Connector's confirmation that the channel is mapped and bound."""
    sender_domid: int

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_CHANNEL_ACK, self.sender_domid)

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "ChannelAck":
        return cls(sender)


_PARSERS = {
    MSG_ANNOUNCE: Announce._parse,
    MSG_CONNECT_REQUEST: ConnectRequest._parse,
    MSG_CREATE_CHANNEL: CreateChannel._parse,
    MSG_CHANNEL_ACK: ChannelAck._parse,
}


def parse_message(payload: bytes):
    """Parse an ETH_P_XENLOOP frame payload into a message object."""
    if len(payload) < _HDR.size:
        raise ValueError(f"short XenLoop message: {len(payload)} bytes")
    msg_type, sender = _HDR.unpack_from(payload)
    parser = _PARSERS.get(msg_type)
    if parser is None:
        raise ValueError(f"unknown XenLoop message type {msg_type}")
    return parser(sender, payload[_HDR.size :])
