"""Core discrete-event simulation engine.

The engine is deliberately small and dependency-free.  It provides:

* :class:`Simulator` -- the event calendar and main loop.
* :class:`Event` -- a one-shot occurrence that processes can wait on.
* :class:`Timeout` -- an event that fires after a simulated delay.
* :class:`Process` -- a generator-based coroutine driven by the engine.
* :class:`AnyOf` / :class:`AllOf` -- composite wait conditions.
* :class:`Interrupt` -- exception injected into a process by
  :meth:`Process.interrupt`.

Time is a float in **seconds**.  Events scheduled for the same instant
fire in FIFO order of scheduling (a monotonically increasing sequence
number breaks ties), which makes simulations fully deterministic.

Fast-path design
----------------
Profiling the paper workloads shows >90 % of wall-clock time inside the
engine and its per-event allocations, so the hot paths are organised
around three ideas:

* **Immediate run queue.**  Zero-delay scheduling (``succeed()``,
  process init, bounces, interrupts -- the overwhelming majority of
  events) appends to a plain deque instead of the heap.  Because
  simulated time never decreases, the deque is always sorted by
  ``(time, seq)``; :meth:`Simulator.step` merges the deque head with the
  heap head, so the global firing order is *identical* to a single heap
  keyed on ``(time, seq)`` -- same-time FIFO semantics are preserved
  exactly, at O(1) instead of O(log n) per event.
* **Allocation-free resume.**  Process resumption dispatches through
  bound methods and tiny ``__slots__`` records (:class:`_Resume`,
  :class:`_InterruptResume`) rather than per-resume lambda closures and
  full :class:`Event` bounce objects.
* **No f-strings on hot constructors.**  Event/timeout names are static
  strings; pretty names are built lazily in ``__repr__`` only.

Anything placed on the calendar only needs a ``_process()`` method; the
heap/deque entries are ``(time, seq, obj)`` tuples and ``obj`` is never
compared (seq is unique).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

_INF = float("inf")


class SimulationError(Exception):
    """Raised for engine misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
PENDING = 0
TRIGGERED = 1  # scheduled on the calendar, callbacks not yet run
PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence.

    Processes wait on an event by yielding it.  Code triggers it with
    :meth:`succeed` or :meth:`fail`.  Once processed an event holds its
    ``value`` (or the exception) forever; waiting on an already-processed
    event resumes the waiter immediately.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = PENDING
        self._value: Any = None
        self._ok = True
        self.name = name

    # -- inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or stored exception); raises while pending."""
        if self._state == PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ---------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        if delay == 0.0:
            # Immediate run queue: O(1), bypasses the heap entirely.
            sim = self.sim
            sim._seq += 1
            sim._ready.append((sim.now, sim._seq, self))
        else:
            self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with an exception after ``delay``."""
        if self._state != PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._state = TRIGGERED
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    # -- engine internals ----------------------------------------------
    def _process(self) -> None:
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<Event {self.name or hex(id(self))} {state[self._state]}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        sim._schedule(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout({self.delay}) {hex(id(self))}>"


class _Resume:
    """Calendar entry that resumes a process with a fixed value.

    Replaces the bounce/init Event-plus-lambda pattern: one small
    ``__slots__`` record instead of an Event, a callbacks list, and a
    closure.  Scheduling order (and thus determinism) is unchanged --
    the record consumes one sequence number exactly like the Event it
    replaces.
    """

    __slots__ = ("process", "value", "ok")

    def __init__(self, process: "Process", value: Any, ok: bool):
        self.process = process
        self.value = value
        self.ok = ok

    def _process(self) -> None:
        proc = self.process
        proc._waiting_on = None
        proc._step(self.value, self.ok)


class _InterruptResume:
    """Calendar entry that throws :class:`Interrupt` into a process."""

    __slots__ = ("process", "cause")

    def __init__(self, process: "Process", cause: Any):
        self.process = process
        self.cause = cause

    def _process(self) -> None:
        proc = self.process
        if proc._state != PENDING:
            return  # process finished before the interrupt fired
        proc._detach()
        proc._step(Interrupt(self.cause), False)


class _Condition(Event):
    """Base for AnyOf/AllOf.  Fires when ``_check`` says it is satisfied."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        # Register after validation so a raise leaves no dangling callbacks.
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_event(ev)
            else:
                ev.callbacks.append(self._on_event)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev.ok}

    def _on_event(self, ev: Event) -> None:
        if self._state != PENDING:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine driven by the simulator.

    A process wraps a generator that yields :class:`Event` objects.  The
    process itself is an event that fires (with the generator's return
    value) when the generator finishes, so processes can wait on each
    other simply by yielding them.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process via an immediately-scheduled resume record.
        sim._seq += 1
        sim._ready.append((sim.now, sim._seq, _Resume(self, None, True)))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is handled gracefully (the interrupt
        wins; the original event's value is discarded for this wakeup).
        """
        if self._state != PENDING:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        sim = self.sim
        sim._seq += 1
        sim._ready.append((sim.now, sim._seq, _InterruptResume(self, cause)))

    # -- engine internals ----------------------------------------------
    def _detach(self) -> None:
        target = self._waiting_on
        if target is not None and target._state != PROCESSED:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event._value, event._ok)

    def _step(self, value: Any, ok: bool) -> None:
        """Advance the generator one yield: send on ok, throw otherwise."""
        sim = self.sim
        prev = sim.active_process
        sim.active_process = self
        try:
            if ok:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(value)
        except StopIteration as stop:
            sim.active_process = prev
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim.active_process = prev
            if sim.strict:
                raise
            self.fail(exc)
            return
        sim.active_process = prev
        if type(target) is not Event and not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield Events"
            )
        if target._state == PROCESSED:
            # Already-fired event: resume on the next scheduling round.
            sim._seq += 1
            sim._ready.append((sim.now, sim._seq, _Resume(self, target._value, target._ok)))
            self._waiting_on = None
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Simulator:
    """Event calendar and main loop.

    Parameters
    ----------
    strict:
        When True (the default), an uncaught exception inside a process
        propagates out of :meth:`run` immediately -- the right behaviour
        for tests.  When False the exception is stored on the process
        event, mimicking SimPy's behaviour for supervised process trees.
    """

    def __init__(self, strict: bool = True, seed: int = 0):
        self.now: float = 0.0
        self.strict = strict
        self.active_process: Optional[Process] = None
        #: delayed events: heap of (time, seq, obj).
        self._queue: list[tuple[float, int, Any]] = []
        #: zero-delay events: deque of (time, seq, obj), always sorted
        #: by construction because ``now`` is monotonically non-decreasing.
        self._ready: deque[tuple[float, int, Any]] = deque()
        self._seq = 0
        self._seed = seed
        self._rng = None
        #: lazily-created :class:`repro.sim.timers.TimerWheel` -- the
        #: third calendar source.  None until ``sim.wheel`` is touched;
        #: the merge loops below pay one predicate per event for it.
        self._wheel = None
        #: total calendar entries processed (events, timeouts, resumes).
        self._event_count = 0
        #: optional :class:`repro.faults.FaultPlan` consulted by the fault
        #: tap points (control frames, notifies, grant maps); None = the
        #: taps are pure no-ops.  The engine itself never reads this.
        self.fault_plan = None

    @property
    def rng(self):
        """Seeded numpy Generator shared by all stochastic model elements
        (lazily created so pure-logic simulations never touch numpy RNG)."""
        if self._rng is None:
            from repro.sim.rng import make_rng

            self._rng = make_rng(self._seed)
        return self._rng

    @property
    def wheel(self):
        """The simulator's hierarchical timer wheel (lazily created).

        A second delayed-event calendar with O(1) insert and O(1) lazy
        cancellation (see :mod:`repro.sim.timers`).  Entries consume
        sequence numbers from the same counter and are merged into the
        firing order exactly like the heap and the immediate run queue,
        so moving a timer between ``sim.timeout`` and
        ``sim.wheel.timeout`` never changes simulation order.
        """
        if self._wheel is None:
            from repro.sim.timers import TimerWheel

            self._wheel = TimerWheel(self)
        return self._wheel

    @property
    def event_count(self) -> int:
        """Calendar entries processed since construction.

        Counts everything :meth:`step` pops -- events, timeouts, and the
        engine's internal resume records -- so ``event_count / wall_s``
        is the engine-throughput figure tracked by
        ``benchmarks/bench_engine_throughput.py``.
        """
        return self._event_count

    def snapshot_state(self) -> dict:
        """The engine calendar and counters as a plain, JSON-able dict.

        Captures everything that determines future scheduling order
        except the generator frames themselves: ``now``, the sequence
        counter (exact tie-break order), the event count, the seed, the
        RNG bit-generator state, and a summary of the pending calendar
        (sizes plus the (time, seq, kind) triple of every entry).  Live
        coroutines cannot be serialized -- process continuation relies
        on :meth:`repro.sim.snapshot.SimSnapshot.fork` (OS-level fork)
        or deterministic replay; this dict is the *identity* of the
        simulator state, used for digests, inspection, and drift checks.
        """
        from repro.sim.rng import rng_state

        calendar = [
            [t, seq, type(obj).__name__]
            for (t, seq, obj) in sorted(self._queue)
        ]
        ready = [[t, seq, type(obj).__name__] for (t, seq, obj) in self._ready]
        state = {
            "now": self.now,
            "seq": self._seq,
            "event_count": self._event_count,
            "seed": self._seed if isinstance(self._seed, int) else repr(self._seed),
            "rng": rng_state(self.rng),
            "queue_len": len(self._queue),
            "ready_len": len(self._ready),
            "calendar": calendar,
            "ready": ready,
            "has_fault_plan": self.fault_plan is not None,
        }
        # Only simulations actually holding live wheel timers grow the
        # extra key -- every pre-wheel digest stays bit-identical.
        if self._wheel is not None and self._wheel._live:
            state["wheel"] = self._wheel.snapshot_state()
        return state

    # -- event factories ------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Run a generator as a concurrent process."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any constituent fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every constituent has fired."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, obj: Any, delay: float = 0.0) -> None:
        """Place anything with a ``_process()`` method on the calendar."""
        if delay == 0.0:
            self._seq += 1
            self._ready.append((self.now, self._seq, obj))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, obj))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        ready = self._ready
        queue = self._queue
        if ready:
            t = ready[0][0] if not queue or ready[0] < queue[0] else queue[0][0]
        elif queue:
            t = queue[0][0]
        else:
            t = _INF
        wheel = self._wheel
        if wheel is not None and wheel._live:
            wt = wheel.head().time
            if wt < t:
                return wt
        return t

    def step(self) -> None:
        """Process exactly one event (the globally oldest by (time, seq))."""
        ready = self._ready
        queue = self._queue
        wheel = self._wheel
        whead = wheel.head() if (wheel is not None and wheel._live) else None
        entry = None
        if ready and (not queue or ready[0] < queue[0]):
            if whead is None or not (whead.key < ready[0]):
                entry = ready.popleft()
        elif queue and (whead is None or not (whead.key < queue[0])):
            entry = heapq.heappop(queue)
        elif whead is None:
            heapq.heappop(queue)  # empty calendar: raises IndexError
        if entry is not None:
            self.now = entry[0]
            self._event_count += 1
            entry[2]._process()
            return
        self.now = whead.time
        self._event_count += 1
        wheel.pop_head()._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or ``until`` is reached.

        When ``until`` is given, ``now`` is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run``
        calls compose like wall-clock intervals.
        """
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        wheel = self._wheel
        count = 0
        if until is None:
            while True:
                # The wheel may be created (or gain entries) mid-run, so
                # the merge re-checks it every iteration; a wheel-less
                # simulation pays one attribute load and one predicate.
                if wheel is None:
                    wheel = self._wheel
                whead = wheel.head() if (wheel is not None and wheel._live) else None
                entry = None
                if ready and (not queue or ready[0] < queue[0]):
                    if whead is None or not (whead.key < ready[0]):
                        entry = ready.popleft()
                elif queue:
                    if whead is None or not (whead.key < queue[0]):
                        entry = heappop(queue)
                elif whead is None:
                    break
                count += 1
                if entry is not None:
                    self.now = entry[0]
                    entry[2]._process()
                else:
                    self.now = whead.time
                    wheel.pop_head()._process()
            self._event_count += count
            return
        if until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        heappush = heapq.heappush
        popleft = ready.popleft
        try:
            # Pop-then-restore: popping directly and putting the entry
            # back on the (at most one) break beats peeking every
            # iteration on the hot path.  Wheel entries past ``until``
            # are simply not taken (the wheel is peek-then-pop).
            while True:
                if wheel is None:
                    wheel = self._wheel
                whead = wheel.head() if (wheel is not None and wheel._live) else None
                if whead is not None and whead.time > until:
                    whead = None
                entry = None
                if ready and (not queue or ready[0] < queue[0]):
                    if whead is None or not (whead.key < ready[0]):
                        entry = popleft()
                        if entry[0] > until:
                            ready.appendleft(entry)
                            break
                elif queue:
                    if whead is None or not (whead.key < queue[0]):
                        entry = heappop(queue)
                        if entry[0] > until:
                            heappush(queue, entry)
                            break
                elif whead is None:
                    break
                count += 1
                if entry is not None:
                    self.now = entry[0]
                    entry[2]._process()
                else:
                    self.now = whead.time
                    wheel.pop_head()._process()
        finally:
            self._event_count += count
        self.now = until

    def run_bounded(self, limit: float, stop: Optional[Process] = None) -> bool:
        """Process every event with ``time <= limit``; never advances
        ``now`` past the last processed event.

        This is the shard-aware inner loop used by the conservative-PDES
        layer (:mod:`repro.sim.pdes`): a shard may only execute events up
        to its current safe-time horizon, so unlike :meth:`run` the clock
        is left at the last event processed -- the caller owns the
        decision to advance ``now`` to the horizon (or inject imported
        events first).  With ``stop`` given, processing also halts the
        moment that process completes (checked before each pop, exactly
        like :meth:`run_until_complete`).  Returns True iff ``stop``
        completed.  Same pop-then-restore structure as :meth:`run`.
        """
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        popleft = ready.popleft
        pending = PENDING
        wheel = self._wheel
        count = 0
        try:
            while True:
                if stop is not None and stop._state != pending:
                    return True
                if wheel is None:
                    wheel = self._wheel
                whead = wheel.head() if (wheel is not None and wheel._live) else None
                if whead is not None and whead.time > limit:
                    whead = None
                entry = None
                if ready and (not queue or ready[0] < queue[0]):
                    if whead is None or not (whead.key < ready[0]):
                        entry = popleft()
                        if entry[0] > limit:
                            ready.appendleft(entry)
                            break
                elif queue:
                    if whead is None or not (whead.key < queue[0]):
                        entry = heappop(queue)
                        if entry[0] > limit:
                            heappush(queue, entry)
                            break
                elif whead is None:
                    break
                count += 1
                if entry is not None:
                    self.now = entry[0]
                    entry[2]._process()
                else:
                    self.now = whead.time
                    wheel.pop_head()._process()
        finally:
            self._event_count += count
        return stop is not None and stop._state != pending

    def run_until_complete(self, process: Process, timeout: Optional[float] = None) -> Any:
        """Run until ``process`` finishes and return its value.

        Raises the process's exception if it failed, and
        :class:`SimulationError` if the calendar empties (or ``timeout``
        simulated seconds elapse) before it finishes.
        """
        deadline = _INF if timeout is None else self.now + timeout
        ready = self._ready
        queue = self._queue
        heappop = heapq.heappop
        popleft = ready.popleft
        pending = PENDING
        wheel = self._wheel
        count = 0
        try:
            # Same pop-then-restore structure as run(): the deadline is
            # exceeded at most once, so the restore branch never runs on
            # the hot path.
            while process._state == pending:
                if wheel is None:
                    wheel = self._wheel
                whead = wheel.head() if (wheel is not None and wheel._live) else None
                entry = None
                if ready and (not queue or ready[0] < queue[0]):
                    if whead is None or not (whead.key < ready[0]):
                        entry = popleft()
                        if entry[0] > deadline:
                            ready.appendleft(entry)
                            raise SimulationError(f"timeout waiting for {process.name}")
                elif queue:
                    if whead is None or not (whead.key < queue[0]):
                        entry = heappop(queue)
                        if entry[0] > deadline:
                            heapq.heappush(queue, entry)
                            raise SimulationError(f"timeout waiting for {process.name}")
                elif whead is None:
                    raise SimulationError(f"deadlock: {process.name} never finished")
                if entry is not None:
                    self.now = entry[0]
                    count += 1
                    entry[2]._process()
                else:
                    if whead.time > deadline:
                        raise SimulationError(f"timeout waiting for {process.name}")
                    self.now = whead.time
                    count += 1
                    wheel.pop_head()._process()
        finally:
            self._event_count += count
        if not process.ok:
            raise process.value
        return process.value
