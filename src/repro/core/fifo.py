"""The lockless producer-consumer FIFO (paper Sect. 3.3, "FIFO design").

Faithful to the paper's construction:

* the FIFO occupies shared memory: one *descriptor page* plus a run of
  data pages holding ``2^k`` slots of 8 bytes each;
* each entry is one 8-byte metadata slot (length, type) followed by
  ``ceil(len/8)`` payload slots;
* the ``front`` and ``back`` indices are free-running **m-bit** counters
  (m = 32 here, with m > k), only ever incremented -- ``back`` by the
  producer, ``front`` by the consumer -- so no producer-consumer lock
  and no special wrap-around handling is needed: the occupied slot
  count is always ``(back - front) mod 2^m`` because ``m > k`` keeps
  the two counters within ``2^k <= 2^m`` of each other;
* the descriptor page also carries the channel state flags
  (``ACTIVE``, set at creation, cleared at teardown), the
  ``PRODUCER_WAITING`` bit used to ask the consumer for a
  space-available notification, and the ``CONSUMER_WAITING`` bit the
  consumer arms before sleeping so the producer can suppress the notify
  hypercall while the consumer is known to be awake (the FIFO analogue
  of the ring protocol's event index);
* in the real module the indices live in the shared descriptor page and
  are read/written by two kernel instances; here the descriptor page is
  a numpy view over genuinely shared :class:`~repro.xen.page.SharedRegion`
  memory, so both domains observe the same bytes.  The paper's
  producer-local / consumer-local spinlocks (for multiple producer or
  consumer *threads* within one guest) are subsumed by the simulator's
  run-to-completion semantics: ``push``/``pop`` contain no yield points.

All CPU costs (copy, bookkeeping) are charged by the *callers* in the
channel layer, since sender and receiver pay on their own CPUs.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from repro.net.packet import WIRE_STATS
from repro.xen.page import PAGE_SIZE, SharedRegion

__all__ = ["BufferPool", "Fifo", "FifoLayoutError", "fifo_pages_for_order"]

#: descriptor-page word offsets (uint32).
_MAGIC_WORD = 0
_ORDER_WORD = 1
_FRONT_WORD = 2
_BACK_WORD = 3
_FLAGS_WORD = 4

MAGIC = 0x58454E4C  # "XENL"

FLAG_ACTIVE = 0x1
FLAG_PRODUCER_WAITING = 0x2
FLAG_CONSUMER_WAITING = 0x4

#: byte offset inside the descriptor page where the grant references of
#: the data pages are stored (the bootstrap create_channel message only
#: carries the descriptor page's gref; the connector reads the rest from
#: here, exactly as in Sect. 3.3 "Channel bootstrap").
GREF_TABLE_OFFSET = 64

INDEX_MASK = 0xFFFFFFFF  # m = 32

#: metadata slot: uint32 length | uint16 type | uint16 reserved.
_META = struct.Struct("<IHH")


def fifo_pages_for_order(k: int) -> int:
    """Number of data pages needed for 2^k slots of 8 bytes."""
    return max(1, (8 << k) // PAGE_SIZE)


class FifoLayoutError(Exception):
    """The shared region cannot hold (or does not contain) a valid FIFO."""
    pass


class Fifo:
    """One direction of the XenLoop channel."""

    def __init__(self, region: SharedRegion, k: Optional[int] = None):
        """Wrap ``region`` as a FIFO.

        With ``k`` given, the FIFO is (re)initialized as empty (producer
        side at creation).  With ``k=None`` the layout is read back from
        the descriptor page (consumer side after mapping).
        """
        self.region = region
        self._desc = region.array[:PAGE_SIZE].view(np.uint32)
        self._data = region.array[PAGE_SIZE:]
        # Raw memoryviews over the same shared bytes: slot copies become a
        # single C-level slice assignment/read instead of per-call numpy
        # array construction, and descriptor words are plain ints.  Both
        # endpoint Fifo objects wrap the SAME region, so every index and
        # flag access still goes through shared memory.
        self._desc_mv = region.array[:PAGE_SIZE].data.cast("I")
        self._data_mv = self._data.data
        if k is not None:
            if k < 1 or k > 31:
                raise FifoLayoutError(f"k={k} out of range (need 1 <= k <= 31, m=32)")
            if len(self._data) < (8 << k):
                raise FifoLayoutError(
                    f"region has {len(self._data)} data bytes, need {8 << k}"
                )
            self._desc[_MAGIC_WORD] = MAGIC
            self._desc[_ORDER_WORD] = k
            self._desc[_FRONT_WORD] = 0
            self._desc[_BACK_WORD] = 0
            self._desc[_FLAGS_WORD] = FLAG_ACTIVE
        else:
            if int(self._desc[_MAGIC_WORD]) != MAGIC:
                raise FifoLayoutError("descriptor page has no XenLoop magic")
            k = int(self._desc[_ORDER_WORD])
        self.k = k
        self.size = 1 << k
        self.mask = self.size - 1
        self._ring_bytes = self.size * 8
        self.pushes = 0
        self.pops = 0
        self.push_failures = 0

    # -- descriptor state ---------------------------------------------------
    @property
    def front(self) -> int:
        """Consumer index (free-running 32-bit counter in the descriptor page)."""
        return self._desc_mv[_FRONT_WORD]

    @property
    def back(self) -> int:
        """Producer index (free-running 32-bit counter in the descriptor page)."""
        return self._desc_mv[_BACK_WORD]

    @property
    def used_slots(self) -> int:
        """Occupied slots: ``(back - front) mod 2^32`` -- valid because m > k."""
        return (self.back - self.front) & INDEX_MASK

    @property
    def free_slots(self) -> int:
        """Slots available to the producer right now."""
        return self.size - self.used_slots

    @property
    def is_empty(self) -> bool:
        """True when the consumer has caught up with the producer."""
        return self.front == self.back

    @property
    def active(self) -> bool:
        """The shared ACTIVE flag (cleared by channel teardown)."""
        return bool(self._desc[_FLAGS_WORD] & FLAG_ACTIVE)

    def snapshot_state(self) -> dict:
        """Descriptor words, counters, and a digest of the data bytes.

        The full ring contents enter the snapshot as a sha256 over the
        data region (in-flight bytes are captured verifiably without
        bloating the manifest); the descriptor words -- front, back,
        flags, order -- are recorded verbatim, so two FIFOs with equal
        snapshots hold bit-identical shared pages.
        """
        import hashlib

        return {
            "order": self.k,
            "front": int(self.front),
            "back": int(self.back),
            "flags": int(self._desc[_FLAGS_WORD]),
            "used_slots": int(self.used_slots),
            "pushes": self.pushes,
            "pops": self.pops,
            "push_failures": self.push_failures,
            "data_sha256": hashlib.sha256(self._data_mv).hexdigest(),
        }

    def mark_inactive(self) -> None:
        """Clear ACTIVE in the shared descriptor (channel teardown)."""
        self._desc[_FLAGS_WORD] = int(self._desc[_FLAGS_WORD]) & ~FLAG_ACTIVE

    @property
    def producer_waiting(self) -> bool:
        """Shared flag: the producer queued packets awaiting space."""
        return bool(self._desc[_FLAGS_WORD] & FLAG_PRODUCER_WAITING)

    def set_producer_waiting(self) -> None:
        """Ask the consumer for a space-available notification."""
        self._desc[_FLAGS_WORD] = int(self._desc[_FLAGS_WORD]) | FLAG_PRODUCER_WAITING

    def clear_producer_waiting(self) -> None:
        """Acknowledge the space request (consumer side)."""
        self._desc[_FLAGS_WORD] = int(self._desc[_FLAGS_WORD]) & ~FLAG_PRODUCER_WAITING

    @property
    def consumer_waiting(self) -> bool:
        """Shared flag: the consumer is (about to be) blocked and wants a
        data-available notification.  While clear, the producer may skip
        the notify hypercall entirely -- the consumer is awake and will
        find the entry on its final pre-sleep occupancy re-check."""
        return bool(self._desc[_FLAGS_WORD] & FLAG_CONSUMER_WAITING)

    def set_consumer_waiting(self) -> None:
        """Arm data-available notifications (consumer side, pre-sleep).

        Only the consumer ever sets or clears this bit: a producer that
        finds it set keeps notifying on every push until the consumer
        wakes and clears it, which is what makes a single lost notify
        recoverable by the next push."""
        self._desc[_FLAGS_WORD] = int(self._desc[_FLAGS_WORD]) | FLAG_CONSUMER_WAITING

    def clear_consumer_waiting(self) -> None:
        """Disarm data-available notifications (consumer side, on wake)."""
        self._desc[_FLAGS_WORD] = int(self._desc[_FLAGS_WORD]) & ~FLAG_CONSUMER_WAITING

    # -- capacity -------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Largest payload that can *ever* fit (one entry in an empty FIFO)."""
        return (self.size - 1) * 8

    @staticmethod
    def slots_needed(nbytes: int) -> int:
        """Slots one entry occupies: 1 metadata slot + ceil(len/8) payload slots."""
        return 1 + (nbytes + 7) // 8

    def fits(self, nbytes: int) -> bool:
        """Whether a payload of ``nbytes`` could fit in an *empty* FIFO."""
        return self.slots_needed(nbytes) <= self.size

    # -- the lockless operations ------------------------------------------
    def push(self, data, msg_type: int = 1) -> bool:
        """Producer: append one entry.  Returns False when there is no room
        (the caller puts the packet on its waiting list, Sect. 3.1)."""
        need = 1 + (len(data) + 7) // 8
        desc = self._desc_mv
        back = desc[_BACK_WORD]
        if need > self.size - ((back - desc[_FRONT_WORD]) & INDEX_MASK):
            self.push_failures += 1
            return False
        slot = back & self.mask
        _META.pack_into(self._data_mv, slot * 8, len(data), msg_type, 0)
        self._write_stream((back + 1) & self.mask, (data,))
        # Single index store *after* the data write publishes the entry.
        desc[_BACK_WORD] = (back + need) & INDEX_MASK
        self.pushes += 1
        WIRE_STATS.fifo_bytes_in += len(data)
        return True

    def push_vec(self, parts, msg_type: int = 1) -> bool:
        """Producer: scatter-gather append.  ``parts`` is a sequence of
        buffers (bytes/memoryview) that together form one entry; each is
        written straight into the ring -- header and payload views never
        get joined into an intermediate bytes object on this path."""
        total = 0
        for part in parts:
            total += len(part)
        need = 1 + (total + 7) // 8
        desc = self._desc_mv
        back = desc[_BACK_WORD]
        if need > self.size - ((back - desc[_FRONT_WORD]) & INDEX_MASK):
            self.push_failures += 1
            return False
        slot = back & self.mask
        _META.pack_into(self._data_mv, slot * 8, total, msg_type, 0)
        self._write_stream((back + 1) & self.mask, parts)
        desc[_BACK_WORD] = (back + need) & INDEX_MASK
        self.pushes += 1
        WIRE_STATS.fifo_bytes_in += total
        return True

    def pop(self) -> Optional[tuple[int, bytes]]:
        """Consumer: remove the oldest entry; returns (type, payload)."""
        entry = self.peek()
        if entry is None:
            return None
        msg_type, payload, need = entry
        self.advance(need)
        return msg_type, payload

    def peek(self) -> Optional[tuple[int, bytes, int]]:
        """Consumer: read the oldest entry WITHOUT freeing its slots.

        Returns (type, payload, slots); call :meth:`advance` afterwards.
        The payload is materialized in a single pass even when the entry
        wraps around the ring edge (one join of the two ring views, not
        two intermediate ``bytes`` copies).
        """
        desc = self._desc_mv
        front = desc[_FRONT_WORD]
        if front == desc[_BACK_WORD]:
            return None
        mv = self._data_mv
        length, msg_type, _rsvd = _META.unpack_from(mv, (front & self.mask) * 8)
        need = 1 + (length + 7) // 8
        start = ((front + 1) & self.mask) * 8
        end = start + length
        ring_bytes = self._ring_bytes
        if end <= ring_bytes:
            payload = bytes(mv[start:end])
        else:
            payload = b"".join((mv[start:ring_bytes], mv[: end - ring_bytes]))
        WIRE_STATS.fifo_bytes_out += length
        return msg_type, payload, need

    def peek_view(self) -> Optional[tuple[int, tuple, int]]:
        """Consumer: zero-copy view of the oldest entry's payload.

        Returns (type, segments, slots) where ``segments`` is a tuple of
        one or two memoryviews into the ring (two iff the entry wraps).
        Nothing is copied here: the views alias shared ring memory and
        stay valid until :meth:`advance` releases the slots, so callers
        must finish reading (or materialize -- e.g. via
        ``Packet.from_l3_bytes``, the receive path's single
        materialization point) before advancing.  Used by the zero-copy
        receive variant (the design alternative of Sect. 3.3 in which
        the sk_buff points into the FIFO and the space is released only
        after protocol processing).
        """
        desc = self._desc_mv
        front = desc[_FRONT_WORD]
        if front == desc[_BACK_WORD]:
            return None
        mv = self._data_mv
        length, msg_type, _rsvd = _META.unpack_from(mv, (front & self.mask) * 8)
        need = 1 + (length + 7) // 8
        start = ((front + 1) & self.mask) * 8
        end = start + length
        ring_bytes = self._ring_bytes
        if end <= ring_bytes:
            segments = (mv[start:end],)
        else:
            segments = (mv[start:ring_bytes], mv[: end - ring_bytes])
        return msg_type, segments, need

    def advance(self, slots: int) -> None:
        """Consumer: release ``slots`` (from a previous :meth:`peek`)."""
        desc = self._desc_mv
        desc[_FRONT_WORD] = (desc[_FRONT_WORD] + slots) & INDEX_MASK
        self.pops += 1

    # -- raw slot I/O with wrap-around ---------------------------------------
    def _write_stream(self, slot: int, parts) -> None:
        """Write ``parts`` contiguously into the ring starting at ``slot``,
        wrapping at the ring edge.  Each part is copied exactly once,
        directly from the caller's buffer into shared memory."""
        mv = self._data_mv
        ring_bytes = self._ring_bytes
        pos = slot * 8
        for part in parts:
            n = len(part)
            end = pos + n
            if end <= ring_bytes:
                mv[pos:end] = part
                pos = 0 if end == ring_bytes else end
            else:
                first = ring_bytes - pos
                with memoryview(part) as pmv:
                    mv[pos:ring_bytes] = pmv[:first]
                    mv[: n - first] = pmv[first:]
                pos = n - first

    def _read_slots(self, slot: int, nbytes: int) -> np.ndarray:
        start = slot * 8
        end = start + nbytes
        ring_bytes = self._ring_bytes
        if end <= ring_bytes:
            return self._data[start:end]
        first = self._data[start:ring_bytes]
        rest = self._data[: end - ring_bytes]
        return np.concatenate([first, rest])

    # -- gref table (bootstrap) ------------------------------------------
    def store_grefs(self, grefs: list[int]) -> None:
        """Record the data pages' grant references in the descriptor page."""
        table = self.region.array[GREF_TABLE_OFFSET : GREF_TABLE_OFFSET + 4 * (len(grefs) + 1)]
        view = table.view(np.uint32)
        view[0] = len(grefs)
        view[1:] = grefs

    def load_grefs(self) -> list[int]:
        """Read the data-page grant references back from the descriptor page."""
        count = int(self.region.array[GREF_TABLE_OFFSET : GREF_TABLE_OFFSET + 4].view(np.uint32)[0])
        table = self.region.array[
            GREF_TABLE_OFFSET + 4 : GREF_TABLE_OFFSET + 4 + 4 * count
        ].view(np.uint32)
        return [int(g) for g in table]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Fifo k={self.k} used={self.used_slots}/{self.size} "
            f"{'active' if self.active else 'inactive'}>"
        )


class BufferPool:
    """A small per-node freelist of reusable staging buffers.

    The real module recycles sk_buff staging memory rather than
    allocating per packet; the analogue here is the waiting-list path:
    when the outgoing FIFO is full, a scatter-gather entry must be
    joined into one durable buffer until space frees up.  Those staging
    buffers come from (and return to) this pool, so a backpressure
    burst does not allocate per parked packet.

    ``acquire(n)`` returns a ``bytearray`` of at least ``n`` bytes
    (callers track the logical length, e.g. via ``memoryview(buf)[:n]``);
    ``release(buf)`` returns it for reuse.  Oversized buffers and
    overflow beyond ``max_buffers`` are dropped for the GC.
    """

    __slots__ = ("_buffers", "max_buffers", "max_buffer_bytes", "outstanding")

    def __init__(self, max_buffers: int = 32, max_buffer_bytes: int = 1 << 16):
        self._buffers: list[bytearray] = []
        self.max_buffers = max_buffers
        self.max_buffer_bytes = max_buffer_bytes
        #: buffers currently loaned out (acquired, not yet released).
        #: Leak detector: after every channel is torn down this must be
        #: zero -- a positive count means a waiting-list entry kept its
        #: staging buffer past teardown.
        self.outstanding = 0

    def __len__(self) -> int:
        return len(self._buffers)

    def snapshot_state(self) -> dict:
        """Pool occupancy for the snapshot manifest (the loan counter is
        the leak detector the fault matrix asserts on)."""
        return {
            "pooled": len(self._buffers),
            "pooled_bytes": sum(len(b) for b in self._buffers),
            "outstanding": self.outstanding,
        }

    def acquire(self, nbytes: int) -> bytearray:
        """Get a buffer of at least ``nbytes`` (pooled if one fits)."""
        self.outstanding += 1
        buffers = self._buffers
        for i in range(len(buffers) - 1, -1, -1):
            if len(buffers[i]) >= nbytes:
                WIRE_STATS.pool_hits += 1
                return buffers.pop(i)
        WIRE_STATS.pool_misses += 1
        return bytearray(nbytes)

    def release(self, buf: bytearray) -> None:
        """Return a buffer to the pool (dropped if full or oversized)."""
        self.outstanding -= 1
        if len(buf) <= self.max_buffer_bytes and len(self._buffers) < self.max_buffers:
            self._buffers.append(buf)
