"""Packet capture, and what it reveals about the XenLoop bypass."""

import pytest

from repro import scenarios
from repro.net.capture import PacketCapture
from repro.net.ethernet import IPPROTO_UDP
from tests.core.conftest import FAST, udp_once


@pytest.fixture
def xl():
    scn = scenarios.xenloop(FAST)
    scn.warmup(max_wait=10.0)
    return scn


class TestCapture:
    def test_records_both_directions(self):
        scn = scenarios.netfront_netback(FAST)
        scn.warmup()
        cap = PacketCapture.attach(scn.node_a.netfront.vif)
        udp_once(scn, b"captured", port=9501)
        assert cap.filter(direction="tx")
        # the UDP response comes back through the same vif
        scn.sim.run(until=scn.sim.now + 0.01)
        assert len(cap) >= 1
        cap.detach()

    def test_describe_lines(self):
        scn = scenarios.netfront_netback(FAST)
        scn.warmup()
        cap = PacketCapture.attach(scn.node_a.netfront.vif)
        udp_once(scn, b"zz", port=9502)
        text = cap.dump()
        assert "tx" in text
        assert "proto=17" in text  # UDP
        cap.detach()

    def test_detach_restores_device(self):
        scn = scenarios.netfront_netback(FAST)
        scn.warmup()
        vif = scn.node_a.netfront.vif
        original = vif.queue_xmit
        cap = PacketCapture.attach(vif)
        assert vif.queue_xmit is not original
        cap.detach()
        udp_once(scn, b"after", port=9503)
        assert len(cap.filter(proto=IPPROTO_UDP)) == 0  # nothing recorded

    def test_filter(self, xl):
        cap = PacketCapture.attach(xl.node_a.netfront.vif)
        udp_once(xl, b"x", port=9504)
        assert len(cap.filter(direction="nonsense")) == 0
        cap.detach()

    def test_xenloop_bypass_visible_in_capture(self, xl):
        """THE transparency demo: with the channel connected, data
        packets vanish from the vif -- they never reach the device."""
        cap = PacketCapture.attach(xl.node_a.netfront.vif)
        udp_once(xl, b"invisible", port=9505)
        xl.sim.run(until=xl.sim.now + 0.05)
        udp_frames = cap.filter(proto=IPPROTO_UDP)
        assert udp_frames == []  # the channel carried them instead
        cap.detach()

    def test_netfront_path_shows_packets(self):
        scn = scenarios.netfront_netback(FAST)
        scn.warmup()
        cap = PacketCapture.attach(scn.node_a.netfront.vif)
        udp_once(scn, b"visible", port=9506)
        scn.sim.run(until=scn.sim.now + 0.05)
        assert len(cap.filter(proto=IPPROTO_UDP, direction="tx")) >= 1
        cap.detach()

    def test_clear(self, xl):
        cap = PacketCapture.attach(xl.node_a.netfront.vif)
        udp_once(xl, b"x", port=9507)
        cap.clear()
        assert len(cap) == 0
        cap.detach()
