"""Command-line interface: regenerate the paper's headline results
without pytest.

Usage::

    python -m repro list
    python -m repro ping [scenario]
    python -m repro tables              # Tables 1-3 in one run
    python -m repro fig11               # migration timeline
    python -m repro bypass              # future-work socket bypass
    python -m repro faults              # fault-injection matrix sweep
    python -m repro snapshot save ...   # checkpoint a built simulator
    python -m repro snapshot fork ...   # replay a checkpoint N times
"""

from __future__ import annotations

import argparse
import sys

from repro import report, scenarios
from repro.workloads import lmbench, migration_rr, netperf, pingpong

SCENARIO_ORDER = ["inter_machine", "netfront_netback", "xenloop", "native_loopback"]


def _warm(name: str, **kwargs):
    scn = scenarios.build(name, **kwargs)
    scn.warmup()
    return scn


def cmd_list(_args) -> int:
    """List scenarios and available commands."""
    print("scenarios:")
    print(report.scenario_catalog())
    print("\ncommands: list, ping, tables, fig11, bypass, trace, faults, snapshot")
    print("full benchmark harness: pytest benchmarks/ --benchmark-only -s")
    return 0


def cmd_ping(args) -> int:
    """Flood-ping one scenario or all four."""
    names = [args.scenario] if args.scenario else SCENARIO_ORDER
    for name in names:
        scn = _warm(name)
        res = pingpong.flood_ping(scn, count=args.count)
        print(f"{name:20s} {res.rtt_us:8.1f} us RTT  "
              f"(min {res.min_us:.1f}, max {res.max_us:.1f}, {res.count} pings)")
    return 0


def cmd_tables(_args) -> int:
    """Measure every Tables 1-3 metric across the four scenarios."""
    rows = {
        "flood ping RTT (us)": {},
        "lmbench lat_tcp (us)": {},
        "netperf TCP_RR (trans/s)": {},
        "netperf UDP_RR (trans/s)": {},
        "lmbench bw_tcp (Mbps)": {},
        "netperf TCP_STREAM (Mbps)": {},
        "netperf UDP_STREAM (Mbps)": {},
    }
    for name in SCENARIO_ORDER:
        print(f"measuring {name}...", file=sys.stderr)
        scn = _warm(name)
        rows["flood ping RTT (us)"][name] = pingpong.flood_ping(scn, count=100).rtt_us
        rows["lmbench lat_tcp (us)"][name] = lmbench.lat_tcp(scn, round_trips=200).latency_us
        rows["netperf TCP_RR (trans/s)"][name] = netperf.tcp_rr(scn, duration=0.05).trans_per_sec
        rows["netperf UDP_RR (trans/s)"][name] = netperf.udp_rr(scn, duration=0.05).trans_per_sec
        rows["lmbench bw_tcp (Mbps)"][name] = lmbench.bw_tcp(scn, total_bytes=2 << 20).mbps
        rows["netperf TCP_STREAM (Mbps)"][name] = netperf.tcp_stream(scn, duration=0.03).mbps
        rows["netperf UDP_STREAM (Mbps)"][name] = netperf.udp_stream(
            scn, duration=0.03, msg_size=32768
        ).mbps
    print(report.format_table(
        "Tables 1-3 snapshot (see EXPERIMENTS.md for paper values)",
        SCENARIO_ORDER,
        list(rows.items()),
        precision=1,
    ))
    return 0


def cmd_fig11(_args) -> int:
    """Print the Fig. 11 migration timeline as ASCII."""
    costs = scenarios.DEFAULT_COSTS.replace(
        discovery_period=1.0, migration_duration=1.0, migration_downtime=0.1
    )
    scn = scenarios.migration_pair(costs)
    scn.warmup()
    res = migration_rr.run(scn, co_resident_hold=8.0, bin_width=0.5, settle=4.0)
    peak = max(v for _t, v in res.rates())
    for t, rate in res.rates():
        print(f"{t:6.1f}s {rate:8.0f} trans/s  {'#' * int(40 * rate / peak)}")
    print(f"\nmigrate in at t={res.migrate_in_at:.1f}s, away at t={res.migrate_away_at:.1f}s")
    return 0


def cmd_trace(args) -> int:
    """Print a traced ping's hop-by-hop timeline per scenario."""
    from repro import trace

    names = [args.scenario] if args.scenario else SCENARIO_ORDER
    for name in names:
        scn = _warm(name)
        records = trace.traced_ping(scn)
        print(f"\n{name}: echo-request hop timeline")
        prev = 0.0
        for stage, t_us in records:
            print(f"  {t_us:8.2f} us  (+{t_us - prev:6.2f})  {stage}")
            prev = t_us
    return 0


def cmd_bypass(_args) -> int:
    """Compare the shipped design against the future-work socket bypass."""
    rows = {}
    for label, bypass in (("below network layer (paper)", False),
                          ("socket-layer bypass (future work)", True)):
        scn = scenarios.xenloop(socket_bypass=bypass)
        scn.warmup()
        rows[label] = {
            "tcp_rr_per_s": netperf.tcp_rr(scn, duration=0.05).trans_per_sec,
            "tcp_stream_mbps": netperf.tcp_stream(scn, duration=0.02).mbps,
        }
    print(report.format_table(
        "Transport-layer interception (paper Sect. 6 future work)",
        ["tcp_rr_per_s", "tcp_stream_mbps"],
        list(rows.items()),
        precision=0,
    ))
    return 0


def cmd_faults(args) -> int:
    """Run the fault-injection matrix; nonzero exit on any failed cell."""
    from repro.scenarios.fault_matrix import run_fault_matrix

    results = run_fault_matrix(
        seed=args.seed, shards=args.shards, warm=not args.cold
    )
    print(report.format_fault_matrix(results))
    return 0 if all(r["ok"] for r in results) else 1


def _snapshot_recipe(args) -> dict:
    """Translate the ``snapshot save`` flags into a rebuild recipe."""
    from repro.scenarios.fault_matrix import MATRIX_COSTS, matrix_cells
    from repro.sim import snapshot as snapmod

    if args.cell:
        cells = {c.name: c for c in matrix_cells()}
        if args.cell not in cells:
            raise SystemExit(
                f"unknown fault cell {args.cell!r}; choose from {sorted(cells)}"
            )
        return snapmod.fault_pair_recipe(
            costs=MATRIX_COSTS,
            seed=args.seed,
            machines=cells[args.cell].machines,
            pin_mac=cells[args.cell].pin_mac,
        )
    warm = {"max_wait": 30.0} if args.warm else None
    return snapmod.scenario_recipe(args.scenario, seed=args.seed, warm=warm)


def cmd_snapshot(args) -> int:
    """Checkpoint tooling: save/restore/fork/inspect a built simulator.

    ``save`` builds from a recipe (a scenario or the fault-matrix pair)
    and writes the digest-carrying manifest; ``restore`` replays the
    recipe and verifies the digest; ``fork`` replays and then forks N
    bit-identical children (running the named fault cell, or a short UDP
    probe) -- the time-travel loop for debugging a failing cell; and
    ``inspect`` prints the captured state summary without rebuilding.
    """
    from repro.sim.snapshot import HAS_FORK, SimSnapshot

    if args.action == "save":
        recipe = _snapshot_recipe(args)
        from repro.sim.snapshot import build_from_recipe

        cluster = build_from_recipe(recipe)
        snap = SimSnapshot.capture(cluster, recipe=recipe, label=args.label)
        snap.save(args.out)
        print(snap.inspect())
        print(f"saved {args.out}")
        return 0

    snap = SimSnapshot.load(args.path)
    if args.action == "inspect":
        print(snap.inspect())
        return 0

    snap.restore()
    print(f"restore OK: digest {snap.digest[:16]}... verified by replay")
    if args.action == "restore":
        print(snap.inspect())
        return 0

    # fork: N children off the restored image, results must be identical.
    if not HAS_FORK:
        print("snapshot fork requires os.fork (unavailable on this platform)")
        return 1
    recipe = snap.recipe or {}
    seed = recipe.get("seed", 0)
    if recipe.get("kind") == "fault_pair":
        from repro.scenarios.fault_matrix import _run_cell_on, matrix_cells

        cells = {c.name: c for c in matrix_cells()}
        name = args.cell or next(iter(cells))
        if name not in cells:
            raise SystemExit(
                f"unknown fault cell {name!r}; choose from {sorted(cells)}"
            )
        cell = cells[name]
        if cell.machines != recipe.get("machines", 1):
            raise SystemExit(
                f"cell {name!r} needs machines={cell.machines}, but the "
                f"snapshot was built with machines={recipe.get('machines', 1)}"
            )
        if cell.pin_mac != recipe.get("pin_mac", False):
            raise SystemExit(
                f"cell {name!r} needs pin_mac={cell.pin_mac}, but the "
                f"snapshot was built with pin_mac={recipe.get('pin_mac', False)}"
            )

        def probe(cluster):
            return _run_cell_on(cluster, cell, seed)

        what = f"fault cell {name!r}"
    else:

        def probe(cluster):
            from repro.workloads import netperf as np

            res = np.udp_stream(cluster, msg_size=4096, duration=0.02)
            return {
                "bytes_received": res.bytes_received,
                "mbps": res.mbps,
                "messages_sent": res.messages_sent,
                "drops": res.drops,
            }

        what = "udp_stream probe"

    runs = [snap.fork(probe) for _ in range(args.runs)]
    for i, r in enumerate(runs):
        print(f"run {i}: {r}")
    if all(r == runs[0] for r in runs[1:]):
        print(f"{args.runs} forked runs of the {what}: bit-identical")
        return 0
    print(f"DIVERGENCE across forked runs of the {what}")
    return 1


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="XenLoop reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list scenarios and commands")
    ping = sub.add_parser("ping", help="flood-ping one or all scenarios")
    ping.add_argument("scenario", nargs="?", choices=list(scenarios.SCENARIO_BUILDERS))
    ping.add_argument("--count", type=int, default=100)
    sub.add_parser("tables", help="Tables 1-3 in one run")
    sub.add_parser("fig11", help="migration timeline (Fig. 11)")
    sub.add_parser("bypass", help="future-work socket bypass comparison")
    tr = sub.add_parser("trace", help="hop-by-hop ping timeline per path")
    tr.add_argument("scenario", nargs="?", choices=list(scenarios.SCENARIO_BUILDERS))
    flt = sub.add_parser("faults", help="fault-injection matrix sweep")
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument(
        "--shards", type=int, default=1, choices=(1, 2),
        help="2: run each cell under the two-shard PDES mode "
        "(fault recovery across the process boundary)",
    )
    flt.add_argument(
        "--cold", action="store_true",
        help="build every cell from scratch instead of forking the warm "
        "pair snapshot (results are identical either way)",
    )
    snp = sub.add_parser(
        "snapshot", help="checkpoint tooling: save/restore/fork/inspect"
    )
    snp_sub = snp.add_subparsers(dest="action", required=True)
    save = snp_sub.add_parser("save", help="build from a recipe and checkpoint it")
    save.add_argument("--scenario", default="xenloop",
                      choices=list(scenarios.SCENARIO_BUILDERS))
    save.add_argument("--cell", default=None,
                      help="checkpoint the fault-matrix pair instead (any cell "
                      "name picks the machine count)")
    save.add_argument("--seed", type=int, default=0)
    save.add_argument("--warm", action="store_true",
                      help="run warmup (channels connected) before capturing")
    save.add_argument("--label", default="")
    save.add_argument("--out", required=True, help="manifest path to write")
    for action, hlp in (
        ("restore", "replay the recipe and verify the digest"),
        ("fork", "replay, then fork N bit-identical runs off the image"),
        ("inspect", "print the captured state summary"),
    ):
        p = snp_sub.add_parser(action, help=hlp)
        p.add_argument("path", help="manifest written by 'snapshot save'")
        if action == "fork":
            p.add_argument("--runs", type=int, default=2)
            p.add_argument("--cell", default=None,
                           help="fault cell to replay (fault-pair snapshots)")

    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "ping": cmd_ping,
        "tables": cmd_tables,
        "fig11": cmd_fig11,
        "bypass": cmd_bypass,
        "trace": cmd_trace,
        "faults": cmd_faults,
        "snapshot": cmd_snapshot,
    }
    if args.command is None:
        parser.print_help()
        return 2
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
