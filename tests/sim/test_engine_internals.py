"""Engine internals: callback detachment, interrupt races, rng."""

import pytest

from repro.sim.engine import Interrupt, SimulationError, Simulator


class TestInterruptRaces:
    def test_interrupt_detaches_from_shared_event(self, sim):
        """Interrupting a process waiting on an event must remove its
        callback so a later firing doesn't resume it twice."""
        shared = sim.event()
        log = []

        def gen():
            try:
                yield shared
                log.append("event")
            except Interrupt:
                log.append("interrupt")
                yield sim.timeout(5.0)
                log.append("slept")

        proc = sim.process(gen())

        def driver():
            yield sim.timeout(1.0)
            proc.interrupt()
            yield sim.timeout(1.0)
            shared.succeed("late")  # must NOT resume proc again

        sim.process(driver())
        sim.run()
        assert log == ["interrupt", "slept"]

    def test_interrupt_racing_with_completion(self, sim):
        """Interrupt issued in the same instant the waited event fires:
        exactly one resume wins and nothing crashes."""
        ev = sim.event()
        outcome = []

        def gen():
            try:
                value = yield ev
                outcome.append(("value", value))
            except Interrupt as intr:
                outcome.append(("interrupt", intr.cause))

        proc = sim.process(gen())

        def driver():
            yield sim.timeout(1.0)
            ev.succeed("win")
            if proc.is_alive:
                proc.interrupt("race")

        sim.process(driver())
        sim.run()
        assert len(outcome) == 1

    def test_interrupting_finished_process_during_same_step(self, sim):
        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestDeterminism:
    def test_same_seed_same_rng_stream(self):
        a = Simulator(seed=7)
        b = Simulator(seed=7)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]

    def test_different_seed_different_stream(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert [a.rng.random() for _ in range(5)] != [b.rng.random() for _ in range(5)]

    def test_default_seed_is_stable(self):
        a = Simulator()
        b = Simulator()
        assert a.rng.random() == b.rng.random()


class TestProcessSemantics:
    def test_immediate_return_process(self, sim):
        def gen():
            return 42
            yield  # pragma: no cover

        assert sim.run_until_complete(sim.process(gen())) == 42

    def test_chained_already_processed_events(self, sim):
        """Yielding a chain of already-processed events still makes
        forward progress (bounce events)."""
        evs = []
        for i in range(5):
            ev = sim.event()
            ev.succeed(i)
            evs.append(ev)
        sim.run()

        def gen():
            total = 0
            for ev in evs:
                total += yield ev
            return total

        assert sim.run_until_complete(sim.process(gen())) == 10

    def test_process_name_from_generator(self, sim):
        def my_worker():
            yield sim.timeout(0)

        proc = sim.process(my_worker())
        assert "my_worker" in proc.name

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)
