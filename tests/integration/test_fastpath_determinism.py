"""Golden-value determinism regression for the engine fast path.

These tuples were captured on the optimised engine (immediate run
queue, allocation-free resume, single-shot CPU completions, batched
cost charging) with seed=7 and the FAST control-plane costs.  Any
change to engine scheduling order, cost charging, or the data-path
batching that shifts simulated results will break these exact
comparisons -- which is the point: the fast path must not change what
the simulation computes, only how fast it computes it.
"""

from repro import scenarios
from repro.net.packet import WIRE_STATS
from repro.workloads.netperf import tcp_rr, udp_stream

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)

GOLDEN_UDP = {
    # (bytes_received, mbps, messages_sent, drops)
    "xenloop": (1015808, 410.99805937025326, 334, 0),
    "netfront_netback": (1048576, 424.3305163003387, 342, 0),
}

#: same workload after scenario warmup (XenLoop channel CONNECTED), so
#: the traffic actually crosses the FIFO data path.
GOLDEN_UDP_WARM_XENLOOP = (5312512, 2127.3822444065545, 1913, 361)

#: the zero-copy data path's serialization counters for that warm run --
#: they are part of the deterministic output and must not drift.
GOLDEN_WIRE_COUNTERS = {
    "l3_cache_hits": 0,
    "l3_cache_misses": 1914,
    "header_cache_hits": 0,
    "header_cache_misses": 3828,
    "lazy_l4_parses": 1914,
    "bytes_packed": 53592,
    "bytes_parsed": 7850964,
    "fifo_bytes_in": 7889244,
    "fifo_bytes_out": 7889244,
    "pool_hits": 0,
    "pool_misses": 0,
}

GOLDEN_TCP_RR = {
    # (transactions, trans_per_sec, latency_us, p50_us, p99_us)
    "xenloop": (
        147,
        7318.607329518545,
        136.6380179964902,
        136.54522487050943,
        142.24804036293855,
    ),
    "netfront_netback": (
        154,
        7681.570033869365,
        130.18172008988108,
        130.05068528075103,
        135.72010682263328,
    ),
}


def _udp(name):
    scn = scenarios.build(name, FAST, seed=7)
    r = udp_stream(scn, msg_size=4096, duration=0.02)
    return (r.bytes_received, r.mbps, r.messages_sent, r.drops)


def _tcp_rr(name):
    scn = scenarios.build(name, FAST, seed=7)
    r = tcp_rr(scn, duration=0.02)
    return (r.transactions, r.trans_per_sec, r.latency_us, r.p50_us, r.p99_us)


class TestGoldenValues:
    """Bit-exact simulated results for fixed seeds (no approx here)."""

    def test_udp_stream_xenloop(self):
        assert _udp("xenloop") == GOLDEN_UDP["xenloop"]

    def test_udp_stream_netfront_netback(self):
        assert _udp("netfront_netback") == GOLDEN_UDP["netfront_netback"]

    def test_tcp_rr_xenloop(self):
        assert _tcp_rr("xenloop") == GOLDEN_TCP_RR["xenloop"]

    def test_tcp_rr_netfront_netback(self):
        assert _tcp_rr("netfront_netback") == GOLDEN_TCP_RR["netfront_netback"]

    def test_udp_stream_repeatable_within_process(self):
        assert _udp("xenloop") == _udp("xenloop")

    def test_udp_stream_warm_xenloop_fifo_path(self):
        """The FIFO data path's results AND wire counters are golden."""
        scn = scenarios.build("xenloop", FAST, seed=7)
        scn.warmup(max_wait=20.0)
        WIRE_STATS.reset()
        r = udp_stream(scn, msg_size=4096, duration=0.02)
        assert (
            r.bytes_received,
            r.mbps,
            r.messages_sent,
            r.drops,
        ) == GOLDEN_UDP_WARM_XENLOOP
        assert WIRE_STATS.snapshot() == GOLDEN_WIRE_COUNTERS
