"""Open-loop serving cells end to end: pinned goldens, same-seed
bit-identity, and the tail-latency behaviour the scenario exists to
show (queueing under churn, FIFO vs netfront, SLO accounting).

Every value pinned here was produced by a deterministic run; a diff is
a real behaviour change (intentional changes re-pin with a comment in
the commit).  ``make serving-smoke`` runs this file before the bench
cells.
"""

import pytest

from repro import scenarios, trace
from repro.report import format_engine_stats
from repro.workloads import serving

# Small, CI-sized cells -- the bench uses bigger request counts.
FIFO_KW = dict(data_path="fifo", requests=600, rate=15_000.0)
CHURN_KW = dict(data_path="fifo", requests=600, rate=15_000.0, churn=True)
NETLOSS_KW = dict(data_path="netfront", requests=400, rate=10_000.0, loss=0.01)
NETFRONT_KW = dict(data_path="netfront", requests=400, rate=10_000.0)


@pytest.fixture(scope="module")
def fifo_cell():
    return scenarios.run_serving_cell(**FIFO_KW)


@pytest.fixture(scope="module")
def churn_cell():
    return scenarios.run_serving_cell(**CHURN_KW)


@pytest.fixture(scope="module")
def netloss_cell():
    return scenarios.run_serving_cell(**NETLOSS_KW)


@pytest.fixture(scope="module")
def netfront_cell():
    return scenarios.run_serving_cell(**NETFRONT_KW)


class TestDeterminism:
    """Same seed -> bit-identical summary dict.  The arrival process,
    the wheel-timer deadlines, the churn schedule, and the loss plan's
    RNG are all seeded."""

    def test_fifo(self, fifo_cell):
        assert scenarios.run_serving_cell(**FIFO_KW) == fifo_cell

    def test_fifo_with_churn(self, churn_cell):
        assert scenarios.run_serving_cell(**CHURN_KW) == churn_cell

    def test_netfront_with_loss(self, netloss_cell):
        assert scenarios.run_serving_cell(**NETLOSS_KW) == netloss_cell


class TestCellGoldens:
    def test_fifo_golden(self, fifo_cell):
        assert fifo_cell == {
            "scenario": "serving",
            "data_path": "fifo",
            "arrival": "poisson",
            "requests": 600,
            "rate": 15000.0,
            "n_clients": 2,
            "churn": False,
            "loss": 0.0,
            "events": 59991,
            "offered": 600,
            "completed": 600,
            "errors": 0,
            "duration": 0.040125487,
            "throughput_rps": 14953.089,
            "p50_us": 55.909,
            "p99_us": 163.555,
            "p999_us": 422.478,
            "p50_idx": -1686,
            "p99_idx": -1493,
            "slo_violations": 0,
            "deadline_fires": 0,
            "reconnects": 0,
            "timers": {
                "scheduled": 1216,
                "fired": 600,
                "cancelled": 600,
                "cascades": 3,
                "live": 16,
            },
        }

    def test_fifo_churn_golden(self, churn_cell):
        """The fault-plan variant: a client live-migrates out and back
        mid-run (FIFO teardown -> netfront fallback -> channel
        re-establishment) while a bystander crash/restarts.  The p99
        jumps three orders of magnitude over the quiet cell above and
        the requests stalled behind the migration blow the 2 ms SLO --
        every one flagged by its wheel deadline timer as it happened
        (deadline_fires == slo_violations)."""
        assert churn_cell == {
            "scenario": "serving",
            "data_path": "fifo",
            "arrival": "poisson",
            "requests": 600,
            "rate": 15000.0,
            "n_clients": 2,
            "churn": True,
            "loss": 0.0,
            "events": 66772,
            "offered": 600,
            "completed": 600,
            "errors": 0,
            "duration": 0.231062392,
            "throughput_rps": 2596.701,
            "p50_us": 55.671,
            "p99_us": 197753.906,
            "p999_us": 199707.031,
            "p50_idx": -1687,
            "p99_idx": -182,
            "slo_violations": 78,
            "deadline_fires": 78,
            "reconnects": 0,
            "timers": {
                "scheduled": 1226,
                "fired": 696,
                "cancelled": 522,
                "cascades": 5,
                "live": 8,
            },
        }

    def test_netfront_loss_golden(self, netloss_cell):
        """Forced split-driver path with 1% bridge loss: the FIFO cells
        are structurally exempt from bridge loss; here every request
        crosses the bridge twice and retransmission delays land in the
        tail."""
        assert netloss_cell == {
            "scenario": "serving",
            "data_path": "netfront",
            "arrival": "poisson",
            "requests": 400,
            "rate": 10000.0,
            "n_clients": 2,
            "churn": False,
            "loss": 0.01,
            "events": 65312,
            "offered": 400,
            "completed": 400,
            "errors": 0,
            "duration": 0.615966595,
            "throughput_rps": 649.386,
            "p50_us": 390.053,
            "p99_us": 576171.875,
            "p999_us": 576171.875,
            "p50_idx": -1332,
            "p99_idx": 19,
            "slo_violations": 172,
            "deadline_fires": 172,
            "reconnects": 0,
            "timers": {
                "scheduled": 852,
                "fired": 614,
                "cancelled": 228,
                "cascades": 9,
                "live": 10,
            },
            "frames_dropped": 21,
        }


class TestServingBehavior:
    """The shapes the scenario exists to show, asserted as inequalities
    so they survive re-pinning."""

    def test_fifo_beats_netfront_latency(self, fifo_cell, netfront_cell):
        # The paper's story at the median and in the tail: the
        # shared-memory FIFO skips Dom0 and the bridge both ways.
        assert fifo_cell["p50_us"] < netfront_cell["p50_us"] / 3
        assert fifo_cell["p99_us"] < netfront_cell["p99_us"]

    def test_churn_inflates_tail_not_median(self, fifo_cell, churn_cell):
        # The migration stall lives in the tail; the median request
        # never sees it.
        assert churn_cell["p99_us"] > 100 * fifo_cell["p99_us"]
        assert churn_cell["p50_us"] == pytest.approx(fifo_cell["p50_us"], rel=0.05)
        assert churn_cell["slo_violations"] > 0
        assert fifo_cell["slo_violations"] == 0

    def test_deadline_fires_match_violations_when_error_free(
        self, fifo_cell, churn_cell, netloss_cell
    ):
        # Two independent accountings of the same SLO: the wheel timer
        # that fires at t_arrival+slo while the request is in flight,
        # and the Deadline accumulator fed on completion.  With zero
        # errors every armed deadline resolves one way or the other.
        for cell in (fifo_cell, churn_cell, netloss_cell):
            assert cell["errors"] == 0
            assert cell["deadline_fires"] == cell["slo_violations"]

    def test_all_cells_complete_every_request(
        self, fifo_cell, churn_cell, netloss_cell
    ):
        for cell in (fifo_cell, churn_cell, netloss_cell):
            assert cell["completed"] == cell["offered"] == cell["requests"]


class TestStatsPlumbing:
    """engine_stats / report integration on a live simulator."""

    def test_engine_stats_and_report_lines(self):
        scn = scenarios.xenloop_serving()
        scn.warmup()
        serving.open_loop_rr(scn, server="srv", clients=["c1", "c2"], requests=200)
        stats = trace.engine_stats(scn.sim)
        assert stats["serving"]["offered"] == 200
        assert stats["serving"]["completed"] == 200
        assert stats["timers"]["scheduled"] > 0
        rendered = format_engine_stats(stats)
        assert "serving: offered=200" in rendered
        assert "timers: scheduled=" in rendered
