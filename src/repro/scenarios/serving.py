"""Open-loop serving scenario: tail latency under churn.

The paper's evaluation is closed-loop (netperf request/response), so it
reports *service* latency with no queueing.  ``xenloop_serving`` runs
the open-loop generator from :mod:`repro.workloads.serving` against a
server guest and reports the latency distribution an outside client
would see -- including the p99/p999 tail inflation when a migration
tears the FIFO channel down and traffic falls back to the netfront
path mid-run.

* ``data_path="fifo"`` loads XenLoop everywhere (requests ride the
  shared-memory FIFO); ``"netfront"`` forces the split-driver bridge
  path throughout -- the same A/B axis the congestion scenarios use.
* ``churn=True`` adds a second Xen machine and a schedule that
  live-migrates one client guest out and back (FIFO teardown +
  re-establishment while requests are in flight) and crash/restarts a
  bystander guest (discovery noise, no traffic of its own).

:func:`run_serving_cell` is the shared driver behind the golden tests,
``benchmarks/bench_serving.py`` and ``make serving-smoke``.
"""

from __future__ import annotations

from repro import topology
from repro.calibration import DEFAULT_COSTS, CostModel
from repro.scenarios.base import Scenario
from repro.scenarios.congestion import _cc_costs, _module_for, loss_plan
from repro.scenarios.registry import scenario

__all__ = ["run_serving_cell", "serving_churn_schedule", "xenloop_serving"]

#: migration model armed for churn runs: the default pre-copy (3 s) is
#: longer than a golden-scale serving run, so stop-and-copy would never
#: land inside the measured window.  A short pre-copy + 10 ms downtime
#: keeps the FIFO-teardown / netfront-fallback / re-establishment cycle
#: inside the run while staying well above the request SLO.
_CHURN_MIGRATION_DURATION = 0.030
_CHURN_MIGRATION_DOWNTIME = 0.010


def _churn_costs(costs: CostModel) -> CostModel:
    """Arm the short migration model unless the caller pinned one."""
    if costs.migration_duration != DEFAULT_COSTS.migration_duration:
        return costs
    return costs.replace(
        migration_duration=_CHURN_MIGRATION_DURATION,
        migration_downtime=_CHURN_MIGRATION_DOWNTIME,
    )


def serving_churn_schedule(client: str = "c1") -> tuple:
    """The churn plan for a serving run (offsets from ``start_churn``):
    migrate ``client`` to the second machine and back -- its FIFO
    channels tear down and traffic falls back to netfront until
    discovery re-establishes them -- and crash/restart the bystander.
    """
    return (
        topology.ChurnAction(at=0.010, action="migrate", guest=client, to_machine="xenhost2"),
        topology.ChurnAction(at=0.020, action="crash", guest="spare"),
        topology.ChurnAction(at=0.035, action="restart", guest="spare"),
        topology.ChurnAction(at=0.040, action="migrate", guest=client, to_machine="xenhost"),
    )


@scenario(
    description="Open-loop request/response serving; tail latency, optional churn."
)
def xenloop_serving(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    n_clients: int = 2,
    data_path: str = "fifo",
    churn: bool = False,
) -> Scenario:
    """One server guest and ``n_clients`` client guests co-resident on
    one Xen machine.  With ``churn=True`` a second machine hosts a
    bystander guest and the schedule from
    :func:`serving_churn_schedule` runs during the workload."""
    module = _module_for(data_path)
    guests = [topology.GuestSpec("srv", module=module)]
    guests += [topology.GuestSpec(f"c{i + 1}", module=module) for i in range(n_clients)]
    machines = [topology.MachineSpec(name="xenhost", guests=tuple(guests))]
    schedule: tuple = ()
    if churn:
        machines.append(
            topology.MachineSpec(
                name="xenhost2",
                guests=(topology.GuestSpec("spare", module=module),),
            )
        )
        schedule = serving_churn_schedule("c1")
        costs = _churn_costs(costs)
    spec = topology.ClusterSpec(
        name="xenloop_serving",
        machines=tuple(machines),
        endpoints=("c1", "srv"),
        churn=schedule,
    )
    return spec.build(_cc_costs(costs), seed=seed)


def run_serving_cell(
    data_path: str = "fifo",
    requests: int = 2000,
    rate: float = 20_000.0,
    arrival: str = "poisson",
    n_clients: int = 2,
    conns_per_client: int = 4,
    slo: float = 0.002,
    churn: bool = False,
    loss: float = 0.0,
    seed: int = 0,
    costs: CostModel = DEFAULT_COSTS,
) -> dict:
    """Build + run one serving cell; returns a flat deterministic dict.

    Percentiles are reported both in microseconds and as histogram
    bucket indices (``p50_idx``/``p99_idx``) -- the indices are integer
    and platform-exact, which is what the goldens pin.
    """
    from repro import trace
    from repro.workloads import serving

    scn = xenloop_serving(
        costs=costs, seed=seed, n_clients=n_clients, data_path=data_path, churn=churn
    )
    if loss > 0.0:
        loss_plan(loss, seed=seed).bind(scn)
    scn.warmup()
    scn.start_churn()
    result = serving.open_loop_rr(
        scn,
        server="srv",
        clients=[f"c{i + 1}" for i in range(n_clients)],
        requests=requests,
        rate=rate,
        arrival=arrival,
        conns_per_client=conns_per_client,
        slo=slo,
    )
    stats = trace.engine_stats(scn.sim)
    out = {
        "scenario": "serving",
        "data_path": data_path,
        "arrival": arrival,
        "requests": requests,
        "rate": rate,
        "n_clients": n_clients,
        "churn": churn,
        "loss": loss,
        "events": stats["events"],
        "offered": result.offered,
        "completed": result.completed,
        "errors": result.errors,
        "duration": round(result.duration, 9),
        "throughput_rps": round(result.throughput_rps, 3),
        "p50_us": round(result.p50_us, 3),
        "p99_us": round(result.p99_us, 3),
        "p999_us": round(result.p999_us, 3),
        "p50_idx": result.p50_idx,
        "p99_idx": result.p99_idx,
        "slo_violations": result.slo_violations,
        "deadline_fires": result.deadline_fires,
        "reconnects": result.reconnects,
        "timers": stats.get("timers"),
    }
    plan = getattr(scn.sim, "fault_plan", None)
    if plan is not None:
        from repro.faults import PKT_LOSS

        out["frames_dropped"] = plan.injected.get(PKT_LOSS, 0)
    return out
