"""Guest-side roster view for delta discovery.

Under the thousand-guest control plane, Dom0 no longer broadcasts the
full [guest-ID, MAC] roster every scan; it multicasts one
:class:`~repro.core.protocol.RosterDelta` per *changed* scan plus a
periodic :class:`~repro.core.protocol.FullSync`.  This module is the
receiver-side bookkeeping:

* **Epoch tracking.**  Dom0 increments its epoch once per changed
  scan.  A delta applies only when its epoch is exactly one past the
  last epoch applied here; a gap means a delta was lost (frame drop,
  late boot) and the view flags itself *desynced* and waits for the
  next full sync rather than applying a diff against unknown state.
  Stale/duplicate epochs are ignored, which is what makes the
  receive-side fault tap's ``dup`` rule safe.
* **Footprint policy.**  With ``track_all=True`` the view mirrors the
  whole roster (what an Announce-mode guest effectively keeps).  With
  ``track_all=False`` -- the thousand-guest default -- the view only
  *stores* peers something asked about (a data-path miss resolved via
  WhoIs/PeerInfo, or an inbound handshake), so a guest's table is
  O(active peers) while joins/leaves still flow through for the peers
  it does track.
* **Negative cache.**  In sparse mode a WhoIs answered "not found" is
  remembered so the data path does not re-query Dom0 on every packet
  to a non-XenLoop destination; any join or full sync listing that MAC
  clears the entry (full syncs clear the whole cache -- it is a purely
  local heuristic and epochs make re-population cheap).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import FullSync, RosterDelta
    from repro.net.addr import MacAddr

__all__ = ["RosterChanges", "RosterView"]


class RosterChanges:
    """What one applied delta/full-sync means for *this* guest.

    ``joins``/``leaves`` are restricted to entries the view tracks (in
    sparse mode, peers the guest has materialized); the control plane
    turns them into ``peer_discovered``/``peer_lost`` notifications and
    channel teardowns.  ``domid_changed`` lists tracked MACs that
    re-advertised under a new guest-ID (crash/restart reusing a MAC):
    they appear in *both* ``leaves`` (old identity) and ``joins`` (new).
    """

    __slots__ = ("joins", "leaves", "domid_changed")

    def __init__(self):
        self.joins: list[tuple[int, "MacAddr"]] = []
        self.leaves: list["MacAddr"] = []
        self.domid_changed: list["MacAddr"] = []


class RosterView:
    """One guest's (possibly sparse) view of the Dom0 roster."""

    def __init__(self, own_mac: "MacAddr", track_all: bool = False):
        self.own_mac = own_mac
        self.track_all = track_all
        #: MAC -> guest-ID of tracked peers (never includes ``own_mac``).
        self.entries: dict["MacAddr", int] = {}
        #: last epoch applied; 0 = never heard from Dom0 (empty base).
        self.epoch = 0
        #: an epoch gap was seen; waiting for a full sync to repair.
        self.desynced = False
        #: MACs Dom0 answered "not a XenLoop peer" (sparse-mode cache).
        self.negative: set["MacAddr"] = set()
        self.deltas_applied = 0
        self.deltas_ignored = 0
        self.deltas_gapped = 0
        self.full_syncs_applied = 0

    # ------------------------------------------------------------------
    # Tracking policy
    # ------------------------------------------------------------------
    def track(self, mac: "MacAddr", domid: int) -> None:
        """Materialize one peer (WhoIs answer / inbound handshake)."""
        if mac != self.own_mac:
            self.entries[mac] = domid
            self.negative.discard(mac)

    def note_negative(self, mac: "MacAddr") -> None:
        """Remember a "not found" WhoIs answer."""
        self.negative.add(mac)

    # ------------------------------------------------------------------
    # Frame application
    # ------------------------------------------------------------------
    def apply_delta(self, msg: "RosterDelta") -> RosterChanges | None:
        """Apply one delta; returns the tracked changes, or None when the
        frame was ignored (stale/duplicate) or gapped (now desynced)."""
        if msg.epoch <= self.epoch:
            self.deltas_ignored += 1
            return None
        if msg.epoch != self.epoch + 1 or self.desynced:
            # Missed at least one delta: our base no longer matches the
            # scanner's, so diffing against it would corrupt the view.
            self.deltas_gapped += 1
            self.desynced = True
            return None
        self.epoch = msg.epoch
        self.deltas_applied += 1
        changes = RosterChanges()
        for domid, mac in msg.leaves:
            if mac == self.own_mac:
                continue
            if mac in self.entries:
                del self.entries[mac]
                changes.leaves.append(mac)
        for domid, mac in msg.joins:
            if mac == self.own_mac:
                continue
            self.negative.discard(mac)
            known = self.entries.get(mac)
            if known is not None and known != domid:
                # Crash/restart reusing the MAC: same key, new identity.
                changes.leaves.append(mac)
                changes.domid_changed.append(mac)
                self.entries[mac] = domid
                changes.joins.append((domid, mac))
            elif self.track_all:
                self.entries[mac] = domid
                if known is None:
                    changes.joins.append((domid, mac))
        return changes

    def apply_full_sync(self, msg: "FullSync") -> RosterChanges | None:
        """Reconcile against the scanner's complete roster; returns the
        tracked changes, or None when the frame is stale."""
        if msg.epoch < self.epoch:
            self.deltas_ignored += 1
            return None
        self.epoch = msg.epoch
        self.desynced = False
        self.full_syncs_applied += 1
        self.negative.clear()
        roster = {mac: domid for domid, mac in msg.entries if mac != self.own_mac}
        changes = RosterChanges()
        for mac, known in list(self.entries.items()):
            actual = roster.get(mac)
            if actual is None:
                del self.entries[mac]
                changes.leaves.append(mac)
            elif actual != known:
                changes.leaves.append(mac)
                changes.domid_changed.append(mac)
                self.entries[mac] = actual
                changes.joins.append((actual, mac))
        if self.track_all:
            for mac, domid in roster.items():
                if mac not in self.entries:
                    self.entries[mac] = domid
                    changes.joins.append((domid, mac))
        return changes

    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Complete view state for the snapshot manifest."""
        return {
            "track_all": self.track_all,
            "epoch": self.epoch,
            "desynced": self.desynced,
            "entries": {str(mac): domid for mac, domid in self.entries.items()},
            "negative": sorted(str(mac) for mac in self.negative),
            "deltas_applied": self.deltas_applied,
            "deltas_ignored": self.deltas_ignored,
            "deltas_gapped": self.deltas_gapped,
            "full_syncs_applied": self.full_syncs_applied,
        }
