"""Congestion-cell benchmark: incast + fairness, FIFO vs netfront,
lossless vs bridge loss.

Runs the :mod:`repro.scenarios.congestion` cells, prints the
goodput/fairness/retransmit summary per cell, and appends one
``kind="congestion"`` entry per cell to ``BENCH_engine.json`` so the
regression gate (``tools/check_bench_regression.py``) tracks the
events/s of each cell like-for-like by its ``cell`` label.

``--smoke`` shrinks the transfer sizes for CI (``make
congestion-smoke``); the full run records the comparison quoted in
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine.json"
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

#: (scenario, data_path, loss) cells measured per run.
CELLS = (
    ("incast", "fifo", 0.0),
    ("incast", "netfront", 0.0),
    ("incast", "netfront", 0.01),
    ("fairness", "fifo", 0.0),
    ("fairness", "netfront", 0.0),
    ("fairness", "netfront", 0.01),
)


def _cell_label(scenario: str, data_path: str, loss: float) -> str:
    return f"{scenario}/{data_path}/loss{loss:g}"


def run_cell(scenario: str, data_path: str, loss: float, smoke: bool) -> dict:
    from repro.scenarios import run_fairness_cell, run_incast_cell

    t0 = time.perf_counter()
    if scenario == "incast":
        summary = run_incast_cell(
            data_path=data_path,
            loss=loss,
            bytes_per_flow=(1 << 18) if smoke else (1 << 21),
        )
    else:
        summary = run_fairness_cell(
            data_path=data_path, loss=loss, duration=0.05 if smoke else 0.2
        )
    wall = time.perf_counter() - t0
    summary["wall_s"] = round(wall, 6)
    summary["events_per_sec"] = summary["events"] / wall if wall > 0 else 0.0
    return summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI-sized cells")
    parser.add_argument(
        "--dry-run", action="store_true", help="measure without appending history"
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT, type=pathlib.Path)
    args = parser.parse_args()

    from bench_engine_throughput import _git_sha, _load_history

    sha = _git_sha()
    entries = []
    for scenario, data_path, loss in CELLS:
        label = _cell_label(scenario, data_path, loss)
        summary = run_cell(scenario, data_path, loss, smoke=args.smoke)
        entry = {
            "kind": "congestion",
            "cell": label,
            "sha": sha,
            "smoke": bool(args.smoke),
            **summary,
        }
        entries.append(entry)
        parts = [
            f"{label:<28}",
            f"{summary['aggregate_mbps']:>9.1f} Mbit/s" if summary.get("aggregate_mbps") else f"{summary.get('elephant_mbps', 0):>7.1f}+{summary.get('mice_mbps', 0):.1f} Mbit/s",
            f"fair={summary['fairness']:.3f}",
            f"retx={summary['retransmissions']}",
            f"(fast={summary['fast_retransmits']}, rto={summary['rto_retransmits']})",
            f"drops={summary.get('frames_dropped', 0)}",
            f"{summary['events_per_sec']:,.0f} events/s",
        ]
        print("  ".join(parts))

    if not args.dry_run:
        history = _load_history(args.output)
        history.extend(entries)
        data = json.loads(args.output.read_text()) if args.output.exists() else {}
        workload = data.get("workload", {}) if isinstance(data, dict) else {}
        args.output.write_text(
            json.dumps({"workload": workload, "history": history}, indent=2) + "\n"
        )
        print(f"wrote {args.output} ({len(history)} history entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
