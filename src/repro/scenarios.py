"""The four communication scenarios of the paper's evaluation (Sect. 4).

* ``inter_machine``     -- two native hosts across a 1 Gbps switch.
* ``netfront_netback``  -- two guests on one Xen machine, standard path.
* ``xenloop``           -- same, with the XenLoop module in both guests
  and the discovery module in Dom0.
* ``native_loopback``   -- two processes on one non-virtualized host
  over the local loopback interface (the baseline ceiling).

Each builder returns a :class:`Scenario` exposing the two communication
endpoints plus ``warmup()``, which drives ARP resolution (and, for the
XenLoop scenario, discovery + channel bootstrap) to completion so that
measurements start from the steady state the paper's numbers reflect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.calibration import DEFAULT_COSTS, CostModel
from repro.core.channel import ChannelState
from repro.core.discovery import DiscoveryModule
from repro.core.module import XenLoopModule
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.nic import EthernetSwitch, PhysNIC
from repro.net.node import Node
from repro.net.stack import NetworkStack
from repro.sim.engine import SimulationError, Simulator
from repro.xen.machine import Machine, XenMachine

__all__ = [
    "Scenario",
    "SCENARIO_BUILDERS",
    "build",
    "inter_machine",
    "native_loopback",
    "netfront_netback",
    "xenloop",
]


@dataclass
class Scenario:
    """A built evaluation topology plus its measurement endpoints."""
    name: str
    sim: Simulator
    costs: CostModel
    #: the two communication endpoints (may be the same node for loopback).
    node_a: Node
    node_b: Node
    ip_a: IPv4Addr
    ip_b: IPv4Addr
    machines: list = field(default_factory=list)
    switch: Optional[EthernetSwitch] = None
    modules: dict = field(default_factory=dict)  # node name -> XenLoopModule
    discovery: Optional[DiscoveryModule] = None
    #: whether warmup() should wait for XenLoop channels to connect
    #: (False for topologies whose endpoints start on different machines).
    expect_channels: bool = True

    def warmup(self, max_wait: float = 30.0) -> None:
        """Run the simulation until the data path is in steady state."""
        self._ping_once()
        if not self.modules or not self.expect_channels:
            return
        deadline = self.sim.now + max_wait
        while self.sim.now < deadline:
            if self._channels_connected():
                return
            # Discovery announcements arrive every discovery_period; each
            # ping after an announcement triggers channel bootstrap.
            self.sim.run(until=self.sim.now + self.costs.discovery_period / 4)
            self._ping_once()
        raise SimulationError(f"{self.name}: XenLoop channels never connected")

    def _ping_once(self) -> None:
        stack = self.node_a.stack

        def _gen():
            ident = stack.icmp.alloc_ident()
            waiter = yield from stack.icmp.send_echo(self.ip_b, ident, 0)
            yield self.sim.any_of([waiter, self.sim.timeout(1.0)])

        proc = self.sim.process(_gen(), name="warmup-ping")
        self.sim.run_until_complete(proc, timeout=5.0)

    def _channels_connected(self) -> bool:
        if not self.modules:
            return True
        for module in self.modules.values():
            if not any(
                ch.state is ChannelState.CONNECTED for ch in module.channels.values()
            ):
                return False
        return True

    def xenloop_module(self, node: Node) -> Optional[XenLoopModule]:
        """The XenLoop module loaded in ``node``, if any."""
        return self.modules.get(node.name)


_IP_A = IPv4Addr("10.0.0.1")
_IP_B = IPv4Addr("10.0.0.2")


def native_loopback(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Two processes on one non-virtualized host, via the loopback device."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, costs, "host", n_cores=2)
    host = Node(sim, machine.cpus, costs, "host")
    NetworkStack(host, _IP_A)
    return Scenario(
        name="native_loopback",
        sim=sim,
        costs=costs,
        node_a=host,
        node_b=host,
        ip_a=_IP_A,
        ip_b=_IP_A,  # loopback: both endpoints are the same address
        machines=[machine],
    )


def inter_machine(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Two native machines across a 1 Gbps Ethernet switch."""
    sim = Simulator(seed=seed)
    switch = EthernetSwitch(sim, costs)
    nodes = []
    for i, ip in enumerate((_IP_A, _IP_B)):
        machine = Machine(sim, costs, f"m{i}", n_cores=2)
        node = Node(sim, machine.cpus, costs, f"host{i}")
        NetworkStack(node, ip)
        nic = PhysNIC(node, costs, f"host{i}.eth0", MacAddr(0x0002B3000001 + i))
        nic.connect(switch)
        node.stack.add_device(nic, primary=True)
        nodes.append((machine, node))
    return Scenario(
        name="inter_machine",
        sim=sim,
        costs=costs,
        node_a=nodes[0][1],
        node_b=nodes[1][1],
        ip_a=_IP_A,
        ip_b=_IP_B,
        machines=[m for m, _ in nodes],
        switch=switch,
    )


def _xen_pair(costs: CostModel, seed: int = 0):
    sim = Simulator(seed=seed)
    machine = XenMachine(sim, costs, "xenhost", n_cores=2)
    vm1 = machine.create_guest("vm1", ip=_IP_A)
    vm2 = machine.create_guest("vm2", ip=_IP_B)
    return sim, machine, vm1, vm2


def netfront_netback(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Co-resident guests over the standard split-driver path via Dom0."""
    sim, machine, vm1, vm2 = _xen_pair(costs, seed)
    return Scenario(
        name="netfront_netback",
        sim=sim,
        costs=costs,
        node_a=vm1,
        node_b=vm2,
        ip_a=_IP_A,
        ip_b=_IP_B,
        machines=[machine],
    )


def xenloop(
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
    fifo_order: int = 13,
    zero_copy_rx: bool = False,
    socket_bypass: bool = False,
) -> Scenario:
    """Co-resident guests with XenLoop loaded (64 KB FIFOs by default).

    ``socket_bypass=True`` loads the experimental transport-layer
    variant (the paper's future work) instead of the base module.
    """
    sim, machine, vm1, vm2 = _xen_pair(costs, seed)
    if socket_bypass:
        from repro.core.socket_bypass import SocketBypassModule as module_cls
    else:
        module_cls = XenLoopModule
    modules = {
        vm1.name: module_cls(vm1, fifo_order=fifo_order, zero_copy_rx=zero_copy_rx),
        vm2.name: module_cls(vm2, fifo_order=fifo_order, zero_copy_rx=zero_copy_rx),
    }
    discovery = DiscoveryModule(machine)
    return Scenario(
        name="xenloop",
        sim=sim,
        costs=costs,
        node_a=vm1,
        node_b=vm2,
        ip_a=_IP_A,
        ip_b=_IP_B,
        machines=[machine],
        modules=modules,
        discovery=discovery,
    )


def xenloop_mesh(
    n_guests: int,
    costs: CostModel = DEFAULT_COSTS,
    seed: int = 0,
) -> Scenario:
    """``n_guests`` co-resident guests, XenLoop loaded in all of them.

    Channels form lazily and pairwise on first traffic, so a full mesh
    emerges only between guests that actually talk.  ``node_a``/``node_b``
    are the first two guests; the rest are in ``machines[0].guests``.
    """
    if n_guests < 2:
        raise ValueError("a mesh needs at least two guests")
    sim = Simulator(seed=seed)
    machine = XenMachine(sim, costs, "xenhost", n_cores=2)
    guests = [
        machine.create_guest(f"vm{i + 1}", ip=IPv4Addr(f"10.0.0.{i + 1}"))
        for i in range(n_guests)
    ]
    modules = {g.name: XenLoopModule(g) for g in guests}
    discovery = DiscoveryModule(machine)
    return Scenario(
        name="xenloop_mesh",
        sim=sim,
        costs=costs,
        node_a=guests[0],
        node_b=guests[1],
        ip_a=guests[0].ip,
        ip_b=guests[1].ip,
        machines=[machine],
        modules=modules,
        discovery=discovery,
        # warmup() only drives a<->b; the other pairs connect on their
        # own first traffic.
        expect_channels=False,
    )


def migration_pair(costs: CostModel = DEFAULT_COSTS, seed: int = 0) -> Scenario:
    """Two Xen machines on a switch, one guest each, XenLoop loaded on
    both guests and discovery in both Dom0s -- the Fig. 11 topology.

    ``node_b`` (vm2, on machine B) is the guest that migrates.
    """
    sim = Simulator(seed=seed)
    switch = EthernetSwitch(sim, costs)
    machine_a = XenMachine(sim, costs, "xenA", n_cores=2)
    machine_b = XenMachine(sim, costs, "xenB", n_cores=2)
    machine_a.attach_network(switch, MacAddr("00:02:b3:aa:00:01"))
    machine_b.attach_network(switch, MacAddr("00:02:b3:bb:00:01"))
    vm1 = machine_a.create_guest("vm1", ip=_IP_A)
    vm2 = machine_b.create_guest("vm2", ip=_IP_B)
    modules = {
        vm1.name: XenLoopModule(vm1),
        vm2.name: XenLoopModule(vm2),
    }
    discovery = DiscoveryModule(machine_a)
    DiscoveryModule(machine_b)
    return Scenario(
        name="migration_pair",
        sim=sim,
        costs=costs,
        node_a=vm1,
        node_b=vm2,
        ip_a=_IP_A,
        ip_b=_IP_B,
        machines=[machine_a, machine_b],
        switch=switch,
        modules=modules,
        discovery=discovery,
        expect_channels=False,
    )


SCENARIO_BUILDERS = {
    "inter_machine": inter_machine,
    "netfront_netback": netfront_netback,
    "xenloop": xenloop,
    "native_loopback": native_loopback,
}


def build(name: str, costs: CostModel = DEFAULT_COSTS, **kwargs) -> Scenario:
    """Build a scenario by name (see SCENARIO_BUILDERS)."""
    try:
        builder = SCENARIO_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(SCENARIO_BUILDERS)}")
    return builder(costs, **kwargs)
