"""Benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures: it
drives the simulation via ``benchmark.pedantic`` (one round -- the
simulation is deterministic), prints the paper-style table or series,
records headline values in ``benchmark.extra_info``, and writes the
rendered output under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
