"""Figure 9: OSU MPI bi-directional bandwidth versus message size."""

from repro import report
from repro.workloads import osu

from _bench_utils import SCENARIO_ORDER, build_warm, emit

SIZES = [64, 512, 2048, 8192, 16384, 65536]


def _measure():
    series = {}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        _s, values = osu.osu_bibw(scn, sizes=SIZES).series()
        series[name] = values
    return series


def test_fig9_osu_bidirectional_bw(run_once, benchmark):
    series = run_once(_measure)
    emit(
        "fig9_osu_bibw",
        report.format_series(
            "Fig. 9: OSU bi-directional bandwidth (Mbit/s) vs message size (B)",
            "msg_size",
            SIZES,
            series,
            precision=0,
        ),
    )
    benchmark.extra_info["series"] = {k: [round(v) for v in vs] for k, vs in series.items()}
    for i, size in enumerate(SIZES):
        if size <= 8192:
            assert series["xenloop"][i] > series["netfront_netback"][i]
    # Bi-directional traffic exceeds uni-directional capacity usage: the
    # xenloop numbers at small sizes beat the wire in both directions.
    assert max(series["xenloop"]) > max(series["inter_machine"])
