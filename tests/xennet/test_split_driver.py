"""Netfront/netback split-driver path between co-resident guests."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr
from repro.sim.engine import Simulator
from repro.xen.machine import XenMachine
from tests.conftest import run_gen


@pytest.fixture
def pair(sim):
    machine = XenMachine(sim, DEFAULT_COSTS, "m0", n_cores=2)
    vm1 = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
    vm2 = machine.create_guest("vm2", ip=IPv4Addr("10.0.0.2"))
    return machine, vm1, vm2


def ping(sim, node, dst_ip, seq=0, size=56):
    def gen():
        ident = node.stack.icmp.alloc_ident()
        t0 = sim.now
        waiter = yield from node.stack.icmp.send_echo(dst_ip, ident, seq, size)
        yield sim.any_of([waiter, sim.timeout(1.0)])
        return (sim.now - t0) if waiter.triggered else None

    return run_gen(sim, gen())


class TestDataPath:
    def test_guest_to_guest_ping(self, sim, pair):
        _machine, vm1, vm2 = pair
        assert ping(sim, vm1, vm2.ip) is not None

    def test_traffic_crosses_bridge(self, sim, pair):
        machine, vm1, vm2 = pair
        ping(sim, vm1, vm2.ip)
        assert machine.bridge.frames_forwarded + machine.bridge.frames_flooded > 0

    def test_netback_counts_packets(self, sim, pair):
        _machine, vm1, vm2 = pair
        ping(sim, vm1, vm2.ip)
        assert vm1.netfront.netback.tx_packets >= 1
        assert vm2.netfront.netback.rx_packets >= 1

    def test_latency_exceeds_double_virq(self, sim, pair):
        _machine, vm1, vm2 = pair
        ping(sim, vm1, vm2.ip)  # warm ARP
        rtt = ping(sim, vm1, vm2.ip, seq=1)
        # per direction: two event-channel deliveries (guest->dom0, dom0->guest)
        assert rtt > 4 * DEFAULT_COSTS.virq_delivery_latency

    def test_udp_over_split_driver(self, sim, pair):
        _machine, vm1, vm2 = pair
        server = vm2.stack.udp_socket(7000)
        client = vm1.stack.udp_socket()

        def cli():
            yield from client.sendto(b"via-netback", (vm2.ip, 7000))

        def srv():
            data, _ = yield from server.recvfrom()
            return data

        sim.process(cli())
        assert run_gen(sim, srv()) == b"via-netback"

    def test_tcp_over_split_driver(self, sim, pair):
        _machine, vm1, vm2 = pair
        listener = vm2.stack.tcp_listen(7001)
        payload = bytes(range(256)) * 64  # 16 KB

        def srv():
            conn = yield from listener.accept()
            return (yield from conn.recv_exactly(len(payload)))

        def cli():
            conn = yield from vm1.stack.tcp_connect((vm2.ip, 7001))
            yield from conn.send(payload)

        sim.process(cli())
        assert run_gen(sim, srv()) == payload

    def test_large_frame_uses_transfer_path(self, sim, pair):
        """Packets above the copy threshold take the grant-transfer path,
        which is costlier per byte than the XenLoop copy (Sect. 2)."""
        _machine, vm1, vm2 = pair
        ping(sim, vm1, vm2.ip, seq=0)  # warm ARP
        small = ping(sim, vm1, vm2.ip, seq=1, size=64)
        big = ping(sim, vm1, vm2.ip, seq=2, size=4000)
        assert big > small

    def test_ring_backpressure_without_loss(self, sim, pair):
        """Blast more UDP datagrams than ring slots; TCP-free path must
        deliver or drop only at the socket buffer, never in the rings."""
        _machine, vm1, vm2 = pair
        server = vm2.stack.udp_socket(7002, rcvbuf=1 << 22)
        client = vm1.stack.udp_socket()
        count = DEFAULT_COSTS.ring_size * 2

        def cli():
            for i in range(count):
                yield from client.sendto(bytes(100), (vm2.ip, 7002))

        proc = sim.process(cli())
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 0.1)
        assert server.rx_msgs == count


class TestSuspendResume:
    def test_suspend_holds_packets(self, sim, pair):
        _machine, vm1, vm2 = pair
        ping(sim, vm1, vm2.ip)  # warm ARP
        vm1.netfront.suspend()
        server = vm2.stack.udp_socket(7010)
        client = vm1.stack.udp_socket()

        def cli():
            yield from client.sendto(b"held", (vm2.ip, 7010))

        sim.process(cli())
        sim.run(until=sim.now + 0.5)
        assert server.rx_msgs == 0
        vm1.netfront.resume()
        sim.run(until=sim.now + 0.5)
        assert server.rx_msgs == 1

    def test_disconnect_detaches_bridge_port(self, sim, pair):
        machine, vm1, _vm2 = pair
        n = len(machine.bridge.ports)
        vm1.netfront.disconnect()
        assert len(machine.bridge.ports) == n - 1
