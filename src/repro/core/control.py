"""The XenLoop control plane (paper Sect. 3.2 and 3.4).

The paper describes two distinct concerns: the *control protocol* --
soft-state discovery, the bootstrap handshake (connect request /
create_channel / channel_ack with retries), teardown, and the migration
response -- and the *data channel* (the two shared-memory FIFOs plus
the event channel, Sect. 3.3).  This module is the control side,
extracted so that :mod:`repro.core.channel` is purely the FIFO
transport:

* :class:`ChannelEvent` / :data:`TRANSITIONS` / :class:`ChannelFSM` --
  a typed, table-driven finite state machine over
  :class:`~repro.core.channel.ChannelState`.  Every lifecycle move a
  channel endpoint can make is one ``(state, event) -> state`` row;
  anything absent from the table is explicitly ignored (e.g. an
  out-of-order ``CREATE_ACK`` arriving after teardown).
* :class:`LifecycleHooks` -- the shared observer interface.  The
  module implements it for mapping-table bookkeeping (and the
  socket-bypass subclass for stream-handler attachment), the channel
  implements it for data-plane reactions (start the drain worker on
  connect), and the Dom0 discovery module implements it to maintain
  its roster of advertising guests.
* :class:`ChannelController` -- the per-channel state machine driver:
  the listener/connector handshake generators, retry/abort logic, and
  teardown sequencing.  It calls into the channel only for transport
  actions (allocate/map/disengage/drain); the channel never decides
  lifecycle on its own.
* :class:`ControlPlane` -- the per-guest orchestrator extracted from
  :class:`~repro.core.module.XenLoopModule`: the [guest-ID, MAC]
  mapping table, control-frame dispatch, bootstrap initiation, the
  idle-channel reaper, and the migration/shutdown/unload responses.

Determinism note: the FSM itself is pure bookkeeping (no simulated
time, no event-calendar entries), so driving the existing handshake
and teardown generators through it preserves the exact event order the
PR 1/2 golden tests pin.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro import faults
from repro.core.protocol import (
    DOM0_MAC,
    Announce,
    ChannelAck,
    ConnectRequest,
    CreateChannel,
    FullSync,
    PeerInfo,
    RosterDelta,
    WhoIs,
    parse_message,
)
from repro.core.roster import RosterChanges, RosterView

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.channel import Channel
    from repro.core.module import XenLoopModule
    from repro.net.addr import MacAddr

__all__ = [
    "ChannelController",
    "ChannelEvent",
    "ChannelFSM",
    "ChannelState",
    "ControlPlane",
    "LifecycleHooks",
    "TRANSITIONS",
]


class ChannelState(enum.Enum):
    """Lifecycle states of one channel endpoint."""
    INIT = "init"
    #: connector waiting for create_channel / listener waiting for ack.
    BOOTSTRAPPING = "bootstrapping"
    CONNECTED = "connected"
    CLOSED = "closed"
    FAILED = "failed"


class ChannelEvent(enum.Enum):
    """Everything that can happen to a channel endpoint's lifecycle."""

    #: local decision to start bootstrapping (listener allocates, or
    #: connector sends CONNECT_REQUEST and awaits create_channel).
    BOOTSTRAP_START = "bootstrap_start"
    #: peer asked us to act as listener (CONNECT_REQUEST frame).
    CONNECT_REQ = "connect_req"
    #: CREATE_CHANNEL frame arrived (connector side maps + binds).
    CREATE_CHANNEL = "create_channel"
    #: CHANNEL_ACK frame arrived (listener side completes).
    CREATE_ACK = "create_ack"
    #: connector finished mapping/binding and is about to ack.
    HANDSHAKE_DONE = "handshake_done"
    #: connector could not map the peer's grants / bind the port.
    MAP_FAILED = "map_failed"
    #: listener exhausted its create_channel retries without an ack.
    ACK_TIMEOUT = "ack_timeout"
    #: a discovery announcement confirmed the peer (soft-state refresh).
    ANNOUNCE_SEEN = "announce_seen"
    #: peer marked the shared FIFOs inactive (its teardown).
    PEER_FIN = "peer_fin"
    #: locally initiated teardown (module unload, explicit close).
    LOCAL_TEARDOWN = "local_teardown"
    #: announcement no longer lists the peer (died / migrated away /
    #: unloaded its module): soft-state pruning.
    PEER_LOST = "peer_lost"
    #: idle-channel reaper expired the channel (Sect. 3.1).
    IDLE_EXPIRED = "idle_expired"
    #: hypervisor pre-migration callback (Sect. 3.4).
    PRE_MIGRATE = "pre_migrate"
    #: guest shutdown callback.
    SHUTDOWN = "shutdown"


#: the causes that close a channel from any live state.
_TEARDOWN_EVENTS = (
    ChannelEvent.LOCAL_TEARDOWN,
    ChannelEvent.PEER_LOST,
    ChannelEvent.IDLE_EXPIRED,
    ChannelEvent.PRE_MIGRATE,
    ChannelEvent.SHUTDOWN,
)

#: the table: ``(state, event) -> new state``.  A missing row means the
#: event is *ignored* in that state (``ChannelFSM.feed`` returns None) --
#: e.g. a duplicate CREATE_ACK after the channel is CLOSED, or a
#: CONNECT_REQ racing an in-flight bootstrap.
TRANSITIONS: dict[tuple[ChannelState, ChannelEvent], ChannelState] = {
    # -- INIT: freshly created, no resources yet ------------------------
    (ChannelState.INIT, ChannelEvent.BOOTSTRAP_START): ChannelState.BOOTSTRAPPING,
    (ChannelState.INIT, ChannelEvent.CREATE_CHANNEL): ChannelState.BOOTSTRAPPING,
    (ChannelState.INIT, ChannelEvent.CONNECT_REQ): ChannelState.INIT,
    (ChannelState.INIT, ChannelEvent.ANNOUNCE_SEEN): ChannelState.INIT,
    # -- BOOTSTRAPPING: handshake in flight ------------------------------
    (ChannelState.BOOTSTRAPPING, ChannelEvent.CREATE_ACK): ChannelState.CONNECTED,
    (ChannelState.BOOTSTRAPPING, ChannelEvent.HANDSHAKE_DONE): ChannelState.CONNECTED,
    # duplicate create_channel (listener retry): re-enter the connector path.
    (ChannelState.BOOTSTRAPPING, ChannelEvent.CREATE_CHANNEL): ChannelState.BOOTSTRAPPING,
    (ChannelState.BOOTSTRAPPING, ChannelEvent.MAP_FAILED): ChannelState.FAILED,
    (ChannelState.BOOTSTRAPPING, ChannelEvent.ACK_TIMEOUT): ChannelState.FAILED,
    (ChannelState.BOOTSTRAPPING, ChannelEvent.ANNOUNCE_SEEN): ChannelState.BOOTSTRAPPING,
    # -- CONNECTED: data path live ---------------------------------------
    (ChannelState.CONNECTED, ChannelEvent.PEER_FIN): ChannelState.CLOSED,
    (ChannelState.CONNECTED, ChannelEvent.ANNOUNCE_SEEN): ChannelState.CONNECTED,
}
# Teardown causes close the channel from every live state (the quick
# path of `teardown` handles not-yet-connected channels: a bootstrap
# can be abandoned by unload/migration before it ever connects), and
# re-closing a CLOSED or FAILED channel is an idempotent no-op move.
for _state in (
    ChannelState.INIT,
    ChannelState.BOOTSTRAPPING,
    ChannelState.CONNECTED,
    ChannelState.CLOSED,
    ChannelState.FAILED,
):
    for _event in _TEARDOWN_EVENTS:
        TRANSITIONS[(_state, _event)] = ChannelState.CLOSED
del _state, _event


class LifecycleHooks:
    """Observer interface for control-plane lifecycle notifications.

    Implemented by :class:`~repro.core.module.XenLoopModule` (channel
    table bookkeeping; the socket-bypass subclass attaches stream
    handlers in :meth:`channel_created`), by
    :class:`~repro.core.channel.Channel` (data-plane reactions such as
    starting the drain worker), and by
    :class:`~repro.core.discovery.DiscoveryModule` (roster
    maintenance).  Every method is an intentional no-op here so
    implementors override only what they care about.
    """

    def channel_created(self, channel: "Channel") -> None:
        """A channel object was created and registered in the table."""

    def channel_connected(self, channel: "Channel") -> None:
        """The handshake completed; the data path is live."""

    def channel_closed(self, channel: "Channel") -> None:
        """The channel disengaged (any cause) and left the table."""

    def channel_failed(self, channel: "Channel") -> None:
        """Bootstrap failed (map error or ack timeout)."""

    def peer_discovered(self, mac: "MacAddr", domid: int) -> None:
        """A discovery announcement introduced a new co-resident peer."""

    def peer_lost(self, mac: "MacAddr") -> None:
        """A peer stopped being announced (soft-state expiry)."""


class ChannelFSM:
    """Table-driven state holder for one channel endpoint.

    Pure bookkeeping: feeding an event consults :data:`TRANSITIONS`
    and either moves to the new state (returned) or ignores the event
    (returns None).  The last few transitions are kept in ``history``
    for debugging and assertions.
    """

    __slots__ = ("state", "history")

    def __init__(self, initial: ChannelState = ChannelState.INIT):
        self.state = initial
        self.history: deque[tuple[ChannelEvent, ChannelState, ChannelState]] = deque(
            maxlen=16
        )

    def feed(self, event: ChannelEvent) -> Optional[ChannelState]:
        """Apply one event; returns the new state, or None if ignored."""
        new = TRANSITIONS.get((self.state, event))
        if new is None:
            return None
        self.history.append((event, self.state, new))
        self.state = new
        return new

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ChannelFSM {self.state.value}>"

    def snapshot_state(self) -> dict:
        """Current state plus the retained transition history."""
        return {
            "state": self.state.value,
            "history": [
                [event.value, old.value, new.value]
                for (event, old, new) in self.history
            ],
        }


class ChannelController:
    """Drives one channel endpoint's lifecycle (paper Sect. 3.3 control).

    Owns the FSM and the handshake/teardown sequencing; calls into the
    data-plane :class:`~repro.core.channel.Channel` only for transport
    actions (allocate, grant, map, drain, disengage).  Lifecycle
    observers are notified through the shared :class:`LifecycleHooks`
    interface -- by construction the channel itself and its module.
    """

    def __init__(self, channel: "Channel", hooks: tuple[LifecycleHooks, ...]):
        self.channel = channel
        self.fsm = ChannelFSM()
        self.hooks = tuple(hooks)
        self._ack_event = None
        #: handshake sends so far (listener: CREATE_CHANNEL sends;
        #: connector: CONNECT_REQUEST sends) -- the retry-ladder position.
        self.attempts = 0
        #: connector map/bind in flight: duplicate CREATE_CHANNEL frames
        #: (listener retry after ack loss) must not re-enter the mapping.
        self._connector_busy = False
        #: when this endpoint entered BOOTSTRAPPING (the announce-driven
        #: connector watchdog measures staleness against this).
        self.bootstrap_started_at = channel.guest.sim.now

    @property
    def state(self) -> ChannelState:
        return self.fsm.state

    def snapshot_state(self) -> dict:
        """FSM state, retry-ladder position, and watchdog anchor."""
        return {
            "fsm": self.fsm.snapshot_state(),
            "attempts": self.attempts,
            "connector_busy": self._connector_busy,
            "ack_pending": self._ack_event is not None,
            "bootstrap_started_at": self.bootstrap_started_at,
        }

    def _fire(self, hook_name: str) -> None:
        for hook in self.hooks:
            getattr(hook, hook_name)(self.channel)

    def _phase_tap(self, phase: str) -> None:
        """Fault tap: crash/migrate rules anchored to a handshake phase
        (no-op without an installed plan)."""
        guest = self.channel.guest
        plan = getattr(guest.sim, "fault_plan", None)
        if plan is not None and plan.has_phase_rules:
            plan.on_phase(guest, phase)

    # ------------------------------------------------------------------
    # Bootstrap -- listener side (smaller guest-ID, paper Fig. 3)
    # ------------------------------------------------------------------
    def listener_start(self):
        """Create the transport and run the create/ack handshake
        (generator, guest context).  Returns True on success."""
        channel = self.channel
        guest = channel.guest
        costs = guest.costs
        self.fsm.feed(ChannelEvent.BOOTSTRAP_START)
        self.bootstrap_started_at = guest.sim.now
        self._phase_tap("bootstrapping")
        try:
            msg = yield from channel.create_listener_transport()
        except Exception:  # noqa: BLE001
            if not guest.alive:
                # Died mid-allocation (crash injection): the domain
                # teardown already reclaimed every grant and port, and a
                # dead guest must not keep allocating hypervisor state.
                return False
            raise

        # Send create_channel; retry up to 3 times on ack timeout.
        for _attempt in range(costs.bootstrap_retries):
            self.attempts = _attempt + 1
            self._ack_event = guest.sim.event(name="xl-ack")
            yield from channel.module.send_control(channel.peer_mac, msg)
            yield guest.sim.any_of(
                [self._ack_event, guest.sim.timeout(costs.bootstrap_timeout)]
            )
            if not guest.alive:
                return False  # died while waiting for the ack
            if self.fsm.state is ChannelState.CONNECTED:
                if self.attempts > 1:
                    faults.note_recovered(guest.sim, "bootstrap_retry")
                return True
            if self.fsm.state is not ChannelState.BOOTSTRAPPING:
                break  # torn down while waiting
        if self.fsm.state is ChannelState.BOOTSTRAPPING:
            yield from self._abort_bootstrap()
        return False

    def on_channel_ack(self) -> None:
        """Listener: connector confirmed (softirq context)."""
        if not self.channel.is_listener:
            return
        if self.fsm.feed(ChannelEvent.CREATE_ACK) is None:
            return  # not BOOTSTRAPPING: stale or out-of-order ack
        self._fire("channel_connected")
        self._phase_tap("connected")
        if self._ack_event is not None and not self._ack_event.triggered:
            self._ack_event.succeed()

    def _abort_bootstrap(self):
        channel = self.channel
        guest = channel.guest
        self.fsm.feed(ChannelEvent.ACK_TIMEOUT)
        channel.discard_listener_transport()
        channel.abort_waiting()
        self._fire("channel_failed")
        self._fire("channel_closed")
        faults.note_degraded(guest.sim, "bootstrap_abort")
        yield guest.exec(guest.costs.grant_entry_update)

    # ------------------------------------------------------------------
    # Bootstrap -- connector side
    # ------------------------------------------------------------------
    def connector_complete(self, msg: CreateChannel):
        """Map the listener's transport and ack (generator, guest
        context).  Returns True on success."""
        channel = self.channel
        guest = channel.guest
        if self._connector_busy:
            return False  # duplicate CREATE while our mapping is in flight
        was = self.fsm.state
        if self.fsm.feed(ChannelEvent.CREATE_CHANNEL) is None:
            return False  # already connected / closed / failed
        if was is not ChannelState.BOOTSTRAPPING:
            # Fresh entry into the handshake (not a listener retry).
            self.bootstrap_started_at = guest.sim.now
            self._phase_tap("bootstrapping")
        peer_table = guest.machine.hypervisor.grant_tables.get(channel.peer_domid)
        if peer_table is None:
            self.fsm.feed(ChannelEvent.MAP_FAILED)
            channel.abort_waiting()
            self._fire("channel_failed")
            self._fire("channel_closed")
            return False

        self._connector_busy = True
        try:
            yield from channel.map_connector_transport(peer_table, msg)
        except Exception:  # noqa: BLE001 - any mapping/bind failure aborts cleanly
            self._connector_busy = False
            yield from channel.disengage(notify_peer=False)
            self.fsm.feed(ChannelEvent.MAP_FAILED)
            channel.abort_waiting()
            self._fire("channel_failed")
            self._fire("channel_closed")
            faults.note_degraded(guest.sim, "map_failed")
            return False
        self._connector_busy = False

        self.fsm.feed(ChannelEvent.HANDSHAKE_DONE)
        self._fire("channel_connected")
        if self.attempts > 1:
            faults.note_recovered(guest.sim, "connect_retry")
        self._phase_tap("connected")
        yield from channel.module.send_control(channel.peer_mac, ChannelAck(guest.domid))
        return True

    def abort_connect(self) -> None:
        """Connector gave up waiting for CREATE_CHANNEL (retry budget
        exhausted): fail the channel so the next packet to this peer
        re-initiates the bootstrap from scratch.  Reuses the FSM's
        ACK_TIMEOUT rail -- both sides time the same handshake out."""
        channel = self.channel
        if self.fsm.feed(ChannelEvent.ACK_TIMEOUT) is None:
            return
        channel.abort_waiting()
        self._fire("channel_failed")
        self._fire("channel_closed")
        faults.note_degraded(channel.guest.sim, "bootstrap_abort")

    # ------------------------------------------------------------------
    # Teardown (paper Sect. 3.3, "Channel teardown")
    # ------------------------------------------------------------------
    def teardown(self, cause: ChannelEvent = ChannelEvent.LOCAL_TEARDOWN):
        """Locally-initiated teardown (generator, guest context).

        ``cause`` names why (unload, idle expiry, pre-migration,
        shutdown, peer vanished from announcements) -- they all follow
        the same close rail in the table, but the FSM history records
        the distinction.  Returns the serialized L3 packets from the
        waiting list so the caller can resend them via the standard
        path.
        """
        channel = self.channel
        guest = channel.guest
        if self.fsm.state is not ChannelState.CONNECTED:
            # Nothing on the wire yet (or already closed): record the
            # close, release anything parked on the waiting list (a
            # bootstrap abandoned by unload/migration can still have
            # blocked senders), and drop out of the module's table.
            self.fsm.feed(cause)
            channel.abort_waiting()
            self._fire("channel_closed")
            return []
        costs = guest.costs
        self.fsm.feed(cause)

        channel.out_fifo.mark_inactive()
        channel.in_fifo.mark_inactive()
        yield guest.exec(costs.evtchn_send)
        guest.machine.hypervisor.evtchn.notify(channel.port)

        # Receive anything still pending in our incoming FIFO.
        yield from channel.drain_remaining()
        saved = channel.take_saved_packets()
        yield from channel.disengage(notify_peer=False)
        self._fire("channel_closed")
        channel.notify_stream_death()
        return saved

    def peer_fin(self):
        """The peer marked the channel inactive; disengage our side
        (generator, drain-worker context)."""
        channel = self.channel
        self.fsm.feed(ChannelEvent.PEER_FIN)
        yield from channel.drain_remaining()
        saved = channel.take_saved_packets()
        yield from channel.disengage(notify_peer=True)
        self._fire("channel_closed")
        channel.notify_stream_death()
        # Anything we had queued goes back out via the standard path.
        for data in saved:
            channel.module.resend_via_standard_path(data)


class ControlPlane:
    """Per-guest control-plane orchestrator (extracted from the module).

    Owns the [guest-ID, MAC] mapping table and the channel table, and
    runs everything that is *about* channels rather than *through*
    them: announcement processing, bootstrap initiation, control-frame
    dispatch, the idle reaper, and the migration/shutdown responses.
    The data-plane hook in :class:`~repro.core.module.XenLoopModule`
    only ever reads these tables.
    """

    def __init__(self, module: "XenLoopModule"):
        self.module = module
        self.guest = module.guest
        #: MAC -> guest-ID of co-resident XenLoop-willing guests.
        self.mapping: dict["MacAddr", int] = {}
        #: MAC -> live Channel endpoint.
        self.channels: dict["MacAddr", "Channel"] = {}
        #: guest-ID -> live Channel: the data path's domid-hashed index,
        #: kept in lockstep with ``channels``.
        self.channels_by_domid: dict[int, "Channel"] = {}
        #: delta-discovery roster view (None in announce mode).  When
        #: active, ``mapping`` *is* the view's entry table -- one sparse
        #: dict serves the data path and the epoch bookkeeping.
        self.roster: Optional[RosterView] = None
        if module.delta_discovery:
            self.roster = RosterView(self.guest.mac, track_all=False)
            self.mapping = self.roster.entries
        #: per-MAC timestamp of the last WhoIs sent (rate limiter).
        self._whois_at: dict["MacAddr", float] = {}
        #: MACs with a budget eviction already in flight.
        self._evicting: set["MacAddr"] = set()
        #: packets saved across a migration (resent on the new machine).
        self.saved_packets: list[bytes] = []
        self.announcements_seen = 0
        self.whois_sent = 0
        self.budget_evictions = 0

    def snapshot_state(self) -> dict:
        """Mapping table, per-channel FSM/controller state, and the
        migration save queue -- the complete control-plane soft state."""
        return {
            "mapping": {str(mac): domid for mac, domid in self.mapping.items()},
            "channels": {
                str(mac): ch.snapshot_state() for mac, ch in self.channels.items()
            },
            "channels_by_domid": sorted(self.channels_by_domid),
            "roster": None if self.roster is None else self.roster.snapshot_state(),
            "whois_at": {str(mac): t for mac, t in self._whois_at.items()},
            "evicting": sorted(str(mac) for mac in self._evicting),
            "saved_packets": len(self.saved_packets),
            "announcements_seen": self.announcements_seen,
            "whois_sent": self.whois_sent,
            "budget_evictions": self.budget_evictions,
        }

    # ------------------------------------------------------------------
    # Channel table
    # ------------------------------------------------------------------
    def _new_channel(self, peer_domid: int, mac: "MacAddr") -> "Channel":
        from repro.core.channel import Channel

        channel = Channel(self.module, peer_domid, mac)
        self.channels[mac] = channel
        self.channels_by_domid[peer_domid] = channel
        self.module.channel_created(channel)
        self._enforce_budget()
        return channel

    def channel_closed(self, channel: "Channel") -> None:
        """Drop a closed channel from the tables (LifecycleHooks path)."""
        self._evicting.discard(channel.peer_mac)
        current = self.channels.get(channel.peer_mac)
        if current is channel:
            del self.channels[channel.peer_mac]
        if self.channels_by_domid.get(channel.peer_domid) is channel:
            del self.channels_by_domid[channel.peer_domid]

    def _drop_channel(self, channel: "Channel") -> None:
        """Remove a not-live channel from both tables immediately."""
        if self.channels.get(channel.peer_mac) is channel:
            del self.channels[channel.peer_mac]
        if self.channels_by_domid.get(channel.peer_domid) is channel:
            del self.channels_by_domid[channel.peer_domid]

    def _enforce_budget(self) -> None:
        """Evict least-recently-active CONNECTED channels above the
        module's ``channel_budget`` (no-op when unset).  Handshakes in
        flight are never evicted -- the table may transiently exceed the
        budget until they connect and the next enforcement pass runs."""
        budget = self.module.channel_budget
        if budget is None:
            return
        excess = len(self.channels) - len(self._evicting) - budget
        if excess <= 0:
            return
        victims = sorted(
            (
                ch
                for ch in self.channels.values()
                if ch.state is ChannelState.CONNECTED
                and ch.peer_mac not in self._evicting
            ),
            key=lambda ch: (ch.last_activity, ch.peer_domid),
        )
        for channel in victims[:excess]:
            self._evicting.add(channel.peer_mac)
            self.budget_evictions += 1
            self.guest.spawn(
                self._teardown_and_fallback(channel, ChannelEvent.IDLE_EXPIRED),
                name="xl-evict",
            )

    # ------------------------------------------------------------------
    # XenStore advertisement (soft-state discovery, Sect. 3.2)
    # ------------------------------------------------------------------
    def advertise(self):
        yield from self.guest.xs_write(
            f"{self.guest.xs_prefix}/xenloop", str(self.guest.mac)
        )

    def unadvertise(self):
        yield from self.guest.xs_rm(f"{self.guest.xs_prefix}/xenloop")

    # ------------------------------------------------------------------
    # Control-frame input (softirq context)
    # ------------------------------------------------------------------
    def control_input(self, packet, dev):
        guest = self.guest
        yield guest.exec(guest.costs.xenloop_lookup)
        if not self.module.loaded:
            return
        try:
            msg = parse_message(packet.payload)
        except ValueError:
            return
        if isinstance(msg, (RosterDelta, FullSync)):
            # Receive-side fault tap: deltas and full syncs travel as
            # ONE multicast frame, so per-recipient drop/delay/dup (the
            # rule's ``guest`` matches the recipient, same convention as
            # Announce) must be applied here rather than at the single
            # send.  Duplicate application is safe: the epoch check in
            # the roster view makes a re-applied frame a no-op.
            applications = 1
            plan = getattr(guest.sim, "fault_plan", None)
            if plan is not None and plan.has_control_rules:
                deliver, delay, dup = plan.on_control(guest.name, type(msg).__name__)
                if not deliver:
                    return
                if delay > 0.0:
                    yield guest.sim.timeout(delay)
                applications += dup
            for _ in range(applications):
                if isinstance(msg, RosterDelta):
                    self.handle_roster_delta(msg)
                else:
                    self.handle_full_sync(msg)
            return
        if isinstance(msg, Announce):
            self.handle_announce(msg)
        elif isinstance(msg, ConnectRequest):
            self.handle_connect_request(msg)
        elif isinstance(msg, CreateChannel):
            self.handle_create_channel(msg, packet.eth.src)
        elif isinstance(msg, ChannelAck):
            channel = self.channels.get(packet.eth.src)
            # A stale ack (sent for an earlier incarnation of this MAC's
            # channel, then delayed in flight) must not complete a newer
            # handshake it never belonged to: the sender's guest-ID is
            # the incarnation check.
            if channel is not None and channel.peer_domid == msg.sender_domid:
                channel.ctrl.on_channel_ack()
        elif isinstance(msg, PeerInfo):
            self.handle_peer_info(msg)

    def handle_announce(self, msg: Announce) -> None:
        self.announcements_seen += 1
        if self.roster is not None:
            # Mixed-protocol clusters are unsupported: a delta-mode
            # guest's sparse mapping must only be grown by WhoIs answers
            # and inbound handshakes, never by a full-roster frame.
            return
        fresh = {
            mac: domid
            for domid, mac in msg.entries
            if mac != self.guest.mac
        }
        # Tear down channels whose peer vanished or changed identity
        # (migrated away, died, or unloaded its module).
        for mac, channel in list(self.channels.items()):
            if fresh.get(mac) == channel.peer_domid:
                channel.ctrl.fsm.feed(ChannelEvent.ANNOUNCE_SEEN)
                self._retry_stuck_connector(channel)
                continue
            if channel.state in (ChannelState.CONNECTED, ChannelState.BOOTSTRAPPING):
                self.guest.spawn(
                    self._teardown_and_fallback(channel, ChannelEvent.PEER_LOST),
                    name="xl-teardown",
                )
            else:
                self._drop_channel(channel)
        # Soft-state diff notifications (pure bookkeeping).
        for mac in fresh.keys() - self.mapping.keys():
            self.module.peer_discovered(mac, fresh[mac])
        for mac in self.mapping.keys() - fresh.keys():
            self.module.peer_lost(mac)
        self.mapping = fresh

    # ------------------------------------------------------------------
    # Delta discovery (thousand-guest control plane)
    # ------------------------------------------------------------------
    def handle_roster_delta(self, msg: RosterDelta) -> None:
        self.announcements_seen += 1
        if self.roster is None:
            return
        changes = self.roster.apply_delta(msg)
        if changes is not None:
            self._apply_roster_changes(changes)

    def handle_full_sync(self, msg: FullSync) -> None:
        self.announcements_seen += 1
        if self.roster is None:
            return
        changes = self.roster.apply_full_sync(msg)
        if changes is None:
            return
        self._apply_roster_changes(changes)
        # The periodic full sync doubles as the connector-retry clock
        # (announce mode gets one per scan; delta mode one per
        # ``full_sync_every`` scans): nudge stuck handshakes.
        for mac, channel in list(self.channels.items()):
            if self.mapping.get(mac) == channel.peer_domid:
                channel.ctrl.fsm.feed(ChannelEvent.ANNOUNCE_SEEN)
                self._retry_stuck_connector(channel)

    def _apply_roster_changes(self, changes: RosterChanges) -> None:
        """Turn an applied delta/full sync into channel teardowns and
        observer notifications.  The roster view has already updated
        ``mapping`` (they share the entry dict in delta mode)."""
        for mac in changes.leaves:
            channel = self.channels.get(mac)
            if channel is not None:
                if channel.state in (ChannelState.CONNECTED, ChannelState.BOOTSTRAPPING):
                    self.guest.spawn(
                        self._teardown_and_fallback(channel, ChannelEvent.PEER_LOST),
                        name="xl-teardown",
                    )
                else:
                    self._drop_channel(channel)
            self.module.peer_lost(mac)
        for domid, mac in changes.joins:
            self.module.peer_discovered(mac, domid)

    def handle_peer_info(self, msg: PeerInfo) -> None:
        """Dom0 answered a WhoIs: materialize (or negative-cache) the
        peer.  The next packet to the MAC then hits the mapping and
        triggers the normal lazy bootstrap."""
        if self.roster is None:
            return
        if not msg.found:
            self.roster.note_negative(msg.mac)
            return
        known = self.mapping.get(msg.mac)
        if known is not None and known != msg.domid:
            self._refresh_identity(msg.mac, msg.domid)
            return
        self.roster.track(msg.mac, msg.domid)
        if known is None:
            self.module.peer_discovered(msg.mac, msg.domid)

    def note_mapping_miss(self, mac: "MacAddr") -> None:
        """Data-path mapping miss (delta mode): maybe ask Dom0 who owns
        ``mac``.  Negative-cached and rate-limited to one WhoIs per
        discovery period per MAC; the packet itself has already taken
        the bridge path, so resolution is pure background work."""
        roster = self.roster
        if roster is None or mac in roster.negative:
            return
        now = self.guest.sim.now
        last = self._whois_at.get(mac)
        if last is not None and now - last < self.guest.costs.discovery_period:
            return
        self._whois_at[mac] = now
        self.whois_sent += 1
        self.guest.spawn(
            self.module.send_control(DOM0_MAC, WhoIs(self.guest.domid, mac)),
            name="xl-whois",
        )

    def _refresh_identity(self, mac: "MacAddr", domid: int) -> None:
        """Record a [guest-ID, MAC] pair learned from an inbound control
        frame, replacing a stale guest-ID left by a crash/restart that
        reused the MAC -- and tearing down any channel built on the old
        identity (its grants/ports died with the old domain)."""
        old = self.mapping.get(mac)
        if old == domid:
            return
        if old is not None:
            channel = self.channels.get(mac)
            if channel is not None and channel.peer_domid != domid:
                if channel.state in (ChannelState.CONNECTED, ChannelState.BOOTSTRAPPING):
                    self.guest.spawn(
                        self._teardown_and_fallback(channel, ChannelEvent.PEER_LOST),
                        name="xl-teardown",
                    )
                else:
                    self._drop_channel(channel)
        self.mapping[mac] = domid
        if self.roster is not None:
            self.roster.negative.discard(mac)

    def handle_connect_request(self, msg: ConnectRequest) -> None:
        mac = msg.sender_mac
        self._refresh_identity(mac, msg.sender_domid)
        if self.guest.domid > msg.sender_domid:
            return  # misdirected: we are not the smaller ID
        channel = self.channels.get(mac)
        if (
            channel is not None
            and channel.peer_domid == msg.sender_domid
            and channel.state
            in (
                ChannelState.BOOTSTRAPPING,
                ChannelState.CONNECTED,
            )
        ):
            port = channel.port
            if channel.state is ChannelState.CONNECTED and (
                port is None or port.peer is None
            ):
                # CONNECTED over a dead transport (the peer closed its
                # port end): the connector re-initiating is proof its
                # side of the channel is gone.  Replace the husk with a
                # fresh handshake instead of ignoring the request.
                self.guest.spawn(
                    self._relisten_stale(channel, msg.sender_domid, mac),
                    name="xl-relisten",
                )
                return
            return  # bootstrap already in flight (simultaneous initiation)
        channel = self._new_channel(msg.sender_domid, mac)
        channel.ctrl.fsm.feed(ChannelEvent.CONNECT_REQ)
        self.guest.spawn(channel.ctrl.listener_start(), name="xl-listen")

    def _relisten_stale(self, channel: "Channel", peer_domid: int, mac: "MacAddr"):
        """Replace a dead CONNECTED channel with a fresh listener
        handshake (generator, guest context)."""
        saved = yield from channel.ctrl.teardown()
        for data in saved:
            self.module.resend_via_standard_path(data)
        faults.note_recovered(self.guest.sim, "stale_reconnect")
        fresh = self._new_channel(peer_domid, mac)
        fresh.ctrl.fsm.feed(ChannelEvent.CONNECT_REQ)
        yield from fresh.ctrl.listener_start()

    def handle_create_channel(self, msg: CreateChannel, src_mac: "MacAddr") -> None:
        self._refresh_identity(src_mac, msg.sender_domid)
        channel = self.channels.get(src_mac)
        if channel is not None and channel.peer_domid != msg.sender_domid:
            # Stale identity: _refresh_identity is tearing it down; the
            # fresh channel below replaces it in the tables.
            channel = None
        if channel is None:
            channel = self._new_channel(msg.sender_domid, src_mac)
        if channel.state is ChannelState.CONNECTED:
            port = channel.port
            if port is not None and port.peer is not None and port.peer.port == msg.evtchn_port:
                # Duplicate create (listener retry after ack loss): our
                # CHANNEL_ACK never arrived.  Re-ack so the listener can
                # complete instead of burning through its retry ladder
                # into FAILED while our side believes the channel is up.
                self.guest.spawn(
                    self.module.send_control(src_mac, ChannelAck(self.guest.domid)),
                    name="xl-ack-resend",
                )
                faults.note_recovered(self.guest.sim, "ack_resend")
                return
            # The listener rebuilt its transport (its retries exhausted
            # before our ack-loss recovery landed, so it closed the old
            # port and started over): the shared pages and event channel
            # under our CONNECTED state are gone.  Blindly re-acking
            # here would leave BOTH sides "connected" over dead
            # transports -- tear our husk down and run a fresh connector
            # handshake against the new transport instead.
            self.guest.spawn(
                self._reconnect_stale(channel, msg, src_mac), name="xl-reconnect"
            )
            return
        self.guest.spawn(channel.ctrl.connector_complete(msg), name="xl-connect")

    def _reconnect_stale(self, channel: "Channel", msg: CreateChannel, src_mac: "MacAddr"):
        """Replace a dead CONNECTED channel with a fresh connector
        handshake on the listener's new transport (generator, guest
        context)."""
        saved = yield from channel.ctrl.teardown()
        for data in saved:
            self.module.resend_via_standard_path(data)
        faults.note_recovered(self.guest.sim, "stale_reconnect")
        fresh = self._new_channel(msg.sender_domid, src_mac)
        yield from fresh.ctrl.connector_complete(msg)

    # ------------------------------------------------------------------
    # Bootstrap initiation (first traffic to a mapped peer, Sect. 3.1)
    # ------------------------------------------------------------------
    def initiate_bootstrap(self, mac: "MacAddr", peer_domid: int) -> None:
        existing = self.channels.get(mac)
        if existing is not None and existing.state not in (
            ChannelState.CLOSED,
            ChannelState.FAILED,
        ):
            # A live channel (or handshake in flight) already owns this
            # MAC -- possibly under a newer guest-ID than the caller's
            # cached mapping (the peer migrated back mid-burst).  A
            # second, dueling handshake would clobber the MAC-keyed
            # table and misroute the first one's ack; identity refresh
            # tears the old channel down if the mapping really changed.
            return
        channel = self._new_channel(peer_domid, mac)
        if channel.is_listener:
            self.guest.spawn(channel.ctrl.listener_start(), name="xl-listen")
        else:
            # We are the connector: ask the (smaller-ID) peer to create.
            ctrl = channel.ctrl
            ctrl.fsm.feed(ChannelEvent.BOOTSTRAP_START)
            ctrl.attempts = 1
            ctrl.bootstrap_started_at = self.guest.sim.now
            ctrl._phase_tap("bootstrapping")
            self.guest.spawn(
                self.module.send_control(
                    mac, ConnectRequest(self.guest.domid, self.guest.mac)
                ),
                name="xl-connreq",
            )

    def _retry_stuck_connector(self, channel: "Channel") -> None:
        """Announce-driven connector retry (soft-state watchdog).

        A connector has no timer of its own: if its CONNECT_REQUEST (or
        the listener's CREATE_CHANNEL reply) is lost, the channel would
        sit in BOOTSTRAPPING forever.  The periodic announcement is its
        retry clock: while the peer is still announced and the handshake
        is stale (older than the ack timeout), re-send the request -- up
        to the same retry budget the listener gets -- then abort to
        FAILED so the next packet re-initiates from scratch.  Never
        fires in a loss-free run: handshakes complete orders of
        magnitude faster than one discovery period.
        """
        ctrl = channel.ctrl
        guest = self.guest
        if (
            channel.state is not ChannelState.BOOTSTRAPPING
            or channel.is_listener
            or ctrl._connector_busy
            or guest.sim.now - ctrl.bootstrap_started_at <= guest.costs.bootstrap_timeout
        ):
            return
        if ctrl.attempts >= guest.costs.bootstrap_retries:
            ctrl.abort_connect()
            return
        ctrl.attempts += 1
        faults.note_recovered(guest.sim, "connreq_resend")
        self.guest.spawn(
            self.module.send_control(
                channel.peer_mac, ConnectRequest(guest.domid, guest.mac)
            ),
            name="xl-connreq",
        )

    # ------------------------------------------------------------------
    # Optional idle-channel reaper ("conserve system resources", 3.1)
    # ------------------------------------------------------------------
    def idle_monitor(self):
        guest = self.guest
        module = self.module
        while module.loaded:
            yield guest.sim.timeout(module.idle_timeout)
            cutoff = guest.sim.now - module.idle_timeout
            for channel in list(self.channels.values()):
                if (
                    channel.state is ChannelState.CONNECTED
                    and channel.last_activity < cutoff
                ):
                    yield from self._teardown_and_fallback(
                        channel, ChannelEvent.IDLE_EXPIRED
                    )
            # The reaper also polices the channel budget: handshakes
            # that pushed the table over the cap while eviction was
            # deferred are trimmed once they connect.
            self._enforce_budget()

    def _teardown_and_fallback(self, channel: "Channel", cause: ChannelEvent):
        """Tear a channel down and re-route its parked packets through
        the standard netfront path (generator).  In-flight traffic
        survives a peer death or idle expiry instead of being dropped
        on the floor with the FIFOs."""
        saved = yield from channel.ctrl.teardown(cause)
        if saved:
            for data in saved:
                self.module.resend_via_standard_path(data)
            faults.note_recovered(self.guest.sim, "fallback_resend", len(saved))

    # ------------------------------------------------------------------
    # Lifecycle: unload, shutdown, migration (Sect. 3.3-3.4)
    # ------------------------------------------------------------------
    def teardown_all(self, cause: ChannelEvent):
        """Tear down every channel (generator); yields saved packets
        per channel to the caller via the returned list."""
        saved_all: list[bytes] = []
        for channel in list(self.channels.values()):
            saved = yield from channel.ctrl.teardown(cause)
            saved_all.extend(saved)
        return saved_all

    def shutdown(self):
        if not self.module.loaded:
            return
        self.module.loaded = False
        yield from self.unadvertise()
        for channel in list(self.channels.values()):
            yield from channel.ctrl.teardown(ChannelEvent.SHUTDOWN)

    def pre_migrate(self):
        """Hypervisor callback before migration: remove the
        advertisement, save pending packets, tear every channel down."""
        if not self.module.loaded:
            return
        yield from self.unadvertise()
        self.saved_packets = []
        for channel in list(self.channels.values()):
            saved = yield from channel.ctrl.teardown(ChannelEvent.PRE_MIGRATE)
            self.saved_packets.extend(saved)
        self.mapping.clear()
        if self.roster is not None:
            # The destination machine's Dom0 numbers its own epochs:
            # forget ours and wait for its next full sync to resync.
            self.roster.epoch = 0
            self.roster.desynced = True
            self.roster.negative.clear()
        self._whois_at.clear()

    def post_migrate(self):
        """After resuming on the new machine: re-advertise under the new
        domid and resend the saved packets via the standard path."""
        if not self.module.loaded:
            return
        yield from self.advertise()
        saved, self.saved_packets = self.saved_packets, []
        for data in saved:
            self.module.resend_via_standard_path(data)
