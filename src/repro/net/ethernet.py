"""Ethernet-level constants.

``ETH_P_XENLOOP`` is the special XenLoop-type protocol ID the paper
uses for discovery announcements and channel-bootstrap messages that
travel out-of-band over the standard netfront/netback path (Sect. 3.2,
3.3).
"""

ETH_HEADER_LEN = 14

ETH_P_IP = 0x0800
ETH_P_ARP = 0x0806
#: XenLoop control messages (announcements, create_channel, ack, ...).
ETH_P_XENLOOP = 0x584C

#: Standard Ethernet MTU (bytes of layer-3 payload per frame).
DEFAULT_MTU = 1500

#: IP protocol numbers.
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17
