"""Workload implementations: sanity of each benchmark's measurement loop."""

import pytest

from repro import scenarios
from repro.workloads import lmbench, migration_rr, netperf, netpipe, osu, pingpong

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


@pytest.fixture(scope="module")
def xl():
    scn = scenarios.xenloop(FAST)
    scn.warmup(max_wait=10.0)
    return scn


@pytest.fixture(scope="module")
def loop():
    scn = scenarios.native_loopback(FAST)
    scn.warmup()
    return scn


class TestPing:
    def test_counts_and_stats(self, loop):
        res = pingpong.flood_ping(loop, count=50)
        assert res.count == 50
        assert res.lost == 0
        assert res.min_us <= res.rtt_us <= res.max_us

    def test_larger_payload_slower(self, loop):
        small = pingpong.flood_ping(loop, count=30, size=56)
        big = pingpong.flood_ping(loop, count=30, size=8000)
        assert big.rtt_us > small.rtt_us


class TestNetperf:
    def test_tcp_rr_reports_consistent_rate(self, loop):
        res = netperf.tcp_rr(loop, duration=0.02)
        assert res.transactions > 0
        assert res.trans_per_sec == pytest.approx(1e6 / res.latency_us, rel=1e-6)

    def test_udp_rr(self, loop):
        res = netperf.udp_rr(loop, duration=0.02)
        assert res.trans_per_sec > 0

    def test_tcp_crr_connects_per_transaction(self, xl):
        res = netperf.tcp_crr(xl, duration=0.02, port=5506)
        assert res.transactions > 0
        # every transaction includes a handshake: CRR rate < RR rate
        rr = netperf.tcp_rr(xl, duration=0.02, port=5507)
        assert res.trans_per_sec < rr.trans_per_sec

    def test_tcp_stream_receives_what_was_sent(self, xl):
        res = netperf.tcp_stream(xl, duration=0.02, msg_size=8192, port=5501)
        assert res.bytes_received == res.messages_sent * 8192
        assert res.mbps > 0

    def test_udp_stream_reports_drops(self, xl):
        res = netperf.udp_stream(xl, duration=0.02, msg_size=4096, port=5502)
        assert res.bytes_received + res.drops * 4096 <= res.messages_sent * 4096
        assert res.mbps > 0

    def test_udp_stream_message_size_scales_throughput(self, xl):
        small = netperf.udp_stream(xl, duration=0.02, msg_size=256, port=5503)
        large = netperf.udp_stream(xl, duration=0.02, msg_size=16384, port=5504)
        assert large.mbps > small.mbps


class TestLmbench:
    def test_bw_tcp_moves_requested_bytes(self, xl):
        res = lmbench.bw_tcp(xl, total_bytes=1 << 20, port=5511)
        assert res.bytes_moved >= 1 << 20
        assert res.mbps > 0

    def test_lat_tcp(self, xl):
        res = lmbench.lat_tcp(xl, round_trips=100, port=5512)
        assert res.round_trips == 100
        assert res.latency_us > 0


class TestNetpipe:
    def test_sweep_produces_monotone_sizes(self, xl):
        res = netpipe.run(xl, sizes=[64, 1024, 8192], port=9301)
        sizes, mbps, lats = res.series()
        assert sizes == [64, 1024, 8192]
        assert all(v > 0 for v in mbps)
        # throughput grows with message size in this range
        assert mbps[0] < mbps[1] < mbps[2]
        # latency grows with message size
        assert lats[0] < lats[2]


class TestOsu:
    def test_bw_sweep(self, xl):
        res = osu.osu_bw(xl, sizes=[512, 8192], port=9302)
        sizes, values = res.series()
        assert sizes == [512, 8192]
        assert values[1] > values[0]

    def test_bibw_exceeds_uni_at_small_sizes(self, xl):
        uni = osu.osu_bw(xl, sizes=[2048], port=9303).points[0].value
        bi = osu.osu_bibw(xl, sizes=[2048], port=9304).points[0].value
        assert bi > uni

    def test_latency_sweep(self, xl):
        res = osu.osu_latency(xl, sizes=[1, 16384], port=9305)
        _sizes, values = res.series()
        assert values[1] > values[0]


class TestMigrationRr:
    @pytest.mark.slow
    def test_fig11_shape(self):
        """Transaction rate: low (remote) -> high (co-resident+XenLoop)
        -> low (remote again)."""
        costs = scenarios.DEFAULT_COSTS.replace(
            discovery_period=0.2,
            bootstrap_timeout=0.01,
            migration_duration=0.3,
            migration_downtime=0.05,
        )
        scn = scenarios.migration_pair(costs)
        scn.warmup()
        res = migration_rr.run(
            scn, co_resident_hold=3.0, bin_width=0.25, settle=2.0, port=5521
        )
        rates = res.rates()
        assert len(rates) > 10

        def mean_rate(t0, t1):
            vals = [v for t, v in rates if t0 <= t <= t1]
            assert vals, f"no samples in [{t0}, {t1}]"
            return sum(vals) / len(vals)

        remote_before = mean_rate(0.5, res.migrate_in_at)
        # skip 1.5s after migrate-in for discovery + bootstrap
        co_resident = mean_rate(res.migrate_in_at + 1.5, res.migrate_away_at)
        remote_after = mean_rate(res.migrate_away_at + 1.0, rates[-1][0])
        assert co_resident > 2 * remote_before
        assert remote_after < co_resident / 2
        # and the rates return to roughly the original level
        assert remote_after == pytest.approx(remote_before, rel=0.5)
