"""Flood ping (ICMP ECHO request/reply), as in Table 1/3 row 1.

``ping -f`` sends the next request as soon as the reply arrives, so the
average inter-transaction time is the RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.stats import LatencyProbe

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios import Scenario

__all__ = ["PingResult", "flood_ping"]


@dataclass
class PingResult:
    """Flood-ping outcome: RTT stats and losses."""
    count: int
    rtt_us: float
    min_us: float
    max_us: float
    lost: int


def flood_ping(scenario: "Scenario", count: int = 200, size: int = 56, timeout: float = 1.0) -> PingResult:
    """Run a flood ping from endpoint A to endpoint B; returns RTT stats."""
    sim = scenario.sim
    stack = scenario.node_a.stack
    probe = LatencyProbe("ping")
    lost = 0

    def pinger():
        nonlocal lost
        ident = stack.icmp.alloc_ident()
        for seq in range(count):
            t0 = sim.now
            waiter = yield from stack.icmp.send_echo(scenario.ip_b, ident, seq, size)
            yield sim.any_of([waiter, sim.timeout(timeout)])
            if waiter.triggered:
                probe.record(sim.now - t0)
            else:
                lost += 1

    proc = sim.process(pinger(), name="flood-ping")
    sim.run_until_complete(proc, timeout=count * timeout + 10)
    if probe.count == 0:
        raise RuntimeError("all pings lost")
    return PingResult(
        count=count,
        rtt_us=probe.mean_us,
        min_us=min(probe.samples) * 1e6,
        max_us=max(probe.samples) * 1e6,
        lost=lost,
    )
