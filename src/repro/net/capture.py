"""Packet capture (tcpdump analogue) for debugging and tests.

Attach a :class:`PacketCapture` to any device and every transmitted and
received frame is recorded with a timestamp and direction::

    cap = PacketCapture.attach(guest.netfront.vif)
    ... run traffic ...
    print(cap.dump())
    cap.detach()

Because XenLoop steals packets *before* the device, a capture on the
vif is also the cleanest way to demonstrate the bypass: once the
channel connects, data packets stop appearing here entirely (see
tests/net/test_capture.py::test_xenloop_bypass_visible_in_capture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.devices import NetDevice
    from repro.net.packet import Packet

__all__ = ["CapturedFrame", "PacketCapture"]


@dataclass
class CapturedFrame:
    """One recorded frame: timestamp, direction, and the packet itself."""
    time: float
    direction: str  # "tx" | "rx"
    packet: "Packet"

    def describe(self) -> str:
        """Render the frame as a one-line tcpdump-style summary."""
        pkt = self.packet
        parts = [f"{self.time * 1e6:10.1f}us", self.direction]
        if pkt.eth is not None:
            parts.append(f"{pkt.eth.src}>{pkt.eth.dst}")
            parts.append(f"type={pkt.eth.ethertype:#06x}")
        if pkt.ip is not None:
            parts.append(f"{pkt.ip.src}>{pkt.ip.dst} proto={pkt.ip.proto}")
        if pkt.l4 is not None:
            parts.append(type(pkt.l4).__name__)
        parts.append(f"len={pkt.wire_len}")
        return " ".join(parts)


class PacketCapture:
    """Records frames crossing one device, both directions."""

    def __init__(self, dev: "NetDevice"):
        self.dev = dev
        self.frames: list[CapturedFrame] = []
        self._orig_queue_xmit = None
        self._orig_deliver_up = None
        self.attached = False

    @classmethod
    def attach(cls, dev: "NetDevice") -> "PacketCapture":
        """Start capturing on ``dev`` (wraps its tx/rx entry points)."""
        cap = cls(dev)
        cap._orig_queue_xmit = dev.queue_xmit
        cap._orig_deliver_up = dev.deliver_up

        def tx_wrapper(packet):
            cap._record("tx", packet)
            return cap._orig_queue_xmit(packet)

        def rx_wrapper(packet):
            cap._record("rx", packet)
            return cap._orig_deliver_up(packet)

        dev.queue_xmit = tx_wrapper
        dev.deliver_up = rx_wrapper
        cap.attached = True
        return cap

    def detach(self) -> None:
        """Stop capturing and restore the device's original methods."""
        if not self.attached:
            return
        self.dev.queue_xmit = self._orig_queue_xmit
        self.dev.deliver_up = self._orig_deliver_up
        self.attached = False

    def _record(self, direction: str, packet: "Packet") -> None:
        now = self._now()
        self.frames.append(CapturedFrame(now, direction, packet))

    def _now(self) -> float:
        node = getattr(self.dev, "node", None)
        if node is None:
            node = getattr(self.dev, "netfront", None) and self.dev.netfront.guest
        return node.sim.now if node is not None else 0.0

    # -- inspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.frames)

    def filter(self, direction: Optional[str] = None, proto: Optional[int] = None):
        """Recorded frames filtered by direction and/or IP protocol."""
        out = self.frames
        if direction is not None:
            out = [f for f in out if f.direction == direction]
        if proto is not None:
            out = [f for f in out if f.packet.ip is not None and f.packet.ip.proto == proto]
        return out

    def dump(self) -> str:
        """All recorded frames as tcpdump-style text."""
        return "\n".join(f.describe() for f in self.frames)

    def clear(self) -> None:
        """Discard everything recorded so far."""
        self.frames.clear()
