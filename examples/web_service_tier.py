#!/usr/bin/env python
"""Enterprise scenario: a web front-end VM querying a database VM.

The paper's second motivating example: "a web service running in one VM
may need to communicate with a database server running in another VM in
order to satisfy a client transaction request."  This script implements
a tiny request/response database protocol over TCP sockets, runs a
closed-loop client through the web tier, and compares end-to-end
transaction latency with and without XenLoop.

Run:  python examples/web_service_tier.py
"""

import struct

from repro import scenarios
from repro.sim.stats import LatencyProbe

DB_PORT = 5432
QUERIES_PER_REQUEST = 3  # a page render issues several queries
N_REQUESTS = 300

_HDR = struct.Struct("!I")


def run_tier(scn, label):
    sim = scn.sim
    web, db = scn.node_a, scn.node_b
    probe = LatencyProbe()

    def database():
        listener = db.stack.tcp_listen(DB_PORT)
        conn = yield from listener.accept()
        while True:
            try:
                header = yield from conn.recv_exactly(_HDR.size)
            except OSError:
                return
            (qlen,) = _HDR.unpack(header)
            yield from conn.recv_exactly(qlen)
            # "execute" the query and return a 512-byte row set
            yield db.exec(20e-6)
            row = bytes(512)
            yield from conn.send(_HDR.pack(len(row)) + row)

    def web_frontend():
        conn = yield from web.stack.tcp_connect((scn.ip_b, DB_PORT))
        query = b"SELECT * FROM orders WHERE user_id = ?"
        for _ in range(N_REQUESTS):
            t0 = sim.now
            for _ in range(QUERIES_PER_REQUEST):
                yield from conn.send(_HDR.pack(len(query)) + query)
                header = yield from conn.recv_exactly(_HDR.size)
                (rlen,) = _HDR.unpack(header)
                yield from conn.recv_exactly(rlen)
            # render the page
            yield web.exec(50e-6)
            probe.record(sim.now - t0)
        yield from conn.close()

    sim.process(database())
    proc = sim.process(web_frontend())
    sim.run_until_complete(proc, timeout=120)
    print(f"{label:24s} mean transaction {probe.mean_us:7.1f} us   "
          f"p99 {probe.percentile(99) * 1e6:7.1f} us   "
          f"({N_REQUESTS} requests x {QUERIES_PER_REQUEST} queries)")
    return probe


def main():
    print(f"Web tier -> DB tier, {QUERIES_PER_REQUEST} queries per client request\n")
    base = scenarios.netfront_netback()
    base.warmup()
    base_probe = run_tier(base, "netfront/netback")

    xl = scenarios.xenloop()
    xl.warmup()
    xl_probe = run_tier(xl, "xenloop")

    print(f"\nXenLoop cuts mean transaction time by "
          f"{base_probe.mean / xl_probe.mean:.1f}x -- with the web server "
          f"and database completely unmodified.")


if __name__ == "__main__":
    main()
