"""Tests for measurement probes."""

import pytest

from repro.sim.stats import Counter, LatencyProbe, ThroughputProbe, TimeSeries, summarize


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add(-1)


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)


class TestLatencyProbe:
    def test_mean(self):
        p = LatencyProbe()
        for v in (1e-6, 2e-6, 3e-6):
            p.record(v)
        assert p.mean == pytest.approx(2e-6)
        assert p.mean_us == pytest.approx(2.0)
        assert p.count == 3

    def test_negative_rejected(self):
        p = LatencyProbe()
        with pytest.raises(ValueError):
            p.record(-1.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = LatencyProbe().mean

    def test_percentile(self):
        p = LatencyProbe()
        for v in range(1, 101):
            p.record(float(v))
        assert p.percentile(50) == pytest.approx(50.5)
        assert p.percentile(0) == 1.0
        assert p.percentile(100) == 100.0

    def test_percentile_bounds(self):
        p = LatencyProbe()
        p.record(1.0)
        with pytest.raises(ValueError):
            p.percentile(101)


class TestThroughputProbe:
    def test_rate(self):
        p = ThroughputProbe()
        p.record(100, 0.0)
        p.record(100, 1.0)
        p.record(100, 2.0)
        assert p.rate() == pytest.approx(150.0)

    def test_mbps(self):
        p = ThroughputProbe()
        p.record(0, 0.0)
        p.record(1_000_000, 8.0)
        assert p.mbps() == pytest.approx(1.0)

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            ThroughputProbe().rate()

    def test_zero_interval_raises(self):
        p = ThroughputProbe()
        p.record(10, 1.0)
        with pytest.raises(ValueError):
            p.rate()


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["stdev"] == pytest.approx(0.8164965, rel=1e-5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
