"""Dom0 Domain Discovery module (paper Sect. 3.2).

Every ``discovery_period`` (5 s) the module scans XenStore -- which
only Dom0 can read across domains -- for guests advertising a
``xenloop`` entry, collates their [guest-ID, MAC] identity pairs, and
transmits an announcement frame (XenLoop-type layer-3 protocol ID) to
each willing guest through the software bridge.  Guests absent from
XenStore simply stop appearing in announcements, and peers prune them:
soft-state discovery with no explicit de-registration message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.control import LifecycleHooks
from repro.core.protocol import Announce
from repro.net.addr import MacAddr
from repro.net.ethernet import ETH_P_XENLOOP
from repro.net.packet import EthHeader, Packet
from repro.xen.xenstore import XenStoreError

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.machine import XenMachine

__all__ = ["DiscoveryModule"]

#: source MAC used on announcement frames (Dom0's bridge identity).
DOM0_MAC = MacAddr("fe:ff:ff:ff:ff:ff")


class DiscoveryModule(LifecycleHooks):
    """Dom0-resident periodic XenStore scanner and announcer.

    Implements :class:`~repro.core.control.LifecycleHooks` for the
    soft-state roster: each scan diffs the collated [guest-ID, MAC]
    list against the previous one and reports appearances and
    disappearances through ``peer_discovered`` / ``peer_lost`` -- the
    same interface the guest-side control plane uses -- keeping
    ``roster`` (the currently advertising guests) current.
    """
    def __init__(self, machine: "XenMachine", period: float | None = None):
        self.machine = machine
        self.period = period if period is not None else machine.costs.discovery_period
        self.running = True
        self.scans = 0
        self.announcements_sent = 0
        #: MAC -> guest-ID of guests seen advertising in the last scan.
        self.roster: dict[MacAddr, int] = {}
        machine.dom0.spawn(self._scan_loop(), name="xl-discovery")

    # -- LifecycleHooks (roster bookkeeping) ----------------------------
    def peer_discovered(self, mac: MacAddr, domid: int) -> None:
        self.roster[mac] = domid

    def peer_lost(self, mac: MacAddr) -> None:
        self.roster.pop(mac, None)

    def stop(self) -> None:
        """Stop scanning (no further announcements are sent)."""
        self.running = False

    def snapshot_state(self) -> dict:
        """Scanner progress and the current soft-state roster."""
        return {
            "running": self.running,
            "period": self.period,
            "scans": self.scans,
            "announcements_sent": self.announcements_sent,
            "roster": {str(mac): domid for mac, domid in self.roster.items()},
        }

    # -- one scan ------------------------------------------------------
    def collate(self) -> list[tuple[int, MacAddr]]:
        """Read XenStore and build the [guest-ID, MAC] list of willing guests."""
        store = self.machine.xenstore
        entries: list[tuple[int, MacAddr]] = []
        try:
            domids = store.ls(0, "/local/domain")
        except XenStoreError:
            return entries
        for domid_str in domids:
            try:
                domid = int(domid_str)
            except ValueError:
                continue
            path = f"/local/domain/{domid}/xenloop"
            if not store.exists(0, path):
                continue
            try:
                mac = MacAddr(store.read(0, path))
            except (XenStoreError, ValueError):
                continue
            entries.append((domid, mac))
        return entries

    def _scan_loop(self):
        dom0 = self.machine.dom0
        costs = dom0.costs
        while self.running:
            yield dom0.sim.timeout(self.period)
            if not self.running:
                return
            self.scans += 1
            # One XenStore directory listing plus a read per guest.
            yield dom0.exec(costs.xenstore_op)
            entries = self.collate()
            yield dom0.exec(costs.xenstore_op * max(1, len(entries)))
            self._update_roster(entries)
            if not entries:
                continue
            # One announcement, one serialization: every recipient gets
            # the identical payload bytes (hoisted out of the loop).
            msg = Announce(sender_domid=dom0.domid, entries=entries)
            announce_payload = msg.to_bytes()
            plan = getattr(dom0.sim, "fault_plan", None)
            for domid, mac in entries:
                repeats = 1
                if plan is not None and plan.has_control_rules:
                    # Fault tap: announcement loss per recipient (the rule's
                    # ``guest`` matches the recipient).  Announcements are
                    # periodic and idempotent, so a delay rule here is
                    # equivalent to a drop of this scan's frame.
                    target = self.machine.hypervisor.domains.get(domid)
                    deliver, delay, dup = plan.on_control(
                        target.name if target is not None else f"dom{domid}",
                        "Announce",
                    )
                    if not deliver or delay > 0.0:
                        continue
                    repeats += dup
                for _ in range(repeats):
                    frame = Packet(
                        payload=announce_payload,
                        eth=EthHeader(dst=mac, src=DOM0_MAC, ethertype=ETH_P_XENLOOP),
                    )
                    self.announcements_sent += 1
                    # Inject into the bridge; it forwards to the guest's vif.
                    self.machine.bridge.input(None, frame)

    def _update_roster(self, entries: list[tuple[int, MacAddr]]) -> None:
        fresh = {mac: domid for domid, mac in entries}
        for mac in fresh.keys() - self.roster.keys():
            self.peer_discovered(mac, fresh[mac])
        for mac in self.roster.keys() - fresh.keys():
            self.peer_lost(mac)
        # Refresh identities that changed in place (re-created guest).
        self.roster.update(fresh)
