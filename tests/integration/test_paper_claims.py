"""Qualitative reproduction of the paper's headline claims.

These tests assert *shape* -- orderings and rough factors from
Tables 1-3 -- not absolute numbers.  They are the regression guard for
the calibration in repro.calibration.
"""

import pytest

from repro import scenarios
from repro.workloads import lmbench, netperf, pingpong

FAST = scenarios.DEFAULT_COSTS.replace(discovery_period=0.2, bootstrap_timeout=0.01)


@pytest.fixture(scope="module")
def results():
    """Measure all four scenarios once for the whole module."""
    out = {}
    for name in scenarios.SCENARIO_BUILDERS:
        scn = scenarios.build(name, FAST)
        scn.warmup(max_wait=10.0)
        out[name] = {
            "ping_us": pingpong.flood_ping(scn, count=60).rtt_us,
            "tcp_rr": netperf.tcp_rr(scn, duration=0.05).trans_per_sec,
            "udp_rr": netperf.udp_rr(scn, duration=0.05).trans_per_sec,
            "tcp_stream": netperf.tcp_stream(scn, duration=0.02).mbps,
            "udp_stream": netperf.udp_stream(scn, duration=0.02, msg_size=8192).mbps,
            "lat_tcp": lmbench.lat_tcp(scn, round_trips=100).latency_us,
        }
    return out


class TestLatencyOrdering:
    def test_ping_native_fastest(self, results):
        assert results["native_loopback"]["ping_us"] < results["xenloop"]["ping_us"]

    def test_ping_xenloop_beats_netfront(self, results):
        """Headline: 'reduce inter-VM round trip latency by up to 5x'."""
        factor = results["netfront_netback"]["ping_us"] / results["xenloop"]["ping_us"]
        assert factor > 2.5

    def test_ping_xenloop_beats_inter_machine(self, results):
        assert results["xenloop"]["ping_us"] < results["inter_machine"]["ping_us"]

    def test_lat_tcp_ordering(self, results):
        r = results
        assert (
            r["native_loopback"]["lat_tcp"]
            < r["xenloop"]["lat_tcp"]
            < r["inter_machine"]["lat_tcp"]
        )
        assert r["xenloop"]["lat_tcp"] < r["netfront_netback"]["lat_tcp"]


class TestTransactionRates:
    def test_tcp_rr_ordering(self, results):
        r = results
        assert (
            r["native_loopback"]["tcp_rr"]
            > r["xenloop"]["tcp_rr"]
            > r["netfront_netback"]["tcp_rr"]
        )

    def test_udp_rr_xenloop_factor(self, results):
        """Paper Table 3: ~2.6x more UDP_RR transactions via XenLoop."""
        factor = results["xenloop"]["udp_rr"] / results["netfront_netback"]["udp_rr"]
        assert factor > 1.8

    def test_tcp_rr_xenloop_factor(self, results):
        """Paper Table 3: ~2.8x more TCP_RR transactions via XenLoop."""
        factor = results["xenloop"]["tcp_rr"] / results["netfront_netback"]["tcp_rr"]
        assert factor > 1.8


class TestBandwidth:
    def test_tcp_stream_ordering(self, results):
        r = results
        assert (
            r["native_loopback"]["tcp_stream"]
            > r["xenloop"]["tcp_stream"]
            > r["netfront_netback"]["tcp_stream"]
            > r["inter_machine"]["tcp_stream"]
        )

    def test_udp_stream_xenloop_factor(self, results):
        """Headline: 'increase bandwidth by up to a factor of 6'."""
        factor = (
            results["xenloop"]["udp_stream"]
            / results["netfront_netback"]["udp_stream"]
        )
        assert factor > 4

    def test_udp_stream_netfront_no_better_than_wire(self, results):
        """Paper Table 2: netfront UDP_STREAM (707) is no better than
        inter-machine (710) -- the original motivation."""
        assert (
            results["netfront_netback"]["udp_stream"]
            <= results["inter_machine"]["udp_stream"] * 1.1
        )

    def test_inter_machine_wire_limited(self, results):
        assert results["inter_machine"]["tcp_stream"] < 1000  # 1 Gbps wire
