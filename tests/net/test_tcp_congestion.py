"""TCP congestion control (slow start / AIMD / fast retransmit), the
ACK-livelock fixes (duplicate re-ACK, RST on demux miss), backlog
overflow, and wake-all-on-EOF.

Loss is injected with dropping netfilter hooks so every recovery path
runs deterministically.  Congestion tests build their own LAN with
``tcp_initial_cwnd`` armed -- the shared fixtures use DEFAULT_COSTS,
whose wide-open window is itself pinned by
:class:`TestLosslessDefaults`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.netfilter import HookPoint, Verdict
from repro.net.nic import EthernetSwitch, PhysNIC
from repro.net.node import Node
from repro.net.packet import TcpHeader
from repro.net.stack import NetworkStack
from repro.net.tcp import ESTABLISHED, TcpConnection
from repro.sim.engine import Simulator
from repro.sim.resources import CPUCores
from tests.net.test_tcp import connect_pair
from tests.net.test_tcp_retransmit import _Dropper

#: slow start armed: cwnd starts at 4 segments instead of wide open.
CC_COSTS = DEFAULT_COSTS.replace(tcp_initial_cwnd=4)
MSS = DEFAULT_COSTS.mss  # PhysNIC path: no GSO, mtu 1500 -> eff_mss == mss


def make_lan(sim, costs):
    """Two hosts on a switch built with ``costs`` (the shared ``lan``
    fixture hard-codes DEFAULT_COSTS)."""
    switch = EthernetSwitch(sim, costs)
    nodes = []
    for i in range(2):
        cpus = CPUCores(sim, 2)
        node = Node(sim, cpus, costs, f"cc{i}")
        NetworkStack(node, IPv4Addr(f"10.9.0.{i + 1}"))
        nic = PhysNIC(node, costs, f"cc{i}.eth0", MacAddr(0x020000009901 + i))
        nic.connect(switch)
        node.stack.add_device(nic)
        nodes.append(node)
    return nodes[0], nodes[1]


def stream(sim, client, server, payload, timeout=30):
    """Push ``payload`` client->server; returns the received bytes."""

    def cli():
        yield from client.send(payload)

    def srv():
        return (yield from server.recv_exactly(len(payload)))

    sim.process(cli())
    proc = sim.process(srv())
    return sim.run_until_complete(proc, timeout=timeout)


class TestLosslessDefaults:
    """The calibrated default (tcp_initial_cwnd=0) must keep cwnd wide
    open so every pre-congestion golden replays bit for bit."""

    def test_cwnd_starts_at_window_cap(self, sim, host):
        client, server = connect_pair(sim, host, host)
        assert client.cwnd == DEFAULT_COSTS.tcp_window
        assert server.cwnd == DEFAULT_COSTS.tcp_window

    def test_cwnd_never_moves_without_loss(self, sim, host):
        client, server = connect_pair(sim, host, host)
        assert stream(sim, client, server, bytes(200_000)) == bytes(200_000)
        assert client.retransmissions == 0
        assert client.cwnd == DEFAULT_COSTS.tcp_window
        assert not client.cwnd_trace  # empty forever on lossless paths
        assert client.dup_acks_rcvd == 0
        assert server.dup_segments == 0


class TestSlowStartAimd:
    def test_slow_start_doubles_per_rtt(self, sim):
        a, b = make_lan(sim, CC_COSTS)
        client, server = connect_pair(sim, a, b)
        assert client.cwnd == 4 * MSS
        payload = bytes(range(256)) * 1024  # 256 KB
        assert stream(sim, client, server, payload) == payload
        # Every full-MSS ACK grows cwnd by one MSS during slow start.
        assert client.cwnd > 4 * MSS
        assert client.cwnd_trace, "growth must be recorded"
        values = [v for _, v in client.cwnd_trace]
        assert values == sorted(values)  # lossless run: monotone growth
        assert client.retransmissions == 0

    def test_congestion_avoidance_linear_above_ssthresh(self, sim):
        a, b = make_lan(sim, CC_COSTS.replace(tcp_initial_cwnd=2))
        client, server = connect_pair(sim, a, b)
        client.ssthresh = 2 * MSS  # already at ssthresh: pure CA from here
        payload = bytes(100_000)
        assert stream(sim, client, server, payload) == payload
        growth = [after - before for (_, before), (_, after) in
                  zip(client.cwnd_trace, list(client.cwnd_trace)[1:])]
        assert growth, "CA growth must be recorded"
        # Additive increase: each step is ~mss*mss/cwnd, well below one
        # MSS once cwnd has a few segments in it.
        assert all(0 < g <= MSS for g in growth)

    def test_fast_retransmit_on_triple_dup_ack(self, sim):
        a, b = make_lan(sim, CC_COSTS.replace(tcp_initial_cwnd=10))
        client, server = connect_pair(sim, a, b)
        dropper = _Dropper(1)  # first data segment dies once
        a.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(range(256)) * 256  # 64 KB >> 10 segments
        assert stream(sim, client, server, payload) == payload
        assert dropper.dropped
        assert client.fast_retransmits == 1
        assert client.rto_retransmits == 0  # dup ACKs beat the timer
        assert client.dup_acks_rcvd >= CC_COSTS.tcp_dupack_threshold
        assert not client._in_fast_recovery  # recovery completed
        assert client.cwnd <= client._cwnd_cap

    def test_rto_collapses_cwnd_to_one_segment(self, sim):
        a, b = make_lan(sim, CC_COSTS.replace(tcp_initial_cwnd=10))
        client, server = connect_pair(sim, a, b)
        dropper = _Dropper(1)
        a.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        # One lone segment: no following data, so no dup ACKs -- only
        # the retransmit timer can recover it.
        payload = bytes(1000)
        assert stream(sim, client, server, payload) == payload
        assert client.rto_retransmits == 1
        assert client.fast_retransmits == 0
        assert min(v for _, v in client.cwnd_trace) == MSS  # collapse
        assert client.ssthresh == 2 * MSS  # max(flight//2, 2*mss)

    def test_fixed_mode_keeps_go_back_n(self, sim):
        fixed = DEFAULT_COSTS.replace(tcp_congestion="fixed")
        a, b = make_lan(sim, fixed)
        client, server = connect_pair(sim, a, b)
        dropper = _Dropper(1)
        a.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(range(256)) * 256
        assert stream(sim, client, server, payload) == payload
        assert client.retransmissions >= 1
        # Legacy mode: no congestion machinery fires at all.
        assert client.fast_retransmits == 0
        assert client.dup_acks_rcvd == 0
        assert client.cwnd == DEFAULT_COSTS.tcp_window
        assert not client.cwnd_trace


class TestAckLivelock:
    """The PR's bugfix half: a peer whose ACKs die must never be left
    retransmitting forever."""

    def test_duplicate_segment_draws_ack_and_counter(self, sim, host):
        client, server = connect_pair(sim, host, host)
        # Kill two pure ACKs: the client RTOs and resends bytes the
        # server already buffered.  The duplicates MUST be re-ACKed
        # (and counted) -- ignoring them is the livelock.
        dropper = _Dropper(
            2, match=lambda pkt: len(pkt.payload) == 0 and pkt.l4.flags == 0x10
        )
        host.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(range(256)) * 64
        assert stream(sim, client, server, payload) == payload
        # The reader returned as soon as the bytes landed; keep running
        # so the client's retransmit loop plays out against the re-ACKs.
        sim.run(until=sim.now + 4 * DEFAULT_COSTS.tcp_rto)
        assert dropper.dropped
        assert server.dup_segments >= 1
        assert client.retransmissions <= 4  # re-ACK bounds the loop
        assert not client._retx_buf  # fully acked: the loop terminated

    def test_final_ack_loss_draws_rst(self, sim):
        """Drop the very last ACK of the close sequence: the server is
        left in LAST_ACK and the client has forgotten the connection.
        The server's next segment into the void must draw a RST that
        releases it, instead of it looping once per RTO forever."""
        a, b = make_lan(sim, DEFAULT_COSTS)
        client, server = connect_pair(sim, a, b)
        # The final ACK is the only pure ACK the client emits after its
        # own side reached CLOSED.
        dropper = _Dropper(
            1,
            match=lambda pkt: len(pkt.payload) == 0
            and pkt.l4.flags == 0x10
            and client.state == "CLOSED",
        )
        a.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        t0 = sim.now

        def cli():
            yield from client.send(b"bye")
            yield from client.close()

        def srv():
            assert (yield from server.recv(10)) == b"bye"
            assert (yield from server.recv(10)) == b""
            yield from server.close()
            yield server.closed_event

        sim.process(cli())
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=30)
        assert dropper.dropped, "the final ACK really was lost"
        assert server.state == "CLOSED"
        assert server.reset_by_peer
        assert a.stack.tcp.rsts_sent == 1
        assert a.stack.tcp.rx_no_match == 1
        # Bounded: the demux-miss RST releases the server without a
        # retransmit storm -- well before go-back-N could loop twice.
        assert server.retransmissions <= 1
        assert sim.now - t0 < 2 * DEFAULT_COSTS.tcp_rto

    def test_fin_retransmit_into_void_draws_rst(self, sim):
        """The pure go-back-N livelock shape: the peer is gone (state
        forgotten -- crashed, or aborted on backlog overflow) while we
        still owe it a FIN.  Every FIN retransmission used to vanish
        unanswered; now the demux miss answers RST and the retransmit
        loop ends."""
        a, b = make_lan(sim, DEFAULT_COSTS)
        client, server = connect_pair(sim, a, b)
        # The client vanishes without a trace: no FIN, no RST, the
        # demux entry is simply gone.
        client._become_closed()
        assert not a.stack.tcp.connections

        def srv():
            yield from server.close()
            yield server.closed_event

        t0 = sim.now
        proc = sim.process(srv())
        sim.run_until_complete(proc, timeout=30)
        assert server.state == "CLOSED"
        assert server.reset_by_peer
        assert a.stack.tcp.rsts_sent == 1
        # The very first FIN already hits the miss: zero retransmits.
        assert server.retransmissions == 0
        assert sim.now - t0 < DEFAULT_COSTS.tcp_rto

    def test_retx_counters_roll_into_layer_totals(self, sim):
        a, b = make_lan(sim, CC_COSTS.replace(tcp_initial_cwnd=10))
        client, server = connect_pair(sim, a, b)
        dropper = _Dropper(1)  # one lost data segment -> fast retransmit
        a.stack.netfilter.register(HookPoint.POST_ROUTING, dropper)
        payload = bytes(range(256)) * 256
        assert stream(sim, client, server, payload) == payload
        retx = client.retransmissions
        assert retx >= 1

        def both():
            yield from client.close()
            yield from server.close()
            yield client.closed_event

        proc = sim.process(both())
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 2 * DEFAULT_COSTS.tcp_rto)
        totals = a.stack.tcp.congestion_totals()
        assert totals["conns"] == 1
        # The connection is forgotten, but its counters rolled up.
        assert totals["retransmissions"] == client.retransmissions
        assert totals["fast_retransmits"] == 1


class TestBacklogOverflow:
    def test_overflow_forgets_conn_and_peer_gets_rst(self, sim, host):
        listener = host.stack.tcp_listen(5710, backlog=1)
        clients = []

        def connect_one():
            conn = yield from host.stack.tcp_connect((host.stack.ip, 5710))
            clients.append(conn)

        procs = [sim.process(connect_one()) for _ in range(3)]
        for p in procs:
            sim.run_until_complete(p, timeout=10)
        # connect() returns on SYN-ACK; drain so the servers' final
        # handshake ACKs demux and the accept queue fills/overflows.
        sim.run(until=sim.now + 0.01)
        assert listener.backlog_drops == 2
        assert host.stack.tcp.backlog_drops == 2
        # Exactly one server-side conn survives (queued for accept);
        # the dropped ones are forgotten, not leaked in the demux table.
        assert len(host.stack.tcp.connections) == len(clients) + 1

        # A dropped peer's next segment hits the demux miss and draws a
        # RST; its blocked reader wakes with EOF instead of hanging.
        victim = clients[-1]

        def poke():
            yield from victim.send(b"hello?")
            return (yield from victim.recv(10))

        proc = sim.process(poke())
        got = sim.run_until_complete(proc, timeout=30)
        assert got == b""
        assert victim.state == "CLOSED"
        assert victim.reset_by_peer
        assert host.stack.tcp.rsts_sent >= 1

    def test_within_backlog_unaffected(self, sim, host):
        listener = host.stack.tcp_listen(5711, backlog=4)
        done = []

        def connect_one():
            done.append((yield from host.stack.tcp_connect((host.stack.ip, 5711))))

        procs = [sim.process(connect_one()) for _ in range(3)]
        for p in procs:
            sim.run_until_complete(p, timeout=10)
        sim.run(until=sim.now + 0.01)
        assert listener.backlog_drops == 0
        assert len(listener._ready) == 3


class TestWakeAll:
    def test_eof_wakes_every_blocked_reader(self, sim, host):
        client, server = connect_pair(sim, host, host)
        results = []

        def reader():
            results.append((yield from server.recv(10)))

        r1 = sim.process(reader())
        r2 = sim.process(reader())
        sim.run(until=sim.now + 0.01)  # both block on an empty buffer

        def closer():
            yield from client.close()

        sim.process(closer())
        sim.run_until_complete(r1, timeout=10)
        sim.run_until_complete(r2, timeout=10)
        assert results == [b"", b""]

    def test_single_segment_wakes_single_reader(self, sim, host):
        client, server = connect_pair(sim, host, host)
        woken = []

        def reader(tag):
            woken.append((tag, (yield from server.recv(100))))

        r1 = sim.process(reader("r1"))
        sim.process(reader("r2"))
        sim.run(until=sim.now + 0.01)

        def push():
            yield from client.send(b"x")

        sim.process(push())
        sim.run_until_complete(r1, timeout=10)
        # One payload, one wakeup: the second reader stays blocked.
        assert woken == [("r1", b"x")]


def _bare_conn():
    """A receive-side connection with no peer: _rx_data is yield-free,
    so interleavings can be driven directly."""
    sim = Simulator()
    cpus = CPUCores(sim, 1)
    node = Node(sim, cpus, DEFAULT_COSTS, "prop")
    NetworkStack(node, IPv4Addr("10.9.9.1"))
    conn = TcpConnection(
        node.stack.tcp, (node.stack.ip, 1), (IPv4Addr("10.9.9.2"), 2)
    )
    conn.state = ESTABLISHED
    return conn


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_rx_data_survives_any_interleaving(data):
    """Property (satellite of the livelock fix): any ordering of the
    sender's segments -- with arbitrary duplication and the FIN anywhere
    -- reassembles the exact byte stream, raises EOF exactly once, and
    leaves no out-of-order state behind."""
    payload = bytes(range(256)) * data.draw(st.integers(1, 6), label="reps")
    n = len(payload)
    cuts = sorted(
        data.draw(
            st.sets(st.integers(1, n - 1), min_size=0, max_size=6), label="cuts"
        )
    )
    bounds = [0, *cuts, n]
    segments = [
        (bounds[i], payload[bounds[i] : bounds[i + 1]], False)
        for i in range(len(bounds) - 1)
    ]
    segments.append((n, b"", True))  # FIN
    dups = data.draw(
        st.lists(st.sampled_from(segments), max_size=5), label="dups"
    )
    order = data.draw(st.permutations(segments + dups), label="order")

    conn = _bare_conn()
    for seq, seg, fin in order:
        # Every payload/FIN segment demands an ACK, duplicates included.
        assert conn._rx_data(seq, seg, fin) is True
    assert b"".join(conn._recv_buf) == payload
    assert conn.bytes_received == n
    assert conn.rcv_nxt == n + 1  # FIN consumed its sequence number
    assert conn.eof
    assert not conn._ooo, "drain must consume the whole OOO buffer"
    if len(order) > len(segments):
        # At least one duplicate arrived strictly in-window somewhere
        # only if delivery order made it so -- but the counter must
        # never go negative or explode past the dup count.
        assert 0 <= conn.dup_segments <= len(order)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_rx_data_partial_overlap_trims(data):
    """Segments re-sent with a stale head (seq < rcv_nxt < end) must be
    trimmed, counted, and still advance the stream."""
    payload = bytes(range(200))
    conn = _bare_conn()
    first = data.draw(st.integers(10, 190), label="first")
    overlap = data.draw(st.integers(1, first), label="overlap")
    conn._rx_data(0, payload[:first], False)
    conn._rx_data(first - overlap, payload[first - overlap :], False)
    assert b"".join(conn._recv_buf) == payload
    assert conn.rcv_nxt == len(payload)
    assert conn.dup_segments == 1
