"""Guest save/restore with XenLoop loaded (paper Sect. 3.4, last line)."""

import pytest

from repro import scenarios
from repro.core.channel import ChannelState
from repro.xen.migration import save_restore
from tests.core.conftest import FAST, first_channel, udp_once


@pytest.fixture
def xl():
    scn = scenarios.xenloop(FAST)
    scn.warmup(max_wait=10.0)
    return scn


class TestSaveRestore:
    def _save_restore(self, scn, guest, pause=0.5):
        proc = scn.sim.process(save_restore(guest, pause))
        return scn.sim.run_until_complete(proc, timeout=30)

    def test_channels_torn_down_on_save(self, xl):
        scn = xl
        old = first_channel(scn, scn.node_b)
        self._save_restore(scn, scn.node_b)
        scn.sim.run(until=scn.sim.now + 0.2)
        assert old.state is ChannelState.CLOSED
        assert not scn.xenloop_module(scn.node_a).channels

    def test_new_domid_after_restore(self, xl):
        scn = xl
        old_domid = scn.node_b.domid
        new_domid = self._save_restore(scn, scn.node_b)
        assert new_domid != old_domid
        assert scn.node_b.domid == new_domid

    def test_readvertises_and_reconnects(self, xl):
        scn = xl
        self._save_restore(scn, scn.node_b)
        machine = scn.machines[0]
        scn.sim.run(until=scn.sim.now + 0.1)
        assert machine.xenstore.exists(
            0, f"/local/domain/{scn.node_b.domid}/xenloop"
        )
        # after discovery + traffic, the channel re-forms with the new id
        scn.warmup(max_wait=10.0)
        ch = first_channel(scn, scn.node_a)
        assert ch.peer_domid == scn.node_b.domid

    def test_traffic_flows_during_and_after(self, xl):
        scn = xl
        sim = scn.sim
        # arrange a slow save/restore and poke traffic mid-pause
        proc = sim.process(save_restore(scn.node_b, pause=1.0))
        sim.run(until=sim.now + 0.3)
        # guest is saved: packets are held, not lost (sender blocks)
        sock = scn.node_a.stack.udp_socket()
        server_sock = None  # server socket belongs to a saved guest
        send_proc = sim.process(sock.sendto(b"mid-save", (scn.ip_b, 8701)))
        sim.run_until_complete(proc, timeout=30)
        sim.run(until=sim.now + 0.5)
        # after restore, ordinary traffic works
        assert udp_once(scn, b"after-restore", port=8702) == b"after-restore"

    def test_grants_clean_after_save(self, xl):
        scn = xl
        listener_node = min((scn.node_a, scn.node_b), key=lambda n: n.domid)
        self._save_restore(scn, scn.node_b)
        scn.sim.run(until=scn.sim.now + 0.2)
        assert listener_node.grant_table.active_entries == 0
