"""Dom0 software bridge.

The Xen network architecture the paper targets (Fig. 1): every guest
vif has a netback port on this bridge, and the machine's physical NIC
is also a port.  All guest-to-guest traffic on the netfront/netback
path crosses this bridge inside the driver domain -- the indirection
XenLoop exists to bypass.

Ports implement ``deliver(packet)`` as a *generator* executed in Dom0
context (the bridge charges Dom0 CPU for every forwarded frame).
"""

from __future__ import annotations

from typing import Optional

from repro.faults import plan_of
from repro.net.addr import MacAddr
from repro.net.packet import Packet

__all__ = ["Bridge", "BridgePort", "NicBridgePort"]


class BridgePort:
    """Abstract bridge port."""

    def __init__(self, name: str):
        self.name = name
        self.bridge: "Bridge | None" = None

    def deliver(self, packet: Packet):  # pragma: no cover - abstract
        """Generator: push the frame out of this port."""
        raise NotImplementedError
        yield  # makes this a generator in subclass-free use


class NicBridgePort(BridgePort):
    """Bridge port wrapping the machine's physical NIC (uplink)."""

    def __init__(self, nic):
        super().__init__(f"port-{nic.name}")
        self.nic = nic
        nic.promisc_handler = self._from_wire

    def deliver(self, packet: Packet):
        """Send the frame out of the machine via the physical NIC (generator)."""
        dom0 = self.bridge.dom0
        yield dom0.exec(self.nic.tx_cost(packet))
        yield self.nic.queue_xmit(packet)

    def _from_wire(self, packet: Packet) -> None:
        """Frame from the wire enters the bridge (interrupt context)."""
        self.bridge.input(self, packet)


class Bridge:
    """Learning bridge running in Dom0."""

    def __init__(self, dom0, name: str = "xenbr0"):
        self.dom0 = dom0
        self.name = name
        self.ports: list[BridgePort] = []
        self._fdb: dict[MacAddr, BridgePort] = {}
        self.frames_forwarded = 0
        self.frames_flooded = 0
        #: frames dropped by an injected PKT_LOSS fault rule.
        self.frames_dropped = 0
        # One forwarding process is spawned per frame; format its name once.
        self._fwd_pname = f"{dom0.name}:bridge-fwd"
        # PKT_LOSS rules match on the machine name (faults.FaultRule.guest).
        machine = getattr(dom0, "machine", None)
        self._machine_name = getattr(machine, "name", dom0.name)

    def add_port(self, port: BridgePort) -> None:
        """Attach a port (vif netback or NIC uplink) to the bridge."""
        port.bridge = self
        self.ports.append(port)

    def remove_port(self, port: BridgePort) -> None:
        """Detach a port and purge its learned MACs."""
        if port in self.ports:
            self.ports.remove(port)
        stale = [mac for mac, p in self._fdb.items() if p is port]
        for mac in stale:
            del self._fdb[mac]

    def forget(self, mac: MacAddr) -> None:
        """Purge one learned MAC (e.g. after a guest migrates away)."""
        self._fdb.pop(mac, None)

    def pin(self, mac: MacAddr, port: BridgePort) -> None:
        """Statically map ``mac`` to ``port`` (e.g. Dom0's control port,
        which never transmits through the bridge and so is never learned)."""
        self._fdb[mac] = port

    def input(self, in_port: Optional[BridgePort], packet: Packet) -> None:
        """A frame enters the bridge; forwarding happens in a Dom0 process.

        ``in_port=None`` means the frame was injected by Dom0 itself
        (e.g. a discovery announcement).
        """
        self.dom0.sim.process(self.forward(in_port, packet), self._fwd_pname)

    def forward(self, in_port: Optional[BridgePort], packet: Packet):
        """Forward one frame (generator, Dom0 context)."""
        dom0 = self.dom0
        yield dom0.exec(dom0.costs.bridge_forward)
        eth = packet.eth
        if eth is None:
            return
        if in_port is not None:
            self._fdb[eth.src] = in_port
        # Injected bridge-path loss (faults.PKT_LOSS): the frame vanishes
        # after the forwarding cost is charged and the FDB has learned
        # the source, like a drop at the egress queue.  Zero-overhead
        # tap: one getattr when no plan is installed.
        plan = plan_of(dom0.sim)
        if (
            plan is not None
            and plan.has_loss_rules
            and plan.pkt_lost(self._machine_name, packet)
        ):
            self.frames_dropped += 1
            return
        out = self._fdb.get(eth.dst)
        if out is not None and not eth.dst.is_broadcast and not eth.dst.is_multicast:
            if out is not in_port:
                self.frames_forwarded += 1
                yield from out.deliver(packet)
            return
        self.frames_flooded += 1
        # 802.1D: frames to the 01:80:c2 link-local block must not leave
        # the bridge via the uplink (or any inter-machine face wrapped in
        # a NicBridgePort, e.g. the sharded-mode ShardLink).
        link_local = eth.dst.is_link_local
        for port in list(self.ports):
            if port is in_port:
                continue
            if link_local and isinstance(port, NicBridgePort):
                continue
            yield from port.deliver(packet.clone())
