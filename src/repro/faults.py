"""Deterministic fault injection: seeded plans, composable rules.

The paper's transparency claim rests on XenLoop surviving the ugly
cases -- lost handshake frames, guest crashes, migration mid-traffic --
by retrying, timing out, and falling back to the standard
netfront/netback path (Sect. 3.2-3.4).  The simulated network never
loses anything on its own, so this module supplies the losses: a
:class:`FaultPlan` is a list of :class:`FaultRule` entries consulted at
four tap points --

* ``XenLoopModule.send_control`` (and the Dom0 discovery announcement
  loop): control-frame **loss / delay / duplication** by message type;
* ``EventChannelSubsys.notify``: **notify loss** (the 1-bit wakeup
  never reaches the peer);
* ``GrantTable.map_grant``: injected **mapping failure** (the
  connector's hypercall fails);
* ``ChannelController`` phase transitions: guest **crash/restart** or
  forced **migration** at a chosen handshake phase, scheduled through
  the topology layer;
* ``Bridge.forward``: **bridge-path packet loss** -- a matching frame
  vanishes after the Dom0 forwarding cost is charged, exercising the
  TCP retransmit/congestion machinery (the XenLoop FIFO path never
  crosses the bridge, so it stays lossless -- the paper's asymmetry).

Determinism contract: a plan draws randomness only from its own
:func:`repro.sim.rng.make_rng` generator (and only for rules with
``prob < 1``), and the tap points are pure no-ops when no plan is
installed -- so runs without faults are bit-identical to a build
without this module, and the same seed plus the same plan replays the
same fault schedule bit-identically.

Install a plan with ``FaultPlan([...], seed=...).install(sim)`` (or
``.bind(cluster)``, which also gives crash-restart/migrate rules the
topology context they need).  Recovery-path counters are recorded via
:func:`note_recovered` / :func:`note_degraded` -- cheap no-ops when no
plan is installed -- and surface through ``trace.engine_stats`` and the
``fault_matrix`` scenario sweep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.rng import DEFAULT_SEED, make_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.topology import Cluster
    from repro.xen.domain import Domain

__all__ = [
    "CONTROL_DELAY",
    "CONTROL_DROP",
    "CONTROL_DUP",
    "CRASH",
    "FaultPlan",
    "FaultRule",
    "MAP_FAIL",
    "MIGRATE",
    "NOTIFY_DROP",
    "PKT_LOSS",
    "note_degraded",
    "note_recovered",
    "plan_of",
]

#: drop a matching control frame on the floor.
CONTROL_DROP = "control_drop"
#: deliver a matching control frame late (by ``rule.delay`` seconds).
CONTROL_DELAY = "control_delay"
#: deliver a matching control frame twice (listener retry crossing on
#: the wire, stale frames after recovery).
CONTROL_DUP = "control_dup"
#: lose an event-channel notify (hypercall succeeds, wakeup vanishes).
NOTIFY_DROP = "notify_drop"
#: fail a ``map_grant`` hypercall (connector-side bootstrap abort).
MAP_FAIL = "map_fail"
#: crash the guest abruptly (no shutdown callbacks) at a handshake
#: phase; ``restart_after`` optionally re-creates it from its spec.
CRASH = "crash"
#: live-migrate the guest to ``to_machine`` at a handshake phase.
MIGRATE = "migrate"
#: drop a data-plane frame on the Dom0 bridge's forwarding path.
PKT_LOSS = "pkt_loss"

_CONTROL_KINDS = frozenset((CONTROL_DROP, CONTROL_DELAY, CONTROL_DUP))
_PHASE_KINDS = frozenset((CRASH, MIGRATE))
_ALL_KINDS = _CONTROL_KINDS | _PHASE_KINDS | {NOTIFY_DROP, MAP_FAIL, PKT_LOSS}

#: traffic classes a PKT_LOSS rule's ``message`` field may name (None
#: matches every forwarded frame).
_PKT_CLASSES = frozenset(("tcp", "tcp_ack", "tcp_data", "udp", "icmp"))

#: handshake phases a crash/migrate rule may anchor to.
_PHASES = frozenset(("bootstrapping", "connected"))


@dataclass(frozen=True)
class FaultRule:
    """One composable fault.

    ``kind`` selects the tap point (module constants above).  The match
    fields narrow where it fires: ``message`` is a control-frame class
    name (``"ConnectRequest"``, ``"CreateChannel"``, ``"ChannelAck"``,
    ``"Announce"``) or, for PKT_LOSS, a traffic class (``"tcp"``,
    ``"tcp_ack"`` -- pure ACKs only, ``"tcp_data"`` --
    sequence-consuming segments (payload, SYN or FIN), ``"udp"``,
    ``"icmp"``; None matches every forwarded frame); ``guest`` is the acting guest's name (sender for control
    frames, recipient for announcements, notifier for notify loss,
    mapper for map failures, victim for crash/migrate) or, for
    PKT_LOSS, the *machine* whose bridge drops; ``phase`` anchors
    crash/migrate rules to a handshake phase.

    Firing is gated deterministically: the first ``skip`` matches pass
    through unharmed, at most ``times`` matches fire (None = unlimited),
    and ``prob < 1`` draws from the plan's seeded generator.  ``delay``
    is the added latency for CONTROL_DELAY and the trigger offset for
    crash/migrate; ``restart_after`` re-creates a crashed guest that
    many seconds later (needs a bound cluster); ``to_machine`` names the
    migration target.
    """

    kind: str
    message: Optional[str] = None
    guest: Optional[str] = None
    phase: Optional[str] = None
    to_machine: Optional[str] = None
    prob: float = 1.0
    times: Optional[int] = 1
    skip: int = 0
    delay: float = 0.0
    restart_after: Optional[float] = None

    def __post_init__(self):
        if self.kind not in _ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], not {self.prob}")
        if self.phase is not None and self.phase not in _PHASES:
            raise ValueError(f"unknown handshake phase {self.phase!r}")
        if self.kind == MIGRATE and self.to_machine is None:
            raise ValueError("a migrate rule needs to_machine")
        if self.kind in _PHASE_KINDS and self.phase is None:
            raise ValueError(f"a {self.kind} rule needs a phase")
        if (
            self.kind == PKT_LOSS
            and self.message is not None
            and self.message not in _PKT_CLASSES
        ):
            raise ValueError(
                f"unknown pkt_loss traffic class {self.message!r} "
                f"(one of {sorted(_PKT_CLASSES)})"
            )


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Holds the rules, their firing state, and the three outcome counters
    (``injected`` by fault kind, ``recovered`` / ``degraded`` by
    recovery-path name).  One plan drives one simulation; install it
    before running traffic.
    """

    def __init__(self, rules=(), seed: int = DEFAULT_SEED):
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._rng = make_rng(seed)
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        #: fault kind -> injections performed.
        self.injected: Counter = Counter()
        #: recovery path -> times traffic/handshakes recovered through it.
        self.recovered: Counter = Counter()
        #: degradation path -> times a channel gave up (FAILED/aborted).
        self.degraded: Counter = Counter()
        #: topology context for crash-restart / migrate rules.
        self.cluster: Optional["Cluster"] = None
        # Per-tap fast-path gates so a plan with only control rules adds
        # no work to the (hot) notify path, and vice versa.
        kinds = {r.kind for r in self.rules}
        self.has_control_rules = bool(kinds & _CONTROL_KINDS)
        self.has_notify_rules = NOTIFY_DROP in kinds
        self.has_map_rules = MAP_FAIL in kinds
        self.has_phase_rules = bool(kinds & _PHASE_KINDS)
        self.has_loss_rules = PKT_LOSS in kinds

    # -- installation ----------------------------------------------------
    def install(self, sim: "Simulator") -> "FaultPlan":
        """Attach this plan to a simulator's tap points."""
        sim.fault_plan = self
        return self

    def bind(self, cluster: "Cluster") -> "FaultPlan":
        """Install into a built cluster and keep the topology context
        (crash-restart and migrate rules need it)."""
        self.cluster = cluster
        return self.install(cluster.sim)

    # -- rule gating -------------------------------------------------------
    def _fire(self, idx: int) -> bool:
        """Deterministic skip/times/prob gating for one matched rule."""
        rule = self.rules[idx]
        self._seen[idx] += 1
        if self._seen[idx] <= rule.skip:
            return False
        if rule.times is not None and self._fired[idx] >= rule.times:
            return False
        if rule.prob < 1.0 and float(self._rng.random()) >= rule.prob:
            return False
        self._fired[idx] += 1
        self.injected[rule.kind] += 1
        return True

    # -- tap points ----------------------------------------------------
    def on_control(self, guest_name: str, msg_name: str) -> tuple[bool, float, int]:
        """Control-frame tap: returns (deliver, extra_delay, duplicates).

        Matching drop/delay/dup rules compose: any drop wins, delays
        add, each dup rule adds one extra copy.
        """
        deliver, delay, dup = True, 0.0, 0
        for idx, rule in enumerate(self.rules):
            if rule.kind not in _CONTROL_KINDS:
                continue
            if rule.message is not None and rule.message != msg_name:
                continue
            if rule.guest is not None and rule.guest != guest_name:
                continue
            if not self._fire(idx):
                continue
            if rule.kind == CONTROL_DROP:
                deliver = False
            elif rule.kind == CONTROL_DELAY:
                delay += rule.delay
            else:
                dup += 1
        return deliver, delay, dup

    def notify_lost(self, notifier_name: Optional[str]) -> bool:
        """Event-channel tap: True when this notify should vanish."""
        for idx, rule in enumerate(self.rules):
            if rule.kind != NOTIFY_DROP:
                continue
            if rule.guest is not None and rule.guest != notifier_name:
                continue
            if self._fire(idx):
                return True
        return False

    def pkt_lost(self, machine_name: Optional[str], packet) -> bool:
        """Bridge-forwarding tap: True when this frame should vanish.

        ``machine_name`` is the machine whose Dom0 bridge is forwarding
        (matched against ``rule.guest``); ``rule.message`` narrows to a
        traffic class (see :class:`FaultRule`)."""
        for idx, rule in enumerate(self.rules):
            if rule.kind != PKT_LOSS:
                continue
            if rule.guest is not None and rule.guest != machine_name:
                continue
            if rule.message is not None and not _pkt_in_class(packet, rule.message):
                continue
            if self._fire(idx):
                return True
        return False

    def map_fails(self, mapper_name: Optional[str]) -> bool:
        """Grant-table tap: True when this map_grant should fail."""
        for idx, rule in enumerate(self.rules):
            if rule.kind != MAP_FAIL:
                continue
            if rule.guest is not None and rule.guest != mapper_name:
                continue
            if self._fire(idx):
                return True
        return False

    def on_phase(self, guest: "Domain", phase: str) -> None:
        """Handshake-phase tap: schedule crash/migrate rules anchored to
        ``phase`` as separate processes (so the handshake generator that
        triggered them is not torn down from under itself)."""
        for idx, rule in enumerate(self.rules):
            if rule.kind not in _PHASE_KINDS:
                continue
            if rule.phase != phase:
                continue
            if rule.guest is not None and rule.guest != guest.name:
                continue
            if not self._fire(idx):
                continue
            if rule.kind == CRASH:
                guest.sim.process(
                    self._crash_runner(guest, rule), name=f"fault-crash-{guest.name}"
                )
            else:
                guest.sim.process(
                    self._migrate_runner(guest, rule), name=f"fault-migrate-{guest.name}"
                )

    def _crash_runner(self, guest: "Domain", rule: FaultRule):
        yield guest.sim.timeout(rule.delay)
        guest.crash()
        if rule.restart_after is not None and self.cluster is not None:
            yield guest.sim.timeout(rule.restart_after)
            self.cluster.restart_guest(guest.name)
            self.recovered["guest_restart"] += 1

    def _migrate_runner(self, guest: "Domain", rule: FaultRule):
        from repro.xen.migration import live_migrate

        yield guest.sim.timeout(rule.delay)
        if self.cluster is None:
            return
        dst = self.cluster.machines_by_name.get(rule.to_machine)
        if dst is None or dst is guest.machine or not guest.alive:
            return
        yield from live_migrate(guest, dst)

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        """Counters snapshot for ``trace.engine_stats`` / ``report``."""
        return {
            "rules": len(self.rules),
            "injected": dict(sorted(self.injected.items())),
            "recovered": dict(sorted(self.recovered.items())),
            "degraded": dict(sorted(self.degraded.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FaultPlan rules={len(self.rules)} seed={self.seed} "
            f"injected={sum(self.injected.values())}>"
        )


# ---------------------------------------------------------------------------
# Module-level helpers: cheap no-ops when no plan is installed, so the
# control plane can record recovery outcomes unconditionally.
# ---------------------------------------------------------------------------

def plan_of(sim) -> Optional[FaultPlan]:
    """The plan installed on ``sim``, or None."""
    return getattr(sim, "fault_plan", None)


def _pkt_in_class(packet, pkt_class: str) -> bool:
    """Does ``packet`` belong to PKT_LOSS traffic class ``pkt_class``?"""
    from repro.net.ethernet import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP

    ip = packet.ip
    if ip is None:
        return False
    if pkt_class == "udp":
        return ip.proto == IPPROTO_UDP
    if pkt_class == "icmp":
        return ip.proto == IPPROTO_ICMP
    if ip.proto != IPPROTO_TCP:
        return False
    if pkt_class == "tcp":
        return True
    hdr = packet.l4
    carries = bool(packet.payload) or (hdr is not None and hdr.flags & 0x03)  # SYN|FIN
    return carries if pkt_class == "tcp_data" else not carries


def note_recovered(sim, path: str, n: int = 1) -> None:
    """Record that traffic/handshake recovered via ``path``."""
    plan = getattr(sim, "fault_plan", None)
    if plan is not None:
        plan.recovered[path] += n


def note_degraded(sim, path: str, n: int = 1) -> None:
    """Record that a channel gave up via ``path`` (clean failure)."""
    plan = getattr(sim, "fault_plan", None)
    if plan is not None:
        plan.degraded[path] += n
