"""Figure 4: netperf UDP_STREAM throughput versus message size.

The paper's observations this regenerates:

* throughput grows with message size in all four scenarios (fewer
  user/kernel crossings per byte);
* XenLoop overtakes both netfront and inter-machine beyond ~1 KB;
* for sub-1 KB messages native inter-machine is competitive because
  domain switching and split-driver overheads dominate small packets.
"""

from repro import report
from repro.workloads import netperf

from _bench_utils import SCENARIO_ORDER, build_warm, emit

SIZES = [64, 256, 1024, 4096, 8192, 16384, 32768]


def _measure():
    series = {name: [] for name in SCENARIO_ORDER}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        for i, size in enumerate(SIZES):
            res = netperf.udp_stream(scn, duration=0.02, msg_size=size, port=5600 + i)
            series[name].append(res.mbps)
    return series


def test_fig4_udp_stream_vs_message_size(run_once, benchmark):
    series = run_once(_measure)
    emit(
        "fig4_udp_msgsize",
        report.format_series(
            "Fig. 4: UDP_STREAM throughput (Mbit/s) vs message size (B)",
            "msg_size",
            SIZES,
            series,
            precision=0,
        ),
    )
    benchmark.extra_info["series"] = {k: [round(v) for v in vs] for k, vs in series.items()}
    # Shape: throughput grows with message size for XenLoop...
    xl = series["xenloop"]
    assert xl[-1] > xl[0]
    # ...and XenLoop wins beyond 1 KB (paper: "for packets larger than
    # 1KB, XenLoop achieves higher bandwidth than both netfront-netback
    # and native inter-machine communication").
    for i, size in enumerate(SIZES):
        if size > 1024:
            assert xl[i] > series["netfront_netback"][i]
            assert xl[i] > series["inter_machine"][i]
