"""Seeded-RNG helpers: state save/restore and per-shard seed derivation.

The snapshot subsystem leans on two contracts proven here: a captured
generator state restores bit-identically mid-stream, and shard seed
derivation is collision-free while keeping the one-shard path seeded
exactly like an unsharded run.
"""

import numpy as np
import pytest

from repro.sim.rng import (
    DEFAULT_SEED,
    make_rng,
    make_shard_seeds,
    rng_state,
    set_rng_state,
)


class TestRngState:
    def test_roundtrip_is_json_plain(self):
        """State dicts hold only plain Python scalars (snapshot digests
        serialize them as canonical JSON)."""
        import json

        state = rng_state(make_rng(42))
        json.dumps(state)  # would raise on numpy scalars

    def test_mid_stream_restore_is_bit_identical(self):
        """Capture after N draws; the restored generator produces exactly
        the draws a never-interrupted one would have."""
        rng = make_rng(7)
        rng.random(100)  # advance mid-stream
        saved = rng_state(rng)
        expected = rng.random(50)
        expected_ints = rng.integers(0, 1 << 62, size=20)

        other = make_rng(999)  # arbitrary state, fully overwritten
        set_rng_state(other, saved)
        assert np.array_equal(other.random(50), expected)
        assert np.array_equal(other.integers(0, 1 << 62, size=20), expected_ints)

    def test_restore_into_same_generator_rewinds(self):
        rng = make_rng(3)
        saved = rng_state(rng)
        first = rng.random(10)
        set_rng_state(rng, saved)
        assert np.array_equal(rng.random(10), first)

    def test_state_capture_does_not_advance(self):
        rng = make_rng(5)
        twin = make_rng(5)
        rng_state(rng)
        rng_state(rng)
        assert rng.random() == twin.random()


class TestShardSeeds:
    def test_one_shard_is_passthrough(self):
        """n=1 must hand back the base seed unchanged so the one-shard
        path seeds its simulator exactly like an unsharded run."""
        assert make_shard_seeds(123, 1) == [123]
        assert make_shard_seeds(None, 1) == [DEFAULT_SEED]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            make_shard_seeds(0, 0)

    def test_spawned_streams_are_distinct(self):
        """No two shards may draw the same stream, for any shard count."""
        for n in (2, 3, 8, 32):
            seeds = make_shard_seeds(0, n)
            assert len(seeds) == n
            first_draws = [make_rng(s).integers(0, 1 << 62, size=4) for s in seeds]
            for i in range(n):
                for j in range(i + 1, n):
                    assert not np.array_equal(first_draws[i], first_draws[j])

    def test_spawn_is_deterministic(self):
        a = [rng_state(make_rng(s)) for s in make_shard_seeds(17, 4)]
        b = [rng_state(make_rng(s)) for s in make_shard_seeds(17, 4)]
        assert a == b

    def test_different_base_seeds_differ(self):
        a = make_rng(make_shard_seeds(1, 2)[0]).integers(0, 1 << 62, size=4)
        b = make_rng(make_shard_seeds(2, 2)[0]).integers(0, 1 << 62, size=4)
        assert not np.array_equal(a, b)
