"""Figure 8: OSU MPI uni-directional bandwidth versus message size.

Paper observation: XenLoop does much better than inter-machine and
netfront when messages are smaller than ~8192 B; large messages fill
the FIFO quickly and subsequent messages wait for the receiver.
"""

from repro import report
from repro.workloads import osu

from _bench_utils import SCENARIO_ORDER, build_warm, emit

SIZES = [64, 512, 2048, 8192, 16384, 65536]


def _measure():
    series = {}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        _s, values = osu.osu_bw(scn, sizes=SIZES).series()
        series[name] = values
    return series


def test_fig8_osu_unidirectional_bw(run_once, benchmark):
    series = run_once(_measure)
    emit(
        "fig8_osu_bw",
        report.format_series(
            "Fig. 8: OSU uni-directional bandwidth (Mbit/s) vs message size (B)",
            "msg_size",
            SIZES,
            series,
            precision=0,
        ),
    )
    benchmark.extra_info["series"] = {k: [round(v) for v in vs] for k, vs in series.items()}
    # Shape: below 8 KB XenLoop beats netfront and inter-machine clearly.
    for i, size in enumerate(SIZES):
        if size <= 8192:
            assert series["xenloop"][i] > series["netfront_netback"][i]
            assert series["xenloop"][i] > series["inter_machine"][i]
