"""Soft-state domain discovery (Dom0 module + guest mapping tables)."""

import pytest

from repro import scenarios
from repro.core.discovery import DiscoveryModule
from tests.core.conftest import FAST


class TestCollation:
    def test_collate_reads_adverts(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=0.05)  # let modules write their adverts
        entries = scn.discovery.collate()
        assert sorted(domid for domid, _mac in entries) == sorted(
            (scn.node_a.domid, scn.node_b.domid)
        )
        macs = {mac for _d, mac in entries}
        assert scn.node_a.mac in macs and scn.node_b.mac in macs

    def test_collate_ignores_non_advertising_guests(self, xl_cold):
        scn = xl_cold
        machine = scn.machines[0]
        machine.create_guest("vm3", ip=None)  # no stack, no module
        scn.sim.run(until=0.05)
        assert len(scn.discovery.collate()) == 2

    def test_collate_skips_malformed_advert(self, xl_cold):
        scn = xl_cold
        machine = scn.machines[0]
        vm3 = machine.create_guest("vm3")
        machine.xenstore.write(0, f"/local/domain/{vm3.domid}/xenloop", "not-a-mac")
        scn.sim.run(until=0.05)
        assert len(scn.discovery.collate()) == 2


class TestAnnouncements:
    def test_guests_learn_mapping(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=2 * FAST.discovery_period)
        module_a = scn.xenloop_module(scn.node_a)
        module_b = scn.xenloop_module(scn.node_b)
        assert module_a.mapping == {scn.node_b.mac: scn.node_b.domid}
        assert module_b.mapping == {scn.node_a.mac: scn.node_a.domid}

    def test_own_entry_excluded(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=2 * FAST.discovery_period)
        module_a = scn.xenloop_module(scn.node_a)
        assert scn.node_a.mac not in module_a.mapping

    def test_periodic_scanning(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=5 * FAST.discovery_period)
        assert scn.discovery.scans >= 4

    def test_stopped_discovery_stops_announcing(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=2 * FAST.discovery_period)
        scn.discovery.stop()
        sent = scn.discovery.announcements_sent
        scn.sim.run(until=scn.sim.now + 3 * FAST.discovery_period)
        assert scn.discovery.announcements_sent == sent

    def test_announcements_counted_by_guests(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=3 * FAST.discovery_period)
        assert scn.xenloop_module(scn.node_a).announcements_seen >= 2

    def test_one_serialization_per_scan(self, xl_cold):
        """The Announce is built and serialized once per scan; every
        recipient's frame carries the *identical* payload object."""
        scn = xl_cold
        bridge = scn.discovery.machine.bridge
        captured = []
        real_input = bridge.input

        from repro.core.discovery import DOM0_MAC

        def tap(port, frame):
            if frame.eth is not None and frame.eth.src == DOM0_MAC:
                captured.append((scn.discovery.scans, frame))
            return real_input(port, frame)

        bridge.input = tap
        try:
            scn.sim.run(until=3 * FAST.discovery_period)
        finally:
            bridge.input = real_input
        by_scan = {}
        for scan, frame in captured:
            by_scan.setdefault(scan, []).append(frame)
        multi = [frames for frames in by_scan.values() if len(frames) > 1]
        assert multi, "expected scans announcing to both guests"
        for frames in multi:
            first = frames[0].payload
            assert all(f.payload is first for f in frames)

    def test_third_guest_appears_in_mapping(self, xl_cold):
        scn = xl_cold
        scn.sim.run(until=2 * FAST.discovery_period)
        from repro.core.module import XenLoopModule
        from repro.net.addr import IPv4Addr

        machine = scn.machines[0]
        vm3 = machine.create_guest("vm3", ip=IPv4Addr("10.0.0.3"))
        XenLoopModule(vm3)
        scn.sim.run(until=scn.sim.now + 2 * FAST.discovery_period)
        module_a = scn.xenloop_module(scn.node_a)
        assert module_a.mapping.get(vm3.mac) == vm3.domid


class TestRoster:
    def test_roster_tracks_advertising_guests(self, xl_cold):
        scn = xl_cold
        assert scn.discovery.roster == {}
        scn.sim.run(until=2 * FAST.discovery_period)
        assert scn.discovery.roster == {
            scn.node_a.mac: scn.node_a.domid,
            scn.node_b.mac: scn.node_b.domid,
        }

    def test_unloaded_guest_leaves_roster(self, xl):
        scn = xl
        module_b = scn.xenloop_module(scn.node_b)
        proc = scn.sim.process(module_b.unload(), name="test-unload")
        scn.sim.run_until_complete(proc, timeout=5.0)
        scn.sim.run(until=scn.sim.now + 2 * FAST.discovery_period)
        assert scn.node_b.mac not in scn.discovery.roster
        assert scn.node_a.mac in scn.discovery.roster
