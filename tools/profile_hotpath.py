"""Reproduce the simulation-engine hot-path profile on demand.

Runs the engine-throughput workload (``udp_stream`` on a scenario) under
cProfile and prints the hottest functions, the view that motivated the
fast-path work: immediate run queue, allocation-free resume, single-shot
CPU completions, and batched cost charging.

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py
    PYTHONPATH=src python tools/profile_hotpath.py --duration 0.1 --sort cumulative
    PYTHONPATH=src python tools/profile_hotpath.py -o hotpath.pstats  # for snakeviz etc.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time

from repro import scenarios, trace
from repro.workloads import netperf


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="xenloop")
    parser.add_argument("--msg-size", type=int, default=4096)
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument(
        "--sort", default="tottime", choices=["tottime", "cumulative", "ncalls"]
    )
    parser.add_argument("--limit", type=int, default=25, help="rows to print")
    parser.add_argument("-o", "--output", help="also dump raw pstats to this file")
    args = parser.parse_args()

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    scn = scenarios.build(args.scenario)
    result = netperf.udp_stream(scn, msg_size=args.msg_size, duration=args.duration)
    profiler.disable()
    wall = time.perf_counter() - t0

    stats = trace.engine_stats(scn.sim, wall_s=wall)
    print(
        f"{args.scenario} udp_stream msg_size={args.msg_size} "
        f"duration={args.duration}: {result.mbps:,.1f} Mbit/s simulated"
    )
    print(
        f"{stats['events']:,} events in {wall:.2f}s wall "
        f"= {stats['events_per_sec']:,.0f} events/s\n"
    )
    ps = pstats.Stats(profiler)
    ps.sort_stats(args.sort).print_stats(args.limit)
    if args.output:
        ps.dump_stats(args.output)
        print(f"raw profile written to {args.output}")


if __name__ == "__main__":
    main()
