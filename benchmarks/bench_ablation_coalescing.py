"""Ablation: 1-bit event-channel coalescing on versus off.

The FIFO drain loop relies on Xen's pending-bit semantics: a burst of
packets costs one virtual IRQ.  With coalescing disabled every notify
produces a full upcall, multiplying receive-side interrupt work -- this
quantifies how much of XenLoop's stream bandwidth the 1-bit design is
worth.
"""

from repro import report, scenarios
from repro.workloads import netperf, pingpong

from _bench_utils import BENCH_COSTS, emit

VARIANTS = {"coalescing (Xen semantics)": True, "notify-per-packet": False}


def _measure():
    rows = {}
    for label, coalesce in VARIANTS.items():
        scn = scenarios.xenloop(BENCH_COSTS)
        scn.machines[0].hypervisor.evtchn.coalescing = coalesce
        scn.warmup(max_wait=20.0)
        upcalls_before = _total_upcalls(scn)
        stream = netperf.udp_stream(scn, duration=0.03, msg_size=4096)
        rows[label] = {
            "udp_stream_mbps": stream.mbps,
            "ping_rtt_us": pingpong.flood_ping(scn, count=100).rtt_us,
            "upcalls": _total_upcalls(scn) - upcalls_before,
        }
    return rows


def _total_upcalls(scn):
    total = 0
    for module in scn.modules.values():
        for channel in module.channels.values():
            if channel.port is not None:
                total += channel.port.upcalls
    return total


def test_ablation_event_coalescing(run_once, benchmark):
    rows = run_once(_measure)
    columns = ["udp_stream_mbps", "ping_rtt_us", "upcalls"]
    emit(
        "ablation_coalescing",
        report.format_table(
            "Ablation: event-channel notification coalescing",
            columns,
            list(rows.items()),
            precision=1,
        ),
    )
    benchmark.extra_info.update(
        {k: {c: round(v, 1) for c, v in row.items()} for k, row in rows.items()}
    )
    on = rows["coalescing (Xen semantics)"]
    off = rows["notify-per-packet"]
    # Coalescing takes far fewer upcalls for the same stream...
    assert on["upcalls"] < off["upcalls"]
    # ...and single-packet latency is unaffected (no burst to coalesce).
    assert abs(on["ping_rtt_us"] - off["ping_rtt_us"]) < 0.25 * on["ping_rtt_us"]
