"""CLI entry points."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "xenloop" in out and "native_loopback" in out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_ping_single_scenario(self, capsys):
        assert main(["ping", "native_loopback", "--count", "20"]) == 0
        out = capsys.readouterr().out
        assert "native_loopback" in out and "us RTT" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["ping", "nonexistent"])

    @pytest.mark.slow
    def test_bypass_comparison(self, capsys):
        assert main(["bypass"]) == 0
        out = capsys.readouterr().out
        assert "future work" in out
