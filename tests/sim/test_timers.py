"""Timer-wheel tests: fire order bit-identical to the heap calendar.

The wheel is a second calendar source merged into the engine's run loop
by the same ``(time, seq)`` key the heap uses, and a ``WheelTimeout``
consumes one sequence number at creation exactly like a heap
``Timeout`` -- so swapping ``sim.timeout`` for ``sim.wheel.timeout`` at
any call site must not reorder a single event.  These tests pin that
equivalence (including same-tick ties, cancellation tombstones, level
cascades, and the overflow list) against an all-heap reference run.
"""

import random

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.timers import TICK, _LEVELS, _SLOTS


def _fire_log(kind: str, schedules, until: float = None):
    """Run one simulator firing ``schedules`` = [(tag, [delay, ...])]
    per-process delay chains; returns the (now, tag) fire log.

    ``kind`` picks the calendar: "heap" (sim.timeout), "wheel"
    (sim.wheel.timeout), or "mixed" (alternating by hop index).
    """
    sim = Simulator()
    log = []

    def proc(tag, delays):
        for hop, delay in enumerate(delays):
            if kind == "heap" or (kind == "mixed" and hop % 2):
                yield sim.timeout(delay)
            else:
                yield sim.wheel.timeout(delay)
            log.append((sim.now, tag, hop))

    for tag, delays in schedules:
        sim.process(proc(tag, delays), name=tag)
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
    return log


class TestHeapEquivalence:
    def test_single_timer(self):
        assert _fire_log("wheel", [("a", [0.5])]) == _fire_log("heap", [("a", [0.5])])

    def test_same_tick_ties_keep_seq_order(self):
        # Many timers at the *same* delay from the same time: creation
        # (seq) order must decide, identically to the heap.
        schedules = [(f"t{i}", [0.001, 0.001, 0.001]) for i in range(8)]
        assert _fire_log("wheel", schedules) == _fire_log("heap", schedules)

    def test_randomized_chains_match_heap(self):
        # Re-arming processes with random delays spanning sub-tick gaps,
        # level-0 slots, higher levels, and the far future.
        for seed in range(20):
            rng = random.Random(seed)
            schedules = [
                (
                    f"p{i}",
                    [
                        rng.choice(
                            [
                                rng.uniform(0, TICK),  # sub-tick
                                rng.uniform(0, 0.01),  # level 0
                                rng.uniform(0, 2.0),  # levels 1-2
                                rng.uniform(0, 400.0),  # level 3
                            ]
                        )
                        for _ in range(rng.randrange(1, 6))
                    ],
                )
                for i in range(rng.randrange(2, 8))
            ]
            assert _fire_log("wheel", schedules) == _fire_log("heap", schedules), seed

    def test_mixed_calendars_match_heap(self):
        # Alternating heap/wheel hops inside one process -- the merge
        # path itself (this interleaving caught the frame push-down bug).
        for seed in range(40):
            rng = random.Random(1000 + seed)
            schedules = [
                (
                    f"p{i}",
                    [rng.uniform(0, 0.05) for _ in range(rng.randrange(1, 8))],
                )
                for i in range(rng.randrange(2, 10))
            ]
            assert _fire_log("mixed", schedules) == _fire_log("heap", schedules), seed

    def test_run_until_stops_both_calendars(self):
        schedules = [("a", [0.1, 0.1, 0.1]), ("b", [0.05, 0.2])]
        for until in (0.05, 0.15, 0.25, 1.0):
            assert _fire_log("wheel", schedules, until=until) == _fire_log(
                "heap", schedules, until=until
            ), until

    def test_overflow_beyond_top_level(self):
        # Past level 3's horizon (2**32 ticks = 2**18 s) entries park in
        # the sorted overflow list and still fire in order.
        horizon = TICK * (_SLOTS ** _LEVELS)
        schedules = [
            ("far2", [horizon * 2.5]),
            ("far1", [horizon * 1.25]),
            ("near", [0.5]),
        ]
        assert _fire_log("wheel", schedules) == _fire_log("heap", schedules)


class TestWheelTimers:
    def test_call_after_runs_callback(self):
        sim = Simulator()
        fired = []
        sim.wheel.call_after(0.25, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.25]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(0.1)
            sim.wheel.call_at(0.4, lambda: fired.append(sim.now))

        sim.process(proc())
        sim.run()
        assert fired == [0.4]

    def test_cancel_is_lazy_and_idempotent(self):
        sim = Simulator()
        fired = []
        keep = sim.wheel.call_after(0.2, lambda: fired.append("keep"))
        drop = sim.wheel.call_after(0.1, lambda: fired.append("drop"))
        assert drop.cancel() is True
        assert drop.cancel() is False  # already tombstoned
        sim.run()
        assert fired == ["keep"]
        assert keep.cancel() is False  # already fired
        assert sim.wheel.counters()["cancelled"] == 1
        assert sim.wheel.counters()["fired"] == 1

    def test_mass_cancellation_leaves_no_live_entries(self):
        sim = Simulator()
        handles = [sim.wheel.call_after(0.1 + i * 0.01, lambda: None) for i in range(100)]
        for h in handles[1:]:
            h.cancel()
        sim.run()
        assert len(sim.wheel) == 0
        counters = sim.wheel.counters()
        assert counters["scheduled"] == 100
        assert counters["fired"] == 1
        assert counters["cancelled"] == 99

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises((ValueError, SimulationError)):
            sim.wheel.timeout(-1.0)

    def test_snapshot_state_only_when_live(self):
        sim = Simulator()
        assert "wheel" not in sim.snapshot_state()
        sim.wheel.call_after(0.5, lambda: None)
        assert "wheel" in sim.snapshot_state()
        sim.run()
        assert "wheel" not in sim.snapshot_state()


class TestEngineIntegration:
    def test_peek_sees_wheel_head(self):
        sim = Simulator()
        sim.wheel.timeout(0.125)
        assert sim.peek() == 0.125

    def test_step_consumes_wheel_entry(self):
        sim = Simulator()
        fired = []
        sim.wheel.call_after(0.125, lambda: fired.append(True))
        sim.step()
        assert sim.now == 0.125 and fired == [True]

    def test_run_bounded_stops_at_limit(self):
        sim = Simulator()
        fired = []
        sim.wheel.call_after(0.1, lambda: fired.append(1))
        sim.wheel.call_after(0.3, lambda: fired.append(2))
        sim.run_bounded(0.2)
        # run_bounded leaves the clock at the last processed event.
        assert fired == [1] and sim.now == 0.1

    def test_run_until_complete_timeout_via_wheel(self):
        sim = Simulator()

        def sleeper():
            yield sim.wheel.timeout(10.0)

        proc = sim.process(sleeper())
        with pytest.raises(SimulationError, match="timeout"):
            sim.run_until_complete(proc, timeout=1.0)

    def test_deadlock_still_detected_with_spent_wheel(self):
        sim = Simulator()

        def waiter():
            yield sim.wheel.timeout(0.1)
            yield sim.event()  # never succeeds

        proc = sim.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(proc, timeout=5.0)
