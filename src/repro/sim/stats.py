"""Measurement probes used by workloads and benchmarks.

These are plain accumulators -- they never schedule events -- so probing
is free of simulation side effects.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["Counter", "LatencyProbe", "ThroughputProbe", "TimeSeries", "summarize"]


class Counter:
    """Named monotonically increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """(time, value) samples, e.g. transactions/sec during migration."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, t: float, value: float) -> None:
        """Append one (time, value) sample; times must not go backwards."""
        if self.times and t < self.times[-1]:
            raise ValueError("samples must be recorded in time order")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))


class LatencyProbe:
    """Accumulates per-operation latencies (seconds)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []

    def record(self, latency: float) -> None:
        """Record one latency sample in seconds."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.samples.append(latency)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency in seconds."""
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    @property
    def mean_us(self) -> float:
        """Mean latency in microseconds."""
        return self.mean * 1e6

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            raise ValueError("no samples")
        if not 0 <= p <= 100:
            raise ValueError("percentile in [0, 100]")
        ordered = sorted(self.samples)
        k = (len(ordered) - 1) * p / 100.0
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return ordered[int(k)]
        return ordered[lo] * (hi - k) + ordered[hi] * (k - lo)


class ThroughputProbe:
    """Accumulates bytes (or transactions) over a measured interval."""

    def __init__(self, name: str = ""):
        self.name = name
        self.total = 0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def open(self, t: float) -> None:
        """Start the measurement interval at time ``t``."""
        self.start_time = t

    def record(self, n: int, t: float) -> None:
        """Accumulate ``n`` units observed at time ``t``."""
        if self.start_time is None:
            self.start_time = t
        self.total += n
        self.end_time = t

    @property
    def elapsed(self) -> float:
        """Observed interval length in seconds."""
        if self.start_time is None or self.end_time is None:
            raise ValueError("probe never recorded")
        return self.end_time - self.start_time

    def rate(self) -> float:
        """Units per second over the observed interval."""
        elapsed = self.elapsed
        if elapsed <= 0:
            raise ValueError("interval too short to compute a rate")
        return self.total / elapsed

    def mbps(self) -> float:
        """Throughput in Mbit/s, interpreting ``total`` as bytes."""
        return self.rate() * 8 / 1e6


def summarize(samples: Iterable[float]) -> dict[str, float]:
    """min/mean/max/stdev of an iterable of floats."""
    data = list(samples)
    if not data:
        raise ValueError("no samples")
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n
    return {
        "n": n,
        "min": min(data),
        "mean": mean,
        "max": max(data),
        "stdev": math.sqrt(var),
    }
