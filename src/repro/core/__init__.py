"""XenLoop: the paper's contribution.

A self-contained "kernel module" per guest
(:class:`~repro.core.module.XenLoopModule`) that

* hooks the stack beneath the network layer (netfilter POST_ROUTING),
* maintains a [guest-ID, MAC] mapping table fed by Dom0's soft-state
  discovery module (:class:`~repro.core.discovery.DiscoveryModule`),
* bootstraps a bidirectional shared-memory channel (two lockless FIFOs
  + one event channel) with each co-resident peer on first traffic,
* shepherds intercepted packets through the FIFO with two copies and
  coalesced notifications, falling back to netfront/netback for
  oversized packets or while a channel is not (yet) connected,
* tears channels down cleanly on module unload, shutdown, and
  migration, and re-advertises after migrating in.

The package is layered: :mod:`repro.core.control` is the control plane
(the table-driven lifecycle FSM, per-channel controllers, and the
per-guest :class:`~repro.core.control.ControlPlane`);
:mod:`repro.core.channel` and :mod:`repro.core.fifo` are the data
plane (the FIFO transport the FSM drives).
"""

from repro.core.channel import Channel, ChannelState
from repro.core.control import (
    ChannelController,
    ChannelEvent,
    ChannelFSM,
    ControlPlane,
    LifecycleHooks,
    TRANSITIONS,
)
from repro.core.discovery import DiscoveryModule
from repro.core.fifo import Fifo, FifoLayoutError
from repro.core.module import XenLoopModule

__all__ = [
    "Channel",
    "ChannelController",
    "ChannelEvent",
    "ChannelFSM",
    "ChannelState",
    "ControlPlane",
    "DiscoveryModule",
    "Fifo",
    "FifoLayoutError",
    "LifecycleHooks",
    "TRANSITIONS",
    "XenLoopModule",
]
