"""UDP transport and datagram sockets."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.net.addr import IPv4Addr
from repro.net.ethernet import IPPROTO_UDP
from repro.net.packet import Packet, UdpHeader

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.stack import NetworkStack

__all__ = ["UdpLayer", "UdpSocket"]

#: default receive buffer (bytes) -- datagrams beyond this are dropped,
#: which is how netperf UDP_STREAM can report send rate > receive rate.
DEFAULT_RCVBUF = 1 << 20

EPHEMERAL_BASE = 32768
#: maximum UDP payload in one datagram (IP total length is 16-bit).
MAX_DGRAM = 65507


class UdpSocket:
    """Datagram socket bound to a local port."""

    def __init__(self, layer: "UdpLayer", port: int, rcvbuf: int = DEFAULT_RCVBUF):
        self.layer = layer
        self.port = port
        self.rcvbuf = rcvbuf
        self.queue: deque[tuple[bytes, tuple[IPv4Addr, int]]] = deque()
        self.queued_bytes = 0
        self._recv_waiters: deque = deque()
        self.drops = 0
        self.rx_msgs = 0
        self.rx_bytes = 0
        self.closed = False

    def sendto(self, data: bytes, addr: tuple[IPv4Addr, int]):
        """Send one datagram (generator).  Returns True if handed to IP."""
        if self.closed:
            raise OSError("socket is closed")
        if len(data) > MAX_DGRAM:
            raise ValueError(f"datagram too large: {len(data)} > {MAX_DGRAM}")
        node = self.layer.stack.node
        costs = node.costs
        yield node.exec(
            costs.syscall
            + costs.socket_layer
            + costs.udp_layer
            + costs.checksum_cost(len(data))
            + costs.copy_cost(len(data))  # user -> kernel copy
        )
        dst_ip, dst_port = addr
        hdr = UdpHeader.fresh(sport=self.port, dport=dst_port,
                              length=UdpHeader.HEADER_LEN + len(data))
        ok = yield from self.layer.stack.ipv4.output(dst_ip, IPPROTO_UDP, hdr, data)
        return ok

    def recvfrom(self):
        """Receive one datagram (generator).  Returns (data, (ip, port))."""
        if self.closed:
            raise OSError("socket is closed")
        node = self.layer.stack.node
        while not self.queue:
            waiter = node.sim.event(name=f"udp-recv:{self.port}")
            self._recv_waiters.append(waiter)
            yield waiter
        data, addr = self.queue.popleft()
        self.queued_bytes -= len(data)
        # kernel -> user copy plus syscall overhead.
        yield node.exec(
            node.costs.syscall + node.costs.socket_layer + node.costs.copy_cost(len(data))
        )
        return data, addr

    def _enqueue(self, data: bytes, addr: tuple[IPv4Addr, int]) -> bool:
        if self.queued_bytes + len(data) > self.rcvbuf:
            self.drops += 1
            return False
        self.queue.append((data, addr))
        self.queued_bytes += len(data)
        self.rx_msgs += 1
        self.rx_bytes += len(data)
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                break
        return True

    def close(self) -> None:
        """Unbind the port; pending receivers never complete."""
        if not self.closed:
            self.closed = True
            self.layer.unbind(self.port)


class UdpLayer:
    """Per-stack UDP: port table, demux, ephemeral allocation."""
    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        stack.ipv4.register_protocol(IPPROTO_UDP, self.input)
        self.ports: dict[int, UdpSocket] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        self.rx_datagrams = 0
        self.rx_no_socket = 0

    def socket(self, port: int = 0, rcvbuf: int = DEFAULT_RCVBUF) -> UdpSocket:
        """Create a socket; ``port=0`` picks an ephemeral port."""
        if port == 0:
            port = self._alloc_ephemeral()
        elif port in self.ports:
            raise OSError(f"UDP port {port} already bound on {self.stack.node.name}")
        sock = UdpSocket(self, port, rcvbuf=rcvbuf)
        self.ports[port] = sock
        return sock

    def unbind(self, port: int) -> None:
        """Release a bound port."""
        self.ports.pop(port, None)

    def _alloc_ephemeral(self) -> int:
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if port not in self.ports:
                return port
        raise OSError("out of ephemeral UDP ports")

    def input(self, packet: Packet):
        """Softirq-side datagram delivery (generator)."""
        node = self.stack.node
        hdr = packet.l4
        yield node.exec(
            node.costs.udp_layer + node.costs.checksum_cost(len(packet.payload))
        )
        self.rx_datagrams += 1
        sock = self.ports.get(hdr.dport)
        if sock is None:
            self.rx_no_socket += 1
            return
        accepted = sock._enqueue(packet.payload, (packet.ip.src, hdr.sport))
        if accepted:
            yield node.exec(node.costs.process_wakeup)
