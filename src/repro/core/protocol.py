"""XenLoop control-message wire formats.

These messages travel as raw Ethernet frames with the XenLoop-type
protocol ID (:data:`repro.net.ethernet.ETH_P_XENLOOP`) over the
*standard* netfront/netback path -- out-of-band with respect to the
shared-memory channel they negotiate (paper Sect. 3.2-3.3):

* ``ANNOUNCE``   -- Dom0 discovery -> each willing guest: the collated
  list of [guest-ID, MAC] identity pairs of all advertising guests.
* ``CONNECT_REQUEST`` -- larger-ID guest -> smaller-ID guest: "you are
  the listener; please create a channel" (sent when the connector side
  sees first traffic).
* ``CREATE_CHANNEL`` -- listener -> connector: grant references of the
  two FIFO descriptor pages plus the unbound event-channel port.
* ``CHANNEL_ACK``  -- connector -> listener: channel is mapped and bound.

The thousand-guest control plane adds the *delta* discovery protocol
(the full-roster Announce is O(cluster) bytes per guest per scan and
collapses long before 1,000 guests):

* ``ROSTER_DELTA`` -- Dom0 -> all local guests (one link-local
  multicast frame): the joins and leaves of ONE scan, tagged with a
  monotonically increasing ``epoch``.  Empty scans send nothing.
* ``FULL_SYNC``    -- Dom0 -> all local guests, every
  ``full_sync_every`` scans: the entire roster plus the current epoch,
  so a guest that missed a delta (frame loss, late boot) resynchronises
  within one full-sync period.
* ``WHOIS``        -- guest -> Dom0 (unicast to :data:`DOM0_MAC`): "is
  MAC x a co-resident XenLoop guest, and what is its domid?"  Sent on
  a data-path mapping miss; the sparse guest only ever stores roster
  entries for peers it actually talks to.
* ``PEER_INFO``    -- Dom0 -> asking guest: the answer (found + domid).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addr import MacAddr

__all__ = [
    "Announce",
    "ChannelAck",
    "ConnectRequest",
    "CreateChannel",
    "DOM0_MAC",
    "FullSync",
    "PeerInfo",
    "RosterDelta",
    "WhoIs",
    "XENLOOP_MCAST",
    "parse_message",
]

MSG_ANNOUNCE = 1
MSG_CONNECT_REQUEST = 2
MSG_CREATE_CHANNEL = 3
MSG_CHANNEL_ACK = 4
MSG_ROSTER_DELTA = 5
MSG_FULL_SYNC = 6
MSG_WHOIS = 7
MSG_PEER_INFO = 8

#: destination MAC of RosterDelta/FullSync frames: an IEEE 802.1D
#: link-local multicast address.  Bridges never forward the 01:80:c2
#: reserved range out of the machine, so delta discovery stays strictly
#: machine-local even though it is a single flooded frame.
XENLOOP_MCAST = MacAddr("01:80:c2:00:00:0e")

#: Dom0's bridge-facing identity: the source MAC of discovery frames
#: and the unicast target of guests' WhoIs queries.
DOM0_MAC = MacAddr("fe:ff:ff:ff:ff:ff")

_HDR = struct.Struct("!HI")  # msg type, sender domid


def _pack_entries(entries: list[tuple[int, MacAddr]]) -> list[bytes]:
    out = [struct.pack("!H", len(entries))]
    for domid, mac in entries:
        out.append(struct.pack("!I6s", domid, mac.to_bytes()))
    return out


def _unpack_entries(body: bytes, offset: int) -> tuple[list[tuple[int, MacAddr]], int]:
    (count,) = struct.unpack_from("!H", body, offset)
    offset += 2
    entries = []
    for _ in range(count):
        domid, mac = struct.unpack_from("!I6s", body, offset)
        entries.append((domid, MacAddr.from_bytes(mac)))
        offset += 10
    return entries, offset


@dataclass
class Announce:
    """[guest-ID, MAC] identity pairs of all willing co-resident guests."""

    sender_domid: int
    entries: list[tuple[int, MacAddr]]

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        out = [_HDR.pack(MSG_ANNOUNCE, self.sender_domid), struct.pack("!H", len(self.entries))]
        for domid, mac in self.entries:
            out.append(struct.pack("!I6s", domid, mac.to_bytes()))
        return b"".join(out)

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "Announce":
        (count,) = struct.unpack_from("!H", body)
        entries = []
        offset = 2
        for _ in range(count):
            domid, mac = struct.unpack_from("!I6s", body, offset)
            entries.append((domid, MacAddr.from_bytes(mac)))
            offset += 10
        return cls(sender, entries)


@dataclass
class ConnectRequest:
    """Larger-ID guest asking the smaller-ID peer to act as listener."""
    sender_domid: int
    sender_mac: MacAddr

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_CONNECT_REQUEST, self.sender_domid) + struct.pack(
            "!6s", self.sender_mac.to_bytes()
        )

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "ConnectRequest":
        (mac,) = struct.unpack_from("!6s", body)
        return cls(sender, MacAddr.from_bytes(mac))


@dataclass
class CreateChannel:
    """Three pieces of information, per the paper: two grant references
    (one per FIFO descriptor page) and the event-channel port number."""

    sender_domid: int
    #: gref of the descriptor page of the listener->connector FIFO.
    gref_out: int
    #: gref of the descriptor page of the connector->listener FIFO.
    gref_in: int
    evtchn_port: int

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_CREATE_CHANNEL, self.sender_domid) + struct.pack(
            "!III", self.gref_out, self.gref_in, self.evtchn_port
        )

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "CreateChannel":
        gref_out, gref_in, port = struct.unpack_from("!III", body)
        return cls(sender, gref_out, gref_in, port)


@dataclass
class ChannelAck:
    """Connector's confirmation that the channel is mapped and bound."""
    sender_domid: int

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_CHANNEL_ACK, self.sender_domid)

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "ChannelAck":
        return cls(sender)


@dataclass
class RosterDelta:
    """One scan's roster changes: epoch-tagged joins and leaves.

    A receiver applies a delta only when ``epoch`` is exactly one past
    the epoch it last applied (or adopts the first epoch it ever sees);
    a gap means a missed delta, and the receiver waits for the next
    :class:`FullSync` instead of applying a diff against unknown state.
    """

    sender_domid: int
    epoch: int
    joins: list[tuple[int, MacAddr]] = field(default_factory=list)
    leaves: list[tuple[int, MacAddr]] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        out = [_HDR.pack(MSG_ROSTER_DELTA, self.sender_domid), struct.pack("!I", self.epoch)]
        out.extend(_pack_entries(self.joins))
        out.extend(_pack_entries(self.leaves))
        return b"".join(out)

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "RosterDelta":
        (epoch,) = struct.unpack_from("!I", body)
        joins, offset = _unpack_entries(body, 4)
        leaves, _ = _unpack_entries(body, offset)
        return cls(sender, epoch, joins, leaves)


@dataclass
class FullSync:
    """The complete roster at ``epoch`` (periodic resync broadcast)."""

    sender_domid: int
    epoch: int
    entries: list[tuple[int, MacAddr]] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        out = [_HDR.pack(MSG_FULL_SYNC, self.sender_domid), struct.pack("!I", self.epoch)]
        out.extend(_pack_entries(self.entries))
        return b"".join(out)

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "FullSync":
        (epoch,) = struct.unpack_from("!I", body)
        entries, _ = _unpack_entries(body, 4)
        return cls(sender, epoch, entries)


@dataclass
class WhoIs:
    """Guest asking Dom0 whether ``mac`` is a co-resident XenLoop peer."""

    sender_domid: int
    mac: MacAddr

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_WHOIS, self.sender_domid) + struct.pack(
            "!6s", self.mac.to_bytes()
        )

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "WhoIs":
        (mac,) = struct.unpack_from("!6s", body)
        return cls(sender, MacAddr.from_bytes(mac))


@dataclass
class PeerInfo:
    """Dom0's answer to a :class:`WhoIs` (``domid`` is 0 when not found)."""

    sender_domid: int
    mac: MacAddr
    domid: int
    found: bool

    def to_bytes(self) -> bytes:
        """Serialize to the XenLoop-type wire format."""
        return _HDR.pack(MSG_PEER_INFO, self.sender_domid) + struct.pack(
            "!6sIB", self.mac.to_bytes(), self.domid, int(self.found)
        )

    @classmethod
    def _parse(cls, sender: int, body: bytes) -> "PeerInfo":
        mac, domid, found = struct.unpack_from("!6sIB", body)
        return cls(sender, MacAddr.from_bytes(mac), domid, bool(found))


_PARSERS = {
    MSG_ANNOUNCE: Announce._parse,
    MSG_CONNECT_REQUEST: ConnectRequest._parse,
    MSG_CREATE_CHANNEL: CreateChannel._parse,
    MSG_CHANNEL_ACK: ChannelAck._parse,
    MSG_ROSTER_DELTA: RosterDelta._parse,
    MSG_FULL_SYNC: FullSync._parse,
    MSG_WHOIS: WhoIs._parse,
    MSG_PEER_INFO: PeerInfo._parse,
}


def parse_message(payload: bytes):
    """Parse an ETH_P_XENLOOP frame payload into a message object."""
    if len(payload) < _HDR.size:
        raise ValueError(f"short XenLoop message: {len(payload)} bytes")
    msg_type, sender = _HDR.unpack_from(payload)
    parser = _PARSERS.get(msg_type)
    if parser is None:
        raise ValueError(f"unknown XenLoop message type {msg_type}")
    return parser(sender, payload[_HDR.size :])
