"""Learning bridge and Ethernet switch behaviour."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import BROADCAST_MAC, IPv4Addr, MacAddr
from repro.net.bridge import Bridge, BridgePort
from repro.net.ethernet import ETH_P_IP
from repro.net.nic import EthernetSwitch, PhysNIC
from repro.net.packet import EthHeader, Packet
from repro.sim.resources import CPUCores
from repro.net.node import Node


class _SinkPort(BridgePort):
    """Test port that records delivered frames."""

    def __init__(self, name):
        super().__init__(name)
        self.frames = []

    def deliver(self, packet):
        self.frames.append(packet)
        return
        yield  # pragma: no cover


@pytest.fixture
def dom0(sim):
    cpus = CPUCores(sim, 2)
    return Node(sim, cpus, DEFAULT_COSTS, "dom0")


def frame(src, dst, tag=b"x"):
    return Packet(payload=tag, eth=EthHeader(MacAddr(dst), MacAddr(src), ETH_P_IP))


class TestBridge:
    def test_unknown_unicast_flooded(self, sim, dom0):
        bridge = Bridge(dom0)
        p1, p2, p3 = _SinkPort("p1"), _SinkPort("p2"), _SinkPort("p3")
        for p in (p1, p2, p3):
            bridge.add_port(p)
        bridge.input(p1, frame(src=1, dst=99))
        sim.run()
        assert len(p2.frames) == 1 and len(p3.frames) == 1
        assert not p1.frames  # never back out the ingress port

    def test_learned_unicast_forwarded_only(self, sim, dom0):
        bridge = Bridge(dom0)
        p1, p2, p3 = _SinkPort("p1"), _SinkPort("p2"), _SinkPort("p3")
        for p in (p1, p2, p3):
            bridge.add_port(p)
        bridge.input(p2, frame(src=42, dst=99))  # learn 42 -> p2
        sim.run()
        p2.frames.clear()
        p3.frames.clear()
        bridge.input(p1, frame(src=1, dst=42))
        sim.run()
        assert len(p2.frames) == 1
        assert not p3.frames
        assert bridge.frames_forwarded == 1

    def test_broadcast_always_floods(self, sim, dom0):
        bridge = Bridge(dom0)
        p1, p2 = _SinkPort("p1"), _SinkPort("p2")
        bridge.add_port(p1)
        bridge.add_port(p2)
        bcast = Packet(payload=b"b", eth=EthHeader(BROADCAST_MAC, MacAddr(1), ETH_P_IP))
        bridge.input(p1, bcast)
        sim.run()
        assert len(p2.frames) == 1

    def test_remove_port_clears_fdb(self, sim, dom0):
        bridge = Bridge(dom0)
        p1, p2 = _SinkPort("p1"), _SinkPort("p2")
        bridge.add_port(p1)
        bridge.add_port(p2)
        bridge.input(p2, frame(src=42, dst=99))
        sim.run()
        bridge.remove_port(p2)
        assert MacAddr(42) not in bridge._fdb
        # frames to 42 now flood to remaining ports only
        bridge.input(p1, frame(src=1, dst=42))
        sim.run()
        assert not p2.frames or len(p2.frames) == 1  # p2 got only the learn frame

    def test_forget_single_mac(self, sim, dom0):
        bridge = Bridge(dom0)
        p1 = _SinkPort("p1")
        bridge.add_port(p1)
        bridge.input(p1, frame(src=42, dst=99))
        sim.run()
        bridge.forget(MacAddr(42))
        assert MacAddr(42) not in bridge._fdb

    def test_dom0_injection_floods_everywhere(self, sim, dom0):
        """in_port=None (discovery announcements) reaches all ports."""
        bridge = Bridge(dom0)
        p1, p2 = _SinkPort("p1"), _SinkPort("p2")
        bridge.add_port(p1)
        bridge.add_port(p2)
        bridge.input(None, frame(src=0xFE, dst=7))
        sim.run()
        assert len(p1.frames) == 1 and len(p2.frames) == 1


class TestSwitch:
    def _lan(self, sim, n=3):
        switch = EthernetSwitch(sim, DEFAULT_COSTS)
        nics = []
        for i in range(n):
            node = Node(sim, CPUCores(sim, 1), DEFAULT_COSTS, f"n{i}")
            from repro.net.stack import NetworkStack

            NetworkStack(node, IPv4Addr(f"10.9.0.{i + 1}"))
            nic = PhysNIC(node, DEFAULT_COSTS, f"n{i}.eth0", MacAddr(0x0A0000000001 + i))
            nic.connect(switch)
            node.stack.add_device(nic)
            nics.append(nic)
        return switch, nics

    def test_flood_then_learn(self, sim):
        switch, nics = self._lan(sim)

        def send(nic, dst_mac):
            pkt = Packet(payload=b"t", eth=EthHeader(dst_mac, nic.mac, ETH_P_IP))
            nic.queue_xmit(pkt)

        send(nics[0], nics[1].mac)  # dst unknown: flooded
        sim.run(until=sim.now + 0.01)
        assert switch.frames_flooded == 1
        send(nics[1], nics[0].mac)  # 0's mac was learned from frame 1
        sim.run(until=sim.now + 0.01)
        assert switch.frames_forwarded == 1

    def test_double_attach_rejected(self, sim):
        switch, nics = self._lan(sim, n=1)
        with pytest.raises(ValueError):
            switch.attach(nics[0])

    def test_forget(self, sim):
        switch, nics = self._lan(sim, n=2)
        pkt = Packet(payload=b"t", eth=EthHeader(nics[1].mac, nics[0].mac, ETH_P_IP))
        nics[0].queue_xmit(pkt)
        sim.run(until=sim.now + 0.01)
        switch.forget(nics[0].mac)
        assert nics[0].mac not in switch._fdb

    def test_wire_serialization_orders_frames(self, sim):
        """Frames queued back-to-back arrive separated by wire time."""
        switch, nics = self._lan(sim, n=2)
        arrivals = []
        orig = nics[1].deliver_up
        nics[1].deliver_up = lambda pkt: (arrivals.append(sim.now), orig(pkt))
        for _ in range(3):
            pkt = Packet(
                payload=bytes(1000), eth=EthHeader(nics[1].mac, nics[0].mac, ETH_P_IP)
            )
            nics[0].queue_xmit(pkt)
        sim.run(until=sim.now + 0.01)
        assert len(arrivals) == 3
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        min_gap = DEFAULT_COSTS.wire_time(1014)
        assert all(g >= min_gap * 0.99 for g in gaps)
