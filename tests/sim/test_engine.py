"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
)


class TestEventLifecycle:
    def test_event_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.processed
        assert ev.value == 42

    def test_succeed_twice_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        ev.succeed("late", delay=5.0)
        sim.run()
        assert sim.now == 5.0
        assert ev.value == "late"


class TestTimeout:
    def test_fires_at_delay(self, sim):
        t = sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5
        assert t.processed

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_timeout_value(self, sim):
        t = sim.timeout(1.0, value="v")
        sim.run()
        assert t.value == "v"

    def test_zero_delay(self, sim):
        t = sim.timeout(0)
        sim.run()
        assert sim.now == 0.0
        assert t.processed


class TestOrdering:
    def test_same_time_fifo(self, sim):
        order = []
        for i in range(10):
            t = sim.timeout(1.0)
            t.callbacks.append(lambda _ev, i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_time_ordering(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            t = sim.timeout(delay)
            t.callbacks.append(lambda _ev, d=delay: order.append(d))
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_run_until(self, sim):
        hits = []
        for d in (1.0, 2.0, 3.0):
            sim.timeout(d).callbacks.append(lambda _e, d=d: hits.append(d))
        sim.run(until=2.5)
        assert hits == [1.0, 2.0]
        assert sim.now == 2.5

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)


class TestProcess:
    def test_process_returns_value(self, sim):
        def gen():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(gen())
        value = sim.run_until_complete(proc)
        assert value == "done"
        assert sim.now == 1.0

    def test_process_waits_on_event(self, sim):
        ev = sim.event()

        def gen():
            got = yield ev
            return got

        proc = sim.process(gen())
        ev.succeed("payload", delay=2.0)
        assert sim.run_until_complete(proc) == "payload"

    def test_process_waits_on_process(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 7

        def outer():
            value = yield sim.process(inner())
            return value * 2

        assert sim.run_until_complete(sim.process(outer())) == 14

    def test_yield_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed(5)

        def gen():
            yield sim.timeout(1.0)  # let ev be processed first
            got = yield ev
            return got

        assert sim.run_until_complete(sim.process(gen())) == 5

    def test_yield_non_event_raises(self, sim):
        def gen():
            yield 42

        sim.process(gen())
        with pytest.raises(SimulationError):
            sim.run()

    def test_failed_event_raises_into_process(self, sim):
        ev = sim.event()

        def gen():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        proc = sim.process(gen())
        ev.fail(RuntimeError("bad"))
        assert sim.run_until_complete(proc) == "caught bad"

    def test_exception_propagates_in_strict_mode(self, sim):
        def gen():
            yield sim.timeout(1.0)
            raise ValueError("kapow")

        sim.process(gen())
        with pytest.raises(ValueError, match="kapow"):
            sim.run()

    def test_exception_stored_in_lenient_mode(self):
        sim = Simulator(strict=False)

        def gen():
            yield sim.timeout(1.0)
            raise ValueError("kapow")

        proc = sim.process(gen())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_run_until_complete_deadlock_detection(self, sim):
        ev = sim.event()  # never fires

        def gen():
            yield ev

        proc = sim.process(gen())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(proc)

    def test_run_until_complete_timeout(self, sim):
        def gen():
            yield sim.timeout(100.0)

        def noise():
            while True:
                yield sim.timeout(1.0)

        sim.process(noise())
        proc = sim.process(gen())
        with pytest.raises(SimulationError, match="timeout"):
            sim.run_until_complete(proc, timeout=10.0)


class TestInterrupt:
    def test_interrupt_carries_cause(self, sim):
        def gen():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        proc = sim.process(gen())

        def interrupter():
            yield sim.timeout(3.0)
            proc.interrupt("reason")

        sim.process(interrupter())
        assert sim.run_until_complete(proc) == ("interrupted", "reason", 3.0)

    def test_interrupt_dead_process_raises(self, sim):
        def gen():
            yield sim.timeout(1.0)

        proc = sim.process(gen())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def gen():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            return sim.now

        proc = sim.process(gen())

        def interrupter():
            yield sim.timeout(2.0)
            proc.interrupt()

        sim.process(interrupter())
        assert sim.run_until_complete(proc) == 3.0


class TestConditions:
    def test_any_of_first_wins(self, sim):
        a = sim.timeout(5.0, value="a")
        b = sim.timeout(2.0, value="b")

        def gen():
            results = yield sim.any_of([a, b])
            return results

        results = sim.run_until_complete(sim.process(gen()))
        assert b in results and results[b] == "b"
        assert sim.now == 2.0

    def test_all_of_waits_for_all(self, sim):
        a = sim.timeout(5.0, value="a")
        b = sim.timeout(2.0, value="b")

        def gen():
            results = yield sim.all_of([a, b])
            return results

        results = sim.run_until_complete(sim.process(gen()))
        assert results[a] == "a" and results[b] == "b"
        assert sim.now == 5.0

    def test_empty_all_of_fires_immediately(self, sim):
        def gen():
            yield sim.all_of([])
            return sim.now

        assert sim.run_until_complete(sim.process(gen())) == 0.0

    def test_any_of_with_already_processed(self, sim):
        ev = sim.event()
        ev.succeed("x")

        def gen():
            yield sim.timeout(1.0)
            results = yield sim.any_of([ev, sim.timeout(50.0)])
            return results

        results = sim.run_until_complete(sim.process(gen()))
        assert results[ev] == "x"
        assert sim.now == 1.0

    def test_condition_failure_propagates(self, sim):
        good = sim.timeout(5.0)
        bad = sim.event()
        bad.fail(RuntimeError("nope"))

        def gen():
            try:
                yield sim.all_of([good, bad])
            except RuntimeError:
                return "failed"

        assert sim.run_until_complete(sim.process(gen())) == "failed"

    def test_mixed_simulator_condition_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([sim.timeout(1.0), other.timeout(1.0)])
