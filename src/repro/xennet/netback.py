"""Netback: the Dom0 half of the split driver, plus its bridge port.

Transmit path (guest -> world): a virq kicks the drain worker, which
pays the grant map/copy/unmap hypercalls per packet, rebuilds the frame
in Dom0, and forwards it through the software bridge *inline* (so frame
ordering is preserved).

Receive path (world -> guest): the bridge delivers frames to
:class:`VifBridgePort`; netback either grant-copies small packets into
a pre-shared page or grant-transfers page-sized ones (paying the page
zeroing the paper calls out as expensive), pushes them onto the guest's
RX ring, and notifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import trace
from repro.net.bridge import BridgePort
from repro.net.packet import Packet
from repro.sim.resources import Store
from repro.xen.event_channel import NOTIFY_STATS
from repro.xennet.netfront import pages_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.xen.domain import Domain
    from repro.xennet.netfront import Netfront
    from repro.xennet.ring import SlottedRing

__all__ = ["Netback", "VifBridgePort"]


class VifBridgePort(BridgePort):
    """The bridge port representing one guest's vif."""
    def __init__(self, netback: "Netback"):
        super().__init__(f"port-{netback.vif_name}")
        self.netback = netback

    def deliver(self, packet: Packet):
        """Bridge -> guest: hand the frame to netback's receive path."""
        yield from self.netback.to_guest(packet)


class Netback:
    """Dom0 half of one vif: TX drain worker + RX injection + bridge port."""
    def __init__(
        self,
        dom0: "Domain",
        netfront: "Netfront",
        tx_ring: "SlottedRing",
        rx_store: Store,
        evtchn_port,
    ):
        self.dom0 = dom0
        self.netfront = netfront
        self.vif_name = f"vif{netfront.guest.domid}.0"
        self.tx_ring = tx_ring
        self.rx_store = rx_store
        self.evtchn_port = evtchn_port
        self.port = VifBridgePort(self)
        self.detached = False

        self._kick_name = f"{self.vif_name}-kick"
        self._kick = dom0.sim.event(name=self._kick_name)
        self._worker = dom0.spawn(self._tx_drain_loop(), name=f"{self.vif_name}-netback")
        self.tx_packets = 0
        self.rx_packets = 0

    @property
    def bridge(self):
        """The Dom0 software bridge on the current machine."""
        return self.dom0.machine.bridge

    # -- interrupt handler (runs in Dom0 context) -----------------------------
    def on_interrupt(self) -> None:
        """Guest kicked us: wake the TX drain worker.

        The request event index is disarmed here, at upcall delivery,
        rather than when the worker resumes: pushes landing during the
        dom0 wakeup latency are already covered by this kick, so their
        notifies can be suppressed that much earlier.
        """
        self.tx_ring.req_event_armed = False
        if not self._kick.triggered:
            self._kick.succeed()

    #: max TX requests drained per charged burst; bounds how much
    #: latency the aggregated charge can shift onto the first packet.
    TX_BURST = 64

    # -- guest -> bridge ----------------------------------------------------
    def _tx_drain_loop(self):
        dom0 = self.dom0
        costs = dom0.costs
        ring = self.tx_ring
        while True:
            if self.detached:
                return
            if not ring.has_requests:
                # Going to sleep: advertise it by arming the request event
                # index, then make the final check for requests pushed
                # while we were unarmed (their notify was suppressed --
                # nobody else will wake us for them).
                ring.req_event_armed = True
                if ring.has_requests:
                    ring.req_event_armed = False
                    continue
                self._kick = dom0.sim.event(name=self._kick_name)
                yield self._kick
                ring.req_event_armed = False
                # Credit-scheduler delay before Dom0's worker actually runs.
                yield dom0.sim.timeout(costs.dom0_wakeup_latency)
                continue
            # Drain a burst of requests and charge ONE aggregated CPU
            # segment for the per-packet map/copy/unmap hypercall work
            # plus the completion notifies (same total cost as charging
            # each packet separately -- copy_cost is linear).  Note the
            # cost terms only need the frame *size*: netback forwards on
            # lengths and addresses alone and never touches the packet
            # body, so a lazily-parsed packet passes through unparsed.
            burst: list[Packet] = []
            cost = 0.0
            while ring.has_requests and len(burst) < self.TX_BURST:
                packet: Packet = ring.pop_request()
                size = packet.wire_len
                npages = pages_for(size)
                cost += (
                    costs.hypercall
                    + costs.grant_map_page * npages
                    + costs.copy_cost(size)
                    + costs.netback_per_packet
                    + costs.hypercall
                    + costs.grant_unmap_page * npages
                )
                burst.append(packet)
            yield dom0.exec(cost)
            for packet in burst:
                if self.detached:
                    # detach() landed mid-burst (e.g. during a forward):
                    # the port is closed, drop the rest of the burst.
                    return
                ring.push_response(packet.wire_len)
                self.tx_packets += 1
                trace.mark(packet, "netback-tx", dom0.sim.now)
                # Completion notify back to the guest -- only when the
                # transmit loop armed the response event index (it is
                # blocked on ring space); completions are otherwise
                # reclaimed lazily at the next transmit.  Netfront clears
                # the flag; leaving it set here means a lost notify is
                # retried by the next completion.
                if ring.rsp_event_armed:
                    NOTIFY_STATS.ring_notifies += 1
                    yield dom0.exec(costs.evtchn_send)
                    if self.evtchn_port is not None:
                        dom0.machine.hypervisor.evtchn.notify(self.evtchn_port)
                else:
                    NOTIFY_STATS.ring_suppressed += 1
                    if self.evtchn_port is not None:
                        self.evtchn_port.notifies_suppressed += 1
                # Forward through the bridge inline to preserve ordering.
                yield from self.bridge.forward(self.port, packet)

    # -- bridge -> guest -------------------------------------------------------
    def to_guest(self, packet: Packet):
        """Generator (Dom0 context): push one frame to the guest."""
        if self.detached:
            return
        dom0 = self.dom0
        costs = dom0.costs
        size = packet.wire_len
        if size <= costs.netback_copy_threshold:
            # Small packet: grant-copy into a pre-shared page.
            cost = costs.hypercall + costs.copy_cost(size) + costs.netback_per_packet
        else:
            # Large packet: page transfer, with the pages zeroed in
            # advance "to avoid any unintentional data leakage" (Sect. 2).
            npages = pages_for(size)
            cost = (
                costs.hypercall
                + costs.grant_transfer_page * npages
                + costs.page_zero * npages
                + costs.netback_per_packet
            )
        yield dom0.exec(cost)
        trace.mark(packet, "netback-rx-to-guest", dom0.sim.now)
        yield self.rx_store.put(packet)  # blocks while the guest RX ring is full
        self.rx_packets += 1
        # RX event index: the guest disarms it while its interrupt handler
        # drains the store, so frames landing mid-drain skip the notify
        # (and its hypercall charge) -- the handler's final check picks
        # them up.  Only the guest re-arms the flag.
        if self.netfront.rx_event_armed:
            NOTIFY_STATS.ring_notifies += 1
            yield dom0.exec(costs.evtchn_send)
            if self.evtchn_port is not None:
                dom0.machine.hypervisor.evtchn.notify(self.evtchn_port)
        else:
            NOTIFY_STATS.ring_suppressed += 1
            if self.evtchn_port is not None:
                self.evtchn_port.notifies_suppressed += 1

    # -- teardown ---------------------------------------------------------
    def detach(self) -> None:
        """Tear the netback down (guest shutdown or migration-out)."""
        self.detached = True
        self.bridge.remove_port(self.port)
        if not self._kick.triggered:
            self._kick.succeed()
        if self.evtchn_port is not None:
            self.dom0.machine.hypervisor.evtchn.close(self.evtchn_port)
            self.evtchn_port = None
