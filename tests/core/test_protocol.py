"""XenLoop control-message wire formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.protocol import (
    Announce,
    ChannelAck,
    ConnectRequest,
    CreateChannel,
    parse_message,
)
from repro.net.addr import MacAddr


class TestRoundtrips:
    def test_announce(self):
        msg = Announce(0, [(1, MacAddr(0x163E000001)), (2, MacAddr(0x163E000002))])
        back = parse_message(msg.to_bytes())
        assert isinstance(back, Announce)
        assert back.sender_domid == 0
        assert back.entries == msg.entries

    def test_announce_empty(self):
        back = parse_message(Announce(0, []).to_bytes())
        assert back.entries == []

    def test_connect_request(self):
        msg = ConnectRequest(7, MacAddr("00:16:3e:00:00:07"))
        back = parse_message(msg.to_bytes())
        assert isinstance(back, ConnectRequest)
        assert back.sender_domid == 7
        assert back.sender_mac == msg.sender_mac

    def test_create_channel(self):
        msg = CreateChannel(1, gref_out=11, gref_in=22, evtchn_port=3)
        back = parse_message(msg.to_bytes())
        assert isinstance(back, CreateChannel)
        assert (back.gref_out, back.gref_in, back.evtchn_port) == (11, 22, 3)

    def test_channel_ack(self):
        back = parse_message(ChannelAck(9).to_bytes())
        assert isinstance(back, ChannelAck)
        assert back.sender_domid == 9

    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=2**48 - 1).map(MacAddr),
            ),
            max_size=30,
        )
    )
    def test_announce_roundtrip_property(self, entries):
        back = parse_message(Announce(0, entries).to_bytes())
        assert back.entries == entries


class TestMalformed:
    def test_short_message(self):
        with pytest.raises(ValueError):
            parse_message(b"\x00")

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            parse_message(b"\x00\x63" + b"\x00" * 8)
