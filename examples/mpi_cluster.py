#!/usr/bin/env python
"""HPC scenario: an MPI message-passing job between co-resident VMs.

The paper's motivating example: "a distributed HPC application may have
two processes running in different VMs that need to communicate using
messages over MPI libraries."  This script runs a NetPIPE-style sweep
and an OSU-style bandwidth test over the mini-MPI library (MPICH-over-
TCP stand-in) in three deployments and prints the comparison.

Run:  python examples/mpi_cluster.py
"""

from repro import report, scenarios
from repro.workloads import netpipe, osu

SIZES = [64, 1024, 8192, 65536]
DEPLOYMENTS = ["inter_machine", "netfront_netback", "xenloop"]


def main():
    lat_series = {}
    bw_series = {}
    osu_series = {}
    for name in DEPLOYMENTS:
        scn = scenarios.build(name)
        scn.warmup()
        res = netpipe.run(scn, sizes=SIZES)
        _s, mbps, lats = res.series()
        bw_series[name] = mbps
        lat_series[name] = lats
        _s, values = osu.osu_bw(scn, sizes=SIZES).series()
        osu_series[name] = values

    print(report.format_series(
        "NetPIPE one-way latency (us) -- MPI ping-pong",
        "msg_size", SIZES, lat_series, precision=1))
    print()
    print(report.format_series(
        "NetPIPE throughput (Mbit/s)",
        "msg_size", SIZES, bw_series, precision=0))
    print()
    print(report.format_series(
        "OSU uni-directional bandwidth (Mbit/s), window of in-flight sends",
        "msg_size", SIZES, osu_series, precision=0))
    print()
    mid = 2  # 8 KB
    speedup = bw_series["xenloop"][mid] / bw_series["netfront_netback"][mid]
    print(f"Placing the two ranks on co-resident VMs with XenLoop gives "
          f"{speedup:.1f}x the 8 KB message throughput of the standard "
          f"virtual network path, without relinking the MPI library.")


if __name__ == "__main__":
    main()
