"""Tests for measurement probes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    Counter,
    Deadline,
    LatencyProbe,
    LogHistogram,
    ThroughputProbe,
    TimeSeries,
    summarize,
)


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add(-1)


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)


class TestLatencyProbe:
    def test_mean(self):
        p = LatencyProbe()
        for v in (1e-6, 2e-6, 3e-6):
            p.record(v)
        assert p.mean == pytest.approx(2e-6)
        assert p.mean_us == pytest.approx(2.0)
        assert p.count == 3

    def test_negative_rejected(self):
        p = LatencyProbe()
        with pytest.raises(ValueError):
            p.record(-1.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = LatencyProbe().mean

    def test_percentile(self):
        p = LatencyProbe()
        for v in range(1, 101):
            p.record(float(v))
        assert p.percentile(50) == pytest.approx(50.5)
        assert p.percentile(0) == 1.0
        assert p.percentile(100) == 100.0

    def test_percentile_bounds(self):
        p = LatencyProbe()
        p.record(1.0)
        with pytest.raises(ValueError):
            p.percentile(101)


class TestThroughputProbe:
    def test_rate(self):
        p = ThroughputProbe()
        p.record(100, 0.0)
        p.record(100, 1.0)
        p.record(100, 2.0)
        assert p.rate() == pytest.approx(150.0)

    def test_mbps(self):
        p = ThroughputProbe()
        p.record(0, 0.0)
        p.record(1_000_000, 8.0)
        assert p.mbps() == pytest.approx(1.0)

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            ThroughputProbe().rate()

    def test_zero_interval_raises(self):
        p = ThroughputProbe()
        p.record(10, 1.0)
        with pytest.raises(ValueError):
            p.rate()


#: positive finite samples spanning ~24 decades -- exercises negative
#: and positive frexp exponents and the octave boundaries.
_samples = st.floats(min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False)


def _nearest_rank(sorted_samples, p):
    rank = max(1, math.ceil(p / 100.0 * len(sorted_samples)))
    return sorted_samples[rank - 1]


class TestLogHistogram:
    def test_bucket_index_monotone(self):
        values = [1e-9, 0.4999, 0.5, 0.9999, 1.0, 1.5, 2.0, 3.7, 1e6]
        indices = [LogHistogram.bucket_index(v) for v in values]
        assert indices == sorted(indices)
        assert LogHistogram.bucket_index(0.0) < indices[0]

    def test_zero_sentinel_roundtrip(self):
        h = LogHistogram()
        h.record(0.0)
        assert h.percentile(50) == 0.0
        assert h.min == 0.0 and h.max == 0.0

    @given(st.lists(_samples, min_size=1, max_size=64))
    def test_bucket_value_within_rel_error(self, values):
        for v in values:
            mid = LogHistogram.bucket_value(LogHistogram.bucket_index(v))
            assert abs(mid - v) <= v * LogHistogram.REL_ERROR

    @given(
        st.lists(_samples, min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=200)
    def test_percentile_within_rel_error_of_exact(self, values, p):
        h = LogHistogram()
        for v in values:
            h.record(v)
        exact = _nearest_rank(sorted(values), p)
        if p <= 0:
            assert h.percentile(p) == min(values)
        elif p >= 100:
            assert h.percentile(p) == max(values)
        else:
            assert abs(h.percentile(p) - exact) <= exact * LogHistogram.REL_ERROR

    def test_exact_moments(self):
        h = LogHistogram()
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.mean == pytest.approx(2.0)
        assert h.stdev == pytest.approx(0.8164965, rel=1e-5)
        assert h.count == 3 and len(h) == 3
        assert h.min == 1.0 and h.max == 3.0

    @given(
        st.lists(_samples, min_size=1, max_size=50),
        st.lists(_samples, min_size=1, max_size=50),
        st.lists(_samples, min_size=1, max_size=50),
    )
    @settings(max_examples=50)
    def test_merge_associative_and_equals_concat(self, a, b, c):
        def hist(values):
            h = LogHistogram()
            for v in values:
                h.record(v)
            return h

        left = hist(a).merge(hist(b).merge(hist(c)))  # a + (b + c)
        right = hist(a).merge(hist(b)).merge(hist(c))  # (a + b) + c
        concat = hist(a + b + c)
        for h in (left, right):
            assert h.buckets == concat.buckets
            assert h.count == concat.count
            assert h.min == concat.min and h.max == concat.max
            assert h.total == pytest.approx(concat.total)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram().record(-1e-9)

    def test_empty_raises(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.percentile(50)
        with pytest.raises(ValueError):
            _ = h.mean

    def test_dict_roundtrip(self):
        h = LogHistogram("x")
        for v in (1e-6, 2e-6, 5e-3, 0.0):
            h.record(v)
        clone = LogHistogram.from_dict(h.to_dict())
        assert clone.buckets == h.buckets
        assert clone.count == h.count
        assert clone.min == h.min and clone.max == h.max
        assert clone.percentile_index(99) == h.percentile_index(99)


class TestDeadline:
    def test_record_and_violations(self):
        d = Deadline(slo=0.002)
        assert d.record(0.001) is False
        assert d.record(0.002) is False  # exactly at the deadline is OK
        assert d.record(0.003) is True
        assert d.violations == 1 and d.count == 3
        assert d.worst == 0.003
        assert d.violation_fraction == pytest.approx(1 / 3)

    def test_merge(self):
        a, b = Deadline(0.01), Deadline(0.01)
        a.record(0.02)
        b.record(0.005)
        b.record(0.05)
        a.merge(b)
        assert a.count == 3 and a.violations == 2 and a.worst == 0.05

    def test_merge_slo_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.01).merge(Deadline(0.02))

    def test_bad_slo_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestLatencyProbeStreaming:
    def test_streaming_retains_no_samples(self):
        p = LatencyProbe(streaming=True)
        for v in (1e-6, 2e-6, 3e-6):
            p.record(v)
        assert p.streaming and p.samples is None
        assert p.count == 3
        assert p.mean == pytest.approx(2e-6)

    @given(st.lists(_samples, min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_streaming_percentile_within_rel_error(self, values):
        p = LatencyProbe(streaming=True)
        for v in values:
            p.record(v)
        exact = _nearest_rank(sorted(values), 90)
        assert abs(p.percentile(90) - exact) <= exact * LogHistogram.REL_ERROR

    def test_cached_sort_invalidated_by_record(self):
        p = LatencyProbe()
        for v in (3.0, 1.0, 2.0):
            p.record(v)
        assert p.percentile(100) == 3.0
        p.record(10.0)  # must invalidate the cached sorted view
        assert p.percentile(100) == 10.0
        assert p.percentile(0) == 1.0


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["stdev"] == pytest.approx(0.8164965, rel=1e-5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
