"""Table 2: average bandwidth comparison (Mbit/s).

Rows: lmbench bw_tcp, netperf TCP_STREAM, netperf UDP_STREAM,
netpipe-mpich.  Columns: the four communication scenarios.  Paper values
are printed alongside for the shape comparison recorded in
EXPERIMENTS.md.

UDP_STREAM uses 32 KB messages (netperf's send size on the testbed is
not stated in the paper; 32 KB reproduces the reported shape -- see
EXPERIMENTS.md).
"""

from repro import report
from repro.workloads import lmbench, netperf, netpipe

from _bench_utils import SCENARIO_ORDER, build_warm, emit

PAPER = {
    "lmbench bw_tcp": dict(zip(SCENARIO_ORDER, (848, 1488, 4920, 5336))),
    "netperf TCP_STREAM": dict(zip(SCENARIO_ORDER, (941, 2656, 4143, 4666))),
    "netperf UDP_STREAM": dict(zip(SCENARIO_ORDER, (710, 707, 4380, 4928))),
    "netpipe-mpich": dict(zip(SCENARIO_ORDER, (645, 697, 2048, 4836))),
}


def _measure():
    rows = {label: {} for label in PAPER}
    for name in SCENARIO_ORDER:
        scn = build_warm(name)
        rows["lmbench bw_tcp"][name] = lmbench.bw_tcp(scn, total_bytes=4 << 20).mbps
        rows["netperf TCP_STREAM"][name] = netperf.tcp_stream(scn, duration=0.04).mbps
        rows["netperf UDP_STREAM"][name] = netperf.udp_stream(
            scn, duration=0.04, msg_size=32768
        ).mbps
        # NetPIPE bandwidth at 4 KB messages (mid-curve point, Fig. 6).
        rows["netpipe-mpich"][name] = netpipe.run(scn, sizes=[4096]).points[0].mbps
    return rows


def test_table2_bandwidth(run_once, benchmark):
    rows = run_once(_measure)
    lines = [
        report.format_table(
            "Table 2: average bandwidth (Mbit/s), measured",
            SCENARIO_ORDER,
            list(rows.items()),
            precision=0,
        ),
        "",
        report.format_table(
            "Table 2: average bandwidth (Mbit/s), paper",
            SCENARIO_ORDER,
            list(PAPER.items()),
            precision=0,
        ),
    ]
    emit("table2_bandwidth", "\n".join(lines))
    for label, values in rows.items():
        benchmark.extra_info[label] = {k: round(v) for k, v in values.items()}
    # Shape assertions (same as the paper's ordering claims).
    for label, values in rows.items():
        assert values["xenloop"] > values["netfront_netback"]
        assert values["native_loopback"] > values["netfront_netback"]
