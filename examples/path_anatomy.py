#!/usr/bin/env python
"""Anatomy of a packet: hop-by-hop timelines through each data path.

Traces a single ICMP echo request through all four communication
scenarios and prints where every microsecond goes -- making the paper's
core argument visible: the netfront/netback path pays two event-channel
crossings, Dom0 scheduling, grant operations, and a bridge hop that the
XenLoop channel replaces with one memcpy and one notification.

Run:  python examples/path_anatomy.py
"""

from repro import scenarios, trace


def main():
    for name in ("native_loopback", "xenloop", "netfront_netback", "inter_machine"):
        scn = scenarios.build(name)
        scn.warmup()
        records = trace.traced_ping(scn)
        total = records[-1][1]
        print(f"\n== {name}: one-way echo request, {total:.1f} us total ==")
        prev = 0.0
        for stage, t_us in records:
            bar = "#" * max(1, int((t_us - prev) / 1.5)) if t_us > prev else ""
            print(f"  {t_us:8.2f} us  (+{t_us - prev:6.2f})  {stage:24s} {bar}")
            prev = t_us

    print(
        "\nReading the bars: on the netfront path the big gaps are the "
        "virq deliveries into Dom0 and back plus Dom0 scheduling; the "
        "XenLoop path replaces all of it with FIFO copy + one notify."
    )


if __name__ == "__main__":
    main()
