"""Hypothesis stateful tests: grant-table and FIFO state machines.

These drive random legal operation sequences against a reference model
and assert the invariants XenLoop's control plane depends on after
every step.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.fifo import Fifo, fifo_pages_for_order
from repro.xen.grant_table import GrantError, GrantTable
from repro.xen.page import Page, SharedRegion


class GrantTableMachine(RuleBasedStateMachine):
    """Model: dict gref -> (granted_to, mapped_by set)."""

    def __init__(self):
        super().__init__()
        self.table = GrantTable(domid=1)
        self.model: dict[int, tuple[int, set[int]]] = {}

    domids = st.integers(min_value=2, max_value=5)

    @rule(remote=domids)
    def grant(self, remote):
        gref = self.table.grant_foreign_access(remote, Page(owner=1))
        assert gref not in self.model
        self.model[gref] = (remote, set())

    @precondition(lambda self: self.model)
    @rule(data=st.data(), mapper=domids)
    def map_grant(self, data, mapper):
        gref = data.draw(st.sampled_from(sorted(self.model)))
        granted_to, mapped_by = self.model[gref]
        if mapper == granted_to:
            page = self.table.map_grant(gref, mapper)
            assert page.owner == 1
            mapped_by.add(mapper)
        else:
            with pytest.raises(GrantError):
                self.table.map_grant(gref, mapper)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def unmap(self, data):
        gref = data.draw(st.sampled_from(sorted(self.model)))
        granted_to, mapped_by = self.model[gref]
        if mapped_by:
            self.table.unmap_grant(gref, granted_to)
            mapped_by.discard(granted_to)
        else:
            with pytest.raises(GrantError):
                self.table.unmap_grant(gref, granted_to)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def revoke(self, data):
        gref = data.draw(st.sampled_from(sorted(self.model)))
        _granted_to, mapped_by = self.model[gref]
        if mapped_by:
            with pytest.raises(GrantError):
                self.table.end_foreign_access(gref)
        else:
            self.table.end_foreign_access(gref)
            del self.model[gref]

    @rule(remote=domids)
    def revoke_all_unmapped_for(self, remote):
        any_mapped = any(
            mapped and granted == remote
            for granted, mapped in self.model.values()
        )
        if any_mapped:
            with pytest.raises(GrantError):
                self.table.revoke_all_for(remote)
            self.table.revoke_all_for(remote, force=True)
        else:
            self.table.revoke_all_for(remote)
        self.model = {
            g: v for g, v in self.model.items() if v[0] != remote
        }

    @invariant()
    def entry_count_matches(self):
        assert self.table.active_entries == len(self.model)


class FifoMachine(RuleBasedStateMachine):
    """Model: list of (type, payload) against the shared-memory FIFO,
    operated through two views (producer and consumer) like the two
    guests do."""

    K = 6  # 64 slots

    def __init__(self):
        super().__init__()
        region = SharedRegion(1, 1 + fifo_pages_for_order(self.K))
        self.producer = Fifo(region, k=self.K)
        self.consumer = Fifo(region)  # peer view over the same memory
        self.model: list[tuple[int, bytes]] = []

    @rule(payload=st.binary(max_size=300), msg_type=st.integers(1, 10))
    def push(self, payload, msg_type):
        used = sum(Fifo.slots_needed(len(p)) for _t, p in self.model)
        fits = Fifo.slots_needed(len(payload)) <= (1 << self.K) - used
        assert self.producer.push(payload, msg_type) == fits
        if fits:
            self.model.append((msg_type, payload))

    @rule()
    def pop(self):
        got = self.consumer.pop()
        if self.model:
            assert got == self.model.pop(0)
        else:
            assert got is None

    @rule()
    def peek_then_advance(self):
        entry = self.consumer.peek()
        if self.model:
            msg_type, payload = self.model.pop(0)
            assert entry is not None
            assert entry[0] == msg_type and entry[1] == payload
            self.consumer.advance(entry[2])
        else:
            assert entry is None

    @invariant()
    def views_agree(self):
        assert self.producer.front == self.consumer.front
        assert self.producer.back == self.consumer.back
        assert self.producer.used_slots == sum(
            Fifo.slots_needed(len(p)) for _t, p in self.model
        )

    @invariant()
    def flags_intact(self):
        assert self.producer.active  # data ops never clobber the flags


TestGrantTableStateMachine = GrantTableMachine.TestCase
TestGrantTableStateMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)

TestFifoStateMachine = FifoMachine.TestCase
TestFifoStateMachine.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)
