"""XenMachine / Domain lifecycle and wiring."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr, MacAddr
from repro.sim.engine import Simulator
from repro.xen.machine import XenMachine
from tests.conftest import run_gen


@pytest.fixture
def machine(sim):
    return XenMachine(sim, DEFAULT_COSTS, "m0", n_cores=2)


class TestCreation:
    def test_dom0_is_domid_zero(self, machine):
        assert machine.dom0.domid == 0
        assert machine.dom0.is_dom0

    def test_guest_gets_next_domid(self, machine):
        g1 = machine.create_guest("vm1")
        g2 = machine.create_guest("vm2")
        assert (g1.domid, g2.domid) == (1, 2)

    def test_guest_registered_in_xenstore(self, machine):
        g = machine.create_guest("vm1")
        assert machine.xenstore.read(0, f"/local/domain/{g.domid}/name") == "vm1"

    def test_networked_guest_has_vif(self, machine):
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        assert g.netfront is not None
        assert g.stack.primary_device() is g.netfront.vif
        assert g.mac is not None

    def test_vif_mac_recorded_in_xenstore(self, machine):
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        mac = machine.xenstore.read(0, f"/local/domain/{g.domid}/device/vif/0/mac")
        assert mac == str(g.mac)

    def test_explicit_mac(self, machine):
        mac = MacAddr("00:16:3e:12:34:56")
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"), mac=mac)
        assert g.mac == mac

    def test_guest_vcpu_limit_applied(self, machine):
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        assert machine.cpus._vcpu_limit[g.sched_key] == 1

    def test_bridge_has_vif_port(self, machine):
        n_before = len(machine.bridge.ports)
        machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        assert len(machine.bridge.ports) == n_before + 1

    def test_guests_listing(self, machine):
        machine.create_guest("vm1")
        assert [g.name for g in machine.guests] == ["vm1"]


class TestXenStoreAccess:
    def test_xs_write_read_roundtrip(self, sim, machine):
        g = machine.create_guest("vm1")

        def gen():
            yield from g.xs_write(f"{g.xs_prefix}/xenloop", "mac")
            value = yield from g.xs_read(f"{g.xs_prefix}/xenloop")
            return value

        assert run_gen(sim, gen()) == "mac"

    def test_xs_ops_charge_cpu(self, sim, machine):
        g = machine.create_guest("vm1")

        def gen():
            yield from g.xs_write(f"{g.xs_prefix}/x", "v")

        run_gen(sim, gen())
        assert sim.now >= DEFAULT_COSTS.xenstore_op


class TestShutdown:
    def test_shutdown_removes_domain(self, sim, machine):
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        run_gen(sim, g.shutdown())
        assert g.domid not in machine.domains
        assert not machine.xenstore.exists(0, f"/local/domain/{g.domid}")

    def test_shutdown_runs_callbacks(self, sim, machine):
        g = machine.create_guest("vm1")
        ran = []

        def cb():
            ran.append(True)
            yield sim.timeout(0)

        g.shutdown_callbacks.append(cb)
        run_gen(sim, g.shutdown())
        assert ran == [True]

    def test_shutdown_closes_event_channels(self, sim, machine):
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        run_gen(sim, g.shutdown())
        live = [
            p for (d, _n), p in machine.hypervisor.evtchn._ports.items() if d == g.domid
        ]
        assert live == []

    def test_double_shutdown_is_noop(self, sim, machine):
        g = machine.create_guest("vm1")
        run_gen(sim, g.shutdown())
        run_gen(sim, g.shutdown())  # should not raise

    def test_shutdown_detaches_bridge_port(self, sim, machine):
        g = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        n = len(machine.bridge.ports)
        run_gen(sim, g.shutdown())
        assert len(machine.bridge.ports) == n - 1
