"""Hypervisor-layer edge cases."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr
from repro.xen.hypervisor import Hypervisor
from repro.xen.machine import XenMachine
from tests.conftest import run_gen


class TestHypervisor:
    def test_domid_allocation_monotonic(self, sim):
        hv = Hypervisor(sim, DEFAULT_COSTS)
        ids = [hv.alloc_domid() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_double_registration_rejected(self, sim):
        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        guest = machine.create_guest("vm1")
        with pytest.raises(ValueError):
            machine.hypervisor.register_domain(guest)

    def test_exec_in_dead_domain_is_noop(self, sim):
        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        guest = machine.create_guest("vm1")
        run_gen(sim, guest.shutdown())
        ran = []
        machine.hypervisor.exec_in_domain(guest.domid, 1e-6, lambda: ran.append(1))
        sim.run(until=sim.now + 0.01)
        assert ran == []

    def test_exec_in_domain_charges_target(self, sim):
        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        guest = machine.create_guest("vm1")
        busy_before = machine.cpus.total_busy_time
        ran = []
        machine.hypervisor.exec_in_domain(guest.domid, 5e-6, lambda: ran.append(sim.now))
        sim.run(until=sim.now + 0.01)
        assert ran and ran[0] >= 5e-6
        assert machine.cpus.total_busy_time - busy_before >= 5e-6

    def test_unregister_closes_event_channels(self, sim):
        machine = XenMachine(sim, DEFAULT_COSTS, "m0")
        g1 = machine.create_guest("vm1", ip=IPv4Addr("10.0.0.1"))
        g2 = machine.create_guest("vm2", ip=IPv4Addr("10.0.0.2"))
        evtchn = machine.hypervisor.evtchn
        port = evtchn.alloc_unbound(g1.domid, g2.domid)
        peer = evtchn.bind_interdomain(g2.domid, g1.domid, port.port)
        machine.hypervisor.unregister_domain(g1)
        assert port.closed
        assert peer.peer is None


class TestMeshBuilder:
    def test_too_few_guests_rejected(self):
        from repro import scenarios

        with pytest.raises(ValueError):
            scenarios.xenloop_mesh(1)

    def test_unique_ips_and_macs(self):
        from repro import scenarios

        scn = scenarios.xenloop_mesh(5)
        guests = scn.machines[0].guests
        assert len({g.ip for g in guests}) == 5
        assert len({g.mac for g in guests}) == 5
        assert len(scn.modules) == 5
