"""Live-migration mechanics at the Xen layer (without XenLoop loaded)."""

import pytest

from repro.calibration import DEFAULT_COSTS
from repro.net.addr import IPv4Addr, MacAddr
from repro.net.nic import EthernetSwitch
from repro.sim.engine import Simulator
from repro.xen.domain import RUNNING, SUSPENDED
from repro.xen.machine import XenMachine
from repro.xen.migration import live_migrate

COSTS = DEFAULT_COSTS.replace(migration_duration=0.5, migration_downtime=0.1)


@pytest.fixture
def world(sim):
    switch = EthernetSwitch(sim, COSTS)
    ma = XenMachine(sim, COSTS, "ma", n_cores=2)
    mb = XenMachine(sim, COSTS, "mb", n_cores=2)
    ma.attach_network(switch, MacAddr("00:02:b3:00:00:0a"))
    mb.attach_network(switch, MacAddr("00:02:b3:00:00:0b"))
    vm = mb.create_guest("guest", ip=IPv4Addr("10.0.0.9"))
    return ma, mb, vm


class TestMechanics:
    def test_precopy_keeps_guest_running(self, sim, world):
        ma, mb, vm = world
        proc = sim.process(live_migrate(vm, ma))
        sim.run(until=COSTS.migration_duration - COSTS.migration_downtime - 0.05)
        assert vm.state == RUNNING
        assert vm.machine is mb  # not moved yet

    def test_downtime_window_suspends(self, sim, world):
        ma, mb, vm = world
        sim.process(live_migrate(vm, ma))
        sim.run(
            until=COSTS.migration_duration - COSTS.migration_downtime / 2
        )
        assert vm.state == SUSPENDED
        assert vm.netfront.suspended

    def test_resume_on_target(self, sim, world):
        ma, _mb, vm = world
        proc = sim.process(live_migrate(vm, ma))
        sim.run_until_complete(proc, timeout=10)
        assert vm.state == RUNNING
        assert not vm.netfront.suspended
        assert vm.machine is ma
        assert vm.cpus is ma.cpus

    def test_same_machine_rejected(self, sim, world):
        _ma, mb, vm = world
        with pytest.raises(ValueError):
            gen = live_migrate(vm, mb)
            next(gen)

    def test_callbacks_ordering(self, sim, world):
        ma, _mb, vm = world
        order = []

        def pre():
            order.append(("pre", vm.machine.name, vm.state))
            yield sim.timeout(0)

        def post():
            order.append(("post", vm.machine.name, vm.state))
            yield sim.timeout(0)

        vm.pre_migrate_callbacks.append(pre)
        vm.post_migrate_callbacks.append(post)
        proc = sim.process(live_migrate(vm, ma))
        sim.run_until_complete(proc, timeout=10)
        assert order[0][0] == "pre" and order[0][1] == "mb"
        assert order[1][0] == "post" and order[1][1] == "ma"
        assert order[1][2] == RUNNING

    def test_vcpu_limit_carried_to_target(self, sim, world):
        ma, _mb, vm = world
        proc = sim.process(live_migrate(vm, ma))
        sim.run_until_complete(proc, timeout=10)
        assert ma.cpus._vcpu_limit[vm.sched_key] == 1

    def test_gratuitous_arp_reteaches_switch(self, sim, world):
        ma, mb, vm = world
        # make the switch learn vm's MAC on mb's port
        vm.stack.arp.announce()
        sim.run(until=sim.now + 0.01)
        switch = mb.nic.switch
        assert switch._fdb[vm.mac].nic is mb.nic
        proc = sim.process(live_migrate(vm, ma))
        sim.run_until_complete(proc, timeout=10)
        sim.run(until=sim.now + 0.05)
        assert switch._fdb[vm.mac].nic is ma.nic

    def test_round_trip_returns_home(self, sim, world):
        ma, mb, vm = world
        proc = sim.process(live_migrate(vm, ma))
        sim.run_until_complete(proc, timeout=10)
        proc = sim.process(live_migrate(vm, mb))
        sim.run_until_complete(proc, timeout=10)
        assert vm.machine is mb
        assert vm.state == RUNNING

    def test_domids_never_reused_on_target(self, sim, world):
        ma, _mb, vm = world
        other = ma.create_guest("resident", ip=IPv4Addr("10.0.0.8"))
        proc = sim.process(live_migrate(vm, ma))
        sim.run_until_complete(proc, timeout=10)
        assert vm.domid != other.domid
        assert set(ma.domains) >= {0, other.domid, vm.domid}
