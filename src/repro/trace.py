"""Per-packet path tracing.

Mark a packet with :func:`enable` and every instrumented hop appends a
``(stage, time)`` record to it as it moves through the system --
netfilter hook, FIFO push/pop, netfront/netback, softirq, transport
delivery.  Tracing is opt-in per packet: untraced packets pay one dict
lookup per hop.

The headline user is :func:`traced_ping`, which sends one ICMP echo
through a scenario and returns the request's hop-by-hop timeline -- the
cost breakdown behind every latency number in EXPERIMENTS.md::

    from repro import scenarios, trace
    scn = scenarios.xenloop(); scn.warmup()
    for stage, t_us in trace.traced_ping(scn):
        print(f"{t_us:8.1f} us  {stage}")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.scenarios import Scenario

__all__ = [
    "adopt",
    "enable",
    "engine_stats",
    "hops",
    "mark",
    "merge_shard_stats",
    "traced_ping",
    "traced_ping_by_name",
]

_KEY = "trace"


def _registry(sim) -> dict:
    reg = getattr(sim, "_trace_registry", None)
    if reg is None:
        reg = sim._trace_registry = {}
    return reg


def _key_of(packet: "Packet"):
    if packet.ip is None:
        return None
    return (packet.ip.src.value, packet.ip.ident)


def enable(packet: "Packet", sim=None) -> "Packet":
    """Arm a packet for tracing (records accumulate in packet.meta).

    With ``sim`` given, the trace also survives serialization through
    the XenLoop FIFO: the reconstructed packet re-attaches to the same
    record list via (src, ident) in the simulator's trace registry.
    """
    records: list = []
    packet.meta[_KEY] = records
    if sim is not None:
        key = _key_of(packet)
        if key is not None:
            _registry(sim)[key] = records
    return packet


def adopt(packet: "Packet", sim) -> None:
    """Re-attach a reconstructed packet (e.g. popped from the FIFO) to
    the trace its original carried.  No-op unless tracing is active."""
    reg = getattr(sim, "_trace_registry", None)
    if not reg:
        return
    key = _key_of(packet)
    if key in reg:
        packet.meta[_KEY] = reg[key]


def mark(packet: "Packet", stage: str, now: float) -> None:
    """Append one hop record iff the packet is being traced."""
    records = packet.meta.get(_KEY)
    if records is not None:
        records.append((stage, now))


def hops(packet: "Packet") -> list[tuple[str, float]]:
    """The recorded (stage, time) list of a traced packet."""
    return list(packet.meta.get(_KEY, ()))


def engine_stats(sim, wall_s: Optional[float] = None) -> dict:
    """Snapshot of the simulator's engine-level counters.

    Returns ``{"events": <calendar entries processed>, "sim_time": now}``
    plus, when the caller supplies the measured wall-clock seconds,
    ``wall_s`` and the derived ``events_per_sec`` -- the throughput
    number tracked by ``benchmarks/bench_engine_throughput.py`` (see
    :attr:`repro.sim.engine.Simulator.event_count` for what counts as an
    event).

    The ``serialization`` sub-dict holds the wire-format cache and
    bytes-copied counters from :data:`repro.net.packet.WIRE_STATS`.
    Those are process-global (reset with ``WIRE_STATS.reset()`` before a
    measured run), not per-simulator.

    When a :class:`repro.faults.FaultPlan` is installed on the
    simulator, a ``faults`` sub-dict carries its injected / recovered /
    degraded counters.

    When the run carried TCP traffic, a ``tcp`` sub-dict sums every
    stack's :meth:`repro.net.tcp.TcpLayer.congestion_totals` --
    connections opened, retransmissions (split into fast vs. RTO),
    duplicate ACKs and segments, RSTs, and listener backlog drops.

    The ``notify`` sub-dict holds the event-channel suppression counters
    from :data:`repro.xen.event_channel.NOTIFY_STATS` (process-global,
    like the serialization counters: reset before a measured run).  When
    the simulator has XenLoop channels, ``channels`` lists each one's
    per-channel notify / suppression / batched-pop counters in creation
    order.

    A run that used the open-loop serving workload adds a ``serving``
    sub-dict (offered / completed / errors / SLO counters summed over
    every :class:`repro.workloads.serving.ServingProbe`); a run whose
    timer wheel ever scheduled an entry adds ``timers`` (the wheel's
    scheduled / fired / cancelled / cascade counters).
    """
    from repro.net.packet import WIRE_STATS
    from repro.xen.event_channel import NOTIFY_STATS

    stats = {"events": sim.event_count, "sim_time": sim.now}
    if wall_s is not None:
        stats["wall_s"] = wall_s
        stats["events_per_sec"] = sim.event_count / wall_s if wall_s > 0 else 0.0
    stats["serialization"] = WIRE_STATS.snapshot()
    stats["notify"] = NOTIFY_STATS.snapshot()
    channels = getattr(sim, "_xenloop_channels", None)
    if channels:
        stats["channels"] = [
            {
                "guest": ch.guest.name,
                "peer_domid": ch.peer_domid,
                "pkts_sent": ch.pkts_sent,
                "pkts_received": ch.pkts_received,
                "notifies": ch.notifies,
                "notifies_suppressed": ch.notifies_suppressed,
                "drain_batches": ch.drain_batches,
                "drain_entries": ch.drain_entries,
            }
            for ch in channels
        ]
    layers = getattr(sim, "_tcp_layers", None)
    if layers:
        tcp: dict = {}
        for layer in layers:
            for key, value in layer.congestion_totals().items():
                tcp[key] = tcp.get(key, 0) + value
        if tcp.get("conns"):
            stats["tcp"] = tcp
    plan = getattr(sim, "fault_plan", None)
    if plan is not None:
        stats["faults"] = plan.snapshot()
    probes = getattr(sim, "_serving_probes", None)
    if probes:
        serving: dict = {}
        for probe in probes:
            for key, value in probe.counters().items():
                serving[key] = serving.get(key, 0) + value
        stats["serving"] = serving
    wheel = getattr(sim, "_wheel", None)
    if wheel is not None and wheel.scheduled:
        stats["timers"] = wheel.counters()
    return stats


def _sum_dicts(dicts: list) -> dict:
    """Key-wise sum of numeric counter dicts (keys unioned, order kept)."""
    out: dict = {}
    for d in dicts:
        for key, value in d.items():
            if isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
            elif isinstance(value, dict):
                out[key] = _sum_dicts([out.get(key, {}), value])
    return out


def merge_shard_stats(entries: list, wall_s: Optional[float] = None) -> dict:
    """Merge per-shard worker entries from a sharded run into one
    :func:`engine_stats`-shaped dict.

    ``entries`` are the per-shard dicts produced by
    :func:`repro.sim.pdes.run_sharded` (each carries ``stats`` -- an
    engine_stats snapshot taken inside the worker -- plus optional
    ``pdes`` synchronization counters).  Events and all
    serialization/notify/fault counters sum across shards; ``sim_time``
    is the max (shards advance to the same horizon, but a guestless
    shard may stop earlier).  ``wall_s`` defaults to the slowest shard's
    wall clock (the parallel-region critical path); pass the parent's
    measured wall to include fork/build overhead.  The returned dict
    adds ``pdes`` (summed null/frame/stall counters) and ``shards``
    (per-shard one-line summaries) sub-dicts.
    """
    stats_list = [e["stats"] for e in entries]
    events = sum(s["events"] for s in stats_list)
    if wall_s is None:
        walls = [s.get("wall_s") for s in stats_list if s.get("wall_s") is not None]
        wall_s = max(walls) if walls else None
    merged: dict = {
        "events": events,
        "sim_time": max(s["sim_time"] for s in stats_list),
    }
    if wall_s is not None:
        merged["wall_s"] = wall_s
        merged["events_per_sec"] = events / wall_s if wall_s > 0 else 0.0
    merged["serialization"] = _sum_dicts([s.get("serialization", {}) for s in stats_list])
    merged["notify"] = _sum_dicts([s.get("notify", {}) for s in stats_list])
    channels = [ch for s in stats_list for ch in s.get("channels", ())]
    if channels:
        merged["channels"] = channels
    faults = [s["faults"] for s in stats_list if "faults" in s]
    if faults:
        merged["faults"] = _sum_dicts(faults)
    for key in ("serving", "timers"):
        subs = [s[key] for s in stats_list if key in s]
        if subs:
            merged[key] = _sum_dicts(subs)
    pdes_list = [e["pdes"] for e in entries if e.get("pdes")]
    merged["pdes"] = _sum_dicts(
        [{k: v for k, v in p.items() if k != "shard"} for p in pdes_list]
    )
    merged["pdes"]["shards"] = len(entries)
    merged["shards"] = [
        {
            "shard": e["shard"],
            "machine": e.get("machine"),
            "events": e["stats"]["events"],
            "sim_time": e["stats"]["sim_time"],
            "wall_s": e["stats"].get("wall_s"),
            "events_per_sec": e["stats"].get("events_per_sec"),
            **{k: v for k, v in (e.get("pdes") or {}).items() if k != "shard"},
        }
        for e in entries
    ]
    return merged


def traced_ping(scenario: "Scenario", size: int = 56) -> list[tuple[str, float]]:
    """Send one traced echo request A->B; returns (stage, time_us)
    records with time relative to the send, ending at ICMP delivery."""
    sim = scenario.sim
    stack = scenario.node_a.stack
    captured: dict[str, object] = {}

    # Capture the request packet right as the IP layer emits it: a
    # PRE-hook on our own POST_ROUTING chain with top priority.
    from repro.net.netfilter import HookPoint, Verdict

    def tap(packet, dev):
        if captured.get("pkt") is None and packet.ip is not None:
            enable(packet, sim)
            mark(packet, "ip-output", sim.now)
            captured["pkt"] = packet
        return Verdict.ACCEPT
        yield  # pragma: no cover

    stack.netfilter.register(HookPoint.POST_ROUTING, tap, priority=-1000)
    try:
        def pinger():
            ident = stack.icmp.alloc_ident()
            waiter = yield from stack.icmp.send_echo(scenario.ip_b, ident, 0, size)
            yield sim.any_of([waiter, sim.timeout(2.0)])

        proc = sim.process(pinger(), name="traced-ping")
        sim.run_until_complete(proc, timeout=10)
    finally:
        stack.netfilter.unregister(HookPoint.POST_ROUTING, tap)

    packet = captured.get("pkt")
    if packet is None:
        raise RuntimeError("no packet captured -- did the ping leave the stack?")
    records = hops(packet)
    if not records:
        return []
    t0 = records[0][1]
    return [(stage, (t - t0) * 1e6) for stage, t in records]


def traced_ping_by_name(name: str, size: int = 56, **kwargs) -> list[tuple[str, float]]:
    """Build a registered scenario by name, warm it up, and trace one
    ping through it.  ``kwargs`` go to :func:`repro.scenarios.build`."""
    from repro import scenarios

    scn = scenarios.build(name, **kwargs)
    scn.warmup()
    return traced_ping(scn, size=size)
