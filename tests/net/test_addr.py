"""MAC / IPv4 address types, including hypothesis round-trip properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addr import BROADCAST_MAC, IPv4Addr, MacAddr


class TestMacAddr:
    def test_parse_format_roundtrip(self):
        mac = MacAddr("00:16:3e:0a:0b:0c")
        assert str(mac) == "00:16:3e:0a:0b:0c"

    def test_from_int(self):
        assert str(MacAddr(0xFFFFFFFFFFFF)) == "ff:ff:ff:ff:ff:ff"

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MacAddr(1).is_broadcast

    def test_multicast_bit(self):
        assert MacAddr("01:00:5e:00:00:01").is_multicast
        assert not MacAddr("00:16:3e:00:00:01").is_multicast

    def test_equality_and_hash(self):
        a, b = MacAddr(5), MacAddr(5)
        assert a == b and hash(a) == hash(b)
        assert a != MacAddr(6)
        assert a != 5  # not equal to raw ints

    def test_ordering(self):
        assert MacAddr(1) < MacAddr(2)

    def test_bad_string(self):
        with pytest.raises(ValueError):
            MacAddr("00:11:22:33:44")

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddr(1 << 48)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            MacAddr(3.14)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_bytes_roundtrip(self, value):
        mac = MacAddr(value)
        assert MacAddr.from_bytes(mac.to_bytes()) == mac

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_string_roundtrip(self, value):
        mac = MacAddr(value)
        assert MacAddr(str(mac)) == mac


class TestIPv4Addr:
    def test_parse_format_roundtrip(self):
        ip = IPv4Addr("192.168.1.200")
        assert str(ip) == "192.168.1.200"

    def test_subnet_membership(self):
        net = IPv4Addr("10.0.0.0")
        assert IPv4Addr("10.0.0.42").in_subnet(net, 24)
        assert not IPv4Addr("10.0.1.42").in_subnet(net, 24)
        assert IPv4Addr("10.0.1.42").in_subnet(net, 16)

    def test_prefix_zero_matches_all(self):
        assert IPv4Addr("1.2.3.4").in_subnet(IPv4Addr("9.9.9.9"), 0)

    def test_prefix_32_exact(self):
        ip = IPv4Addr("10.0.0.1")
        assert ip.in_subnet(IPv4Addr("10.0.0.1"), 32)
        assert not ip.in_subnet(IPv4Addr("10.0.0.2"), 32)

    def test_bad_prefix(self):
        with pytest.raises(ValueError):
            IPv4Addr("1.1.1.1").in_subnet(IPv4Addr("1.1.1.0"), 33)

    def test_bad_strings(self):
        for bad in ("1.2.3", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPv4Addr(bad)

    def test_equality_hash_ordering(self):
        assert IPv4Addr("1.0.0.1") == IPv4Addr(0x01000001)
        assert IPv4Addr("1.0.0.1") < IPv4Addr("1.0.0.2")
        assert hash(IPv4Addr("1.0.0.1")) == hash(IPv4Addr(0x01000001))

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_bytes_roundtrip(self, value):
        ip = IPv4Addr(value)
        assert IPv4Addr.from_bytes(ip.to_bytes()) == ip

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_roundtrip(self, value):
        ip = IPv4Addr(value)
        assert IPv4Addr(str(ip)) == ip

    def test_mac_ip_not_equal(self):
        assert MacAddr(5) != IPv4Addr(5)
